"""repro: BMMC permutations on parallel disk systems, reproduced.

A faithful, executable reproduction of

    Thomas H. Cormen, Thomas Sundquist, Leonard F. Wisniewski,
    "Asymptotically Tight Bounds for Performing BMMC Permutations on
    Parallel Disk Systems", SPAA 1993 / Dartmouth PCS-TR94-223.

Layering (see DESIGN.md):

* :mod:`repro.bits` -- GF(2) bit-matrix linear algebra (the substrate
  every permutation class is defined over);
* :mod:`repro.pdm`  -- the Vitter-Shriver parallel disk model as a
  rule-enforcing, I/O-counting simulator;
* :mod:`repro.perms` -- BMMC / BPC / MRC / MLD permutation classes and
  a library of named permutations;
* :mod:`repro.core` -- the paper's algorithms (one-pass MRC and MLD,
  the Section 5 factoring algorithm of Theorem 21, run-time detection
  of Section 6), the general-permutation baseline, every closed-form
  bound, and the executable potential-function argument.

Quick start::

    import numpy as np
    from repro import DiskGeometry, ParallelDiskSystem, perform_permutation
    from repro.perms import library

    g = DiskGeometry(N=2**14, B=2**3, D=2**2, M=2**8)
    system = ParallelDiskSystem(g)
    system.fill_identity(0)
    report = perform_permutation(system, library.bit_reversal(g.n))
    print(report.summary())
"""

from repro.errors import (
    BlockStateError,
    DetectionError,
    DimensionError,
    DiskConflictError,
    MemoryCapacityError,
    NotInClassError,
    ReproError,
    SingularMatrixError,
    ValidationError,
)
from repro.bits.matrix import BitMatrix
from repro.pdm import DiskGeometry, ParallelDiskSystem
from repro.perms import (
    BMMCPermutation,
    BPCPermutation,
    ExplicitPermutation,
    PermClass,
    classify,
)
from repro.core import (
    bounds,
    detect_bmmc,
    factor_bmmc,
    perform_bmmc,
    perform_general_sort,
    perform_mld_pass,
    perform_mrc_pass,
    perform_permutation,
    plan_bmmc_passes,
    store_target_vector,
)
from repro.serve import (
    PermutationRequest,
    PermutationService,
    ServiceResult,
    synthetic_mix,
)

__version__ = "1.0.0"

__all__ = [
    "BitMatrix",
    "DiskGeometry",
    "ParallelDiskSystem",
    "BMMCPermutation",
    "BPCPermutation",
    "ExplicitPermutation",
    "PermClass",
    "classify",
    "bounds",
    "detect_bmmc",
    "factor_bmmc",
    "perform_bmmc",
    "perform_general_sort",
    "perform_mld_pass",
    "perform_mrc_pass",
    "perform_permutation",
    "plan_bmmc_passes",
    "store_target_vector",
    "PermutationRequest",
    "PermutationService",
    "ServiceResult",
    "synthetic_mix",
    "ReproError",
    "ValidationError",
    "DimensionError",
    "SingularMatrixError",
    "NotInClassError",
    "DiskConflictError",
    "MemoryCapacityError",
    "BlockStateError",
    "DetectionError",
    "__version__",
]
