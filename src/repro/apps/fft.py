"""Out-of-core FFT on the parallel disk model, staged by BMMC permutations.

The paper's Section 1 names bit-reversal ("used in performing FFTs")
among the practical BPC permutations.  This module goes all the way: it
computes an ``N``-point FFT where the ``complex128`` samples live on the
simulated parallel disk system and memory holds only ``M`` of them.

Structure (the classic external FFT of Cormen's thesis lineage):

* The iterative decimation-in-time FFT operates on *wires*
  ``w = 0..N-1``; level ``l`` combines wires differing in bit ``l``.
  Grouping levels into *superlevels* of ``lg M`` levels makes each
  superlevel computable one memoryload at a time -- provided the disk
  layout localizes the superlevel's wire bits into the low ``lg M``
  address bits.
* Layouts are BPC permutations ``L_s`` (wire -> address): superlevel
  ``s`` uses the layout that swaps wire-bit fields ``[0, width)`` and
  ``[s*lg M, s*lg M + width)``.  The transition from one layout to the
  next is the BPC permutation ``L_s o L_{s-1}^-1``, performed by the
  paper's Theorem 21 algorithm; the initial transition is exactly the
  bit-reversal permutation.
* Each superlevel then makes one pass (``2N/BD`` I/Os) of striped
  memoryload reads, in-memory butterflies (twiddles recomputed from
  wire indices -- vectorized), and striped writes.

The result records the full I/O ledger: staging I/Os (all BMMC runs)
and compute-pass I/Os, each a multiple of ``2N/BD``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.bmmc_algorithm import perform_bmmc
from repro.errors import ValidationError
from repro.pdm.geometry import DiskGeometry
from repro.pdm.system import ParallelDiskSystem
from repro.perms.bpc import BPCPermutation
from repro.perms.library import bit_reversal

__all__ = ["OutOfCoreFFTResult", "out_of_core_fft"]


@dataclass
class OutOfCoreFFTResult:
    values: np.ndarray  # the DFT, indexed by frequency
    superlevels: int
    staging_ios: int
    compute_ios: int
    total_ios: int
    stages: list[str] = field(default_factory=list)


def _layout_for_superlevel(n: int, m: int, s: int) -> BPCPermutation:
    """Layout ``L_s``: swap wire-bit fields [0, width) and [s*m, s*m+width).

    For ``s = 0`` the identity already localizes levels ``0..m-1``.
    """
    width = min(m, n - s * m)
    target_of = list(range(n))
    if s > 0:
        for k in range(width):
            target_of[k], target_of[s * m + k] = target_of[s * m + k], target_of[k]
    return BPCPermutation(target_of)


def _butterfly_superlevel(
    system: ParallelDiskSystem,
    portion: int,
    layout: BPCPermutation,
    level_lo: int,
    level_hi: int,
) -> None:
    """One compute pass: per memoryload, run levels [level_lo, level_hi).

    Record at address ``a`` carries the value of wire ``layout^-1(a)``;
    the layout guarantees each level's partner lives in the same
    memoryload at a fixed local-bit distance.
    """
    g = system.geometry
    inverse_layout = layout.inverse()
    system.stats.begin_pass(f"fft:levels{level_lo}-{level_hi - 1}")
    try:
        for ml in range(g.num_memoryloads):
            values = system.read_memoryload(portion, ml)
            addresses = g.memoryload_addresses(ml).astype(np.uint64)
            wires = np.asarray(inverse_layout.apply_array(addresses), dtype=np.int64)
            for level in range(level_lo, level_hi):
                local_bit = layout.target_of[level]
                if local_bit >= g.m:  # pragma: no cover - layout guarantees
                    raise ValidationError("level not localized by the layout")
                stride = 1 << local_bit
                offsets = np.arange(g.M)
                is_odd = (offsets & stride) != 0
                evens = np.flatnonzero(~is_odd)
                odds = evens + stride
                # twiddle from the *wire* index of the odd member:
                # w mod 2^level over a span of 2^(level+1)
                odd_wires = wires[odds]
                angle = (
                    -2.0
                    * np.pi
                    * (odd_wires & ((1 << level) - 1)).astype(np.float64)
                    / float(1 << (level + 1))
                )
                twiddle = np.exp(1j * angle)
                top = values[evens]
                bottom = values[odds] * twiddle
                values[evens] = top + bottom
                values[odds] = top - bottom
            system.write_memoryload(portion, ml, values)
    finally:
        system.stats.end_pass()


def out_of_core_fft(
    samples: np.ndarray,
    geometry: DiskGeometry,
) -> OutOfCoreFFTResult:
    """Compute ``np.fft.fft(samples)`` with the data resident on disk.

    ``samples`` must have length ``geometry.N``.  Returns the DFT values
    plus the I/O ledger.  The FFT itself is exact up to floating-point
    rounding; tests compare against ``numpy.fft``.
    """
    g = geometry
    samples = np.asarray(samples, dtype=np.complex128)
    if samples.shape != (g.N,):
        raise ValidationError(f"need exactly N={g.N} samples, got {samples.shape}")

    system = ParallelDiskSystem(g, dtype=np.complex128, empty=np.nan)
    system.fill(0, samples)
    stages: list[str] = []
    staging_ios = 0
    compute_ios = 0
    current = 0

    n, m = g.n, g.m
    num_superlevels = -(-n // m)
    previous_layout = BPCPermutation(list(range(n)))  # identity: input[x] at x
    reversal = bit_reversal(n)

    for s in range(num_superlevels):
        layout = _layout_for_superlevel(n, m, s)
        # wire w's value must sit at address layout(w); it currently sits
        # at previous_layout(reversal^-1-adjusted) address.  Before the
        # first superlevel the data is still in input order: wire w's
        # value is input[bitrev(w)] at address bitrev(w) = reversal(w).
        if s == 0:
            source_layout = reversal
        else:
            source_layout = previous_layout
        transition = layout.compose(source_layout.inverse())
        if not transition.is_identity():
            before = system.stats.parallel_ios
            run = perform_bmmc(system, transition, current, 1 - current)
            staging_ios += system.stats.parallel_ios - before
            stages.append(f"stage perm ({run.passes} passes)")
            current = run.final_portion
        level_hi = min((s + 1) * m, n)
        before = system.stats.parallel_ios
        _butterfly_superlevel(system, current, layout, s * m, level_hi)
        compute_ios += system.stats.parallel_ios - before
        stages.append(f"superlevel {s}: levels {s * m}..{level_hi - 1}")
        previous_layout = layout

    # Final staging: wire w to address w (natural frequency order).
    transition = previous_layout.inverse()
    if not transition.is_identity():
        before = system.stats.parallel_ios
        run = perform_bmmc(system, transition, current, 1 - current)
        staging_ios += system.stats.parallel_ios - before
        stages.append(f"final unpermute ({run.passes} passes)")
        current = run.final_portion

    values = system.portion_values(current)
    return OutOfCoreFFTResult(
        values=values,
        superlevels=num_superlevels,
        staging_ios=staging_ios,
        compute_ios=compute_ios,
        total_ios=staging_ios + compute_ios,
        stages=stages,
    )
