"""Application drivers built on the library's public API.

These are the workloads the paper's introduction motivates -- "matrices
and vectors exceed the memory provided by even the largest
supercomputers" -- implemented end to end on the simulated parallel
disk system: the data never fits in memory, every byte moves through
counted parallel I/O, and BMMC permutations do the staging.
"""

from repro.apps.fft import OutOfCoreFFTResult, out_of_core_fft

__all__ = ["OutOfCoreFFTResult", "out_of_core_fft"]
