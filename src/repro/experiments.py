"""Programmatic experiment drivers: quick paper-vs-measured sweeps.

These are lighter-weight versions of the benchmark suite's sweeps,
designed for interactive use (the ``repro experiment`` CLI subcommand)
and for composing custom studies.  Each driver returns an
:class:`ExperimentTable` -- headers, rows, and a title -- and asserts
the paper's claim on the measured values before returning.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.bits import linalg
from repro.bits.random import (
    random_bmmc_with_rank_gamma,
    random_mld_matrix,
    random_nonsingular,
)
from repro.core import bounds
from repro.core.bmmc_algorithm import perform_bmmc
from repro.core.detect import detect_bmmc, store_target_vector
from repro.core.general import perform_general_sort
from repro.core.mld_algorithm import perform_mld_pass
from repro.core.potential import PotentialTracker
from repro.pdm.geometry import DiskGeometry
from repro.pdm.system import ParallelDiskSystem
from repro.perms.bmmc import BMMCPermutation

__all__ = [
    "ExperimentTable",
    "EXPERIMENTS",
    "run_experiment",
    "lower_bound_sweep",
    "mld_one_pass",
    "detection_cost",
    "ablation_merge",
    "vs_general",
    "potential_audit",
]

DEFAULT_GEOMETRY = DiskGeometry(N=2**12, B=2**3, D=2**2, M=2**7)


@dataclass
class ExperimentTable:
    experiment_id: str
    title: str
    headers: list[str]
    rows: list[list] = field(default_factory=list)

    def render(self) -> str:
        widths = [
            max(len(str(h)), *(len(str(r[i])) for r in self.rows)) if self.rows else len(str(h))
            for i, h in enumerate(self.headers)
        ]
        out = [f"{self.experiment_id}: {self.title}", ""]
        out.append("  ".join(str(h).ljust(w) for h, w in zip(self.headers, widths)))
        out.append("  ".join("-" * w for w in widths))
        for row in self.rows:
            out.append("  ".join(str(v).ljust(w) for v, w in zip(row, widths)))
        return "\n".join(out)


def _fresh(geometry: DiskGeometry) -> ParallelDiskSystem:
    system = ParallelDiskSystem(geometry)
    system.fill_identity(0)
    return system


def lower_bound_sweep(geometry: DiskGeometry = DEFAULT_GEOMETRY, seed: int = 0) -> ExperimentTable:
    """THM3: measured I/Os vs the Theorem 3 expression across rank gamma."""
    table = ExperimentTable(
        "THM3",
        f"Theorem 3 sweep on {geometry.describe()}",
        ["rank gamma", "measured I/Os", "Thm 3 LB", "Thm 21 UB", "ratio"],
    )
    g = geometry
    for r in range(min(g.b, g.n - g.b) + 1):
        perm = BMMCPermutation(
            random_bmmc_with_rank_gamma(g.n, g.b, r, np.random.default_rng(seed + r))
        )
        system = _fresh(g)
        result = perform_bmmc(system, perm)
        assert system.verify_permutation(perm, np.arange(g.N), result.final_portion)
        lb = bounds.theorem3_lower_bound(g, r)
        ub = bounds.theorem21_upper_bound(g, r)
        assert result.parallel_ios <= ub
        table.rows.append(
            [r, result.parallel_ios, f"{lb:.1f}", ub, f"{result.parallel_ios / lb:.2f}"]
        )
    return table


def mld_one_pass(geometry: DiskGeometry = DEFAULT_GEOMETRY, seed: int = 0) -> ExperimentTable:
    """THM15: MLD instances complete in exactly 2N/BD parallel I/Os."""
    g = geometry
    table = ExperimentTable(
        "THM15",
        f"MLD one-pass on {g.describe()} (2N/BD = {g.one_pass_ios})",
        ["gamma rank", "I/Os", "striped reads", "independent writes"],
    )
    for gr in range(min(g.m - g.b, g.n - g.m) + 1):
        perm = BMMCPermutation(
            random_mld_matrix(g.n, g.b, g.m, np.random.default_rng(seed + gr), gamma_rank=gr)
        )
        system = _fresh(g)
        perform_mld_pass(system, perm, 0, 1)
        assert system.verify_permutation(perm, np.arange(g.N), 1)
        stats = system.stats
        assert stats.parallel_ios == g.one_pass_ios
        table.rows.append(
            [gr, stats.parallel_ios, stats.striped_reads, stats.independent_writes]
        )
    return table


def detection_cost(geometry: DiskGeometry = DEFAULT_GEOMETRY, seed: int = 0) -> ExperimentTable:
    """SEC6: detection reads on BMMC and non-BMMC inputs."""
    g = geometry
    rng = np.random.default_rng(seed)
    table = ExperimentTable(
        "SEC6",
        f"Detection cost on {g.describe()} (bound {bounds.detection_read_bound(g)})",
        ["input", "is BMMC", "formation", "verification", "total"],
    )
    cases = {
        "random BMMC": BMMCPermutation(
            random_nonsingular(g.n, rng), int(rng.integers(0, g.N))
        ).target_vector(),
        "random vector": rng.permutation(g.N),
    }
    for name, targets in cases.items():
        system = ParallelDiskSystem(g, simple_io=False)
        store_target_vector(system, targets)
        result = detect_bmmc(system)
        if name == "random BMMC":
            assert result.is_bmmc
            assert result.total_reads == bounds.detection_read_bound(g)
        table.rows.append(
            [
                name,
                result.is_bmmc,
                result.formation_reads,
                result.verification_reads,
                result.total_reads,
            ]
        )
    return table


def ablation_merge(geometry: DiskGeometry = DEFAULT_GEOMETRY, seed: int = 0) -> ExperimentTable:
    """ABL-MERGE: disabling Theorem 17/18 factor merging doubles the cost."""
    g = geometry
    table = ExperimentTable(
        "ABL-MERGE",
        f"Factor-merging ablation on {g.describe()}",
        ["rank gamma", "merged I/Os", "unmerged I/Os", "overhead"],
    )
    for r in range(min(g.b, g.n - g.b) + 1):
        perm = BMMCPermutation(
            random_bmmc_with_rank_gamma(g.n, g.b, r, np.random.default_rng(seed + r))
        )
        s1 = _fresh(g)
        merged = perform_bmmc(s1, perm, merge_factors=True)
        s2 = _fresh(g)
        unmerged = perform_bmmc(s2, perm, merge_factors=False)
        if merged.passes > 1:
            assert unmerged.parallel_ios == 2 * merged.parallel_ios
        table.rows.append(
            [
                r,
                merged.parallel_ios,
                unmerged.parallel_ios,
                f"{unmerged.parallel_ios / merged.parallel_ios:.2f}x",
            ]
        )
    return table


def vs_general(geometry: DiskGeometry = DEFAULT_GEOMETRY, seed: int = 0) -> ExperimentTable:
    """CMP-GEN: the BMMC algorithm vs the merge-sort baseline."""
    g = geometry
    table = ExperimentTable(
        "CMP-GEN",
        f"BMMC vs general merge sort on {g.describe()}",
        ["rank gamma", "BMMC I/Os", "sort I/Os", "savings"],
    )
    for r in range(min(g.b, g.n - g.b) + 1):
        perm = BMMCPermutation(
            random_bmmc_with_rank_gamma(g.n, g.b, r, np.random.default_rng(seed + r))
        )
        s1 = _fresh(g)
        fast = perform_bmmc(s1, perm)
        s2 = _fresh(g)
        slow = perform_general_sort(s2, perm)
        assert fast.parallel_ios <= slow.parallel_ios
        table.rows.append(
            [
                r,
                fast.parallel_ios,
                slow.parallel_ios,
                f"{slow.parallel_ios / fast.parallel_ios:.2f}x",
            ]
        )
    return table


def potential_audit(geometry: DiskGeometry = DEFAULT_GEOMETRY, seed: int = 0) -> ExperimentTable:
    """SEC7: eq. 9 initial potentials and per-I/O delta caps, audited."""
    g = geometry
    table = ExperimentTable(
        "SEC7",
        f"Potential audit on {g.describe()}",
        ["rank gamma", "Phi(0)", "eq. 9", "max read dPhi", "cap", "final Phi"],
    )
    cap = g.D * bounds.delta_max(g)
    for r in range(min(g.b, g.n - g.b) + 1):
        perm = BMMCPermutation(
            random_bmmc_with_rank_gamma(g.n, g.b, r, np.random.default_rng(seed + r))
        )
        system = _fresh(g)
        tracker = PotentialTracker(system, perm)
        phi0 = tracker.potential
        perform_bmmc(system, perm)
        tracker.verify_bounds()
        assert abs(phi0 - g.N * (g.b - r)) < 1e-6
        assert abs(tracker.potential - g.N * g.b) < 1e-6
        table.rows.append(
            [
                r,
                f"{phi0:.0f}",
                g.N * (g.b - r),
                f"{tracker.max_read_delta():.1f}",
                f"{cap:.1f}",
                f"{tracker.potential:.0f}",
            ]
        )
    return table


EXPERIMENTS = {
    "THM3": lower_bound_sweep,
    "THM15": mld_one_pass,
    "SEC6": detection_cost,
    "ABL-MERGE": ablation_merge,
    "CMP-GEN": vs_general,
    "SEC7": potential_audit,
}


def run_experiment(
    experiment_id: str,
    geometry: DiskGeometry | None = None,
    seed: int = 0,
) -> ExperimentTable:
    """Run one named experiment; raises ``KeyError`` for unknown ids."""
    driver = EXPERIMENTS[experiment_id.upper()]
    return driver(geometry or DEFAULT_GEOMETRY, seed)
