"""Command-line interface: explore the reproduction without writing code.

Subcommands
-----------
``info``    geometry summary plus Figure 1 / Figure 2 renderings
``bounds``  every closed-form bound for a geometry and rank gamma
``run``     perform a named permutation on the simulator and report
``serve``   run a request mix concurrently on a worker pool, or --http
            to expose the pool as an HTTP/JSON API with /metrics;
            --record captures the traffic as a trace, --replay replays
            one with faithful arrival timing
``loadgen`` drive a running --http server with a concurrent workload
            or replay a workload trace over real sockets (--trace)
``workload`` generate (gen) or inspect (info) workload trace files:
            Zipfian key popularity, Poisson/bursty arrivals, geometry
            diversity, all byte-reproducible from (spec, seed)
``detect``  run-time BMMC detection on a named permutation's vector
``factor``  show the Section 5 factorization of a characteristic matrix

Examples
--------
python -m repro info --N 64 --B 2 --D 8 --M 32
python -m repro run --perm bit-reversal --N 4096 --B 8 --D 4 --M 128
python -m repro run --perm random-bmmc --rank-gamma 2 --method general
python -m repro serve --workers 8 --count 32 --repeat 2
python -m repro serve --http 127.0.0.1:8080 --workers 8 --queue-capacity 64
python -m repro workload gen --out zipf.jsonl --count 64 --popularity zipf
python -m repro serve --replay zipf.jsonl --workers 8
python -m repro loadgen --url http://127.0.0.1:8080 --trace zipf.jsonl
python -m repro detect --perm gray --tamper
python -m repro factor --seed 7 --N 4096 --B 8 --D 4 --M 128
"""

from __future__ import annotations

import argparse
import sys

from repro import bounds
from repro.core.detect import detect_bmmc, store_target_vector
from repro.core.factoring import factor_bmmc
from repro.core.runner import perform_permutation
from repro.errors import ReproError
from repro.pdm.engine import BACKENDS, ENGINES
from repro.pdm.geometry import DiskGeometry
from repro.pdm.layout import render_figure1, render_figure2
from repro.pdm.system import ParallelDiskSystem
from repro.pdm.trace import IOTrace, render_timeline
from repro.perms.bmmc import BMMCPermutation
from repro.serve import PERM_CHOICES, make_permutation

__all__ = ["main", "build_parser"]

METHOD_CHOICES = [
    "auto",
    "mrc",
    "mld",
    "inv-mld",
    "bmmc",
    "bmmc-unmerged",
    "general",
    "distribution",
]


def _add_geometry_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--N", type=int, default=2**12, help="records (power of 2)")
    parser.add_argument("--B", type=int, default=2**3, help="records per block")
    parser.add_argument("--D", type=int, default=2**2, help="disks")
    parser.add_argument("--M", type=int, default=2**7, help="memory records")


def _geometry(args) -> DiskGeometry:
    return DiskGeometry(N=args.N, B=args.B, D=args.D, M=args.M)


# --------------------------------------------------------------------------
# subcommands
# --------------------------------------------------------------------------

def cmd_info(args) -> int:
    g = _geometry(args)
    print(g.describe())
    print(f"  n={g.n} b={g.b} d={g.d} m={g.m} s={g.s}")
    print(f"  one pass = 2N/BD = {g.one_pass_ios} parallel I/Os")
    print(f"  memoryloads = {g.num_memoryloads}, blocks = {g.num_blocks}")
    print("\nFigure 1 layout:")
    print(render_figure1(g, max_stripes=args.stripes))
    print("\nFigure 2 address fields:")
    print(render_figure2(g))
    return 0


def cmd_bounds(args) -> int:
    g = _geometry(args)
    r = args.rank_gamma if args.rank_gamma is not None else min(g.b, g.n - g.b)
    print(g.describe())
    print(f"rank gamma = {r}\n")
    rows = [
        ("Theorem 3 lower bound", bounds.theorem3_lower_bound(g, r)),
        ("Section 7 sharpened LB", bounds.sharpened_lower_bound(g, r)),
        ("Lemma 9 non-identity LB", bounds.nonidentity_lower_bound(g)),
        ("Theorem 21 upper bound", float(bounds.theorem21_upper_bound(g, r))),
        ("general-permutation bound", bounds.general_permutation_bound(g)),
        ("merge-sort baseline I/Os", float(bounds.merge_sort_passes(g) * g.one_pass_ios)),
        ("detection read bound", float(bounds.detection_read_bound(g))),
        ("H(N,M,B) of [4] (eq. 1)", float(bounds.h_function(g))),
        ("Delta_max per read", bounds.delta_max(g)),
    ]
    width = max(len(name) for name, _ in rows)
    for name, value in rows:
        print(f"  {name.ljust(width)} : {value:.2f}")
    return 0


def cmd_run(args) -> int:
    import time

    from repro.pdm.cache import PlanCache

    g = _geometry(args)
    perm = make_permutation(args.perm, g, seed=args.seed, rank_gamma=args.rank_gamma)
    repeat = max(1, args.repeat)
    cache = PlanCache() if (args.cache or repeat > 1) else None
    if repeat > 1 and (args.timeline or args.trace):
        print("(--repeat disables tracing; run once for a timeline)")
    if args.optimize and args.engine != "fast":
        print("(--optimize needs --engine fast; running unoptimized)")
    report = None
    for i in range(repeat):
        system = ParallelDiskSystem(g)
        system.fill_identity(0)
        trace = (
            IOTrace(system) if (args.timeline or args.trace) and repeat == 1 else None
        )
        if trace is not None and args.engine == "fast":
            print("(tracing attaches observers: executing strictly, not fused)")
        t0 = time.perf_counter()
        report = perform_permutation(
            system,
            perm,
            method=args.method,
            engine=args.engine,
            optimize=args.optimize,
            cache=cache,
            backend=args.backend,
        )
        elapsed = time.perf_counter() - t0
        if repeat > 1:
            tag = "cold" if i == 0 else "warm"
            print(f"run {i + 1}/{repeat} ({tag}): {elapsed * 1e3:.2f} ms")
        if i == repeat - 1:
            print(report.summary())
        if trace is not None:
            print()
            print(trace.summary().table())
            if args.timeline:
                print()
                print(render_timeline(trace, max_ops=args.timeline_ops))
    if cache is not None:
        info = cache.info()
        if info.hits + info.misses:
            print(
                f"plan cache: {info.hits} hits / {info.misses} misses "
                f"({info.size} compiled plans held)"
            )
        else:
            print(
                f"plan cache: unused (method {report.method!r} plans are "
                "data-dependent and never cached)"
            )
    return 0 if report.verified else 1


def _serve_policies(args):
    """Faults / retry / breaker shared by batch serve and --http."""
    import os

    from repro.serve import CircuitBreaker, RetryPolicy, chaos_plan

    faults = None
    if args.chaos:
        chaos_seed = args.chaos_seed
        if chaos_seed is None:
            chaos_seed = int(os.environ.get("REPRO_CHAOS_SEED", "0"))
        faults = chaos_plan(seed=chaos_seed, intensity=args.chaos_intensity)
        print(
            f"chaos: seed={chaos_seed} intensity={args.chaos_intensity} "
            "(deterministic fault injection active)"
        )
    retry = (
        RetryPolicy(attempts=args.retries + 1, seed=args.seed)
        if args.retries > 0
        else None
    )
    breaker = (
        CircuitBreaker(
            threshold=args.breaker_threshold, cooldown=args.breaker_cooldown
        )
        if args.breaker_threshold is not None
        else None
    )
    return faults, retry, breaker


def serve_http(args, shutdown_event=None, ready=None) -> int:
    """The ``serve --http`` main loop, factored for tests.

    ``shutdown_event`` is the stop signal; when ``None`` (the real CLI
    path) one is created and wired to SIGINT/SIGTERM so the server
    drains gracefully on ctrl-C or a supervisor's TERM.  ``ready`` is
    called with the started :class:`~repro.serve.HttpFrontend` (tests
    use it to learn the ephemeral port).
    """
    import json
    import signal
    import threading
    from dataclasses import asdict

    from repro.serve import (
        HttpFrontend,
        PermutationService,
        ServiceMetrics,
        TraceRecorder,
        load_warmup_spec,
        warm_service,
    )

    g = _geometry(args)
    faults, retry, breaker = _serve_policies(args)
    recorder = (
        TraceRecorder(name=_trace_name(args.record), geometry=g)
        if args.record
        else None
    )
    host, _, port = args.http.rpartition(":")
    if not host or not port.isdigit():
        print(f"error: --http wants HOST:PORT, got {args.http!r}", file=sys.stderr)
        return 2
    warmup = None
    if args.warmup:
        try:
            warmup = load_warmup_spec(args.warmup)
        except (OSError, ValueError) as exc:
            print(f"error: cannot load {args.warmup}: {exc}", file=sys.stderr)
            return 2

    service = PermutationService(
        g,
        workers=args.workers,
        cache_maxsize=args.cache_size,
        num_shards=args.shards,
        backend=args.backend,
        queue_capacity=args.queue_capacity,
        queue_policy=args.queue_policy,
        default_timeout=args.timeout,
        retry=retry,
        breaker=breaker,
        faults=faults,
        metrics=ServiceMetrics(),
        recorder=recorder,
        coalesce=args.coalesce,
    )
    if warmup:
        print(warm_service(service, warmup).summary())
    frontend = HttpFrontend(
        service,
        host=host,
        port=int(port),
        metrics=service.metrics,
        drain_timeout=args.drain_timeout,
        own_service=True,
    )
    frontend.start()
    print(
        f"listening on {frontend.url} ({args.workers} workers, "
        f"queue={args.queue_capacity or 'unbounded'}/{args.queue_policy}, "
        f"coalesce={'on' if args.coalesce else 'off'}); "
        "GET /healthz /stats /cache /config /metrics, POST /permutations"
    )
    if shutdown_event is None:
        shutdown_event = threading.Event()
        if threading.current_thread() is threading.main_thread():
            for signum in (signal.SIGINT, signal.SIGTERM):
                signal.signal(signum, lambda *_: shutdown_event.set())
    if ready is not None:
        ready(frontend)
    try:
        shutdown_event.wait()
    finally:
        print(
            "shutting down: listener closed, draining "
            f"(drain_timeout={args.drain_timeout})"
        )
        frontend.close()
        stats = service.stats()
        print(
            f"served {stats.completed} of {stats.submitted} submitted "
            f"({stats.shed} shed, {stats.failed} failed)"
        )
        if args.stats_json:
            with open(args.stats_json, "w") as handle:
                json.dump(asdict(stats), handle, indent=2, sort_keys=True)
            print(f"stats written to {args.stats_json}")
        if recorder is not None:
            _save_recording(recorder, args.record)
    return 0


def _trace_name(path: str) -> str:
    import os

    stem = os.path.splitext(os.path.basename(path))[0]
    return stem or "recorded"


def _save_recording(recorder, path: str) -> None:
    trace = recorder.trace()
    trace.save(path)
    skipped = f" ({recorder.skipped} unserializable skipped)" if recorder.skipped else ""
    print(
        f"recorded {len(trace)} requests over {trace.duration:.3f}s "
        f"to {path}{skipped}"
    )


def cmd_serve(args) -> int:
    import json
    import time
    from dataclasses import asdict

    from repro.errors import (
        CircuitOpenError,
        DeadlineExceeded,
        InjectedFault,
        RequestCancelled,
        RequestRejected,
    )
    from repro.serve import (
        PermutationService,
        TraceRecorder,
        WorkloadTrace,
        load_requests,
        replay_trace,
        run_sequential,
        synthetic_mix,
    )

    if args.http:
        return serve_http(args)
    if args.replay and args.requests:
        print("error: --replay and --requests are mutually exclusive", file=sys.stderr)
        return 2

    trace = None
    requests = []
    if args.replay:
        try:
            trace = WorkloadTrace.load(args.replay)
        except (OSError, ValueError) as exc:
            print(f"error: cannot load {args.replay}: {exc}", file=sys.stderr)
            return 2
        g = trace.geometry or _geometry(args)
        print(trace.describe())
    else:
        g = _geometry(args)
        if args.requests:
            try:
                requests = load_requests(args.requests)
            except (OSError, ValueError) as exc:  # missing file, malformed JSON
                print(f"error: cannot load {args.requests}: {exc}", file=sys.stderr)
                return 2
        else:
            requests = synthetic_mix(
                args.count,
                seed=args.seed,
                distinct_seeds=args.distinct_seeds,
                engine=args.engine,
                backend=args.backend,
                optimize=not args.no_optimize,
            )
        requests = requests * max(1, args.repeat)
        if not requests:
            print("no requests to serve", file=sys.stderr)
            return 2

    faults, retry, breaker = _serve_policies(args)
    recorder = (
        TraceRecorder(name=_trace_name(args.record), geometry=g)
        if args.record
        else None
    )

    t0 = time.perf_counter()
    stats = None
    replay_report = None
    if (
        trace is None
        and recorder is None
        and args.workers <= 1
        and not (faults or retry or breaker or args.queue_capacity or args.timeout)
    ):
        results = run_sequential(g, requests, backend=args.backend)
        cache_info = None
    else:
        with PermutationService(
            g,
            workers=args.workers,
            cache_maxsize=args.cache_size,
            num_shards=args.shards,
            backend=args.backend,
            queue_capacity=args.queue_capacity,
            queue_policy=args.queue_policy,
            default_timeout=args.timeout,
            retry=retry,
            breaker=breaker,
            faults=faults,
            recorder=recorder,
            coalesce=args.coalesce,
        ) as service:
            if trace is not None:
                replay_report = replay_trace(
                    service,
                    trace,
                    as_fast_as_possible=args.as_fast_as_possible,
                    capture=True,
                )
                results = replay_report.results
            else:
                results = service.run(requests)
            cache_info = service.cache_info()
            stats = service.stats()
    elapsed = time.perf_counter() - t0
    if recorder is not None:
        _save_recording(recorder, args.record)

    # Under chaos (or explicit overload/deadline knobs) these failures
    # are the point of the exercise, not a defect: they don't gate the
    # exit code, everything else still does.
    expected = (
        InjectedFault, RequestRejected, DeadlineExceeded,
        RequestCancelled, CircuitOpenError,
    )
    tolerated = bool(args.chaos or args.queue_capacity or args.timeout)
    failed = [r for r in results if not r.ok]
    gating = [
        r for r in failed
        if not (tolerated and isinstance(r.error, expected))
    ]
    unverified = [r for r in results if r.ok and not r.report.verified]
    shown = results if args.verbose else results[: min(len(results), 8)]
    for result in shown:
        print(result.summary())
    if len(shown) < len(results):
        print(f"... ({len(results) - len(shown)} more; --verbose shows all)")
    failure_note = (
        f"{len(failed)} failed ({len(gating)} unexpectedly)"
        if tolerated
        else f"{len(failed)} failed"
    )
    print(
        f"\nserved {len(results)} requests in {elapsed:.3f}s "
        f"({len(results) / elapsed:.1f} req/s) on {args.workers} worker(s); "
        f"{failure_note}, {len(unverified)} unverified"
    )
    if stats is not None:
        print(
            f"service: {stats.submitted} submitted = {stats.admitted} admitted "
            f"+ {stats.shed} shed; {stats.retries} retries, "
            f"{stats.deadline_exceeded} deadline-exceeded, "
            f"{stats.cancelled} cancelled, {stats.coalesced} coalesced"
        )
    if replay_report is not None:
        print(replay_report.summary())
    if cache_info is not None:
        print(
            f"plan cache: {cache_info.hits} hits / {cache_info.misses} misses "
            f"/ {cache_info.evictions} evictions "
            f"({cache_info.size}/{cache_info.maxsize} compiled plans held)"
        )
    if args.stats_json and stats is not None:
        payload = asdict(stats)
        payload["elapsed_seconds"] = elapsed
        payload["requests"] = len(results)
        payload["failed_results"] = len(failed)
        payload["unexpected_failures"] = len(gating)
        with open(args.stats_json, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        print(f"stats written to {args.stats_json}")
    for result in gating:
        print(f"  {result.summary()}", file=sys.stderr)
    return 1 if (gating or unverified) else 0


def cmd_loadgen(args) -> int:
    import json

    from repro.serve import WorkloadTrace, run_loadgen

    trace = None
    if args.trace:
        try:
            trace = WorkloadTrace.load(args.trace)
        except (OSError, ValueError) as exc:
            print(f"error: cannot load {args.trace}: {exc}", file=sys.stderr)
            return 2
        print(trace.describe())
    report = run_loadgen(
        args.url,
        count=args.count,
        concurrency=args.concurrency,
        mode=args.mode,
        seed=args.seed,
        distinct_seeds=args.distinct_seeds,
        wait_timeout=args.wait_timeout,
        timeout=args.request_timeout,
        check_reconcile=not args.no_reconcile,
        trace=trace,
        as_fast_as_possible=args.as_fast_as_possible,
        idempotent_repeat=args.idempotent_repeat,
    )
    lat = report["latency"]
    statuses = ", ".join(f"{k}: {v}" for k, v in report["statuses"].items())
    pacing = "paced replay" if report["paced"] else "burst"
    print(
        f"{report['count']} requests ({report['mode']}, {pacing}, "
        f"trace {report['trace']!r}) against {report['url']} "
        f"with {report['concurrency']} clients "
        f"(peak concurrency {report['peak_concurrency']})"
    )
    print(
        f"  {report['throughput_rps']:.1f} req/s over "
        f"{report['wall_seconds']:.3f}s; latency mean {lat['mean'] * 1e3:.1f} ms, "
        f"p50 {lat['p50'] * 1e3:.1f} ms, p95 {lat['p95'] * 1e3:.1f} ms"
    )
    print(f"  statuses: {statuses or 'none'}")
    if report.get("errors"):
        errors = ", ".join(f"{k}: {v}" for k, v in report["errors"].items())
        print(f"  errors: {errors}")
    if report["idempotent_repeat"] > 1:
        repeats = report["count"] * (report["idempotent_repeat"] - 1)
        if report["idem_mismatches"] == 0:
            print(
                f"  {repeats} idempotent repeats all returned their "
                "original request_id"
            )
        else:
            print(
                f"  {report['idem_mismatches']} of {repeats} idempotent "
                "repeats returned a DIFFERENT request_id",
                file=sys.stderr,
            )
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
        print(f"report written to {args.json}")
    if not args.no_reconcile:
        if report["reconciled"]:
            print("  /metrics reconciles exactly against /stats")
        else:
            print("  /metrics does NOT reconcile with /stats:", file=sys.stderr)
            for problem in report["reconcile_problems"]:
                print(f"    {problem}", file=sys.stderr)
            return 1
    if report["idem_mismatches"]:
        return 1
    return 0


def cmd_workload(args) -> int:
    from repro.serve.workload import (
        WorkloadSpec,
        WorkloadTrace,
        generate_trace,
        geometry_variants,
    )

    if args.workload_command == "info":
        try:
            trace = WorkloadTrace.load(args.trace)
        except (OSError, ValueError) as exc:
            print(f"error: cannot load {args.trace}: {exc}", file=sys.stderr)
            return 2
        print(trace.describe())
        if trace.spec is not None:
            print("generator spec:")
            for key, value in sorted(trace.spec.items()):
                print(f"  {key}: {value}")
        else:
            print("generator spec: none (recorded trace)")
        return 0

    g = _geometry(args)
    geometries = ()
    if args.geometry_diversity > 1:
        geometries = tuple(
            {"N": v.N, "B": v.B, "D": v.D, "M": v.M}
            for v in geometry_variants(g, args.geometry_diversity)
        )
    try:
        spec = WorkloadSpec(
            count=args.count,
            seed=args.seed,
            arrival=args.arrival,
            rate=args.rate,
            burst_size=args.burst_size,
            burst_gap=args.burst_gap,
            popularity=args.popularity,
            zipf_alpha=args.zipf_alpha,
            key_space=args.key_space,
            duplicates=args.duplicates,
            geometry={"N": g.N, "B": g.B, "D": g.D, "M": g.M},
            geometries=geometries,
            engine=args.engine,
            backend=args.backend,
            timeout=args.timeout,
            name=_trace_name(args.out),
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    trace = generate_trace(spec)
    trace.save(args.out)
    print(trace.describe())
    print(f"trace written to {args.out}")
    return 0


def cmd_detect(args) -> int:
    g = _geometry(args)
    perm = make_permutation(args.perm, g, seed=args.seed, rank_gamma=args.rank_gamma)
    targets = perm.target_vector()
    if args.tamper:
        i, j = 1 % g.N, (g.N // 2 + 1) % g.N
        targets[[i, j]] = targets[[j, i]]
        print(f"(tampered: swapped targets of addresses {i} and {j})")
    system = ParallelDiskSystem(g, simple_io=False)
    store_target_vector(system, targets)
    result = detect_bmmc(system, engine=args.engine)
    bound = bounds.detection_read_bound(g)
    if result.is_bmmc:
        print(f"BMMC: yes (complement = {result.complement:#x})")
        print(f"characteristic matrix:\n{result.matrix!r}")
    else:
        print(f"BMMC: no ({result.reason})")
    print(
        f"reads: {result.formation_reads} formation + "
        f"{result.verification_reads} verification = {result.total_reads} "
        f"(bound {bound})"
    )
    return 0


def cmd_factor(args) -> int:
    g = _geometry(args)
    perm = make_permutation(args.perm, g, seed=args.seed, rank_gamma=args.rank_gamma)
    if not isinstance(perm, BMMCPermutation):
        print("factoring requires a BMMC permutation", file=sys.stderr)
        return 1
    a = perm.matrix
    fact = factor_bmmc(a, g.b, g.m)
    print(f"matrix: {g.n}x{g.n}, rank gamma = {bounds.rank_gamma(a, g.b)}, "
          f"rho = rank A[m:, :m] = {fact.rho}")
    print(f"swap/erase rounds g = {fact.g}  (eq. 17: ceil(rho/lg(M/B)) = "
          f"{-(-fact.rho // (g.m - g.b))})")
    print(f"\neq. 18 apply order ({len(fact.apply_order)} factors):")
    for f_ in fact.apply_order:
        print(f"  {f_.name:<8} [{f_.kind}]")
    print(f"\nmerged one-pass factors ({fact.num_passes} passes, Theorems 17/18):")
    for f_ in fact.merged:
        print(f"  {f_.name:<18} [{f_.kind}]")
    print(f"\nrecomposition check: {'OK' if fact.product_of_merged() == a else 'FAILED'}")
    print(f"predicted I/Os: {bounds.predicted_ios(a, g)} "
          f"(Theorem 21 bound {bounds.theorem21_upper_bound(g, bounds.rank_gamma(a, g.b))})")
    return 0


def cmd_experiment(args) -> int:
    from repro.experiments import run_experiment

    g = _geometry(args)
    table = run_experiment(args.id, g, args.seed)
    print(table.render())
    if args.plot:
        chart = _experiment_chart(table)
        if chart is None:
            print("\n(no numeric sweep to plot for this experiment)")
        else:
            print("\n" + chart)
    return 0


def _experiment_chart(table) -> str | None:
    """Plot numeric columns of a sweep table against its first column."""
    from repro.plotting import Series, ascii_chart

    def numeric(value):
        try:
            return float(str(value).rstrip("x%"))
        except ValueError:
            return None

    xs = [numeric(row[0]) for row in table.rows]
    if len(table.rows) < 2 or any(x is None for x in xs):
        return None
    markers = "MLUabcdef"
    series = []
    for col in range(1, len(table.headers)):
        ys = [numeric(row[col]) for row in table.rows]
        if any(y is None for y in ys):
            continue
        series.append(
            Series(
                str(table.headers[col]),
                list(zip(xs, ys)),
                marker=markers[(col - 1) % len(markers)],
            )
        )
        if len(series) == 4:
            break
    if not series:
        return None
    return ascii_chart(series, x_label=str(table.headers[0]))


# --------------------------------------------------------------------------
# parser
# --------------------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="BMMC permutations on parallel disk systems (Cormen et al., SPAA 1993)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_info = sub.add_parser("info", help="geometry summary and model figures")
    _add_geometry_args(p_info)
    p_info.add_argument("--stripes", type=int, default=4, help="stripes to render")
    p_info.set_defaults(func=cmd_info)

    p_bounds = sub.add_parser("bounds", help="closed-form bound table")
    _add_geometry_args(p_bounds)
    p_bounds.add_argument("--rank-gamma", type=int, default=None)
    p_bounds.set_defaults(func=cmd_bounds)

    p_run = sub.add_parser("run", help="perform a permutation and report")
    _add_geometry_args(p_run)
    p_run.add_argument("--perm", choices=PERM_CHOICES, default="random-bmmc")
    p_run.add_argument("--method", choices=METHOD_CHOICES, default="auto")
    p_run.add_argument(
        "--engine",
        choices=list(ENGINES),
        default="strict",
        help="plan execution: strict per-I/O replay or fused numpy batches "
        "(--trace/--timeline need per-I/O events and force strict)",
    )
    p_run.add_argument(
        "--backend",
        choices=list(BACKENDS),
        default=None,
        help="fast-engine kernel backend: single-threaded numpy or "
        "thread-sharded parallel gather/scatter (default: REPRO_BACKEND "
        "environment variable, else numpy)",
    )
    p_run.add_argument("--seed", type=int, default=0)
    p_run.add_argument("--rank-gamma", type=int, default=None)
    p_run.add_argument(
        "--optimize",
        action="store_true",
        help="plan-level rewrites: fuse ping-pong passes into one physical "
        "gather/scatter (fast engine; stats unchanged)",
    )
    p_run.add_argument(
        "--cache",
        action="store_true",
        help="compile plans into an in-process PlanCache (implied by --repeat > 1)",
    )
    p_run.add_argument(
        "--repeat",
        type=int,
        default=1,
        help="serve the permutation this many times on fresh data, reporting "
        "per-run wall time; BMMC-class methods and the distribution sort "
        "(staged plan materialized per seed) hit the compiled-plan cache on "
        "repeats (the general sort's schedule is data-dependent and uncached)",
    )
    p_run.add_argument("--trace", action="store_true", help="print schedule metrics")
    p_run.add_argument("--timeline", action="store_true", help="ASCII disk timeline")
    p_run.add_argument("--timeline-ops", type=int, default=64)
    p_run.set_defaults(func=cmd_run)

    p_serve = sub.add_parser(
        "serve",
        help="serve a request mix concurrently on a worker pool",
        description="Execute many permutation requests on a thread pool "
        "with per-worker disk systems and one shared sharded plan cache. "
        "Requests come from --requests (JSON lines or a JSON array of "
        "PermutationRequest fields) or a deterministic synthetic "
        "MLD/MRC/BMMC/distribution mix (--count/--distinct-seeds); "
        "--repeat replays the whole mix, which is what makes the shared "
        "cache warm.",
    )
    _add_geometry_args(p_serve)
    p_serve.add_argument("--workers", type=int, default=4, help="pool threads (1 = sequential reference)")
    p_serve.add_argument("--requests", type=str, default=None, help="request file (JSON lines or array)")
    p_serve.add_argument("--count", type=int, default=24, help="synthetic mix length (ignored with --requests)")
    p_serve.add_argument("--repeat", type=int, default=1, help="serve the request list this many times")
    p_serve.add_argument("--seed", type=int, default=0)
    p_serve.add_argument("--distinct-seeds", type=int, default=2, help="seed rotation of the synthetic mix (key cardinality)")
    p_serve.add_argument("--engine", choices=list(ENGINES), default="fast")
    p_serve.add_argument(
        "--backend",
        choices=list(BACKENDS),
        default=None,
        help="kernel backend for every worker (requests may override)",
    )
    p_serve.add_argument("--no-optimize", action="store_true", help="skip plan-level rewrites")
    p_serve.add_argument("--cache-size", type=int, default=64, help="shared plan cache capacity")
    p_serve.add_argument("--shards", type=int, default=8, help="cache lock shards")
    p_serve.add_argument(
        "--queue-capacity",
        type=int,
        default=None,
        help="bound the submission queue (default: unbounded)",
    )
    p_serve.add_argument(
        "--queue-policy",
        choices=["reject", "block", "shed-oldest"],
        default="reject",
        help="what a full queue does to new submissions",
    )
    p_serve.add_argument(
        "--coalesce",
        action="store_true",
        default=False,
        help="single-flight coalescing: concurrent requests with an "
        "identical execution key share one execution (followers get "
        "the leader's bytes; see the coalesced counters in /stats)",
    )
    p_serve.add_argument(
        "--no-coalesce",
        dest="coalesce",
        action="store_false",
        help="disable single-flight coalescing (the default)",
    )
    p_serve.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-request deadline in seconds from admission",
    )
    p_serve.add_argument(
        "--retries",
        type=int,
        default=0,
        help="retry transient failures up to this many times "
        "(seeded jittered exponential backoff)",
    )
    p_serve.add_argument(
        "--chaos",
        action="store_true",
        help="inject deterministic faults (planner/kernel errors, slow "
        "passes, latch stalls); injected failures don't affect the "
        "exit code",
    )
    p_serve.add_argument(
        "--chaos-seed",
        type=int,
        default=None,
        help="fault-plan seed (default: REPRO_CHAOS_SEED env, else 0)",
    )
    p_serve.add_argument(
        "--chaos-intensity",
        type=float,
        default=0.05,
        help="fault probability scale in [0, 1]",
    )
    p_serve.add_argument(
        "--stats-json",
        type=str,
        default=None,
        help="write service counters (admitted/shed/retries/...) to this file",
    )
    p_serve.add_argument("--verbose", action="store_true", help="print every result line")
    p_serve.add_argument(
        "--http",
        type=str,
        default=None,
        metavar="HOST:PORT",
        help="serve the pool over HTTP/JSON instead of running a batch: "
        "POST /permutations (sync or submit-then-poll), GET /healthz "
        "/stats /cache /config and Prometheus-format /metrics; runs "
        "until SIGINT/SIGTERM, then drains gracefully (port 0 binds an "
        "ephemeral port)",
    )
    p_serve.add_argument(
        "--warmup",
        type=str,
        default=None,
        metavar="FILE",
        help="HTTP mode: warm the plan cache at boot from a JSON spec "
        "(a request list, or {\"mix\": {...synthetic_mix kwargs...}})",
    )
    p_serve.add_argument(
        "--drain-timeout",
        type=float,
        default=None,
        help="HTTP mode: seconds of graceful drain on shutdown before "
        "queued work is hard-cancelled (default: drain fully)",
    )
    p_serve.add_argument(
        "--breaker-threshold",
        type=int,
        default=None,
        help="open a plan key's circuit after this many consecutive "
        "compile failures (default: no breaker)",
    )
    p_serve.add_argument(
        "--breaker-cooldown",
        type=float,
        default=5.0,
        help="seconds an open circuit waits before its half-open probe",
    )
    p_serve.add_argument(
        "--record",
        type=str,
        default=None,
        metavar="FILE",
        help="record every submitted request (offered load, pre-admission) "
        "as a replayable workload trace; works in batch and HTTP mode",
    )
    p_serve.add_argument(
        "--replay",
        type=str,
        default=None,
        metavar="FILE",
        help="replay a workload trace through the pool with faithful "
        "arrival timing (mutually exclusive with --requests)",
    )
    p_serve.add_argument(
        "--as-fast-as-possible",
        action="store_true",
        help="replay: ignore recorded arrival offsets, submit back to back",
    )
    p_serve.set_defaults(func=cmd_serve)

    p_load = sub.add_parser(
        "loadgen",
        help="drive a running serve --http endpoint with a concurrent workload",
        description="Fire the deterministic synthetic mix at an HTTP "
        "frontend from a pool of concurrent clients (real sockets), "
        "report throughput / latency percentiles / status counts, and "
        "verify that the server's /metrics page reconciles exactly "
        "against its /stats counters.  Exits 1 on reconciliation "
        "failure, which is the CI gate.",
    )
    p_load.add_argument("--url", type=str, required=True, help="server base URL")
    p_load.add_argument("--count", type=int, default=32, help="requests to send")
    p_load.add_argument(
        "--concurrency", type=int, default=8, help="simultaneous client workers"
    )
    p_load.add_argument(
        "--mode",
        choices=["sync", "async"],
        default="sync",
        help="sync POSTs block for the result; async submits then polls",
    )
    p_load.add_argument("--seed", type=int, default=0)
    p_load.add_argument(
        "--distinct-seeds", type=int, default=2, help="mix seed rotation"
    )
    p_load.add_argument(
        "--wait-timeout",
        type=float,
        default=None,
        help="sync mode: server-side wait bound before degrading to polling",
    )
    p_load.add_argument(
        "--request-timeout",
        type=float,
        default=60.0,
        help="client-side socket timeout per HTTP call",
    )
    p_load.add_argument(
        "--json", type=str, default=None, help="write the full report to this file"
    )
    p_load.add_argument(
        "--idempotent-repeat",
        type=int,
        default=1,
        help="POST every request with a deterministic Idempotency-Key "
        "and re-POST it this many times total; repeats must return the "
        "original request_id and /stats must still reconcile against "
        "the un-repeated count (exits 1 on any mismatch)",
    )
    p_load.add_argument(
        "--no-reconcile",
        action="store_true",
        help="skip the /metrics vs /stats reconciliation check",
    )
    p_load.add_argument(
        "--trace",
        type=str,
        default=None,
        metavar="FILE",
        help="replay a workload trace over HTTP instead of the synthetic "
        "mix: each POST fires at its recorded arrival offset",
    )
    p_load.add_argument(
        "--as-fast-as-possible",
        action="store_true",
        help="with --trace: ignore arrival offsets, fire back to back",
    )
    p_load.set_defaults(func=cmd_loadgen)

    p_workload = sub.add_parser(
        "workload",
        help="generate and inspect workload trace files",
        description="Workload traces are versioned JSONL files (header + "
        "one timed request per line) consumed by serve --replay and "
        "loadgen --trace.  'gen' expands a deterministic spec -- Zipf or "
        "uniform key popularity over a catalog of distinct plan keys, "
        "uniform/Poisson/bursty arrivals -- into a trace that is "
        "byte-reproducible from (spec, seed); 'info' summarizes a trace "
        "file and its embedded spec.",
    )
    sub_workload = p_workload.add_subparsers(dest="workload_command", required=True)

    p_wgen = sub_workload.add_parser("gen", help="generate a trace from a spec")
    _add_geometry_args(p_wgen)
    p_wgen.add_argument("--out", type=str, required=True, help="trace file to write")
    p_wgen.add_argument("--count", type=int, default=32, help="number of events")
    p_wgen.add_argument("--seed", type=int, default=0)
    p_wgen.add_argument(
        "--arrival",
        choices=["uniform", "poisson", "bursty"],
        default="uniform",
        help="arrival process shaping the offsets",
    )
    p_wgen.add_argument(
        "--rate", type=float, default=64.0, help="arrivals per second (uniform/poisson)"
    )
    p_wgen.add_argument(
        "--burst-size", type=int, default=8, help="bursty: events per burst"
    )
    p_wgen.add_argument(
        "--burst-gap", type=float, default=0.25, help="bursty: seconds between bursts"
    )
    p_wgen.add_argument(
        "--popularity",
        choices=["uniform", "zipf"],
        default="uniform",
        help="key popularity over the catalog of distinct request keys",
    )
    p_wgen.add_argument(
        "--zipf-alpha",
        type=float,
        default=1.1,
        help="zipf skew exponent (higher = hotter head)",
    )
    p_wgen.add_argument(
        "--key-space",
        type=int,
        default=12,
        help="number of distinct request keys in the catalog",
    )
    p_wgen.add_argument(
        "--duplicates",
        type=int,
        default=1,
        help="repeat every drawn event this many times back to back at "
        "the same arrival offset (duplicate-heavy traffic for "
        "single-flight coalescing; 1 = no duplication)",
    )
    p_wgen.add_argument(
        "--geometry-diversity",
        type=int,
        default=1,
        help="spread keys over this many derived geometries (halving N)",
    )
    p_wgen.add_argument("--engine", choices=list(ENGINES), default="fast")
    p_wgen.add_argument(
        "--backend",
        choices=list(BACKENDS),
        default=None,
        help="backend override stamped on every request",
    )
    p_wgen.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-request deadline stamped on every request",
    )
    p_wgen.set_defaults(func=cmd_workload)

    p_winfo = sub_workload.add_parser("info", help="summarize a trace file")
    p_winfo.add_argument("trace", type=str, help="trace file to inspect")
    p_winfo.set_defaults(func=cmd_workload)

    p_detect = sub.add_parser("detect", help="run-time BMMC detection")
    _add_geometry_args(p_detect)
    p_detect.add_argument("--perm", choices=PERM_CHOICES, default="permuted-gray")
    p_detect.add_argument(
        "--engine",
        choices=list(ENGINES),
        default="strict",
        help="detection plans run under either engine; fast fuses the "
        "verification scan into memoryload-sized chunks",
    )
    p_detect.add_argument("--seed", type=int, default=0)
    p_detect.add_argument("--rank-gamma", type=int, default=None)
    p_detect.add_argument("--tamper", action="store_true", help="break BMMC-ness")
    p_detect.set_defaults(func=cmd_detect)

    p_factor = sub.add_parser("factor", help="show the Section 5 factorization")
    _add_geometry_args(p_factor)
    p_factor.add_argument("--perm", choices=PERM_CHOICES, default="random-bmmc")
    p_factor.add_argument("--seed", type=int, default=0)
    p_factor.add_argument("--rank-gamma", type=int, default=None)
    p_factor.set_defaults(func=cmd_factor)

    p_exp = sub.add_parser("experiment", help="run a named paper experiment")
    _add_geometry_args(p_exp)
    from repro.experiments import EXPERIMENTS

    p_exp.add_argument("id", choices=sorted(EXPERIMENTS), help="experiment id")
    p_exp.add_argument("--seed", type=int, default=0)
    p_exp.add_argument("--plot", action="store_true", help="ASCII chart of the sweep")
    p_exp.set_defaults(func=cmd_experiment)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
