"""GF(2) bit-vector and bit-matrix linear algebra.

This subpackage is the algebraic substrate of the reproduction: every
permutation in the paper is described by an ``n x n`` 0-1 matrix acting
on ``n``-bit record addresses over GF(2), where ``n = lg N``.  The
conventions match the paper exactly:

* addresses are bit vectors ``x = (x_0, x_1, ..., x_{n-1})`` with the
  *least significant bit first* (Figure 2 of the paper);
* matrix rows/columns are indexed from 0; ``A[r0:r1, c0:c1]`` is the
  paper's ``A_{r0..r1-1, c0..c1-1}``;
* all arithmetic is modulo 2 (logical AND for multiplication,
  exclusive-or for addition).
"""

from repro.bits.bitops import (
    apply_affine,
    bits_to_int,
    column_ints,
    int_to_bits,
    parity,
    popcount,
)
from repro.bits.matrix import BitMatrix
from repro.bits.linalg import (
    complete_column_basis,
    express_in_column_basis,
    independent_columns,
    inverse,
    is_nonsingular,
    kernel_basis,
    matrix_range_size,
    preimage,
    preimage_size,
    rank,
    row_space_basis,
    solve,
)
from repro.bits.colops import (
    column_addition_matrix,
    erasure_matrix,
    is_column_addition_matrix,
    is_erasure_form,
    is_reducer_form,
    is_swapper_form,
    is_trailer_form,
    lu_factor_column_addition,
    reducer_matrix,
    swapper_matrix,
    trailer_matrix,
)
from repro.bits.random import (
    random_bit_permutation,
    random_bmmc_matrix,
    random_bmmc_with_rank_gamma,
    random_matrix,
    random_matrix_with_rank,
    random_mld_matrix,
    random_mrc_matrix,
    random_nonsingular,
)

__all__ = [
    "BitMatrix",
    "apply_affine",
    "bits_to_int",
    "column_ints",
    "int_to_bits",
    "parity",
    "popcount",
    "complete_column_basis",
    "express_in_column_basis",
    "independent_columns",
    "inverse",
    "is_nonsingular",
    "kernel_basis",
    "matrix_range_size",
    "preimage",
    "preimage_size",
    "rank",
    "row_space_basis",
    "solve",
    "column_addition_matrix",
    "erasure_matrix",
    "is_column_addition_matrix",
    "is_erasure_form",
    "is_reducer_form",
    "is_swapper_form",
    "is_trailer_form",
    "lu_factor_column_addition",
    "reducer_matrix",
    "swapper_matrix",
    "trailer_matrix",
    "random_bit_permutation",
    "random_bmmc_matrix",
    "random_bmmc_with_rank_gamma",
    "random_matrix",
    "random_matrix_with_rank",
    "random_mld_matrix",
    "random_mrc_matrix",
    "random_nonsingular",
]
