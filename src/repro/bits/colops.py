"""Column-addition matrices and the Section 4 matrix forms.

A *column-addition matrix* ``Q`` post-multiplies a characteristic matrix
(``A' = A Q``) to add specified columns of ``A`` into others:

* ``q_jj = 1`` for every ``j`` (unit diagonal);
* ``q_ij = 1`` (``i != j``) means "column ``A_i`` is added into ``A_j``";
* the *dependency restriction*: if ``q_ij = 1`` then ``q_jk = 0`` for all
  ``k != j`` -- a column that receives an addition is never itself added
  into another column.

Under that restriction, Lemma 19 shows ``Q = L U`` with ``L`` unit lower
triangular and ``U`` unit upper triangular (both nonsingular), so every
column-addition matrix is nonsingular.  The proof's split is direct:
``L`` keeps the strictly-lower entries, ``U`` the strictly-upper ones,
and the restriction forces the cross terms to vanish.

Section 4 then specializes ``Q`` to four forms used by the factoring
algorithm: *trailer*, *reducer*, *swapper*, and *erasure* matrices.  All
constructors here take the section boundaries ``b`` (left), ``m``
(middle/right split) explicitly and validate placement.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.bits.matrix import BitMatrix
from repro.errors import ValidationError

__all__ = [
    "column_addition_matrix",
    "is_column_addition_matrix",
    "lu_factor_column_addition",
    "trailer_matrix",
    "is_trailer_form",
    "reducer_matrix",
    "is_reducer_form",
    "swapper_matrix",
    "is_swapper_form",
    "erasure_matrix",
    "is_erasure_form",
    "is_mrc_form",
    "is_mld_form",
]


def column_addition_matrix(n: int, additions: Iterable[tuple[int, int]]) -> BitMatrix:
    """Build the ``n x n`` column-addition matrix for ``(source, dest)`` pairs.

    Each pair ``(i, j)`` adds column ``i`` into column ``j``.  Raises
    :class:`ValidationError` if the dependency restriction would be
    violated or a column is added into itself.
    """
    a = np.eye(n, dtype=np.uint8)
    sources: set[int] = set()
    destinations: set[int] = set()
    for i, j in additions:
        if not (0 <= i < n and 0 <= j < n):
            raise ValidationError(f"addition ({i}, {j}) out of range for n={n}")
        if i == j:
            raise ValidationError(f"column {i} cannot be added into itself")
        sources.add(i)
        destinations.add(j)
        a[i, j] = 1
    conflict = sources & destinations
    if conflict:
        raise ValidationError(
            "dependency restriction violated: columns "
            f"{sorted(conflict)} are both sources and destinations"
        )
    return BitMatrix(a)


def is_column_addition_matrix(q: BitMatrix) -> bool:
    """Unit diagonal plus the dependency restriction."""
    if not q.is_square:
        return False
    a = q.to_array()
    n = a.shape[0]
    if not (np.diag(a) == 1).all():
        return False
    off = a.copy()
    np.fill_diagonal(off, 0)
    # if q_ij = 1 then row j (off-diagonal) must be all zero
    receiving = np.flatnonzero(off.any(axis=0))  # columns j receiving additions
    return not off[receiving, :].any()


def lu_factor_column_addition(q: BitMatrix) -> tuple[BitMatrix, BitMatrix]:
    """Lemma 19: factor a column-addition matrix as ``Q = L U``.

    ``L`` is unit lower triangular, ``U`` unit upper triangular.  The
    dependency restriction guarantees the strictly-lower and
    strictly-upper parts do not interact, so the split is exact.
    """
    if not is_column_addition_matrix(q):
        raise ValidationError("matrix is not a column-addition matrix")
    a = q.to_array()
    lower = np.tril(a)
    upper = np.triu(a)
    l_mat = BitMatrix(lower)
    u_mat = BitMatrix(upper)
    if l_mat @ u_mat != q:  # defensive: should be impossible per Lemma 19
        raise ValidationError("LU split failed; dependency restriction broken")
    return l_mat, u_mat


# --------------------------------------------------------------------------
# Section 4 forms.  Sections of the column index space:
#   left   = [0, b)      (the lg B "offset" columns)
#   middle = [b, m)      (the lg(M/B) "relative block" columns)
#   right  = [m, n)      (the lg(N/M) "memoryload" columns)
# --------------------------------------------------------------------------

def _check_bounds(n: int, b: int, m: int) -> None:
    if not (0 <= b <= m <= n):
        raise ValidationError(f"need 0 <= b <= m <= n, got b={b}, m={m}, n={n}")


def trailer_matrix(
    n: int, b: int, m: int, additions: Iterable[tuple[int, int]]
) -> BitMatrix:
    """Trailer form ``T``: left/middle columns added into right columns.

    Characterizes an MRC permutation (leading ``m x m`` block is ``I``,
    lower-left block is 0, trailing block is ``I``).
    """
    _check_bounds(n, b, m)
    additions = list(additions)
    for i, j in additions:
        if not (i < m and m <= j < n):
            raise ValidationError(
                f"trailer additions go from columns < m into columns >= m; got ({i}, {j})"
            )
    return column_addition_matrix(n, additions)


def is_trailer_form(t: BitMatrix, b: int, m: int) -> bool:
    n = t.num_rows
    _check_bounds(n, b, m)
    if not is_column_addition_matrix(t):
        return False
    a = t.to_array()
    off = a.copy()
    np.fill_diagonal(off, 0)
    # off-diagonal entries only in rows < m, columns >= m
    return not off[m:, :].any() and not off[:, :m].any()


def reducer_matrix(
    n: int, b: int, m: int, additions: Iterable[tuple[int, int]]
) -> BitMatrix:
    """Reducer form ``R``: left/middle columns added into left/middle columns.

    The dependency restriction makes the leading ``m x m`` block a
    column-addition matrix in its own right, hence nonsingular; the form
    characterizes an MRC permutation.
    """
    _check_bounds(n, b, m)
    additions = list(additions)
    for i, j in additions:
        if not (i < m and j < m):
            raise ValidationError(
                f"reducer additions stay within columns < m; got ({i}, {j})"
            )
    return column_addition_matrix(n, additions)


def is_reducer_form(r: BitMatrix, b: int, m: int) -> bool:
    n = r.num_rows
    _check_bounds(n, b, m)
    if not is_column_addition_matrix(r):
        return False
    a = r.to_array()
    off = a.copy()
    np.fill_diagonal(off, 0)
    return not off[m:, :].any() and not off[:, m:].any() and not off[:m, m:].any()


def swapper_matrix(n: int, m: int, leading_permutation: Sequence[int]) -> BitMatrix:
    """Swapper form ``S``: permute the leftmost ``m`` columns.

    ``leading_permutation[j] = i`` sends column ``j`` to column position
    where bit ``j`` maps to bit ``i`` (the leading ``m x m`` block is the
    permutation matrix with ``S[i, j] = 1``).  Characterizes an MRC
    permutation.
    """
    if len(leading_permutation) != m:
        raise ValidationError(f"leading permutation must have length m={m}")
    if sorted(leading_permutation) != list(range(m)):
        raise ValidationError("leading permutation must be a permutation of 0..m-1")
    a = np.eye(n, dtype=np.uint8)
    a[:m, :m] = 0
    for j, i in enumerate(leading_permutation):
        a[i, j] = 1
    return BitMatrix(a)


def is_swapper_form(s: BitMatrix, m: int) -> bool:
    n = s.num_rows
    if not s.is_square or m > n:
        return False
    a = s.to_array()
    lead = BitMatrix(a[:m, :m]) if m else BitMatrix(np.zeros((0, 0), dtype=np.uint8))
    if m and not lead.is_permutation_matrix:
        return False
    if a[m:, :m].any() or a[:m, m:].any():
        return False
    return bool((a[m:, m:] == np.eye(n - m, dtype=np.uint8)).all())


def erasure_matrix(
    n: int, b: int, m: int, additions: Iterable[tuple[int, int]]
) -> BitMatrix:
    """Erasure form ``E``: right columns added into middle columns.

    The form characterizes an MLD permutation (the kernel of its middle
    row band contains only vectors that the bottom band also kills), and
    every erasure matrix is its own inverse: ``E @ E = I``.
    """
    _check_bounds(n, b, m)
    additions = list(additions)
    for i, j in additions:
        if not (m <= i < n and b <= j < m):
            raise ValidationError(
                f"erasure additions go from columns >= m into middle columns; got ({i}, {j})"
            )
    return column_addition_matrix(n, additions)


def is_erasure_form(e: BitMatrix, b: int, m: int) -> bool:
    n = e.num_rows
    _check_bounds(n, b, m)
    if not is_column_addition_matrix(e):
        return False
    a = e.to_array()
    off = a.copy()
    np.fill_diagonal(off, 0)
    # nonzero off-diagonal entries confined to rows >= m, columns in [b, m)
    if off[:m, :].any():
        return False
    return not off[m:, :b].any() and not off[m:, m:].any()


# --------------------------------------------------------------------------
# class-form predicates shared with repro.perms (kept here to avoid cycles)
# --------------------------------------------------------------------------

def is_mrc_form(a: BitMatrix, m: int) -> bool:
    """MRC form: lower-left ``(n-m) x m`` zero, leading and trailing nonsingular."""
    from repro.bits.linalg import is_nonsingular

    n = a.num_rows
    if not a.is_square or not (0 <= m <= n):
        return False
    arr = a.to_array()
    if arr[m:, :m].any():
        return False
    lead = BitMatrix(arr[:m, :m]) if m else None
    trail = BitMatrix(arr[m:, m:]) if m < n else None
    if lead is not None and not is_nonsingular(lead):
        return False
    if trail is not None and not is_nonsingular(trail):
        return False
    return True


def is_mld_form(a: BitMatrix, b: int, m: int) -> bool:
    """MLD form: nonsingular with the kernel condition ``ker mu <= ker gamma``.

    ``mu = A[b:m, 0:m]`` and ``gamma = A[m:n, 0:m]``.  Uses the two-step
    check of Section 6: a basis of ``ker mu`` must have exactly ``b``
    vectors, each of which ``gamma`` must kill.
    """
    from repro.bits.linalg import is_nonsingular, kernel_basis

    n = a.num_rows
    _check_bounds(n, b, m)
    if not is_nonsingular(a):
        return False
    mu = a[b:m, 0:m]
    gamma = a[m:n, 0:m]
    ker = kernel_basis(mu)
    if ker.num_cols != b:
        # dim(ker mu) = m - rank(mu); MLD requires rank(mu) = m - b exactly
        return False
    if gamma.num_rows == 0:
        return True
    product = gamma @ ker
    return product.is_zero
