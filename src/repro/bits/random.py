"""Seeded random generators for matrices and permutation instances.

The paper's bounds are parameterized by structural quantities -- most
importantly ``rank gamma`` for ``gamma = A[b:n, 0:b]`` -- so the
benchmark sweeps need instances with those quantities *prescribed*, not
merely sampled.  Every generator takes a ``numpy.random.Generator`` so
all experiments are reproducible from a printed seed.
"""

from __future__ import annotations

import numpy as np

from repro.bits.colops import is_mld_form
from repro.bits.linalg import is_nonsingular, rank
from repro.bits.matrix import BitMatrix
from repro.errors import ValidationError

__all__ = [
    "random_matrix",
    "random_nonsingular",
    "random_matrix_with_rank",
    "random_bmmc_matrix",
    "random_bmmc_with_rank_gamma",
    "random_bit_permutation",
    "random_mrc_matrix",
    "random_mld_matrix",
]

_MAX_REJECTION_TRIES = 10_000


def _rng(rng: np.random.Generator | int | None) -> np.random.Generator:
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


def random_matrix(p: int, q: int, rng: np.random.Generator | int | None = None) -> BitMatrix:
    """Uniformly random ``p x q`` 0-1 matrix."""
    return BitMatrix(_rng(rng).integers(0, 2, size=(p, q), dtype=np.uint8))


def random_nonsingular(n: int, rng: np.random.Generator | int | None = None) -> BitMatrix:
    """Uniformly random nonsingular ``n x n`` matrix over GF(2).

    Rejection sampling: a uniform random matrix is nonsingular with
    probability ``prod_{i>=1} (1 - 2^-i) ~ 0.2888``, so a handful of
    draws suffice and the conditional distribution is exactly uniform
    over GL(n, 2).
    """
    if n == 0:
        return BitMatrix(np.zeros((0, 0), dtype=np.uint8))
    generator = _rng(rng)
    for _ in range(_MAX_REJECTION_TRIES):
        candidate = random_matrix(n, n, generator)
        if is_nonsingular(candidate):
            return candidate
    raise ValidationError(f"failed to sample a nonsingular {n}x{n} matrix")


def random_matrix_with_rank(
    p: int, q: int, r: int, rng: np.random.Generator | int | None = None
) -> BitMatrix:
    """Random ``p x q`` matrix with rank exactly ``r``.

    Built as ``X @ Y`` with ``X`` a full-column-rank ``p x r`` factor and
    ``Y`` a full-row-rank ``r x q`` factor, so the rank is exactly ``r``
    by construction.
    """
    if not (0 <= r <= min(p, q)):
        raise ValidationError(f"rank {r} impossible for a {p}x{q} matrix")
    if r == 0:
        return BitMatrix.zeros(p, q)
    generator = _rng(rng)
    for _ in range(_MAX_REJECTION_TRIES):
        x = random_matrix(p, r, generator)
        if rank(x) == r:
            break
    else:  # pragma: no cover - astronomically unlikely
        raise ValidationError("failed to sample a full-column-rank factor")
    for _ in range(_MAX_REJECTION_TRIES):
        y = random_matrix(r, q, generator)
        if rank(y) == r:
            break
    else:  # pragma: no cover
        raise ValidationError("failed to sample a full-row-rank factor")
    return x @ y


def random_bmmc_matrix(
    n: int, rng: np.random.Generator | int | None = None
) -> BitMatrix:
    """Alias for :func:`random_nonsingular` (a BMMC characteristic matrix)."""
    return random_nonsingular(n, rng)


def random_bmmc_with_rank_gamma(
    n: int, b: int, r: int, rng: np.random.Generator | int | None = None
) -> BitMatrix:
    """Random nonsingular ``n x n`` matrix with ``rank A[b:n, 0:b] == r``.

    Construction: ``A = [[P1, 0], [G, P2]] @ [[I, W], [0, I]]`` where
    ``P1`` (``b x b``) and ``P2`` (``(n-b) x (n-b)``) are random
    nonsingular, ``G`` is a random ``(n-b) x b`` matrix of rank exactly
    ``r``, and ``W`` is arbitrary.  The product is nonsingular (block
    triangular factors with nonsingular diagonal blocks times a unit
    upper-triangular factor) and its lower-left ``(n-b) x b`` block is
    exactly ``G``, so ``rank gamma = r``.
    """
    if not (0 <= b <= n):
        raise ValidationError(f"need 0 <= b <= n, got b={b}, n={n}")
    if not (0 <= r <= min(b, n - b)):
        raise ValidationError(
            f"rank gamma = {r} impossible: gamma is {(n - b)}x{b}"
        )
    generator = _rng(rng)
    p1 = random_nonsingular(b, generator)
    p2 = random_nonsingular(n - b, generator)
    g = random_matrix_with_rank(n - b, b, r, generator)
    w = random_matrix(b, n - b, generator)
    lower = BitMatrix.from_blocks([[p1, BitMatrix.zeros(b, n - b)], [g, p2]])
    upper = BitMatrix.from_blocks(
        [[BitMatrix.identity(b), w], [BitMatrix.zeros(n - b, b), BitMatrix.identity(n - b)]]
    )
    a = lower @ upper
    assert rank(a[b:n, 0:b]) == r
    return a


def random_bit_permutation(
    n: int, rng: np.random.Generator | int | None = None
) -> BitMatrix:
    """Random ``n x n`` permutation matrix (a BPC characteristic matrix)."""
    generator = _rng(rng)
    return BitMatrix.permutation(list(generator.permutation(n)))


def random_mrc_matrix(
    n: int, m: int, rng: np.random.Generator | int | None = None
) -> BitMatrix:
    """Random MRC characteristic matrix for memory size ``2^m``.

    ``[[alpha, beta], [0, delta]]`` with ``alpha`` (``m x m``) and
    ``delta`` (``(n-m) x (n-m)``) nonsingular and ``beta`` arbitrary.
    """
    if not (0 <= m <= n):
        raise ValidationError(f"need 0 <= m <= n, got m={m}, n={n}")
    generator = _rng(rng)
    alpha = random_nonsingular(m, generator)
    delta = random_nonsingular(n - m, generator)
    beta = random_matrix(m, n - m, generator)
    return BitMatrix.from_blocks(
        [[alpha, beta], [BitMatrix.zeros(n - m, m), delta]]
    )


def random_mld_matrix(
    n: int,
    b: int,
    m: int,
    rng: np.random.Generator | int | None = None,
    gamma_rank: int | None = None,
) -> BitMatrix:
    """Random MLD characteristic matrix.

    The leading ``m`` columns are built to satisfy the kernel condition
    structurally: ``mu`` (rows ``b..m-1``) is a random full-rank
    ``(m-b) x m`` matrix and ``gamma`` (rows ``m..n-1``) is ``Z @ mu``
    for random ``Z``, so ``mu x = 0`` implies ``gamma x = 0`` and
    ``rank gamma <= m - b`` (Lemma 16).  The right ``n - m`` columns are
    resampled until the whole matrix is nonsingular.

    ``gamma_rank`` (defaults to ``min(m - b, n - m)``) prescribes
    ``rank Z``, hence an upper bound on ``rank gamma``; with full-rank
    ``mu`` it equals ``rank gamma`` exactly.
    """
    if not (0 <= b <= m <= n):
        raise ValidationError(f"need 0 <= b <= m <= n, got b={b}, m={m}, n={n}")
    generator = _rng(rng)
    if gamma_rank is None:
        gamma_rank = min(m - b, n - m)
    if not (0 <= gamma_rank <= min(m - b, n - m)):
        raise ValidationError(
            f"gamma_rank={gamma_rank} impossible (limit {min(m - b, n - m)}, Lemma 16)"
        )
    for _ in range(_MAX_REJECTION_TRIES):
        mu = random_matrix_with_rank(m - b, m, m - b, generator)
        z = random_matrix_with_rank(n - m, m - b, gamma_rank, generator)
        gamma = z @ mu
        top = random_matrix(b, m, generator)
        left = BitMatrix(
            np.vstack([top.to_array(), mu.to_array(), gamma.to_array()])
        )
        right = random_matrix(n, n - m, generator)
        a = BitMatrix(np.hstack([left.to_array(), right.to_array()]))
        if is_nonsingular(a):
            assert is_mld_form(a, b, m)
            return a
    raise ValidationError("failed to sample a nonsingular MLD matrix")
