"""``BitMatrix``: a dense 0-1 matrix over GF(2).

The class is a thin, validated wrapper around a ``numpy.uint8`` array.
Matrices in this library are at most ``lg N x lg N`` (so ~64x64), which
keeps every operation cheap; the wrapper exists for correctness, not
speed.  Indexing follows the paper: ``A[r0:r1, c0:c1]`` is the submatrix
``A_{r0..r1-1, c0..c1-1}``; indexing by a single slice selects *columns*
("when a matrix is indexed by just one set rather than two, the set
indexes column numbers").
"""

from __future__ import annotations

from functools import cached_property
from typing import Iterable, Sequence

import numpy as np

from repro.bits import bitops
from repro.errors import DimensionError, ValidationError

__all__ = ["BitMatrix"]


def _coerce(array) -> np.ndarray:
    a = np.asarray(array)
    if a.ndim == 1:
        a = a.reshape(-1, 1)  # vectors are 1-column matrices, as in the paper
    if a.ndim != 2:
        raise DimensionError(f"BitMatrix needs a 2-D array, got ndim={a.ndim}")
    if not np.issubdtype(a.dtype, np.integer) and a.dtype != np.bool_:
        raise ValidationError(f"BitMatrix entries must be integers, got dtype {a.dtype}")
    a = a.astype(np.uint8, copy=True)
    if ((a != 0) & (a != 1)).any():
        raise ValidationError("BitMatrix entries must be drawn from {0, 1}")
    return a


class BitMatrix:
    """An immutable-by-convention GF(2) matrix.

    All mutating access goes through :meth:`with_entry` /
    :meth:`with_column`, which return new matrices; arithmetic operators
    (``@`` for GF(2) product, ``^`` for entrywise XOR) also return new
    matrices.  This keeps characteristic matrices safely shareable
    between permutation objects and factoring passes.
    """

    __slots__ = ("_a", "__dict__")

    def __init__(self, array: Iterable) -> None:
        self._a = _coerce(array)
        self._a.setflags(write=False)

    # ---------------------------------------------------------------- basics
    @classmethod
    def identity(cls, n: int) -> "BitMatrix":
        return cls(np.eye(n, dtype=np.uint8))

    @classmethod
    def zeros(cls, p: int, q: int) -> "BitMatrix":
        return cls(np.zeros((p, q), dtype=np.uint8))

    @classmethod
    def from_rows(cls, rows: Sequence[Sequence[int]]) -> "BitMatrix":
        return cls(np.array(rows, dtype=np.uint8))

    @classmethod
    def from_int_columns(cls, columns: Sequence[int], p: int) -> "BitMatrix":
        """Build a ``p x len(columns)`` matrix from integer-encoded columns."""
        a = np.zeros((p, len(columns)), dtype=np.uint8)
        for j, c in enumerate(columns):
            a[:, j] = bitops.int_to_bits(c, p)
        return cls(a)

    @classmethod
    def column_vector(cls, value: int, p: int) -> "BitMatrix":
        """A single ``p``-bit column vector from its integer encoding."""
        return cls(bitops.int_to_bits(value, p).reshape(-1, 1))

    @classmethod
    def from_blocks(cls, blocks: Sequence[Sequence["BitMatrix"]]) -> "BitMatrix":
        """Assemble a matrix from a 2-D grid of blocks (row-major)."""
        rows = [np.hstack([b.to_array() for b in row]) for row in blocks]
        return cls(np.vstack(rows))

    @classmethod
    def permutation(cls, target_of: Sequence[int]) -> "BitMatrix":
        """Permutation matrix sending source bit ``j`` to target bit ``target_of[j]``.

        The resulting ``A`` has ``A[target_of[j], j] = 1``, so
        ``(A x)_{target_of[j]} = x_j`` -- the BPC convention of Section 1.
        """
        n = len(target_of)
        if sorted(target_of) != list(range(n)):
            raise ValidationError("target_of must be a permutation of 0..n-1")
        a = np.zeros((n, n), dtype=np.uint8)
        for j, i in enumerate(target_of):
            a[i, j] = 1
        return cls(a)

    # ------------------------------------------------------------ inspection
    @property
    def shape(self) -> tuple[int, int]:
        return self._a.shape

    @property
    def num_rows(self) -> int:
        return self._a.shape[0]

    @property
    def num_cols(self) -> int:
        return self._a.shape[1]

    @property
    def is_square(self) -> bool:
        p, q = self._a.shape
        return p == q

    def to_array(self) -> np.ndarray:
        """Read-only view of the underlying uint8 array."""
        return self._a

    @cached_property
    def column_ints(self) -> list[int]:
        """Columns encoded as integers (see :func:`repro.bits.bitops.column_ints`)."""
        return bitops.column_ints(self)

    @cached_property
    def row_ints(self) -> list[int]:
        """Rows encoded as integers (bit ``j`` of entry ``i`` is ``A[i, j]``)."""
        weights = 1 << np.arange(self._a.shape[1], dtype=np.uint64)
        return [
            int(np.bitwise_xor.reduce(weights[self._a[i] != 0], initial=0))
            for i in range(self._a.shape[0])
        ]

    def __getitem__(self, key) -> "BitMatrix | int":
        if isinstance(key, tuple):
            if len(key) != 2:
                raise DimensionError("BitMatrix indexing takes [rows, cols]")
            r, c = key
            if isinstance(r, (int, np.integer)) and isinstance(c, (int, np.integer)):
                return int(self._a[int(r), int(c)])
            sub = self._a[_as_index(r), :][:, _as_index(c)]
            return BitMatrix(sub)
        # single index selects *columns*, per the paper's convention
        return BitMatrix(self._a[:, _as_index(key)])

    def column(self, j: int) -> int:
        """Column ``j`` as an integer-encoded bit vector."""
        return self.column_ints[int(j)]

    def with_entry(self, i: int, j: int, value: int) -> "BitMatrix":
        a = self._a.copy()
        a[i, j] = int(value) & 1
        return BitMatrix(a)

    def with_column(self, j: int, column: int) -> "BitMatrix":
        a = self._a.copy()
        a[:, j] = bitops.int_to_bits(column, a.shape[0])
        return BitMatrix(a)

    def with_columns_swapped(self, i: int, j: int) -> "BitMatrix":
        a = self._a.copy()
        a[:, [i, j]] = a[:, [j, i]]
        return BitMatrix(a)

    # ------------------------------------------------------------ arithmetic
    def __matmul__(self, other: "BitMatrix") -> "BitMatrix":
        if not isinstance(other, BitMatrix):
            return NotImplemented
        if self.num_cols != other.num_rows:
            raise DimensionError(
                f"cannot multiply {self.shape} by {other.shape} over GF(2)"
            )
        prod = (self._a.astype(np.int64) @ other._a.astype(np.int64)) & 1
        return BitMatrix(prod.astype(np.uint8))

    def __xor__(self, other: "BitMatrix") -> "BitMatrix":
        if not isinstance(other, BitMatrix):
            return NotImplemented
        if self.shape != other.shape:
            raise DimensionError(f"cannot XOR {self.shape} with {other.shape}")
        return BitMatrix(self._a ^ other._a)

    def mulvec(self, x: int) -> int:
        """GF(2) matrix-vector product with an integer-encoded vector."""
        return bitops.apply_linear_scalar(self.column_ints, int(x))

    @property
    def T(self) -> "BitMatrix":
        return BitMatrix(self._a.T)

    # ------------------------------------------------------------ predicates
    def __eq__(self, other) -> bool:
        if not isinstance(other, BitMatrix):
            return NotImplemented
        return self.shape == other.shape and bool((self._a == other._a).all())

    def __hash__(self) -> int:
        return hash((self.shape, self._a.tobytes()))

    @property
    def is_identity(self) -> bool:
        return self.is_square and bool((self._a == np.eye(self.num_rows, dtype=np.uint8)).all())

    @property
    def is_zero(self) -> bool:
        return not self._a.any()

    @property
    def is_permutation_matrix(self) -> bool:
        """Exactly one 1 per row and per column (the BPC restriction)."""
        if not self.is_square:
            return False
        return bool((self._a.sum(axis=0) == 1).all() and (self._a.sum(axis=1) == 1).all())

    def permutation_targets(self) -> np.ndarray:
        """For a permutation matrix, ``target_of[j] = i`` with ``A[i, j] = 1``."""
        if not self.is_permutation_matrix:
            raise ValidationError("matrix is not a permutation matrix")
        return np.argmax(self._a, axis=0)

    # ---------------------------------------------------------------- output
    def __repr__(self) -> str:
        body = "\n".join(" ".join(str(v) for v in row) for row in self._a)
        return f"BitMatrix({self.num_rows}x{self.num_cols}):\n{body}"


def _as_index(key):
    """Normalize a row/column selector to something numpy can fancy-index."""
    if isinstance(key, slice):
        return key
    if isinstance(key, (int, np.integer)):
        return [int(key)]
    return list(key)
