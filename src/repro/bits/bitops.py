"""Scalar and vectorized operations on addresses as GF(2) bit vectors.

Addresses are plain Python/numpy integers; bit ``k`` of the integer is
coordinate ``x_k`` of the paper's column vector ``x = (x_0 ... x_{n-1})``
(least significant bit first, Figure 2).  The hot path of the whole
library is :func:`apply_affine`, which evaluates ``y = A x (+) c`` for a
whole numpy array of addresses at once: one XOR-fold per matrix column
instead of one GF(2) matrix-vector product per record.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.errors import ValidationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.bits.matrix import BitMatrix

__all__ = [
    "int_to_bits",
    "bits_to_int",
    "popcount",
    "parity",
    "column_ints",
    "apply_affine",
    "apply_linear_scalar",
]


def int_to_bits(x: int, n: int) -> np.ndarray:
    """Expand integer ``x`` into an LSB-first length-``n`` 0/1 vector.

    ``int_to_bits(x, n)[k]`` is the paper's address bit ``x_k``.
    """
    x = int(x)
    if x < 0:
        raise ValidationError(f"addresses are nonnegative, got {x}")
    if n < 0:
        raise ValidationError(f"bit length must be nonnegative, got {n}")
    if x >> n:
        raise ValidationError(f"{x} does not fit in {n} bits")
    return np.array([(x >> k) & 1 for k in range(n)], dtype=np.uint8)


def bits_to_int(bits: Sequence[int] | np.ndarray) -> int:
    """Fold an LSB-first 0/1 vector back into an integer."""
    out = 0
    for k, bit in enumerate(bits):
        bit = int(bit)
        if bit not in (0, 1):
            raise ValidationError(f"bit vector entries must be 0/1, got {bit}")
        out |= bit << k
    return out


def popcount(x: int) -> int:
    """Number of set bits of a nonnegative integer."""
    return int(x).bit_count()


def parity(x: int) -> int:
    """Parity (sum over GF(2)) of the bits of ``x``."""
    return int(x).bit_count() & 1


def column_ints(matrix: "BitMatrix") -> list[int]:
    """Integer encodings of a matrix's columns.

    Column ``j`` of ``A`` becomes the integer ``sum_i A[i, j] << i``.
    Since ``y = A x`` over GF(2) is the XOR of the columns ``A_j`` with
    ``x_j = 1``, these integers let :func:`apply_affine` evaluate the map
    with word-level XORs.
    """
    a = matrix.to_array()
    weights = 1 << np.arange(a.shape[0], dtype=np.uint64)
    return [int(np.bitwise_xor.reduce(weights[a[:, j] != 0], initial=0)) for j in range(a.shape[1])]


def apply_affine(
    matrix: "BitMatrix",
    complement: int,
    addresses: np.ndarray | Sequence[int] | int,
) -> np.ndarray | int:
    """Evaluate ``y = A x (+) c`` for one address or an array of them.

    ``matrix`` is ``p x q``; addresses must fit in ``q`` bits and results
    are ``p``-bit integers.  The array path costs ``O(q)`` vectorized XOR
    passes over the input, which is what makes full-disk permutation
    verification feasible.
    """
    scalar = np.isscalar(addresses) or isinstance(addresses, int)
    xs = np.asarray(addresses, dtype=np.uint64).reshape(-1)
    p, q = matrix.shape
    if q < 64 and xs.size and int(xs.max(initial=0)) >> q:
        raise ValidationError(f"address does not fit in {q} bits")
    cols = matrix.column_ints
    ys = np.full(xs.shape, np.uint64(int(complement)), dtype=np.uint64)
    one = np.uint64(1)
    for j in range(q):
        if cols[j]:
            mask = -((xs >> np.uint64(j)) & one)  # all-ones where bit j set
            ys ^= mask & np.uint64(cols[j])
    if scalar:
        return int(ys[0])
    return ys


def apply_linear_scalar(columns: Sequence[int], x: int) -> int:
    """Evaluate ``y = A x`` from precomputed column integers, scalar path."""
    y = 0
    j = 0
    x = int(x)
    while x:
        if x & 1:
            y ^= columns[j]
        x >>= 1
        j += 1
    return y
