"""GF(2) linear algebra: elimination, rank, inverse, kernels, preimages.

Elimination is done on *row-packed* integers (each matrix row becomes one
Python integer, bit ``j`` = column ``j``), so a full reduction of an
``n x n`` matrix costs ``O(n^2)`` word operations -- the ``O(lg^3 N)``
serial work the paper quotes for its on-line computations.

The functions here implement, verbatim, the linear-algebra facts the
paper proves for completeness:

* Lemma 7  -- ``|R(A) (+) c| = 2^rank(A)`` (:func:`matrix_range_size`);
* Lemma 8  -- ``|Pre(A, y)| = 2^{q - rank(A)}`` (:func:`preimage_size`,
  :func:`preimage`);
* Lemma 11 -- row space / kernel orthogonality is exercised by the tests
  through :func:`kernel_basis` and :func:`row_space_basis`.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.bits.matrix import BitMatrix
from repro.errors import DimensionError, SingularMatrixError, ValidationError

__all__ = [
    "rank",
    "is_nonsingular",
    "inverse",
    "solve",
    "kernel_basis",
    "row_space_basis",
    "independent_columns",
    "express_in_column_basis",
    "complete_column_basis",
    "matrix_range_size",
    "in_range",
    "range_iter",
    "preimage_size",
    "preimage",
    "preimage_iter",
]


# --------------------------------------------------------------------------
# row-packed elimination core
# --------------------------------------------------------------------------

def _packed_rows(matrix: BitMatrix) -> list[int]:
    return list(matrix.row_ints)


def _echelon(rows: list[int], q: int) -> tuple[list[int], list[int]]:
    """Reduce packed rows to *reduced* row echelon form.

    Returns ``(reduced_rows, pivot_columns)``; zero rows are dropped.
    Pivot search scans columns left to right (column 0 = bit 0), matching
    the paper's left-to-right choice of "a maximal set of linearly
    independent columns".
    """
    rows = [r for r in rows]
    pivots: list[int] = []
    reduced: list[int] = []
    for col in range(q):
        mask = 1 << col
        pivot_row = None
        for idx, r in enumerate(rows):
            if r & mask:
                pivot_row = idx
                break
        if pivot_row is None:
            continue
        piv = rows.pop(pivot_row)
        rows = [r ^ piv if r & mask else r for r in rows]
        reduced = [r ^ piv if r & mask else r for r in reduced]
        reduced.append(piv)
        pivots.append(col)
        if not rows:
            break
    return reduced, pivots


def rank(matrix: BitMatrix) -> int:
    """Rank of a 0-1 matrix over GF(2)."""
    _, pivots = _echelon(_packed_rows(matrix), matrix.num_cols)
    return len(pivots)


def is_nonsingular(matrix: BitMatrix) -> bool:
    """True iff the matrix is square and invertible over GF(2)."""
    return matrix.is_square and rank(matrix) == matrix.num_rows


def inverse(matrix: BitMatrix) -> BitMatrix:
    """Inverse over GF(2); raises :class:`SingularMatrixError` otherwise."""
    if not matrix.is_square:
        raise DimensionError(f"only square matrices invert; got {matrix.shape}")
    n = matrix.num_rows
    # Augment each packed row with the corresponding identity row above bit n.
    rows = [r | (1 << (n + i)) for i, r in enumerate(_packed_rows(matrix))]
    reduced, pivots = _echelon_augmented(rows, n)
    if len(pivots) != n:
        raise SingularMatrixError("matrix is singular over GF(2)")
    low_mask = (1 << n) - 1
    inv_rows = [0] * n
    for piv_col, r in zip(pivots, reduced):
        inv_rows[piv_col] = r >> n
    a = np.zeros((n, n), dtype=np.uint8)
    for i, r in enumerate(inv_rows):
        for j in range(n):
            a[i, j] = (r >> j) & 1
    del low_mask
    return BitMatrix(a)


def _echelon_augmented(rows: list[int], q: int) -> tuple[list[int], list[int]]:
    """Like :func:`_echelon` but only the low ``q`` bits are pivot columns."""
    rows = [r for r in rows]
    pivots: list[int] = []
    reduced: list[int] = []
    for col in range(q):
        mask = 1 << col
        pivot_row = None
        for idx, r in enumerate(rows):
            if r & mask:
                pivot_row = idx
                break
        if pivot_row is None:
            continue
        piv = rows.pop(pivot_row)
        rows = [r ^ piv if r & mask else r for r in rows]
        reduced = [r ^ piv if r & mask else r for r in reduced]
        reduced.append(piv)
        pivots.append(col)
    return reduced, pivots


# --------------------------------------------------------------------------
# solving and subspaces
# --------------------------------------------------------------------------

def solve(matrix: BitMatrix, y: int) -> int | None:
    """One solution ``x`` of ``A x = y`` over GF(2), or ``None`` if none exists.

    ``y`` is an integer-encoded ``p``-bit vector; the result is a
    ``q``-bit integer.  All solutions are ``x (+) k`` for ``k`` in the
    kernel (see :func:`preimage_iter`).
    """
    p, q = matrix.shape
    if int(y) >> p:
        raise ValidationError(f"target vector does not fit in {p} bits")
    # Solve via the transpose trick: eliminate on columns by transposing.
    at = matrix.T
    rows = _packed_rows(at)  # row i of A^T = column i of A, packed over p bits
    # Augment each "column row" with its index marker above bit p.
    aug = [r | (1 << (p + i)) for i, r in enumerate(rows)]
    # Also append y as a row to test dependence.
    reduced: list[int] = []
    for r in aug:
        cur = r
        for red in reduced:
            low = red & ((1 << p) - 1)
            if low and cur & (low & -low):
                cur ^= red
        if cur & ((1 << p) - 1):
            reduced.append(cur)
    # Reduce y against the basis.
    cur = int(y)
    marker = 0
    for red in reduced:
        low = red & ((1 << p) - 1)
        if low and cur & (low & -low):
            cur ^= low
            marker ^= red >> p
    if cur != 0:
        return None
    return marker


def kernel_basis(matrix: BitMatrix) -> BitMatrix:
    """Basis of ``ker A = {x : A x = 0}`` as the columns of a ``q x k`` matrix.

    ``k = q - rank(A)``; the zero kernel yields a ``q x 0`` matrix.
    """
    p, q = matrix.shape
    reduced, pivots = _echelon(_packed_rows(matrix), q)
    pivot_set = set(pivots)
    free_cols = [j for j in range(q) if j not in pivot_set]
    basis = np.zeros((q, len(free_cols)), dtype=np.uint8)
    for k, j in enumerate(free_cols):
        basis[j, k] = 1
        # Back-substitute: pivot variable x_{pc} = sum of free entries in its row.
        for pc, row in zip(pivots, reduced):
            if (row >> j) & 1:
                basis[pc, k] = 1
    return BitMatrix(basis) if free_cols else BitMatrix(np.zeros((q, 0), dtype=np.uint8))


def row_space_basis(matrix: BitMatrix) -> BitMatrix:
    """Basis of the row space, one basis vector per matrix row."""
    reduced, _ = _echelon(_packed_rows(matrix), matrix.num_cols)
    q = matrix.num_cols
    a = np.zeros((len(reduced), q), dtype=np.uint8)
    for i, r in enumerate(reduced):
        for j in range(q):
            a[i, j] = (r >> j) & 1
    return BitMatrix(a) if reduced else BitMatrix(np.zeros((0, q), dtype=np.uint8))


def independent_columns(
    matrix: BitMatrix, order: Iterable[int] | None = None
) -> list[int]:
    """Greedy maximal set of linearly independent column indices.

    Columns are examined in ``order`` (default: left to right, the
    paper's convention); a column joins the set iff it is independent of
    those already chosen.  The returned indices are in examination order.
    """
    p = matrix.num_rows
    cols = matrix.column_ints
    order = range(matrix.num_cols) if order is None else list(order)
    basis: list[int] = []  # reduced representatives
    chosen: list[int] = []
    for j in order:
        cur = cols[j]
        for b in basis:
            if cur & (b & -b):
                cur ^= b
        if cur:
            # keep basis reduced so each vector owns a distinct lowest bit
            basis = [b ^ cur if b & (cur & -cur) else b for b in basis]
            basis.append(cur)
            chosen.append(j)
            if len(chosen) == p:
                break
    return chosen


def express_in_column_basis(
    matrix: BitMatrix, basis_cols: Sequence[int], target: int
) -> list[int] | None:
    """Indices ``S`` within ``basis_cols`` with ``XOR of those columns == target``.

    Returns ``None`` when ``target`` is outside the span.  Used by the
    reducer construction of Section 5 to zero out dependent columns.
    """
    sub = matrix[:, list(basis_cols)]
    coeffs = solve(sub, target)
    if coeffs is None:
        return None
    return [basis_cols[t] for t in range(len(basis_cols)) if (coeffs >> t) & 1]


def complete_column_basis(
    matrix: BitMatrix,
    primary: Sequence[int],
    candidates: Sequence[int],
) -> tuple[list[int], list[int]]:
    """Extend an independent set of ``primary`` columns using ``candidates``.

    Returns ``(kept_primary, added_candidates)``: the greedy maximal
    independent subset of ``primary`` (in order) plus the candidate
    columns that extend it.  This is exactly the Gaussian-elimination
    step of Section 5's trailer construction ("a maximal set V of
    linearly independent columns in delta and a set W of columns ...
    that, along with V, comprise a set of n-m linearly independent
    columns").
    """
    chosen = independent_columns(matrix, order=list(primary) + list(candidates))
    primary_set = set(primary)
    kept = [j for j in chosen if j in primary_set]
    added = [j for j in chosen if j not in primary_set]
    return kept, added


# --------------------------------------------------------------------------
# ranges and preimages (Lemmas 7 and 8)
# --------------------------------------------------------------------------

def matrix_range_size(matrix: BitMatrix) -> int:
    """``|R(A)| = 2^rank(A)`` (Lemma 7; XORing a constant keeps the size)."""
    return 1 << rank(matrix)


def in_range(matrix: BitMatrix, y: int) -> bool:
    """Whether ``y`` is in ``R(A)``."""
    return solve(matrix, y) is not None


def range_iter(matrix: BitMatrix) -> Iterator[int]:
    """Iterate ``R(A)`` (all ``2^rank`` values) without repeats.

    Enumerates XOR-combinations of an independent column subset; only
    call for small ranks.
    """
    idx = independent_columns(matrix)
    cols = [matrix.column_ints[j] for j in idx]
    r = len(cols)
    for bits in range(1 << r):
        y = 0
        t = bits
        k = 0
        while t:
            if t & 1:
                y ^= cols[k]
            t >>= 1
            k += 1
        yield y


def preimage_size(matrix: BitMatrix, y: int) -> int:
    """``|Pre(A, y)|``: ``2^{q-rank}`` if ``y`` is in range, else 0 (Lemma 8)."""
    if not in_range(matrix, y):
        return 0
    return 1 << (matrix.num_cols - rank(matrix))


def preimage(matrix: BitMatrix, y: int) -> int | None:
    """One element of ``Pre(A, y)`` or ``None``."""
    return solve(matrix, y)


def preimage_iter(matrix: BitMatrix, y: int) -> Iterator[int]:
    """Iterate the whole preimage set ``{x : A x = y}``.

    Combines one particular solution with every kernel element; only
    call when ``q - rank`` is small.
    """
    x0 = solve(matrix, y)
    if x0 is None:
        return
    ker = kernel_basis(matrix)
    kcols = ker.column_ints
    k = len(kcols)
    for bits in range(1 << k):
        x = x0
        t = bits
        i = 0
        while t:
            if t & 1:
                x ^= kcols[i]
            t >>= 1
            i += 1
        yield x
