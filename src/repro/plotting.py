"""Terminal plotting for experiment sweeps (no plotting dependencies).

The reproduction runs offline, so figures are rendered as ASCII: a
multi-series scatter/line chart (:func:`ascii_chart`) and a labelled
horizontal bar chart (:func:`ascii_bars`).  These back the examples and
the ``repro experiment --plot`` flag, turning sweep tables like THM3's
measured-vs-bound columns into the shapes the paper's claims describe.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Series", "ascii_chart", "ascii_bars"]


@dataclass
class Series:
    """One plottable series: points plus a single-character marker."""

    label: str
    points: list[tuple[float, float]]
    marker: str = "*"

    def __post_init__(self) -> None:
        if len(self.marker) != 1:
            raise ValueError("marker must be a single character")
        if not self.points:
            raise ValueError(f"series {self.label!r} has no points")


def ascii_chart(
    series: list[Series],
    width: int = 60,
    height: int = 16,
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Render series on a shared-axis character grid.

    Coordinates scale linearly to the grid; collisions show the later
    series' marker.  A legend maps markers to labels.
    """
    if not series:
        raise ValueError("nothing to plot")
    xs = [p[0] for s in series for p in s.points]
    ys = [p[1] for s in series for p in s.points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for s in series:
        for x, y in s.points:
            col = int((x - x_lo) / x_span * (width - 1))
            row = height - 1 - int((y - y_lo) / y_span * (height - 1))
            grid[row][col] = s.marker

    y_hi_text = f"{y_hi:.6g}"
    y_lo_text = f"{y_lo:.6g}"
    margin = max(len(y_hi_text), len(y_lo_text)) + 1
    lines = []
    if y_label:
        lines.append(f"{'':>{margin}}{y_label}")
    for i, row in enumerate(grid):
        if i == 0:
            prefix = y_hi_text.rjust(margin - 1) + "|"
        elif i == height - 1:
            prefix = y_lo_text.rjust(margin - 1) + "|"
        else:
            prefix = " " * (margin - 1) + "|"
        lines.append(prefix + "".join(row))
    lines.append(" " * (margin - 1) + "+" + "-" * width)
    x_axis = f"{x_lo:.6g}".ljust(width - 8) + f"{x_hi:.6g}".rjust(8)
    lines.append(" " * margin + x_axis)
    if x_label:
        lines.append(" " * margin + x_label.center(width))
    legend = "   ".join(f"{s.marker} {s.label}" for s in series)
    lines.append(" " * margin + legend)
    return "\n".join(lines)


def ascii_bars(
    items: list[tuple[str, float]],
    width: int = 50,
    unit: str = "",
) -> str:
    """Horizontal bar chart with value annotations."""
    if not items:
        raise ValueError("nothing to plot")
    top = max(v for _label, v in items) or 1.0
    label_w = max(len(label) for label, _v in items)
    lines = []
    for label, value in items:
        bar = "#" * max(1 if value > 0 else 0, int(value / top * width))
        lines.append(f"{label.rjust(label_w)} | {bar} {value:.6g}{unit}")
    return "\n".join(lines)
