"""``ParallelDiskSystem``: the executable Vitter-Shriver model.

Storage is organized in *portions*: independent copies of the
``N``-record address space (the paper's "source portion" and "target
portion" of Section 3).  One-pass algorithms read from one portion and
write to another; chained passes ping-pong the roles so source records
are never overwritten before they are read.

The two model rules are enforced on every operation:

* **one block per disk** -- a parallel I/O naming two blocks on the same
  disk raises :class:`DiskConflictError`;
* **memory capacity** -- reads allocate ``B`` records per block against
  the ``M``-record RAM and writes release them; exceeding ``M`` raises
  :class:`MemoryCapacityError`.

With ``simple_io=True`` (the default) the simulator also enforces the
*simple I/O* discipline of Lemma 4: a read removes records from disk
and a write must target an empty block, so exactly one copy of each
record exists at any time.  All of the paper's algorithms satisfy this
naturally; the run-time detector opts out per-read (``consume=False``)
because it inspects records without moving them.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

import numpy as np

from repro.errors import (
    BlockStateError,
    DiskConflictError,
    ValidationError,
)
from repro.pdm.geometry import DiskGeometry
from repro.pdm.memory import Memory
from repro.pdm.stats import IOStats

__all__ = ["ParallelDiskSystem", "IOEvent", "EMPTY"]

#: Sentinel payload for an empty record slot.
EMPTY: int = -1


def _coerce_block_ids(block_ids: Iterable[int] | np.ndarray) -> np.ndarray:
    """Normalize a parallel I/O's block ids to a 1-D int64 array."""
    try:
        ids = np.asarray(block_ids, dtype=np.int64)
    except TypeError:  # a generator/iterator: materialize once
        ids = np.asarray(list(block_ids), dtype=np.int64)
    if ids.ndim != 1:
        raise ValidationError(f"block ids must be one-dimensional, got shape {ids.shape}")
    return ids


class IOEvent:
    """Observer payload describing one parallel I/O operation."""

    __slots__ = ("kind", "portion", "block_ids", "values")

    def __init__(self, kind: str, portion: int, block_ids: np.ndarray, values: np.ndarray):
        self.kind = kind  # "read" | "write"
        self.portion = portion
        self.block_ids = block_ids
        self.values = values

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"IOEvent({self.kind}, portion={self.portion}, blocks={list(self.block_ids)})"


class ParallelDiskSystem:
    """A simulated parallel disk system holding integer record payloads."""

    def __init__(
        self,
        geometry: DiskGeometry,
        portions: int = 2,
        simple_io: bool = True,
        dtype=np.int64,
        empty=EMPTY,
    ) -> None:
        """``dtype``/``empty`` configure the record payload type.

        The default (int64 with -1 as the empty sentinel) suits the
        canonical address-payload experiments; numeric workloads (e.g.
        the out-of-core FFT example) use ``dtype=complex128`` with
        ``empty=nan``.  The model rules and I/O accounting are payload-
        agnostic.
        """
        if portions < 1:
            raise ValidationError(f"need at least one portion, got {portions}")
        self.geometry = geometry
        self.num_portions = portions
        self.simple_io = simple_io
        self.dtype = np.dtype(dtype)
        self.empty = self.dtype.type(empty)
        self.memory = Memory(geometry.M)
        self.stats = IOStats()
        self._data = np.full((portions, geometry.N), self.empty, dtype=self.dtype)
        self._observers: list[Callable[[IOEvent], None]] = []

    def _is_empty(self, values: np.ndarray) -> np.ndarray:
        if np.issubdtype(self.dtype, np.complexfloating) or np.issubdtype(
            self.dtype, np.floating
        ):
            return np.isnan(values.real) if values.dtype.kind == "c" else np.isnan(values)
        return values == self.empty

    # -------------------------------------------------------------- contents
    def fill_identity(self, portion: int = 0) -> None:
        """Load record payloads equal to their addresses (the canonical input)."""
        self._data[portion] = np.arange(self.geometry.N).astype(self.dtype)

    def fill(self, portion: int, values: Sequence[int] | np.ndarray) -> None:
        values = np.asarray(values, dtype=self.dtype)
        if values.shape != (self.geometry.N,):
            raise ValidationError(
                f"portion holds exactly N={self.geometry.N} records, got {values.shape}"
            )
        self._data[portion] = values

    def clear(self, portion: int) -> None:
        self._data[portion] = self.empty

    def reset(self) -> None:
        """Return the system to its just-constructed state.

        Empties every portion in place (no reallocation -- the portion
        arrays are the dominant cost at large N) and replaces the memory
        accountant, stats, and pass tables with fresh ones.  Observers
        stay attached.  This is the serving path's per-request scrub: a
        pooled worker system must not leak records, counters, or memory
        residency from the previous request into the next.
        """
        self._data.fill(self.empty)
        self.memory = Memory(self.geometry.M)
        self.stats = IOStats()

    def portion_values(self, portion: int) -> np.ndarray:
        """Copy of a portion's payloads, indexed by address."""
        return self._data[portion].copy()

    def block_values(self, portion: int, block_id: int) -> np.ndarray:
        """Peek at a block without performing an I/O (for tests/rendering)."""
        start = self.geometry.block_start(int(block_id))
        return self._data[portion, start : start + self.geometry.B].copy()

    def peek(self, portion: int, start: int, stop: int) -> np.ndarray:
        """Inspect an address range without an I/O (scheduling/verification).

        Algorithms may use this only to *plan* data-dependent I/O
        schedules (e.g. the merge sort's buffer-refill order); all data
        movement still goes through counted reads and writes.
        """
        return self._data[portion, start:stop].copy()

    # ------------------------------------------------------------- observers
    def add_observer(self, observer: Callable[[IOEvent], None]) -> None:
        self._observers.append(observer)

    def remove_observer(self, observer: Callable[[IOEvent], None]) -> None:
        self._observers.remove(observer)

    def _notify(self, event: IOEvent) -> None:
        for obs in self._observers:
            obs(event)

    # ------------------------------------------------------------ validation
    def _validate_op(self, portion: int, block_ids: np.ndarray) -> None:
        g = self.geometry
        if not (0 <= portion < self.num_portions):
            raise ValidationError(f"portion {portion} out of range")
        if block_ids.size == 0:
            raise ValidationError("a parallel I/O must transfer at least one block")
        if block_ids.size > g.D:
            raise DiskConflictError(
                f"a parallel I/O moves at most D={g.D} blocks, got {block_ids.size}"
            )
        if block_ids.min() < 0 or block_ids.max() >= g.num_blocks:
            raise ValidationError("block id out of range")
        disks = g.block_disk(block_ids)
        if np.unique(disks).size != disks.size:
            raise DiskConflictError(
                f"at most one block per disk per parallel I/O; disks requested: {sorted(disks)}"
            )

    def _is_striped(self, block_ids: np.ndarray) -> bool:
        g = self.geometry
        if block_ids.size != g.D:
            return False
        stripes = g.block_stripe(block_ids)
        return bool((stripes == stripes[0]).all())

    # ------------------------------------------------------------------- I/O
    def read_blocks(
        self,
        portion: int,
        block_ids: Iterable[int] | np.ndarray,
        consume: bool | None = None,
    ) -> np.ndarray:
        """One parallel read of up to ``D`` blocks on distinct disks.

        Returns an array of shape ``(k, B)`` in the order requested and
        allocates ``k * B`` records of memory.  With ``consume`` true
        (default: the system's ``simple_io`` setting) the blocks are
        emptied; reading an empty block raises :class:`BlockStateError`.
        """
        g = self.geometry
        block_ids = _coerce_block_ids(block_ids)
        self._validate_op(portion, block_ids)
        consume = self.simple_io if consume is None else consume
        starts = g.block_start(block_ids)
        gather = (starts[:, None] + np.arange(g.B, dtype=np.int64)[None, :]).reshape(-1)
        values = self._data[portion, gather].reshape(block_ids.size, g.B)
        if consume:
            empty = self._is_empty(values)
            if empty.any():
                bad = block_ids[empty.any(axis=1)]
                raise BlockStateError(
                    f"reading empty/partial blocks {list(bad)} under simple I/O"
                )
        self.memory.allocate(block_ids.size * g.B)
        if consume:
            self._data[portion, gather] = self.empty
        self.stats.record_read(block_ids.size, self._is_striped(block_ids))
        self._notify(IOEvent("read", portion, block_ids, values))
        return values

    def write_blocks(
        self,
        portion: int,
        block_ids: Iterable[int] | np.ndarray,
        values: np.ndarray,
    ) -> None:
        """One parallel write of up to ``D`` full blocks on distinct disks.

        ``values`` has shape ``(k, B)``; ``k * B`` records of memory are
        released.  Under simple I/O the target blocks must be empty.
        """
        g = self.geometry
        block_ids = _coerce_block_ids(block_ids)
        self._validate_op(portion, block_ids)
        values = np.asarray(values, dtype=self.dtype)
        if values.shape != (block_ids.size, g.B):
            raise ValidationError(
                f"write expects shape {(block_ids.size, g.B)}, got {values.shape}"
            )
        starts = g.block_start(block_ids)
        scatter = (starts[:, None] + np.arange(g.B, dtype=np.int64)[None, :]).reshape(-1)
        if self.simple_io and (~self._is_empty(self._data[portion, scatter])).any():
            raise BlockStateError(
                f"writing to non-empty blocks under simple I/O: {list(block_ids)}"
            )
        self.memory.release(block_ids.size * g.B)
        self._data[portion, scatter] = values.reshape(-1)
        self.stats.record_write(block_ids.size, self._is_striped(block_ids))
        self._notify(IOEvent("write", portion, block_ids, values))

    # --------------------------------------------------------- striped sugar
    def read_stripe(self, portion: int, stripe: int, consume: bool | None = None) -> np.ndarray:
        """Striped read: the ``D`` blocks of one stripe; shape ``(D, B)``."""
        return self.read_blocks(portion, self.geometry.stripe_blocks(stripe), consume=consume)

    def write_stripe(self, portion: int, stripe: int, values: np.ndarray) -> None:
        """Striped write: fill one whole stripe from a ``(D, B)`` array."""
        self.write_blocks(portion, self.geometry.stripe_blocks(stripe), values)

    def read_memoryload(self, portion: int, ml: int, consume: bool | None = None) -> np.ndarray:
        """Read a memoryload with ``M/BD`` striped reads; returns ``(M,)`` values.

        Values come back in ascending address order, i.e. entry ``i``
        is the record at address ``ml * M + i``.
        """
        g = self.geometry
        parts = [
            self.read_stripe(portion, stripe, consume=consume).reshape(-1)
            for stripe in g.memoryload_stripes(ml)
        ]
        return np.concatenate(parts)

    def write_memoryload(self, portion: int, ml: int, values: np.ndarray) -> None:
        """Write a memoryload with ``M/BD`` striped writes, address order."""
        g = self.geometry
        if values.shape != (g.M,):
            raise ValidationError(f"memoryload write expects {(g.M,)}, got {values.shape}")
        per = g.records_per_stripe
        for i, stripe in enumerate(g.memoryload_stripes(ml)):
            self.write_stripe(portion, stripe, values[i * per : (i + 1) * per].reshape(g.D, g.B))

    # ----------------------------------------------------------- verification
    def verify_permutation(
        self,
        perm,
        source_values: np.ndarray,
        target_portion: int,
    ) -> bool:
        """Check that ``target[perm(x)] == source_values[x]`` for every ``x``.

        ``perm`` is any object with ``apply_array``; this is a model-level
        correctness check, not an I/O-counted operation.
        """
        g = self.geometry
        xs = np.arange(g.N, dtype=np.uint64)
        ys = np.asarray(perm.apply_array(xs), dtype=np.int64)
        return bool(
            (
                self._data[target_portion, ys]
                == np.asarray(source_values, dtype=self.dtype)
            ).all()
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ParallelDiskSystem({self.geometry.describe()}, portions={self.num_portions}, "
            f"simple_io={self.simple_io})"
        )
