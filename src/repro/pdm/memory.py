"""Record-count memory accounting for the PDM's M-record RAM.

The model does not care *which* records are in memory, only that no
more than ``M`` are resident at once (``BD <= M`` guarantees one
parallel I/O always fits).  Algorithms acquire residency through
``ParallelDiskSystem.read_*`` and release it through ``write_*`` or an
explicit :meth:`Memory.release` when records are discarded (as the
run-time detector does after extracting matrix columns).
"""

from __future__ import annotations

from repro.errors import MemoryCapacityError, ValidationError

__all__ = ["Memory"]


class Memory:
    """Capacity-checked counter of resident records."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValidationError(f"memory capacity must be positive, got {capacity}")
        self.capacity = int(capacity)
        self.in_use = 0
        self.peak = 0

    @property
    def available(self) -> int:
        return self.capacity - self.in_use

    def allocate(self, records: int) -> None:
        if records < 0:
            raise ValidationError(f"cannot allocate {records} records")
        if self.in_use + records > self.capacity:
            raise MemoryCapacityError(
                f"allocating {records} records would hold "
                f"{self.in_use + records} > M={self.capacity} in memory"
            )
        self.in_use += records
        if self.in_use > self.peak:
            self.peak = self.in_use

    def release(self, records: int) -> None:
        if records < 0:
            raise ValidationError(f"cannot release {records} records")
        if records > self.in_use:
            raise MemoryCapacityError(
                f"releasing {records} records but only {self.in_use} are resident"
            )
        self.in_use -= records

    def require_empty(self) -> None:
        if self.in_use:
            raise MemoryCapacityError(
                f"{self.in_use} records still resident; expected empty memory"
            )

    def __repr__(self) -> str:
        return f"Memory(in_use={self.in_use}, capacity={self.capacity}, peak={self.peak})"
