"""Plan-level optimization: rewrite *how* a plan executes, not what it does.

The paper counts parallel I/Os; the simulator additionally pays host
work to move every record through the portion arrays.  For multi-pass
plans (the Theorem 21 factor chain, the merge-sort baseline) most of
that traffic is a write immediately consumed by the next pass's read --
the ping-pong portion is a glorified pipe.  :func:`optimize_plan`
detects those links statically and produces an :class:`OptimizedPlan`
that executes the whole chain as *one* physical gather → composed slot
permutation → scatter, while still reporting pass-by-pass
:class:`~repro.pdm.stats.IOStats` and memory peaks exactly as the
unoptimized plan would.  Three rewrites:

* **pass fusion across ping-pong portions** -- pass ``k+1`` reads
  (consuming) exactly the records pass ``k`` writes, so the write/read
  round trip through the portion array is replaced by composing the two
  slot permutations.  A chain of ``p`` passes becomes one gather and
  one scatter.
* **dead-write elimination** -- a write whose target block is
  overwritten by a later pass with no intervening read never influences
  the final state; the physical scatter is skipped (its I/O is still
  counted).  Only applies outside simple I/O: under simple I/O such a
  plan faults, and the optimizer must preserve the fault.
* **step coalescing** -- adjacent steps with identical (kind, portion,
  consume) metadata collapse into single gather/scatter segments; this
  falls out of the fused columnar representation and is reported, not
  re-derived.

Equivalence is by construction, and :meth:`OptimizedPlan.verify` checks
the construction cheaply: every fused link is a portion-qualified
address bijection, every composed slot map stays in range, and the
per-pass I/O counters the optimized executor will report are the
original plan's own fused counters.  The executed result is
byte-identical in portions and identical in stats to strict execution
(property-tested in ``tests/pdm/test_optimize.py``).

Simple-I/O discipline makes fusion sound: a consumed link leaves its
blocks exactly as empty as never materializing them would, and the
write-to-empty rule (checked by the optimized executor on every skipped
link) guarantees no pre-existing payload is lost by the skip.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial

import numpy as np

from repro.errors import BlockStateError, PlanError, ValidationError
from repro.pdm.cancel import checkpoint
from repro.pdm.engine import (
    ENGINES,
    ExecReport,
    ExecutionBackend,
    _check_memory,
    _check_pass,
    _execute_fast,
    _execute_strict,
    _finish_pass,
    _fuse_pass,
    _independent_batches,
    _pass_footprint,
    _portion_groups,
    _require_write_targets_empty,
    _run_fused_data,
    _run_fused_pass,
    _stream_budget,
    get_backend,
)
from repro.pdm.schedule import IOPlan
from repro.pdm.system import ParallelDiskSystem

__all__ = ["OptimizeReport", "OptimizedPlan", "optimize_plan"]


@dataclass(frozen=True)
class OptimizeReport:
    """What the optimizer found and rewrote."""

    passes: int                     # original plan passes
    physical_passes: int            # gather/scatter units after fusion
    fused_groups: int               # chains of >= 2 passes fused into one
    fused_links: int                # eliminated write->read round trips
    eliminated_write_records: int   # records whose scatter was dead
    coalesced_steps: int            # steps folded into wider segments
    partial_groups: int = 0         # pass pairs fused on an address subset
    partial_link_records: int = 0   # records piped through partial links

    def summary(self) -> str:
        return (
            f"{self.passes} passes -> {self.physical_passes} physical "
            f"({self.fused_groups} fused groups, {self.fused_links} links "
            f"eliminated, {self.partial_groups} partial pairs, "
            f"{self.partial_link_records} records piped partially, "
            f"{self.eliminated_write_records} dead write records, "
            f"{self.coalesced_steps} steps coalesced)"
        )


class _Group:
    """One physical execution unit covering >= 1 original passes."""

    __slots__ = ("members", "source_map", "write_keep", "partial")

    def __init__(self, members, source_map=None, write_keep=None, partial=None):
        self.members = members          # list[_FusedPass], plan order
        self.source_map = source_map    # fused chain: out <- first-stream slots
        self.write_keep = write_keep    # dead-write record mask (singletons)
        self.partial = partial          # _PartialLink for two-pass subset fusion


class _PartialLink:
    """A two-pass fusion over the *subset* of addresses the passes share.

    ``fa`` writes some blocks that ``fb`` immediately re-reads, but the
    match is not the exact bijection :func:`_link_map` needs -- ``fa``
    also writes blocks ``fb`` never touches, or ``fb`` also reads
    blocks ``fa`` never wrote.  Fuse the overlap (pipe those records
    straight from ``fa``'s read stream) and materialize only the
    remainder physically.
    """

    __slots__ = ("link_slots", "b_link_idx", "a_keep", "b_phys_idx")

    def __init__(self, link_slots, b_link_idx, a_keep, b_phys_idx):
        self.link_slots = link_slots    # fa-stream slots feeding piped fb reads
        self.b_link_idx = b_link_idx    # fb-stream positions filled by the pipe
        self.a_keep = a_keep            # fa write records still scattered
        self.b_phys_idx = b_phys_idx    # fb-stream positions gathered physically


def _reads_pipeable(f, simple_io: bool) -> bool:
    """All of a pass's reads consume and keep their records (no discard)."""
    return (
        f.read_addr.size > 0
        and bool(f.resolved_consume(simple_io).all())
        and not bool(f.read_discard.any())
    )


def _link_map(g, fa, fb, simple_io: bool) -> np.ndarray | None:
    """Slot map realizing ``fb``'s read stream from ``fa``'s read stream.

    Exists when ``fb`` reads (consuming) exactly the records ``fa``
    writes: then ``fb_stream = fa_stream[link]``, and the write/read
    round trip through the portion array can be skipped.
    """
    if not fa.write_addr.size or fa.write_addr.size != fb.read_addr.size:
        return None
    if not _reads_pipeable(fb, simple_io):
        return None
    qa = fa.rec_write_portion * g.N + fa.write_addr
    qb = fb.rec_read_portion * g.N + fb.read_addr
    order = np.argsort(qa)
    qa_sorted = qa[order]
    pos = np.searchsorted(qa_sorted, qb)
    if pos.size and int(pos.max()) >= qa_sorted.size:
        return None
    if not np.array_equal(qa_sorted[pos], qb):
        return None
    return fa.write_source[order[pos]]


def _partial_link(g, fa, fb, simple_io: bool) -> _PartialLink | None:
    """Subset link between consecutive passes; ``None`` when unsound.

    Requirements mirror :func:`_link_map` -- simple I/O, ``fb``'s reads
    all consume and keep -- relaxed from *exact bijection* to *any
    overlap*.  Qualified-address matching is block-exact: passes read
    and write whole blocks at the same record addresses, so a shared
    block matches on all of its records or none.

    One extra soundness condition: ``fb``'s writes must not target a
    skipped (piped) ``fa`` write block.  Strict execution would fault
    there (writing to the non-empty block ``fa`` materialized); with
    the block never materialized the fault would be lost, so such pairs
    refuse partial fusion and stay physical.
    """
    if not fa.write_addr.size or not fb.read_addr.size:
        return None
    if not _reads_pipeable(fa, simple_io) or not _reads_pipeable(fb, simple_io):
        return None
    qa = fa.rec_write_portion * g.N + fa.write_addr
    qb = fb.rec_read_portion * g.N + fb.read_addr
    order = np.argsort(qa)
    qa_sorted = qa[order]
    pos = np.minimum(np.searchsorted(qa_sorted, qb), qa_sorted.size - 1)
    matched = qa_sorted[pos] == qb
    if not matched.any():
        return None
    if fb.write_addr.size:
        qw = fb.rec_write_portion * g.N + fb.write_addr
        if np.intersect1d(qb[matched], qw).size:
            return None
    hit = order[pos[matched]]
    a_keep = np.ones(qa.size, dtype=bool)
    a_keep[hit] = False
    return _PartialLink(
        link_slots=fa.write_source[hit],
        b_link_idx=np.flatnonzero(matched),
        a_keep=a_keep,
        b_phys_idx=np.flatnonzero(~matched),
    )


def _dead_write_masks(g, fused, simple_io: bool):
    """Per-pass record keep-masks for writes overwritten before any read.

    Walks passes last-to-first carrying the set of portion-qualified
    addresses that a later pass overwrites with no read in between.
    Under simple I/O the strict engine faults on such plans, so the
    rewrite is offered only outside it.
    """
    if simple_io:
        return {}, 0
    masks = {}
    eliminated = 0
    kill = np.zeros(0, dtype=np.int64)
    for idx in range(len(fused) - 1, -1, -1):
        f = fused[idx]
        qw = f.rec_write_portion * g.N + f.write_addr
        qr = f.rec_read_portion * g.N + f.read_addr
        if kill.size and qw.size:
            dead = np.isin(qw, kill)
            if dead.any():
                masks[idx] = ~dead
                eliminated += int(dead.sum())
        if qw.size:
            kill = np.union1d(kill, qw)
        if qr.size and kill.size:
            kill = np.setdiff1d(kill, qr)
    return masks, eliminated


def _coalesced_steps(f, simple_io: bool) -> int:
    """Steps whose metadata folds into a wider contiguous segment."""
    folded = 0
    if f.read_sizes.size > 1:
        consume = f.resolved_consume(simple_io)
        runs = 1 + int(
            np.count_nonzero(
                (np.diff(f.read_portions) != 0)
                | (np.diff(consume.astype(np.int8)) != 0)
                | (np.diff(f.read_discard.astype(np.int8)) != 0)
            )
        )
        folded += f.read_sizes.size - runs
    if f.write_sizes.size > 1:
        runs = 1 + int(np.count_nonzero(np.diff(f.write_portions) != 0))
        folded += f.write_sizes.size - runs
    return folded


def optimize_plan(
    plan: IOPlan,
    num_portions: int = 2,
    simple_io: bool = True,
    fuse: bool = True,
    eliminate_dead_writes: bool = True,
    fuse_partial: bool = True,
) -> "OptimizedPlan":
    """Compile an :class:`IOPlan` into an :class:`OptimizedPlan`.

    ``num_portions`` and ``simple_io`` pin the system shape the
    optimized artifact is valid for (consume defaults and the fusion
    soundness argument depend on them); executing it against a system
    with a different shape transparently falls back to the plain fast
    engine.  ``fuse_partial`` enables the subset-overlap pair fusion
    for consecutive passes full-chain fusion refuses.
    """
    g = plan.geometry
    fused = [_fuse_pass(g, p) for p in plan.passes]
    for f in fused:
        _check_pass(g, num_portions, simple_io, f)

    masks, eliminated = (
        _dead_write_masks(g, fused, simple_io) if eliminate_dead_writes else ({}, 0)
    )

    groups: list[_Group] = []
    links = 0
    partial_records = 0
    i = 0
    while i < len(fused):
        members = [fused[i]]
        to_first: np.ndarray | None = None
        if fuse and simple_io and i not in masks and _reads_pipeable(fused[i], simple_io):
            while i + len(members) < len(fused):
                nxt_idx = i + len(members)
                if nxt_idx in masks:
                    break
                link = _link_map(g, members[-1], fused[nxt_idx], simple_io)
                if link is None:
                    break
                to_first = link if to_first is None else to_first[link]
                members.append(fused[nxt_idx])
        if len(members) > 1:
            source_map = to_first[members[-1].write_source]
            groups.append(_Group(members, source_map=source_map))
            links += len(members) - 1
            i += len(members)
            continue
        # Full-chain fusion refused; try fusing just the shared subset
        # with the next pass -- unless that pass would rather head a
        # full chain of its own (full links pipe strictly more).
        if (
            fuse
            and fuse_partial
            and simple_io
            and i not in masks
            and i + 1 < len(fused)
            and (i + 1) not in masks
        ):
            nxt = fused[i + 1]
            heads_full_chain = (
                i + 2 < len(fused)
                and (i + 2) not in masks
                and _reads_pipeable(nxt, simple_io)
                and _link_map(g, nxt, fused[i + 2], simple_io) is not None
            )
            plink = None if heads_full_chain else _partial_link(
                g, fused[i], nxt, simple_io
            )
            if plink is not None:
                groups.append(_Group([fused[i], nxt], partial=plink))
                partial_records += int(plink.link_slots.size)
                i += 2
                continue
        groups.append(_Group(members, write_keep=masks.get(i)))
        i += 1

    report = OptimizeReport(
        passes=len(fused),
        physical_passes=len(groups),
        fused_groups=sum(
            1 for grp in groups if len(grp.members) > 1 and grp.partial is None
        ),
        fused_links=links,
        eliminated_write_records=eliminated,
        coalesced_steps=sum(_coalesced_steps(f, simple_io) for f in fused),
        partial_groups=sum(1 for grp in groups if grp.partial is not None),
        partial_link_records=partial_records,
    )
    return OptimizedPlan(plan, fused, groups, report, num_portions, simple_io)


class OptimizedPlan:
    """A compiled plan: original passes plus their physical rewrite.

    The artifact owns nothing the original plan does not imply -- it can
    always fall back to executing ``plan`` directly (strict engine,
    attached observers, capture, or a system whose portion count /
    simple-I/O discipline differs from what it was compiled for), and
    the optimized path reports the *original* plan's per-pass stats and
    memory envelope.
    """

    __slots__ = ("plan", "_fused", "groups", "report", "num_portions", "simple_io")

    def __init__(self, plan, fused, groups, report, num_portions, simple_io):
        self.plan = plan
        self._fused = fused
        self.groups = groups
        self.report = report
        self.num_portions = num_portions
        self.simple_io = simple_io

    @property
    def geometry(self):
        return self.plan.geometry

    # ------------------------------------------------------------ certificate
    def verify(self) -> dict:
        """Cheap equivalence certificate; raises :class:`PlanError` on any
        structural violation, returns a summary dict otherwise.

        Checks: fused chains conserve record counts link by link, every
        composed slot map indexes inside the first member's read stream,
        dead-write masks only mask write records, and the pass list the
        optimized executor will report equals the original plan's.
        """
        total_passes = 0
        for grp in self.groups:
            total_passes += len(grp.members)
            if grp.source_map is not None:
                first, last = grp.members[0], grp.members[-1]
                for fa, fb in zip(grp.members, grp.members[1:]):
                    if fa.write_addr.size != fb.read_addr.size:
                        raise PlanError(
                            f"fused link {fa.label!r} -> {fb.label!r} does not "
                            "conserve records"
                        )
                if grp.source_map.size != last.write_addr.size:
                    raise PlanError(
                        f"group ending at {last.label!r}: slot map does not "
                        "cover the final writes"
                    )
                if grp.source_map.size and (
                    int(grp.source_map.min()) < 0
                    or int(grp.source_map.max()) >= first.stream_records
                ):
                    raise PlanError(
                        f"group ending at {last.label!r}: slot map escapes the "
                        "first pass's read stream"
                    )
            if grp.write_keep is not None:
                if grp.write_keep.shape != grp.members[0].write_addr.shape:
                    raise PlanError(
                        f"pass {grp.members[0].label!r}: dead-write mask shape "
                        "mismatch"
                    )
            if grp.partial is not None:
                fa, fb = grp.members
                pl = grp.partial
                if pl.b_link_idx.size != pl.link_slots.size:
                    raise PlanError(
                        f"partial pair {fa.label!r} -> {fb.label!r}: piped "
                        "slot counts do not match"
                    )
                if pl.b_link_idx.size + pl.b_phys_idx.size != fb.read_addr.size:
                    raise PlanError(
                        f"partial pair {fa.label!r} -> {fb.label!r}: piped and "
                        "physical reads do not cover the second pass"
                    )
                if pl.a_keep.shape != fa.write_addr.shape:
                    raise PlanError(
                        f"partial pair {fa.label!r} -> {fb.label!r}: keep mask "
                        "shape mismatch"
                    )
                if int(pl.a_keep.sum()) + pl.link_slots.size != fa.write_addr.size:
                    raise PlanError(
                        f"partial pair {fa.label!r} -> {fb.label!r}: skipped and "
                        "kept writes do not cover the first pass"
                    )
                if pl.link_slots.size and (
                    int(pl.link_slots.min()) < 0
                    or int(pl.link_slots.max()) >= fa.stream_records
                ):
                    raise PlanError(
                        f"partial pair {fa.label!r} -> {fb.label!r}: piped slots "
                        "escape the first pass's read stream"
                    )
        if total_passes != len(self._fused) or total_passes != self.plan.num_passes:
            raise PlanError("optimized groups do not cover the plan's passes")
        return {
            "passes": total_passes,
            "physical_passes": len(self.groups),
            "fused_links": self.report.fused_links,
            "partial_groups": self.report.partial_groups,
            "stats_identical_by_construction": True,
        }

    # -------------------------------------------------------------- execution
    def execute(
        self,
        system: ParallelDiskSystem,
        engine: str = "fast",
        stream_records=None,
        capture: bool = False,
        backend=None,
    ) -> ExecReport:
        if engine not in ENGINES:
            raise ValidationError(f"unknown engine {engine!r}; choose from {ENGINES}")
        get_backend(backend)  # validate the knob even on fallback paths
        if self.plan.geometry != system.geometry:
            raise ValidationError("plan and system geometries differ")
        if engine == "strict" or system._observers:
            report = _execute_strict(
                system, self.plan, capture=capture, stream_records=stream_records
            )
            if engine == "fast":
                report.fell_back = "observers"
            return report
        if capture:
            return _execute_fast(system, self.plan, capture=True, backend=backend)
        if (
            system.num_portions != self.num_portions
            or system.simple_io != self.simple_io
        ):
            report = _execute_fast(
                system, self.plan, stream_records=stream_records, backend=backend
            )
            report.fell_back = "system-shape-mismatch"
            return report
        return self._execute_optimized(system, stream_records, backend)

    def _group_footprint(self, g, grp) -> np.ndarray:
        """Union of member pass footprints (portion-qualified block keys)."""
        parts = [_pass_footprint(g, f) for f in grp.members]
        parts = [p for p in parts if p.size]
        if not parts:
            return np.zeros(0, dtype=np.int64)
        return np.unique(np.concatenate(parts))

    def _run_unit_data(self, system, grp, budget, kernels) -> tuple[int, int]:
        """One group's data movement, no stats; returns (host peak
        records, streamed-pass count)."""
        if grp.partial is not None:
            fa, fb = grp.members
            if budget is None or fa.stream_records + fb.stream_records <= budget:
                return self._run_partial_group(system, grp, kernels), 0
            # The pair would buffer both read streams at once; when that
            # busts the stream budget, the budget wins: run unfused.
            peak = streamed = 0
            for f in grp.members:
                p, num_segments = _run_fused_data(system, f, budget, kernels=kernels)
                peak = max(peak, p)
                streamed += 1 if num_segments > 1 else 0
            return peak, streamed
        if grp.source_map is not None:
            first = grp.members[0]
            if budget is None or first.stream_records <= budget:
                return self._run_group(system, grp, kernels), 0
            # The fused chain would buffer one whole read stream;
            # when that busts the stream budget, the budget wins:
            # run the members unfused through the streaming path.
            peak = streamed = 0
            for f in grp.members:
                p, num_segments = _run_fused_data(system, f, budget, kernels=kernels)
                peak = max(peak, p)
                streamed += 1 if num_segments > 1 else 0
            return peak, streamed
        f = grp.members[0]
        peak, num_segments = _run_fused_data(
            system, f, budget, kernels=kernels, write_keep=grp.write_keep
        )
        return peak, 1 if num_segments > 1 else 0

    def _execute_optimized(self, system, stream_records, backend=None) -> ExecReport:
        g = system.geometry
        for f in self._fused:
            _check_pass(g, system.num_portions, system.simple_io, f)
        _, _, mems = _check_memory(
            g, system.memory.capacity, system.memory.in_use, self._fused
        )
        # Groups cover self._fused in plan order; walk the per-execution
        # memory list alongside them (it is never stored on the shared
        # fused metadata -- concurrent executions each get their own).
        mem_of = dict(zip(map(id, self._fused), mems))
        kernels = get_backend(backend)
        budget = _stream_budget(stream_records)
        report = ExecReport(engine="fast", backend=kernels.name, optimized=True)

        def _finish(grp):
            for f in grp.members:
                _finish_pass(system, f, mem_of[id(f)])

        # Cross-pass scheduling over physical groups, mirroring the
        # unoptimized fast path: consecutive groups with disjoint block
        # footprints run concurrently; stats still land in plan order.
        groups = self.groups
        if kernels.parallel_units > 1 and len(groups) > 1:
            batches = _independent_batches(
                [self._group_footprint(g, grp) for grp in groups]
            )
        else:
            batches = [(i, i + 1) for i in range(len(groups))]
        serial = kernels.serial()
        for i, j in batches:
            checkpoint("pass", groups[i].members[0].label)
            if j - i == 1:
                peak, streamed = self._run_unit_data(
                    system, groups[i], budget, kernels
                )
                report.host_peak_records = max(report.host_peak_records, peak)
                report.streamed_passes += streamed
                _finish(groups[i])
                continue
            results: list[tuple[int, int] | None] = [None] * (j - i)

            def _unit(k: int) -> None:
                results[k - i] = self._run_unit_data(
                    system, groups[k], budget, serial
                )

            kernels.run_units([partial(_unit, k) for k in range(i, j)])
            for k in range(i, j):
                peak, streamed = results[k - i]
                report.host_peak_records = max(report.host_peak_records, peak)
                report.streamed_passes += streamed
                _finish(groups[k])
        return report

    def _run_group(self, system, grp, kernels: ExecutionBackend) -> int:
        """One fused chain: gather first reads, apply the composed slot
        permutation, scatter last writes; enforce every simple-I/O check
        the skipped link operations would have performed."""
        g = system.geometry
        data = system._data
        first, last = grp.members[0], grp.members[-1]

        stream = np.empty(first.stream_records, dtype=system.dtype)
        for portion, idx in _portion_groups(first.read_portions, first.rec_read_portion):
            if isinstance(idx, slice):
                kernels.gather(stream, data[portion], first.read_addr)
            else:
                stream[idx] = data[portion, first.read_addr[idx]]
        empty = system._is_empty(stream)
        if empty.any():
            bad = np.unique(np.repeat(first.read_ids, g.B)[empty])
            raise BlockStateError(
                f"reading empty/partial blocks {list(bad)} under simple I/O"
            )
        for portion, idx in _portion_groups(first.read_portions, first.rec_read_portion):
            if isinstance(idx, slice):
                kernels.fill(data[portion], first.read_addr, system.empty)
            else:
                data[portion, first.read_addr[idx]] = system.empty

        # Skipped links: their write targets must have been empty (the
        # write-to-empty rule); after the consume above, portion state
        # matches what strict execution would show at each link's time.
        for fa in grp.members[:-1]:
            _require_write_targets_empty(
                system, fa.write_portions, fa.rec_write_portion, fa.write_addr,
                kernels=kernels,
            )

        _require_write_targets_empty(
            system, last.write_portions, last.rec_write_portion, last.write_addr,
            kernels=kernels,
        )
        out = kernels.take(stream, grp.source_map)
        for portion, idx in _portion_groups(last.write_portions, last.rec_write_portion):
            if isinstance(idx, slice):
                kernels.scatter(data[portion], last.write_addr, out)
            else:
                data[portion, last.write_addr[idx]] = out[idx]
        return stream.size

    def _run_partial_group(self, system, grp, kernels: ExecutionBackend) -> int:
        """One partial pair: run ``fa`` whole (skipping the piped
        writes), then realize ``fb``'s stream from the pipe plus a
        physical gather of the remainder.

        Check order preserves strict fault semantics: ``fa``'s *entire*
        write set must target empty blocks (piped targets included --
        they stay physically empty, exactly as a consumed link leaves
        them), and ``fb``'s physical reads run through the same
        empty-and-consume discipline as any other read.  ``fb`` writing
        a piped block is refused at compile time (see
        :func:`_partial_link`), so no fault can hide behind the skip.
        """
        g = system.geometry
        data = system._data
        fa, fb = grp.members
        pl = grp.partial

        stream_a = np.empty(fa.stream_records, dtype=system.dtype)
        for portion, idx in _portion_groups(fa.read_portions, fa.rec_read_portion):
            if isinstance(idx, slice):
                kernels.gather(stream_a, data[portion], fa.read_addr)
            else:
                stream_a[idx] = data[portion, fa.read_addr[idx]]
        empty = system._is_empty(stream_a)
        if empty.any():
            bad = np.unique(np.repeat(fa.read_ids, g.B)[empty])
            raise BlockStateError(
                f"reading empty/partial blocks {list(bad)} under simple I/O"
            )
        for portion, idx in _portion_groups(fa.read_portions, fa.rec_read_portion):
            if isinstance(idx, slice):
                kernels.fill(data[portion], fa.read_addr, system.empty)
            else:
                data[portion, fa.read_addr[idx]] = system.empty

        _require_write_targets_empty(
            system, fa.write_portions, fa.rec_write_portion, fa.write_addr,
            kernels=kernels,
        )
        out_a = kernels.take(stream_a, fa.write_source)
        for portion, idx in _portion_groups(fa.write_portions, fa.rec_write_portion):
            mask = pl.a_keep if isinstance(idx, slice) else (idx & pl.a_keep)
            data[portion, fa.write_addr[mask]] = out_a[mask]

        stream_b = np.empty(fb.stream_records, dtype=system.dtype)
        stream_b[pl.b_link_idx] = stream_a[pl.link_slots]
        if pl.b_phys_idx.size:
            phys_addr = fb.read_addr[pl.b_phys_idx]
            phys_port = fb.rec_read_portion[pl.b_phys_idx]
            for portion, idx in _portion_groups(phys_port, phys_port):
                if isinstance(idx, slice):
                    values = kernels.take(data[portion], phys_addr)
                else:
                    values = data[portion, phys_addr[idx]]
                empty = system._is_empty(values)
                if empty.any():
                    bad = np.unique(phys_addr[idx][empty] >> g.b)
                    raise BlockStateError(
                        f"reading empty/partial blocks {list(bad)} under simple I/O"
                    )
                stream_b[pl.b_phys_idx[idx]] = values
                if isinstance(idx, slice):
                    kernels.fill(data[portion], phys_addr, system.empty)
                else:
                    data[portion, phys_addr[idx]] = system.empty

        _require_write_targets_empty(
            system, fb.write_portions, fb.rec_write_portion, fb.write_addr,
            kernels=kernels,
        )
        out_b = kernels.take(stream_b, fb.write_source)
        for portion, idx in _portion_groups(fb.write_portions, fb.rec_write_portion):
            if isinstance(idx, slice):
                kernels.scatter(data[portion], fb.write_addr, out_b)
            else:
                data[portion, fb.write_addr[idx]] = out_b[idx]
        return stream_a.size + stream_b.size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"OptimizedPlan({self.report.summary()})"
