"""Plan-level optimization: rewrite *how* a plan executes, not what it does.

The paper counts parallel I/Os; the simulator additionally pays host
work to move every record through the portion arrays.  For multi-pass
plans (the Theorem 21 factor chain, the merge-sort baseline) most of
that traffic is a write immediately consumed by the next pass's read --
the ping-pong portion is a glorified pipe.  :func:`optimize_plan`
detects those links statically and produces an :class:`OptimizedPlan`
that executes the whole chain as *one* physical gather → composed slot
permutation → scatter, while still reporting pass-by-pass
:class:`~repro.pdm.stats.IOStats` and memory peaks exactly as the
unoptimized plan would.  Three rewrites:

* **pass fusion across ping-pong portions** -- pass ``k+1`` reads
  (consuming) exactly the records pass ``k`` writes, so the write/read
  round trip through the portion array is replaced by composing the two
  slot permutations.  A chain of ``p`` passes becomes one gather and
  one scatter.
* **dead-write elimination** -- a write whose target block is
  overwritten by a later pass with no intervening read never influences
  the final state; the physical scatter is skipped (its I/O is still
  counted).  Only applies outside simple I/O: under simple I/O such a
  plan faults, and the optimizer must preserve the fault.
* **step coalescing** -- adjacent steps with identical (kind, portion,
  consume) metadata collapse into single gather/scatter segments; this
  falls out of the fused columnar representation and is reported, not
  re-derived.

Equivalence is by construction, and :meth:`OptimizedPlan.verify` checks
the construction cheaply: every fused link is a portion-qualified
address bijection, every composed slot map stays in range, and the
per-pass I/O counters the optimized executor will report are the
original plan's own fused counters.  The executed result is
byte-identical in portions and identical in stats to strict execution
(property-tested in ``tests/pdm/test_optimize.py``).

Simple-I/O discipline makes fusion sound: a consumed link leaves its
blocks exactly as empty as never materializing them would, and the
write-to-empty rule (checked by the optimized executor on every skipped
link) guarantees no pre-existing payload is lost by the skip.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import BlockStateError, PlanError, ValidationError
from repro.pdm.engine import (
    ENGINES,
    ExecReport,
    _check_memory,
    _check_pass,
    _execute_fast,
    _execute_strict,
    _finish_pass,
    _fuse_pass,
    _portion_groups,
    _require_write_targets_empty,
    _run_fused_pass,
    _stream_budget,
)
from repro.pdm.schedule import IOPlan
from repro.pdm.system import ParallelDiskSystem

__all__ = ["OptimizeReport", "OptimizedPlan", "optimize_plan"]


@dataclass(frozen=True)
class OptimizeReport:
    """What the optimizer found and rewrote."""

    passes: int                     # original plan passes
    physical_passes: int            # gather/scatter units after fusion
    fused_groups: int               # chains of >= 2 passes fused into one
    fused_links: int                # eliminated write->read round trips
    eliminated_write_records: int   # records whose scatter was dead
    coalesced_steps: int            # steps folded into wider segments

    def summary(self) -> str:
        return (
            f"{self.passes} passes -> {self.physical_passes} physical "
            f"({self.fused_groups} fused groups, {self.fused_links} links "
            f"eliminated, {self.eliminated_write_records} dead write records, "
            f"{self.coalesced_steps} steps coalesced)"
        )


class _Group:
    """One physical execution unit covering >= 1 original passes."""

    __slots__ = ("members", "source_map", "write_keep")

    def __init__(self, members, source_map=None, write_keep=None):
        self.members = members          # list[_FusedPass], plan order
        self.source_map = source_map    # fused chain: out <- first-stream slots
        self.write_keep = write_keep    # dead-write record mask (singletons)


def _reads_pipeable(f, simple_io: bool) -> bool:
    """All of a pass's reads consume and keep their records (no discard)."""
    return (
        f.read_addr.size > 0
        and bool(f.resolved_consume(simple_io).all())
        and not bool(f.read_discard.any())
    )


def _link_map(g, fa, fb, simple_io: bool) -> np.ndarray | None:
    """Slot map realizing ``fb``'s read stream from ``fa``'s read stream.

    Exists when ``fb`` reads (consuming) exactly the records ``fa``
    writes: then ``fb_stream = fa_stream[link]``, and the write/read
    round trip through the portion array can be skipped.
    """
    if not fa.write_addr.size or fa.write_addr.size != fb.read_addr.size:
        return None
    if not _reads_pipeable(fb, simple_io):
        return None
    qa = fa.rec_write_portion * g.N + fa.write_addr
    qb = fb.rec_read_portion * g.N + fb.read_addr
    order = np.argsort(qa)
    qa_sorted = qa[order]
    pos = np.searchsorted(qa_sorted, qb)
    if pos.size and int(pos.max()) >= qa_sorted.size:
        return None
    if not np.array_equal(qa_sorted[pos], qb):
        return None
    return fa.write_source[order[pos]]


def _dead_write_masks(g, fused, simple_io: bool):
    """Per-pass record keep-masks for writes overwritten before any read.

    Walks passes last-to-first carrying the set of portion-qualified
    addresses that a later pass overwrites with no read in between.
    Under simple I/O the strict engine faults on such plans, so the
    rewrite is offered only outside it.
    """
    if simple_io:
        return {}, 0
    masks = {}
    eliminated = 0
    kill = np.zeros(0, dtype=np.int64)
    for idx in range(len(fused) - 1, -1, -1):
        f = fused[idx]
        qw = f.rec_write_portion * g.N + f.write_addr
        qr = f.rec_read_portion * g.N + f.read_addr
        if kill.size and qw.size:
            dead = np.isin(qw, kill)
            if dead.any():
                masks[idx] = ~dead
                eliminated += int(dead.sum())
        if qw.size:
            kill = np.union1d(kill, qw)
        if qr.size and kill.size:
            kill = np.setdiff1d(kill, qr)
    return masks, eliminated


def _coalesced_steps(f, simple_io: bool) -> int:
    """Steps whose metadata folds into a wider contiguous segment."""
    folded = 0
    if f.read_sizes.size > 1:
        consume = f.resolved_consume(simple_io)
        runs = 1 + int(
            np.count_nonzero(
                (np.diff(f.read_portions) != 0)
                | (np.diff(consume.astype(np.int8)) != 0)
                | (np.diff(f.read_discard.astype(np.int8)) != 0)
            )
        )
        folded += f.read_sizes.size - runs
    if f.write_sizes.size > 1:
        runs = 1 + int(np.count_nonzero(np.diff(f.write_portions) != 0))
        folded += f.write_sizes.size - runs
    return folded


def optimize_plan(
    plan: IOPlan,
    num_portions: int = 2,
    simple_io: bool = True,
    fuse: bool = True,
    eliminate_dead_writes: bool = True,
) -> "OptimizedPlan":
    """Compile an :class:`IOPlan` into an :class:`OptimizedPlan`.

    ``num_portions`` and ``simple_io`` pin the system shape the
    optimized artifact is valid for (consume defaults and the fusion
    soundness argument depend on them); executing it against a system
    with a different shape transparently falls back to the plain fast
    engine.
    """
    g = plan.geometry
    fused = [_fuse_pass(g, p) for p in plan.passes]
    for f in fused:
        _check_pass(g, num_portions, simple_io, f)

    masks, eliminated = (
        _dead_write_masks(g, fused, simple_io) if eliminate_dead_writes else ({}, 0)
    )

    groups: list[_Group] = []
    links = 0
    i = 0
    while i < len(fused):
        members = [fused[i]]
        to_first: np.ndarray | None = None
        if fuse and simple_io and i not in masks and _reads_pipeable(fused[i], simple_io):
            while i + len(members) < len(fused):
                nxt_idx = i + len(members)
                if nxt_idx in masks:
                    break
                link = _link_map(g, members[-1], fused[nxt_idx], simple_io)
                if link is None:
                    break
                to_first = link if to_first is None else to_first[link]
                members.append(fused[nxt_idx])
        if len(members) > 1:
            source_map = to_first[members[-1].write_source]
            groups.append(_Group(members, source_map=source_map))
            links += len(members) - 1
        else:
            groups.append(_Group(members, write_keep=masks.get(i)))
        i += len(members)

    report = OptimizeReport(
        passes=len(fused),
        physical_passes=len(groups),
        fused_groups=sum(1 for grp in groups if len(grp.members) > 1),
        fused_links=links,
        eliminated_write_records=eliminated,
        coalesced_steps=sum(_coalesced_steps(f, simple_io) for f in fused),
    )
    return OptimizedPlan(plan, fused, groups, report, num_portions, simple_io)


class OptimizedPlan:
    """A compiled plan: original passes plus their physical rewrite.

    The artifact owns nothing the original plan does not imply -- it can
    always fall back to executing ``plan`` directly (strict engine,
    attached observers, capture, or a system whose portion count /
    simple-I/O discipline differs from what it was compiled for), and
    the optimized path reports the *original* plan's per-pass stats and
    memory envelope.
    """

    __slots__ = ("plan", "_fused", "groups", "report", "num_portions", "simple_io")

    def __init__(self, plan, fused, groups, report, num_portions, simple_io):
        self.plan = plan
        self._fused = fused
        self.groups = groups
        self.report = report
        self.num_portions = num_portions
        self.simple_io = simple_io

    @property
    def geometry(self):
        return self.plan.geometry

    # ------------------------------------------------------------ certificate
    def verify(self) -> dict:
        """Cheap equivalence certificate; raises :class:`PlanError` on any
        structural violation, returns a summary dict otherwise.

        Checks: fused chains conserve record counts link by link, every
        composed slot map indexes inside the first member's read stream,
        dead-write masks only mask write records, and the pass list the
        optimized executor will report equals the original plan's.
        """
        total_passes = 0
        for grp in self.groups:
            total_passes += len(grp.members)
            if grp.source_map is not None:
                first, last = grp.members[0], grp.members[-1]
                for fa, fb in zip(grp.members, grp.members[1:]):
                    if fa.write_addr.size != fb.read_addr.size:
                        raise PlanError(
                            f"fused link {fa.label!r} -> {fb.label!r} does not "
                            "conserve records"
                        )
                if grp.source_map.size != last.write_addr.size:
                    raise PlanError(
                        f"group ending at {last.label!r}: slot map does not "
                        "cover the final writes"
                    )
                if grp.source_map.size and (
                    int(grp.source_map.min()) < 0
                    or int(grp.source_map.max()) >= first.stream_records
                ):
                    raise PlanError(
                        f"group ending at {last.label!r}: slot map escapes the "
                        "first pass's read stream"
                    )
            if grp.write_keep is not None:
                if grp.write_keep.shape != grp.members[0].write_addr.shape:
                    raise PlanError(
                        f"pass {grp.members[0].label!r}: dead-write mask shape "
                        "mismatch"
                    )
        if total_passes != len(self._fused) or total_passes != self.plan.num_passes:
            raise PlanError("optimized groups do not cover the plan's passes")
        return {
            "passes": total_passes,
            "physical_passes": len(self.groups),
            "fused_links": self.report.fused_links,
            "stats_identical_by_construction": True,
        }

    # -------------------------------------------------------------- execution
    def execute(
        self,
        system: ParallelDiskSystem,
        engine: str = "fast",
        stream_records=None,
        capture: bool = False,
    ) -> ExecReport:
        if engine not in ENGINES:
            raise ValidationError(f"unknown engine {engine!r}; choose from {ENGINES}")
        if self.plan.geometry != system.geometry:
            raise ValidationError("plan and system geometries differ")
        if engine == "strict" or system._observers:
            report = _execute_strict(
                system, self.plan, capture=capture, stream_records=stream_records
            )
            if engine == "fast":
                report.fell_back = "observers"
            return report
        if capture:
            return _execute_fast(system, self.plan, capture=True)
        if (
            system.num_portions != self.num_portions
            or system.simple_io != self.simple_io
        ):
            report = _execute_fast(system, self.plan, stream_records=stream_records)
            report.fell_back = "system-shape-mismatch"
            return report
        return self._execute_optimized(system, stream_records)

    def _execute_optimized(self, system, stream_records) -> ExecReport:
        g = system.geometry
        for f in self._fused:
            _check_pass(g, system.num_portions, system.simple_io, f)
        _, _, mems = _check_memory(
            g, system.memory.capacity, system.memory.in_use, self._fused
        )
        # Groups cover self._fused in plan order; walk the per-execution
        # memory list alongside them (it is never stored on the shared
        # fused metadata -- concurrent executions each get their own).
        mem_of = dict(zip(map(id, self._fused), mems))
        budget = _stream_budget(stream_records)
        report = ExecReport(engine="fast", optimized=True)
        for grp in self.groups:
            if grp.source_map is not None:
                first = grp.members[0]
                if budget is None or first.stream_records <= budget:
                    size = self._run_group(system, grp)
                    report.host_peak_records = max(report.host_peak_records, size)
                    for f in grp.members:
                        _finish_pass(system, f, mem_of[id(f)])
                else:
                    # The fused chain would buffer one whole read stream;
                    # when that busts the stream budget, the budget wins:
                    # run the members unfused through the streaming path.
                    for f in grp.members:
                        _run_fused_pass(system, f, budget, report, mem_of[id(f)])
                continue
            f = grp.members[0]
            _run_fused_pass(
                system, f, budget, report, mem_of[id(f)], write_keep=grp.write_keep
            )
        return report

    def _run_group(self, system, grp) -> int:
        """One fused chain: gather first reads, apply the composed slot
        permutation, scatter last writes; enforce every simple-I/O check
        the skipped link operations would have performed."""
        g = system.geometry
        data = system._data
        first, last = grp.members[0], grp.members[-1]

        stream = np.empty(first.stream_records, dtype=system.dtype)
        for portion, idx in _portion_groups(first.read_portions, first.rec_read_portion):
            stream[idx] = data[portion, first.read_addr[idx]]
        empty = system._is_empty(stream)
        if empty.any():
            bad = np.unique(np.repeat(first.read_ids, g.B)[empty])
            raise BlockStateError(
                f"reading empty/partial blocks {list(bad)} under simple I/O"
            )
        for portion, idx in _portion_groups(first.read_portions, first.rec_read_portion):
            data[portion, first.read_addr[idx]] = system.empty

        # Skipped links: their write targets must have been empty (the
        # write-to-empty rule); after the consume above, portion state
        # matches what strict execution would show at each link's time.
        for fa in grp.members[:-1]:
            _require_write_targets_empty(
                system, fa.write_portions, fa.rec_write_portion, fa.write_addr
            )

        _require_write_targets_empty(
            system, last.write_portions, last.rec_write_portion, last.write_addr
        )
        out = stream[grp.source_map]
        for portion, idx in _portion_groups(last.write_portions, last.rec_write_portion):
            data[portion, last.write_addr[idx]] = out[idx]
        return stream.size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"OptimizedPlan({self.report.summary()})"
