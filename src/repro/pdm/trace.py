"""I/O tracing and parallelism analysis for simulator runs.

``IOTrace`` is an observer that records every parallel operation (kind,
blocks, disks, stripes) so experiments can analyze the *quality* of an
algorithm's I/O schedule, not just its count:

* **parallelism efficiency** -- average blocks moved per parallel I/O,
  relative to the ideal ``D`` (an algorithm that issues one-block ops
  wastes the array);
* **per-disk load balance** -- blocks touched per disk (the model gives
  a free ride to imbalance inside one op, but imbalance across ops
  serializes);
* **striped fraction** -- how much of the schedule is striped vs
  independent (the MLD/MRC disciplines of Sections 3-5 predict these
  exactly);
* an ASCII timeline of disk activity for small runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.pdm.system import IOEvent, ParallelDiskSystem

__all__ = ["IOTrace", "TraceSummary", "render_timeline"]


@dataclass
class TraceRecord:
    """One parallel I/O operation."""

    index: int
    kind: str  # "read" | "write"
    portion: int
    block_ids: np.ndarray
    disks: np.ndarray
    stripes: np.ndarray
    striped: bool


@dataclass
class TraceSummary:
    """Aggregate schedule-quality metrics."""

    parallel_ios: int
    blocks_moved: int
    ideal_parallelism: int
    average_parallelism: float
    efficiency: float  # average_parallelism / D
    striped_fraction: float
    per_disk_blocks: list[int]
    load_imbalance: float  # max/mean per-disk blocks

    def table(self) -> str:
        lines = [
            f"parallel I/Os:        {self.parallel_ios}",
            f"blocks moved:         {self.blocks_moved}",
            f"avg blocks per I/O:   {self.average_parallelism:.2f} "
            f"(ideal {self.ideal_parallelism})",
            f"parallelism efficiency: {self.efficiency:.1%}",
            f"striped fraction:     {self.striped_fraction:.1%}",
            f"per-disk blocks:      {self.per_disk_blocks}",
            f"load imbalance:       {self.load_imbalance:.3f}",
        ]
        return "\n".join(lines)


class IOTrace:
    """Attachable trace of every parallel I/O on a system."""

    def __init__(self, system: ParallelDiskSystem) -> None:
        self.system = system
        self.records: list[TraceRecord] = []
        system.add_observer(self._on_event)

    def detach(self) -> None:
        self.system.remove_observer(self._on_event)

    def _on_event(self, event: IOEvent) -> None:
        g = self.system.geometry
        disks = g.block_disk(event.block_ids)
        stripes = g.block_stripe(event.block_ids)
        striped = event.block_ids.size == g.D and bool(
            (stripes == stripes[0]).all()
        )
        self.records.append(
            TraceRecord(
                index=len(self.records),
                kind=event.kind,
                portion=event.portion,
                block_ids=event.block_ids.copy(),
                disks=np.asarray(disks),
                stripes=np.asarray(stripes),
                striped=striped,
            )
        )

    # --------------------------------------------------------------- queries
    def summary(self) -> TraceSummary:
        g = self.system.geometry
        n_ops = len(self.records)
        blocks = sum(r.block_ids.size for r in self.records)
        per_disk = [0] * g.D
        striped = 0
        for r in self.records:
            if r.striped:
                striped += 1
            for d in r.disks:
                per_disk[int(d)] += 1
        avg = blocks / n_ops if n_ops else 0.0
        mean_load = (sum(per_disk) / g.D) if g.D else 0.0
        return TraceSummary(
            parallel_ios=n_ops,
            blocks_moved=blocks,
            ideal_parallelism=g.D,
            average_parallelism=avg,
            efficiency=avg / g.D if g.D else 0.0,
            striped_fraction=striped / n_ops if n_ops else 0.0,
            per_disk_blocks=per_disk,
            load_imbalance=(max(per_disk) / mean_load) if mean_load else 0.0,
        )

    def reads(self) -> list[TraceRecord]:
        return [r for r in self.records if r.kind == "read"]

    def writes(self) -> list[TraceRecord]:
        return [r for r in self.records if r.kind == "write"]


def render_timeline(trace: IOTrace, max_ops: int = 64) -> str:
    """ASCII timeline: one column per parallel I/O, one row per disk.

    ``R``/``W`` mark a block transferred on that disk; ``.`` idle.
    Striped operations show as full columns -- the visual signature of
    MRC passes -- while MLD writes and detection reads show as full but
    stripe-scattered columns.
    """
    g = trace.system.geometry
    ops = trace.records[:max_ops]
    rows = []
    for d in range(g.D):
        cells = []
        for r in ops:
            if d in set(int(x) for x in r.disks):
                cells.append("R" if r.kind == "read" else "W")
            else:
                cells.append(".")
        rows.append(f"disk {d:>2} | " + "".join(cells))
    header = f"parallel I/O timeline (first {len(ops)} of {len(trace.records)} ops)"
    return header + "\n" + "\n".join(rows)
