"""Staged adaptive plans: declarative I/O for data-dependent algorithms.

A static :class:`~repro.pdm.schedule.IOPlan` fixes every parallel I/O
before anything runs, which suits algorithms whose schedule is a pure
function of the geometry and the permutation.  Adaptive algorithms --
the randomized-placement distribution sort, sample sorts, any schedule
derived from sampled state -- cannot commit to one plan up front: the
I/Os of pass ``k+1`` depend on state that only exists once pass ``k``
has materialized (peeked keys, a randomized placement map).

A :class:`StagedPlan` closes that gap without giving up the plan layer.
It wraps an *emitter*: a generator that yields one declarative
:class:`IOPlan` per stage and, between yields, may observe the
materialized state of the stages so far through a :class:`StageView`.
Each emitted stage is an ordinary plan -- the strict and fast engines,
the optimizer, and the streaming executor run it unchanged -- so an
adaptive algorithm pays for adaptivity only at stage boundaries.

Two ways to run a staged plan:

* :func:`execute_staged` drives the emitter against a live
  :class:`~repro.pdm.system.ParallelDiskSystem`: emit a stage, execute
  it under the chosen engine, let the emitter peek the post-stage
  portions, repeat.  This is the adaptive path.
* :func:`materialize_staged` drives the same emitter against a *pure
  simulation* (a bare portions array advanced by
  :meth:`IOPlan.apply_to`) and concatenates the stages into one static
  :class:`IOPlan`.  For planners whose adaptivity is resolved by the
  input data and a seeded RNG -- the distribution sort on the canonical
  ``fill_identity`` input -- the materialized plan is a pure function
  of ``(geometry, permutation, knobs, seed)`` and therefore cacheable
  through :mod:`repro.pdm.cache`, seed included in the key.

Both paths produce byte-identical portions and identical
:class:`~repro.pdm.stats.IOStats`; the conformance suite
(``tests/core/test_conformance.py``) holds every planner to that across
every engine/optimizer/cache/streaming combination.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator

import numpy as np

from repro.errors import ValidationError
from repro.pdm.engine import ExecReport, execute_plan
from repro.pdm.geometry import DiskGeometry
from repro.pdm.schedule import IOPlan
from repro.pdm.system import EMPTY, ParallelDiskSystem

__all__ = [
    "StageView",
    "SystemStageView",
    "SimulatedStageView",
    "StagedPlan",
    "StagedReport",
    "execute_staged",
    "materialize_staged",
    "identity_portions",
]


class StageView:
    """What an emitter may observe between stages: materialized records.

    Mirrors :meth:`ParallelDiskSystem.peek` -- inspection only, never an
    I/O.  Emitters must derive their schedules exclusively through this
    window so the same emitter runs unchanged against a live system
    (:class:`SystemStageView`) or a pure simulation
    (:class:`SimulatedStageView`).
    """

    geometry: DiskGeometry

    def peek(self, portion: int, start: int, stop: int) -> np.ndarray:
        raise NotImplementedError  # pragma: no cover - interface


class SystemStageView(StageView):
    """Live view: peeks the actual system between stage executions."""

    def __init__(self, system: ParallelDiskSystem) -> None:
        self.system = system
        self.geometry = system.geometry

    def peek(self, portion: int, start: int, stop: int) -> np.ndarray:
        return self.system.peek(portion, start, stop)


class SimulatedStageView(StageView):
    """Pure view: a portions array advanced by :meth:`IOPlan.apply_to`.

    No system, no model rules, no stats -- just the data a staged plan's
    stages would have materialized.  ``portions`` is owned by the view
    and mutated in place as stages are applied.
    """

    def __init__(
        self,
        geometry: DiskGeometry,
        portions: np.ndarray,
        simple_io: bool = True,
        empty=EMPTY,
    ) -> None:
        if portions.ndim != 2 or portions.shape[1] != geometry.N:
            raise ValidationError(
                f"simulated portions must have shape (num_portions, N={geometry.N}), "
                f"got {portions.shape}"
            )
        self.geometry = geometry
        self.portions = portions
        self.simple_io = simple_io
        self.empty = empty

    def peek(self, portion: int, start: int, stop: int) -> np.ndarray:
        return self.portions[portion, start:stop].copy()

    def apply(self, plan: IOPlan) -> None:
        plan.apply_to(self.portions, simple_io=self.simple_io, empty=self.empty)


def identity_portions(
    geometry: DiskGeometry,
    num_portions: int = 2,
    source_portion: int = 0,
    empty=EMPTY,
) -> np.ndarray:
    """The canonical initial state: ``fill_identity`` in one portion.

    This is the input contract of the payload-as-source-address
    algorithms (general sort, distribution sort); materializing a
    staged plan from it reproduces exactly the schedule a live run on a
    canonically filled system would take.
    """
    portions = np.full((num_portions, geometry.N), empty, dtype=np.int64)
    portions[source_portion] = np.arange(geometry.N, dtype=np.int64)
    return portions


class StagedPlan:
    """An adaptive plan: a sequence of stages emitted on demand.

    ``emit`` is a callable taking a :class:`StageView` and returning an
    iterator of :class:`IOPlan` stages; between ``yield``s it may peek
    the view to plan the next stage from materialized state.  ``meta``
    carries algorithm-level facts that are pure functions of the
    planner's arguments (pass counts, tuned knobs, final portion) so
    wrappers can report without re-deriving them.
    """

    __slots__ = ("geometry", "_emit", "meta")

    def __init__(
        self,
        geometry: DiskGeometry,
        emit: Callable[[StageView], Iterator[IOPlan]],
        meta=None,
    ) -> None:
        self.geometry = geometry
        self._emit = emit
        self.meta = meta

    def stages(self, view: StageView) -> Iterator[IOPlan]:
        """Iterate the stages against ``view`` (single use per iterator)."""
        if view.geometry != self.geometry:
            raise ValidationError("stage view and staged plan geometries differ")
        for plan in self._emit(view):
            if plan.geometry != self.geometry:
                raise ValidationError(
                    "emitter yielded a stage over a different geometry"
                )
            yield plan

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StagedPlan(geometry={self.geometry.describe()!r})"


@dataclass
class StagedReport:
    """Aggregate of one staged execution: per-stage reports folded up."""

    engine: str
    stages: int = 0
    passes: int = 0
    host_peak_records: int = 0
    streamed_passes: int = 0
    fell_back: str | None = None
    reports: list[ExecReport] = field(default_factory=list, repr=False)


def execute_staged(
    system: ParallelDiskSystem,
    staged: StagedPlan,
    engine: str = "strict",
    optimize: bool = False,
    stream_records=None,
    backend=None,
) -> StagedReport:
    """Run a staged plan adaptively: emit, execute, observe, repeat.

    Each stage executes through :func:`~repro.pdm.engine.execute_plan`
    with the given knobs, so per-stage behavior (rule enforcement,
    fusion, streaming, observer fallback) is exactly that of a static
    plan; the emitter sees the post-stage system state through a
    :class:`SystemStageView` before planning the next stage.
    """
    if staged.geometry != system.geometry:
        raise ValidationError("staged plan and system geometries differ")
    view = SystemStageView(system)
    out = StagedReport(engine=engine)
    for plan in staged.stages(view):
        report = execute_plan(
            system, plan, engine=engine, optimize=optimize,
            stream_records=stream_records, backend=backend,
        )
        out.stages += 1
        out.passes += plan.num_passes
        out.host_peak_records = max(out.host_peak_records, report.host_peak_records)
        out.streamed_passes += report.streamed_passes
        out.fell_back = out.fell_back or report.fell_back
        out.reports.append(report)
    return out


def materialize_staged(
    staged: StagedPlan,
    portions: np.ndarray,
    simple_io: bool = True,
    empty=EMPTY,
) -> IOPlan:
    """Resolve a staged plan into one static :class:`IOPlan`.

    The emitter runs against a :class:`SimulatedStageView` seeded with
    ``portions`` (the *initial* state; consumed by the simulation, pass
    a copy to keep it).  Stages are concatenated without pass merging
    or relabelling, so executing the materialized plan is
    pass-for-pass identical -- portions, stats, memory -- to
    :func:`execute_staged` from the same initial state.
    """
    view = SimulatedStageView(
        staged.geometry, portions, simple_io=simple_io, empty=empty
    )
    plans: list[IOPlan] = []
    for plan in staged.stages(view):
        plans.append(plan)
        view.apply(plan)
    if not plans:
        raise ValidationError("staged plan emitted no stages")
    return IOPlan.concatenate(plans, merge=False)
