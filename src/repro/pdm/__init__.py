"""The Vitter-Shriver parallel disk model (PDM), simulated.

``N`` records are striped over ``D`` disks in blocks of ``B`` records; a
RAM holds ``M`` records; one *parallel I/O* transfers at most one block
per disk (Section 1 of the paper, Figures 1-2).  The simulator stores
actual record payloads, enforces the model's two hard rules (one block
per disk per operation, never more than ``M`` records resident), counts
every operation, and classifies each as *striped* (same location on each
disk) or *independent*.

The paper's only cost metric is the number of parallel I/Os, so a
simulator that enforces exactly the model's rules measures exactly what
the theorems bound.
"""

from repro.pdm.geometry import DiskGeometry
from repro.pdm.memory import Memory
from repro.pdm.stats import IOStats, PassStats
from repro.pdm.system import ParallelDiskSystem
from repro.pdm.layout import render_figure1, render_figure2, render_portion
from repro.pdm.schedule import IOPlan, IOStep, PassColumns, PlanBuilder, PlanPass
from repro.pdm.engine import (
    ENGINES,
    STREAM_AUTO_RECORDS,
    ExecReport,
    PlanCheck,
    audit_plan,
    execute_plan,
    validate_plan,
)
from repro.pdm.optimize import OptimizedPlan, OptimizeReport, optimize_plan
from repro.pdm.stage import (
    SimulatedStageView,
    StagedPlan,
    StagedReport,
    StageView,
    SystemStageView,
    execute_staged,
    identity_portions,
    materialize_staged,
)
from repro.pdm.cache import (
    CacheInfo,
    CompiledPlan,
    PlanCache,
    ShardedPlanCache,
    cached_execute,
    compile_plan,
    plan_key,
)

__all__ = [
    "DiskGeometry",
    "Memory",
    "IOStats",
    "PassStats",
    "ParallelDiskSystem",
    "render_figure1",
    "render_figure2",
    "render_portion",
    "IOPlan",
    "IOStep",
    "PassColumns",
    "PlanBuilder",
    "PlanPass",
    "ENGINES",
    "STREAM_AUTO_RECORDS",
    "ExecReport",
    "PlanCheck",
    "audit_plan",
    "execute_plan",
    "validate_plan",
    "OptimizedPlan",
    "OptimizeReport",
    "optimize_plan",
    "StageView",
    "SystemStageView",
    "SimulatedStageView",
    "StagedPlan",
    "StagedReport",
    "execute_staged",
    "materialize_staged",
    "identity_portions",
    "CacheInfo",
    "CompiledPlan",
    "PlanCache",
    "ShardedPlanCache",
    "cached_execute",
    "compile_plan",
    "plan_key",
]
