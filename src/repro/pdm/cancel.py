"""Cooperative cancellation and per-request execution scopes.

The execution stack is synchronous numpy work: once a pass's fused
gather/scatter starts there is nothing to interrupt, but *between*
passes, between streamed segments, between backend shard dispatches,
and while waiting on a cache latch there are natural boundaries where a
worker can notice that its request no longer matters -- the deadline
expired, the client went away, the service is shutting down.  This
module is that seam.

A :class:`CancellationToken` carries an optional monotonic deadline and
a manual cancel flag.  :func:`run_scope` installs a token (plus an
optional fault-injection session, see :mod:`repro.serve.faults`) in a
thread-local scope for the duration of one request attempt, and
:func:`checkpoint` -- called by the engines, the optimizer, the
parallel backend, and the plan cache at their boundaries -- raises
:class:`~repro.errors.RequestCancelled` /
:class:`~repro.errors.DeadlineExceeded` when the token says to stop,
then gives the fault session a chance to fire.

The ambient-scope design is deliberate: threading a ``token=`` argument
through every planner wrapper, engine, backend, and cache signature
would couple the whole stack to the service layer.  Instead the scope
travels with the worker thread, the checkpoints are free when no scope
is installed (one thread-local read), and code that never heard of
deadlines participates automatically.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager

from repro.errors import DeadlineExceeded, RequestCancelled

__all__ = [
    "CancellationToken",
    "run_scope",
    "current_token",
    "current_faults",
    "current_trace",
    "checkpoint",
]


class CancellationToken:
    """A cancel flag plus an optional deadline, shared across threads.

    ``deadline`` is an absolute :func:`time.monotonic` instant;
    ``timeout`` is seconds from construction (both may be given -- the
    earlier wins).  :meth:`check` is the cooperative primitive: cheap
    when live, raising a typed error once cancelled or expired.
    :meth:`cancel` may be called from any thread (the service's
    hard-cancel path uses it); the waiting side observes it at its next
    checkpoint or :meth:`wait`.
    """

    __slots__ = ("deadline", "reason", "_event")

    def __init__(
        self, deadline: float | None = None, timeout: float | None = None
    ) -> None:
        if timeout is not None:
            at = time.monotonic() + float(timeout)
            deadline = at if deadline is None else min(deadline, at)
        self.deadline = deadline
        self.reason = ""
        self._event = threading.Event()

    def cancel(self, reason: str = "cancelled") -> None:
        """Flag the token; the owning worker unwinds at its next checkpoint."""
        self.reason = reason or "cancelled"
        self._event.set()

    @property
    def cancelled(self) -> bool:
        return self._event.is_set()

    def expired(self) -> bool:
        return self.deadline is not None and time.monotonic() >= self.deadline

    def remaining(self) -> float | None:
        """Seconds until the deadline (``None`` = no deadline)."""
        if self.deadline is None:
            return None
        return self.deadline - time.monotonic()

    def check(self) -> None:
        """Raise if the token is cancelled (or its deadline has passed)."""
        if self._event.is_set():
            raise RequestCancelled(self.reason or "cancelled")
        if self.deadline is not None and time.monotonic() >= self.deadline:
            raise DeadlineExceeded(
                f"deadline exceeded ({time.monotonic() - self.deadline:.3f}s past)"
            )

    def wait(self, timeout: float) -> bool:
        """Sleep up to ``timeout`` seconds, interruptible by :meth:`cancel`
        and bounded by the deadline; returns ``True`` if cancelled."""
        if self.deadline is not None:
            timeout = min(timeout, max(0.0, self.deadline - time.monotonic()))
        return self._event.wait(timeout)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "live"
        return f"CancellationToken({state}, remaining={self.remaining()})"


class _Scope:
    __slots__ = ("token", "faults", "trace")

    def __init__(self, token, faults, trace) -> None:
        self.token = token
        self.faults = faults
        self.trace = trace


_local = threading.local()


@contextmanager
def run_scope(token: CancellationToken | None = None, faults=None, trace=None):
    """Install ``token`` (and an optional fault session and timing
    trace) as the calling thread's ambient scope for the block.

    Scopes nest: the previous scope is restored on exit, so a request
    that itself drives the execution stack recursively keeps working.
    ``faults`` is any object with a ``fire(point, label)`` method; the
    service passes a per-request
    :class:`~repro.serve.faults.FaultSession`.  ``trace`` is any object
    with a ``record(stage, seconds)`` method (the service passes a
    :class:`~repro.serve.requests.RequestTrace`); the plan cache uses
    it to attribute plan/compile/execute/latch-wait time to the request
    that paid it, without the execution stack importing the service
    layer.
    """
    previous = getattr(_local, "scope", None)
    _local.scope = _Scope(token, faults, trace)
    try:
        yield
    finally:
        _local.scope = previous


def current_token() -> CancellationToken | None:
    """The calling thread's ambient cancellation token, if any."""
    scope = getattr(_local, "scope", None)
    return scope.token if scope is not None else None


def current_faults():
    """The calling thread's ambient fault session, if any."""
    scope = getattr(_local, "scope", None)
    return scope.faults if scope is not None else None


def current_trace():
    """The calling thread's ambient timing trace, if any."""
    scope = getattr(_local, "scope", None)
    return scope.trace if scope is not None else None


def checkpoint(point: str, label: str = "") -> None:
    """A cooperative boundary: honor cancellation, then fire faults.

    Called by the executors at pass boundaries, by streaming and the
    parallel backend at shard boundaries, by the optimizer between
    batched groups, and by the plan cache around compiles and latch
    waits.  Free (one thread-local read) when no scope is installed;
    the check runs *before* fault injection so a cancelled request
    never burns time on injected sleeps.
    """
    scope = getattr(_local, "scope", None)
    if scope is None:
        return
    if scope.token is not None:
        scope.token.check()
    if scope.faults is not None:
        scope.faults.fire(point, label)
