"""Compiled-plan cache: skip planning, fusing, and validation on repeats.

Planning a BMMC permutation is pure -- the emitted
:class:`~repro.pdm.schedule.IOPlan` depends only on the geometry, the
characteristic matrix (plus complement), the algorithm, and the portion
wiring.  Serving the same relayout to many requests (the "millions of
users" traffic shape: every FFT performs the same bit-reversal, every
matrix pipeline the same transpose) therefore re-derives byte-identical
plans over and over, and the planners -- per-memoryload argsorts and
class-property proofs -- dominate the cost of a fast execution.

:class:`PlanCache` is an LRU map from a :func:`plan_key` to a
:class:`CompiledPlan`: the plan with its fused per-pass arrays already
built, the model-rule audit already passed, and (optionally) the
cross-pass :class:`~repro.pdm.optimize.OptimizedPlan` rewrite already
compiled.  A cache hit goes straight to gather/scatter -- no planning,
no fusing, no structural validation; only the data-dependent simple-I/O
checks and the memory simulation (both O(plan) numpy work) remain.

Keys must capture *everything* the plan depends on; :func:`plan_key`
prefixes the algorithm name and geometry, and callers append the
characteristic matrix (hashable :class:`~repro.bits.matrix.BitMatrix`),
complement, portions, and any algorithm knobs.  Two systems with the
same geometry share compiled plans safely because plans are immutable
and executions never write to them (fused metadata is cached on the
plan, keyed by step count).
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable

from repro.errors import ValidationError
from repro.pdm.cancel import checkpoint, current_trace
from repro.pdm.engine import ExecReport, audit_plan, execute_plan, PlanCheck
from repro.pdm.geometry import DiskGeometry
from repro.pdm.schedule import IOPlan
from repro.pdm.system import ParallelDiskSystem

__all__ = [
    "CacheInfo",
    "ShardCacheInfo",
    "CompiledPlan",
    "PlanCache",
    "ShardedPlanCache",
    "plan_key",
    "compile_plan",
    "cached_execute",
]


@dataclass(frozen=True)
class CacheInfo:
    """Counters snapshot for one :class:`PlanCache`.

    ``latch_waits`` counts requesters that found another thread's
    compile in flight and waited on its latch (sharded caches only;
    always 0 for a plain :class:`PlanCache`).
    """

    hits: int
    misses: int
    evictions: int
    size: int
    maxsize: int
    latch_waits: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass(frozen=True)
class ShardCacheInfo:
    """One shard's counters, snapshotted under that shard's lock alone.

    The observability contract for ``/stats`` and ``/metrics``: a
    monitoring scrape reads shards one at a time
    (:meth:`ShardedPlanCache.shard_infos`), never holding more than one
    shard lock, so it cannot stall the serving hot path the way a
    stop-the-world snapshot would.
    """

    shard: int
    size: int
    hits: int
    misses: int
    evictions: int
    latch_waits: int
    inflight: int


def plan_key(algorithm: str, geometry: DiskGeometry, *components) -> tuple:
    """A hashable cache key: algorithm + geometry + caller components.

    Callers append whatever else the plan depends on -- characteristic
    matrices hash by content, so ``plan_key("mld", g, perm.matrix,
    perm.complement, src, dst)`` distinguishes exactly the workloads
    that need distinct plans.
    """
    return (algorithm, (geometry.N, geometry.B, geometry.D, geometry.M), *components)


class CompiledPlan:
    """A pre-fused, pre-validated plan, optionally pre-optimized.

    ``meta`` carries algorithm-level results that are pure functions of
    the key (e.g. the BMMC factor schedule and final portion) so cache
    hits can reconstruct their run reports without re-planning.
    """

    __slots__ = (
        "plan", "optimized", "check", "num_portions", "simple_io", "meta",
        "_opt_lock",
    )

    def __init__(
        self,
        plan: IOPlan,
        optimized,
        check: PlanCheck,
        num_portions: int,
        simple_io: bool,
        meta=None,
    ) -> None:
        self.plan = plan
        self.optimized = optimized
        self.check = check
        self.num_portions = num_portions
        self.simple_io = simple_io
        self.meta = meta
        self._opt_lock = threading.Lock()

    def ensure_optimized(self):
        """Compile (and memoize) the optimized form on first demand.

        Laziness keeps strict-only workloads from paying the optimizer's
        slot-map argsorts for an artifact the strict path never runs.
        Compiled plans are shared between concurrent requests (the
        service's whole point), so the first-use compile is serialized
        under a per-entry lock: N racing executions compile once.
        """
        if self.optimized is None:
            with self._opt_lock:
                if self.optimized is None:
                    from repro.pdm.optimize import optimize_plan

                    self.optimized = optimize_plan(
                        self.plan,
                        num_portions=self.num_portions,
                        simple_io=self.simple_io,
                    )
        return self.optimized

    def execute(
        self,
        system: ParallelDiskSystem,
        engine: str = "fast",
        stream_records=None,
        optimize: bool = True,
        backend=None,
    ) -> ExecReport:
        """Run the compiled plan.

        ``optimize`` selects the optimized form (compiled lazily on
        first fast-engine use); a compiled plan is shareable between
        callers that do and do not want the rewrites, so the choice is
        made here, per execution, not baked into the cache entry.
        ``backend`` likewise: compiled plans are backend-agnostic (the
        kernel backend never appears in :func:`plan_key`), so one entry
        serves every backend.
        """
        target = (
            self.ensure_optimized() if (optimize and engine == "fast") else self.plan
        )
        return execute_plan(
            system, target, engine=engine, stream_records=stream_records,
            backend=backend,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        shape = "optimized" if self.optimized is not None else "plain"
        return f"CompiledPlan({shape}, passes={self.plan.num_passes})"


def compile_plan(
    geometry: DiskGeometry,
    plan: IOPlan,
    num_portions: int = 2,
    simple_io: bool = True,
    optimize: bool = True,
    meta=None,
) -> CompiledPlan:
    """Fuse, audit, and (optionally) optimize a plan for reuse.

    This front-loads every input-independent cost: after compiling,
    executions skip straight to data movement.  No
    :class:`~repro.pdm.system.ParallelDiskSystem` is required -- the
    audit simulates the M-record memory from empty.
    """
    check = audit_plan(geometry, plan, num_portions=num_portions, simple_io=simple_io)
    optimized = None
    if optimize:
        from repro.pdm.optimize import optimize_plan

        optimized = optimize_plan(
            plan, num_portions=num_portions, simple_io=simple_io
        )
    return CompiledPlan(plan, optimized, check, num_portions, simple_io, meta=meta)


class PlanCache:
    """LRU cache of :class:`CompiledPlan` objects keyed by :func:`plan_key`."""

    def __init__(self, maxsize: int = 64) -> None:
        maxsize = int(maxsize)
        if maxsize < 1:
            # maxsize=0 would make every store instantly evict its own
            # entry: get_or_compile recompiles forever with misses and
            # evictions climbing while size stays pinned at 0.
            raise ValidationError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self._entries: OrderedDict[tuple, CompiledPlan] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def lookup(self, key: tuple) -> CompiledPlan | None:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def store(self, key: tuple, compiled: CompiledPlan) -> None:
        self._entries[key] = compiled
        self._entries.move_to_end(key)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
            self.evictions += 1

    def get_or_compile(
        self, key: tuple, compile_fn: Callable[[], CompiledPlan]
    ) -> tuple[CompiledPlan, bool]:
        """Serve ``key`` from the cache, compiling-and-storing on a miss.

        Returns ``(compiled, hit)``.  This is the one lookup path the
        execution wrappers use; :class:`ShardedPlanCache` overrides it
        with locked, compile-once semantics, so anything routed through
        here is transparently safe under a shared concurrent cache.
        """
        compiled = self.lookup(key)
        if compiled is not None:
            return compiled, True
        compiled = compile_fn()
        self.store(key, compiled)
        return compiled, False

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: tuple) -> bool:
        return key in self._entries

    def info(self) -> CacheInfo:
        return CacheInfo(
            hits=self.hits,
            misses=self.misses,
            evictions=self.evictions,
            size=len(self._entries),
            maxsize=self.maxsize,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        i = self.info()
        return (
            f"PlanCache(size={i.size}/{i.maxsize}, hits={i.hits}, "
            f"misses={i.misses}, evictions={i.evictions})"
        )


class ShardedPlanCache:
    """A thread-safe :class:`PlanCache` drop-in for concurrent serving.

    Entries are spread over ``num_shards`` independent LRU shards by
    ``hash(plan_key)``, each guarded by its own lock, so requests for
    unrelated keys never contend.  Counters (hits / misses / evictions)
    are updated under the owning shard's lock and are therefore *exact*
    under contention -- no lost increments, and
    ``hits + misses == requests`` reconciles deterministically.

    Cold misses get **compile-once** semantics: the first requester of a
    key installs an in-flight latch and compiles outside the lock;
    concurrent requesters of the same key wait on the latch and are
    served the stored entry as hits.  N racing cold requests therefore
    cost exactly one compile and count exactly one miss.  If the compile
    raises, the latch is removed and the error propagates to that
    requester alone; waiters retry (one becomes the new builder), so a
    poisoned request never wedges or corrupts the cache.
    """

    class _Shard:
        __slots__ = (
            "lock", "entries", "inflight", "hits", "misses", "evictions",
            "latch_waits",
        )

        def __init__(self) -> None:
            self.lock = threading.Lock()
            self.entries: OrderedDict[tuple, CompiledPlan] = OrderedDict()
            self.inflight: dict[tuple, threading.Event] = {}
            self.hits = 0
            self.misses = 0
            self.evictions = 0
            self.latch_waits = 0

    def __init__(self, maxsize: int = 64, num_shards: int = 8) -> None:
        num_shards = max(1, int(num_shards))
        maxsize = int(maxsize)
        if maxsize < 1:
            # maxsize=0 yields _per_shard == 0, so every store instantly
            # evicts its own entry and the cache silently never holds
            # anything (misses/evictions climb forever, size stays 0).
            raise ValidationError(f"maxsize must be >= 1, got {maxsize}")
        if maxsize < num_shards:
            # every shard needs capacity for at least one entry, or a
            # single hot key per shard would thrash
            num_shards = max(1, maxsize)
        self.maxsize = maxsize
        self._shards = [self._Shard() for _ in range(num_shards)]
        # ceil split so the total capacity is never below maxsize
        self._per_shard = -(-maxsize // num_shards)

    @property
    def num_shards(self) -> int:
        return len(self._shards)

    def _shard_of(self, key: tuple) -> "ShardedPlanCache._Shard":
        return self._shards[hash(key) % len(self._shards)]

    def _store_locked(self, shard: "_Shard", key: tuple, compiled: CompiledPlan) -> None:
        shard.entries[key] = compiled
        shard.entries.move_to_end(key)
        while len(shard.entries) > self._per_shard:
            shard.entries.popitem(last=False)
            shard.evictions += 1

    # ------------------------------------------------- PlanCache-compatible API
    def lookup(self, key: tuple) -> CompiledPlan | None:
        """Non-coalescing probe (counts a miss even if a compile is in
        flight); prefer :meth:`get_or_compile` on serving paths."""
        shard = self._shard_of(key)
        with shard.lock:
            entry = shard.entries.get(key)
            if entry is None:
                shard.misses += 1
                return None
            shard.entries.move_to_end(key)
            shard.hits += 1
            return entry

    def store(self, key: tuple, compiled: CompiledPlan) -> None:
        shard = self._shard_of(key)
        with shard.lock:
            self._store_locked(shard, key, compiled)

    def get_or_compile(
        self, key: tuple, compile_fn: Callable[[], CompiledPlan]
    ) -> tuple[CompiledPlan, bool]:
        """Locked lookup with compile-once cold misses; see class docs."""
        shard = self._shard_of(key)
        while True:
            with shard.lock:
                entry = shard.entries.get(key)
                if entry is not None:
                    shard.entries.move_to_end(key)
                    shard.hits += 1
                    return entry, True
                latch = shard.inflight.get(key)
                if latch is None:
                    latch = shard.inflight[key] = threading.Event()
                    shard.misses += 1
                    building = True
                else:
                    shard.latch_waits += 1
                    building = False
            if not building:
                # Another thread is compiling this key: wait, then rescan.
                # Either the entry landed (hit) or the builder failed and
                # removed the latch (this thread retries as the builder).
                # The wait is sliced so a waiter whose deadline expires
                # (or whose service hard-cancels) unwinds promptly
                # instead of being held hostage by a slow builder; the
                # builder itself is unaffected and still lands the entry.
                waited_from = time.perf_counter()
                while not latch.wait(0.05):
                    checkpoint("latch-wait", str(key[0]) if key else "")
                trace = current_trace()
                if trace is not None:
                    trace.record("latch_wait", time.perf_counter() - waited_from)
                continue
            try:
                compiled = compile_fn()
            except BaseException:
                with shard.lock:
                    shard.inflight.pop(key, None)
                latch.set()
                raise
            with shard.lock:
                self._store_locked(shard, key, compiled)
                shard.inflight.pop(key, None)
            latch.set()
            return compiled, False

    def clear(self) -> None:
        for shard in self._shards:
            with shard.lock:
                shard.entries.clear()

    def __len__(self) -> int:
        return sum(len(s.entries) for s in self._shards)

    def __contains__(self, key: tuple) -> bool:
        shard = self._shard_of(key)
        with shard.lock:
            return key in shard.entries

    @property
    def hits(self) -> int:
        return sum(s.hits for s in self._shards)

    @property
    def misses(self) -> int:
        return sum(s.misses for s in self._shards)

    @property
    def evictions(self) -> int:
        return sum(s.evictions for s in self._shards)

    @property
    def latch_waits(self) -> int:
        return sum(s.latch_waits for s in self._shards)

    def info(self) -> CacheInfo:
        return CacheInfo(
            hits=self.hits,
            misses=self.misses,
            evictions=self.evictions,
            size=len(self),
            maxsize=self.maxsize,
            latch_waits=self.latch_waits,
        )

    def shard_infos(self) -> list[ShardCacheInfo]:
        """Per-shard counter snapshots, one shard lock at a time.

        Deliberately *not* atomic across shards: a scrape that locked
        every shard at once would serialize against the serving hot
        path.  Each row is exact for its shard; the concatenation is a
        near-point-in-time view, which is what monitoring needs.
        """
        infos = []
        for index, shard in enumerate(self._shards):
            with shard.lock:
                infos.append(
                    ShardCacheInfo(
                        shard=index,
                        size=len(shard.entries),
                        hits=shard.hits,
                        misses=shard.misses,
                        evictions=shard.evictions,
                        latch_waits=shard.latch_waits,
                        inflight=len(shard.inflight),
                    )
                )
        return infos

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        i = self.info()
        return (
            f"ShardedPlanCache(shards={self.num_shards}, size={i.size}/"
            f"{i.maxsize}, hits={i.hits}, misses={i.misses}, "
            f"evictions={i.evictions})"
        )


def cached_execute(
    system: ParallelDiskSystem,
    cache: PlanCache | ShardedPlanCache | None,
    key: tuple,
    build: Callable[[], tuple[IOPlan, object]],
    engine: str = "fast",
    optimize: bool = True,
    stream_records=None,
    backend=None,
) -> tuple[CompiledPlan, ExecReport, bool]:
    """Execute through the cache; compile-and-store on a miss.

    ``build`` is the pure planner thunk, returning ``(plan, meta)``.
    Returns ``(compiled, exec_report, hit)``.  All cache traffic goes
    through ``cache.get_or_compile``, so a :class:`ShardedPlanCache`
    shared between worker threads gets compile-once cold misses and
    exact counters with no changes to the algorithm wrappers.

    The optimized form is compiled lazily, on the entry's first
    fast-engine execution with ``optimize=True``, then memoized; the
    caller's flag selects which form executes, so one entry serves
    callers on either setting without re-compilation or a key split.

    When the calling thread carries an ambient timing trace
    (:func:`~repro.pdm.cancel.current_trace` -- the service installs
    one per request), the plan/compile/execute stage costs are recorded
    on it, so every served result can report where its wall time went.
    """
    trace = current_trace()

    def _compile() -> CompiledPlan:
        checkpoint("planner", str(key[0]) if key else "")
        planned_from = time.perf_counter()
        plan, meta = build()
        compiled_from = time.perf_counter()
        compiled = compile_plan(
            system.geometry,
            plan,
            num_portions=system.num_portions,
            simple_io=system.simple_io,
            optimize=False,  # lazy: see CompiledPlan.ensure_optimized
            meta=meta,
        )
        if trace is not None:
            trace.record("plan", compiled_from - planned_from)
            trace.record("compile", time.perf_counter() - compiled_from)
        return compiled

    if cache is None:
        compiled, hit = _compile(), False
    else:
        compiled, hit = cache.get_or_compile(key, _compile)
    executed_from = time.perf_counter()
    report = compiled.execute(
        system, engine=engine, stream_records=stream_records, optimize=optimize,
        backend=backend,
    )
    if trace is not None:
        trace.record("execute", time.perf_counter() - executed_from)
    return compiled, report, hit
