"""Plan execution engines: strict replay and fused fast mode.

Two ways to run an :class:`~repro.pdm.schedule.IOPlan` on a
:class:`~repro.pdm.system.ParallelDiskSystem`, chosen by the
``engine`` knob:

* **strict** replays the plan step-by-step through the existing
  ``read_blocks``/``write_blocks`` path, so every model rule
  (one block per disk, memory capacity, simple I/O) is enforced on
  every operation and observers see every :class:`IOEvent`.  This is
  the reference semantics -- identical to the hand-written performers
  the planners replaced.

* **fast** validates the *whole plan* up front (vectorized conflict,
  capacity, and slot checks across all steps) and then executes each
  pass as one fused numpy gather/scatter, updating
  :class:`~repro.pdm.stats.IOStats` and the memory accountant in bulk.
  Per-step Python overhead disappears; portions, stats snapshots, pass
  tables, and the memory peak come out identical to strict execution.

Fused execution reorders nothing observable: it requires that within a
pass no block is touched twice in an order-dependent way (checked; a
violating plan raises :class:`~repro.errors.PlanError`).  All plans
emitted by :mod:`repro.core` satisfy this by construction -- a pass
reads each source block once and writes each target block once.

When observers are attached (e.g. :class:`~repro.pdm.trace.IOTrace`),
``execute_plan`` silently falls back to strict so per-operation events
keep flowing.

Host-memory note: both executors *stream* their host-side read-stream
buffer.  When a pass's read stream exceeds the chunk budget
(``stream_records``, default auto at :data:`STREAM_AUTO_RECORDS`), it
is cut at liveness boundaries -- step positions after which every
already-read stream slot has retired, i.e. no later write sources it --
and the buffer is recycled chunk by chunk, so the host working set is
O(live slots) instead of O(N).  The fast engine executes each chunk as
one fused gather/scatter; strict replay still issues every I/O through
the rule-checked per-operation path and merely reuses the smaller
buffer.  Planner-emitted passes
retire a memoryload's slots as soon as its writes are planned, so their
live set is ~M and arbitrarily large N executes in bounded host memory.
Every ``execute_plan`` call returns an :class:`ExecReport` recording
the observed host peak.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from functools import partial

import numpy as np

from repro.errors import (
    BlockStateError,
    DiskConflictError,
    MemoryCapacityError,
    PlanError,
    ValidationError,
)
from repro.pdm.cancel import checkpoint
from repro.pdm.geometry import DiskGeometry
from repro.pdm.schedule import IOPlan, PlanPass
from repro.pdm.system import ParallelDiskSystem

__all__ = [
    "ENGINES",
    "BACKENDS",
    "STREAM_AUTO_RECORDS",
    "ExecReport",
    "ExecutionBackend",
    "NumpyBackend",
    "ParallelBackend",
    "get_backend",
    "execute_plan",
    "validate_plan",
    "audit_plan",
    "PlanCheck",
]

#: The two execution modes.
ENGINES = ("strict", "fast")

#: Fused-execution kernel backends (the ``backend`` knob of the fast
#: engine).  ``numpy`` is the single-threaded reference; ``parallel``
#: shards large gather/scatter calls across worker threads.
BACKENDS = ("numpy", "parallel")

#: Auto-streaming threshold: a pass whose read stream exceeds this many
#: records is executed in liveness-bounded chunks by the fast engine.
STREAM_AUTO_RECORDS = 1 << 22

_I64_MAX = np.iinfo(np.int64).max


@dataclass(frozen=True)
class PlanCheck:
    """Summary returned by :func:`validate_plan` after a full-plan audit."""

    passes: int
    parallel_reads: int
    parallel_writes: int
    striped_reads: int
    striped_writes: int
    blocks_read: int
    blocks_written: int
    peak_memory_records: int
    net_memory_records: int

    @property
    def parallel_ios(self) -> int:
        return self.parallel_reads + self.parallel_writes


@dataclass
class ExecReport:
    """What one ``execute_plan`` call actually did.

    ``host_peak_records`` is the largest host-side read-stream buffer
    the executor materialized (the simulated machine's M-record rule is
    accounted separately, by :class:`~repro.pdm.memory.Memory`);
    ``streamed_passes`` counts passes executed in more than one chunk.
    ``streams`` holds each pass's captured read stream when the call
    asked for ``capture=True`` (the run-time detector's path).
    """

    engine: str
    backend: str = "numpy"
    host_peak_records: int = 0
    streamed_passes: int = 0
    optimized: bool = False
    fell_back: str | None = None
    streams: list[np.ndarray] | None = field(default=None, repr=False)


# ------------------------------------------------------------------ backends
def _env_int(name: str, default: int, minimum: int | None = None) -> int:
    """Read an integer knob from the environment, validated once, here.

    Malformed or out-of-range values raise a :class:`ValidationError`
    naming the variable -- not a bare ``ValueError`` from deep inside a
    kernel -- so a typo in a deployment manifest surfaces as
    configuration feedback, not an engine crash.
    """
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return default
    try:
        value = int(raw)
    except ValueError:
        raise ValidationError(
            f"environment variable {name} must be an integer, got {raw!r}"
        ) from None
    if minimum is not None and value < minimum:
        raise ValidationError(
            f"environment variable {name} must be >= {minimum}, got {value}"
        )
    return value


class ExecutionBackend:
    """Kernel seam for fused execution: gather, scatter, fill, take.

    The fast engine's data movement funnels through these four
    primitives plus :meth:`run_units` (cross-pass scheduling).  A
    backend may reorder *how* records move but never *what* moves:
    every kernel is elementwise-deterministic, so portions, stats, and
    memory accounting are byte-identical across backends.

    ``numpy`` is the single-threaded reference; ``parallel`` shards
    large calls across a thread pool (``np.take``/``np.put`` release
    the GIL on contiguous arrays, so threads give real speedup without
    processes).
    """

    name = "numpy"
    workers = 1

    #: Upper bound on independent passes :meth:`run_units` runs at once.
    parallel_units = 1

    def serial(self) -> "ExecutionBackend":
        """The backend used *inside* concurrently scheduled passes.

        Pass-level and kernel-level parallelism never nest: a unit
        running on a pool thread must not submit shard work back to the
        same pool (queueing behind sibling units can deadlock), so
        concurrent units always run their kernels on the serial
        reference backend.
        """
        return self

    def gather(self, dst: np.ndarray, src: np.ndarray, idx: np.ndarray) -> None:
        np.take(src, idx, out=dst)

    def take(self, src: np.ndarray, idx: np.ndarray) -> np.ndarray:
        return src[idx]

    def scatter(self, dst: np.ndarray, idx: np.ndarray, values: np.ndarray) -> None:
        dst[idx] = values

    def fill(self, dst: np.ndarray, idx: np.ndarray, value) -> None:
        dst[idx] = value

    def run_units(self, thunks) -> None:
        for thunk in thunks:
            thunk()


class NumpyBackend(ExecutionBackend):
    """The reference backend: the fused-numpy path, single-threaded."""


class ParallelBackend(ExecutionBackend):
    """Thread-sharded kernels along record-range (disk/segment) boundaries.

    Each large gather/scatter splits its index array into contiguous
    chunks dispatched to a shared :class:`ThreadPoolExecutor`; chunks
    are disjoint output ranges, so workers never touch the same
    elements.  Calls below the crossover (``min_records``) run inline
    on the numpy path -- thread fan-out costs more than it saves on
    small segments.

    Environment knobs (read at construction):

    * ``REPRO_PARALLEL_WORKERS`` -- pool width (default: cpu count)
    * ``REPRO_PARALLEL_MIN_RECORDS`` -- crossover below which calls
      stay inline (default ``1 << 16``)
    * ``REPRO_PARALLEL_CHUNK_RECORDS`` -- minimum shard size
      (default ``1 << 15``)
    """

    name = "parallel"

    def __init__(
        self,
        workers: int | None = None,
        min_records: int | None = None,
        chunk_records: int | None = None,
    ) -> None:
        if workers is None:
            workers = _env_int("REPRO_PARALLEL_WORKERS", os.cpu_count() or 1, minimum=1)
        if min_records is None:
            min_records = _env_int("REPRO_PARALLEL_MIN_RECORDS", 1 << 16, minimum=0)
        if chunk_records is None:
            chunk_records = _env_int("REPRO_PARALLEL_CHUNK_RECORDS", 1 << 15, minimum=1)
        self.workers = max(1, int(workers))
        self.min_records = max(0, int(min_records))
        self.chunk_records = max(1, int(chunk_records))
        self._pool: ThreadPoolExecutor | None = None
        self._pool_lock = threading.Lock()

    @property
    def parallel_units(self) -> int:
        return self.workers

    def serial(self) -> ExecutionBackend:
        return _NUMPY

    def pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            with self._pool_lock:
                if self._pool is None:
                    self._pool = ThreadPoolExecutor(
                        max_workers=self.workers,
                        thread_name_prefix="repro-backend",
                    )
        return self._pool

    def _sharded(self, n: int) -> bool:
        return self.workers > 1 and n >= self.min_records and n > self.chunk_records

    def _ranges(self, n: int) -> list[tuple[int, int]]:
        """Chunk boundaries: at least ``chunk_records`` each, at most
        ~2 chunks per worker (fan-out overhead caps out quickly)."""
        size = max(self.chunk_records, -(-n // (2 * self.workers)))
        return [(lo, min(lo + size, n)) for lo in range(0, n, size)]

    def _run(self, tasks) -> None:
        """Run shard tasks, first inline on the calling thread; re-raise
        the earliest failure (by task order) after all have settled, so
        no worker is still touching shared arrays when this returns."""
        checkpoint("shard")
        futures = [self.pool().submit(t) for t in tasks[1:]]
        first_exc: BaseException | None = None
        try:
            tasks[0]()
        except BaseException as exc:
            first_exc = exc
        for fut in futures:
            try:
                fut.result()
            except BaseException as exc:
                if first_exc is None:
                    first_exc = exc
        if first_exc is not None:
            raise first_exc

    def gather(self, dst: np.ndarray, src: np.ndarray, idx: np.ndarray) -> None:
        n = idx.size
        if not self._sharded(n):
            np.take(src, idx, out=dst)
            return
        self._run([
            partial(np.take, src, idx[lo:hi], out=dst[lo:hi])
            for lo, hi in self._ranges(n)
        ])

    def take(self, src: np.ndarray, idx: np.ndarray) -> np.ndarray:
        if not self._sharded(idx.size):
            return src[idx]
        out = np.empty(idx.size, dtype=src.dtype)
        self.gather(out, src, idx)
        return out

    @staticmethod
    def _put(dst: np.ndarray, idx: np.ndarray, values) -> None:
        if dst.flags.c_contiguous:
            np.put(dst, idx, values)
        else:
            dst[idx] = values

    def scatter(self, dst: np.ndarray, idx: np.ndarray, values: np.ndarray) -> None:
        n = idx.size
        if not self._sharded(n):
            dst[idx] = values
            return
        self._run([
            partial(self._put, dst, idx[lo:hi], values[lo:hi])
            for lo, hi in self._ranges(n)
        ])

    def fill(self, dst: np.ndarray, idx: np.ndarray, value) -> None:
        n = idx.size
        if not self._sharded(n):
            dst[idx] = value
            return
        self._run([
            partial(self._put, dst, idx[lo:hi], value)
            for lo, hi in self._ranges(n)
        ])

    def run_units(self, thunks) -> None:
        if len(thunks) <= 1 or self.workers <= 1:
            for thunk in thunks:
                thunk()
            return
        futures = [self.pool().submit(t) for t in thunks]
        first_exc: BaseException | None = None
        for fut in futures:
            try:
                fut.result()
            except BaseException as exc:
                if first_exc is None:
                    first_exc = exc
        if first_exc is not None:
            raise first_exc


_NUMPY = NumpyBackend()
_BACKEND_SINGLETONS: dict[str, ExecutionBackend] = {"numpy": _NUMPY}
_BACKEND_LOCK = threading.Lock()


def get_backend(backend=None) -> ExecutionBackend:
    """Resolve the ``backend`` knob to an :class:`ExecutionBackend`.

    ``None`` resolves through the ``REPRO_BACKEND`` environment
    variable (default ``"numpy"``); a string picks the shared singleton
    of that name; an :class:`ExecutionBackend` instance passes through
    (tests use this to force tiny chunk configurations).
    """
    if isinstance(backend, ExecutionBackend):
        return backend
    from_env = False
    if backend is None:
        backend = os.environ.get("REPRO_BACKEND") or "numpy"
        from_env = True
    if backend not in BACKENDS:
        if from_env:
            raise ValidationError(
                f"environment variable REPRO_BACKEND names an unknown "
                f"backend {backend!r}; choose from {BACKENDS}"
            )
        raise ValidationError(
            f"unknown backend {backend!r}; choose from {BACKENDS}"
        )
    instance = _BACKEND_SINGLETONS.get(backend)
    if instance is None:
        with _BACKEND_LOCK:
            instance = _BACKEND_SINGLETONS.get(backend)
            if instance is None:
                instance = _BACKEND_SINGLETONS[backend] = ParallelBackend()
    return instance


class _FusedPass:
    """Concatenated per-pass step metadata for vectorized checks/execution."""

    __slots__ = (
        "label", "num_steps",
        "read_ids", "read_sizes", "read_portions", "read_striped",
        "read_consume_default", "read_consume_value", "read_discard",
        "read_addr", "rec_read_portion",
        "write_ids", "write_sizes", "write_portions", "write_striped",
        "write_addr", "write_source", "rec_write_portion",
        "write_source_max", "write_source_min",
        "is_read", "step_sizes", "reads_before",
        "read_before", "write_before", "read_rec_cum", "write_rec_cum",
        "checked_for",  # (num_portions, simple_io) the checks last ran against
    )

    def resolved_consume(self, simple_io: bool) -> np.ndarray:
        """Per-read-step consume flags with ``None`` resolved to the default."""
        return np.where(self.read_consume_default, simple_io, self.read_consume_value)

    @property
    def stream_records(self) -> int:
        """Total records the pass reads (its read-stream length)."""
        return int(self.read_rec_cum[-1])


def _segment_striped(g, ids: np.ndarray, sizes: np.ndarray) -> np.ndarray:
    """Per-step striped flags: exactly D blocks, all in one stripe."""
    if sizes.size == 0:
        return np.zeros(0, dtype=bool)
    if (sizes == 0).any():  # malformed; validation will raise
        return np.zeros(sizes.size, dtype=bool)
    stripes = ids >> g.d
    offsets = np.concatenate(([0], np.cumsum(sizes)[:-1]))
    lo = np.minimum.reduceat(stripes, offsets)
    hi = np.maximum.reduceat(stripes, offsets)
    return (sizes == g.D) & (lo == hi)


def _read_cumulatives(B, is_read, read_sizes):
    """(read steps before each step position, records read before each
    read step) -- shared by fusion and liveness segmentation."""
    read_before = np.concatenate(([0], np.cumsum(is_read, dtype=np.int64)))
    read_rec_cum = np.concatenate(([0], np.cumsum(read_sizes * B, dtype=np.int64)))
    return read_before, read_rec_cum


def _write_source_extrema(B, write_sizes, write_source):
    """Per-write-step (min, max) sourced stream slot, empty-safe."""
    if write_sizes.size and (write_sizes > 0).all():
        offsets = np.concatenate(([0], np.cumsum(write_sizes * B)[:-1]))
        return (
            np.minimum.reduceat(write_source, offsets),
            np.maximum.reduceat(write_source, offsets),
        )
    return (
        np.full(write_sizes.size, _I64_MAX, dtype=np.int64),
        np.full(write_sizes.size, -1, dtype=np.int64),
    )


def _fuse_pass(g: DiskGeometry, pas: PlanPass) -> _FusedPass:
    """Fused metadata for one pass, cached on the pass object.

    Builder-produced passes carry a columnar twin of their step list,
    so fusing is pure array bookkeeping -- no per-step Python loop.
    Hand-built passes take the slow path once (``_ensure_columns``).
    """
    cols = pas.columns_if_fresh()
    num_steps = cols.num_steps if cols is not None else len(pas.steps)
    cached = pas._fused.get("fused")
    if cached is not None and cached.num_steps == num_steps:
        return cached
    if cols is None or cols.num_steps != num_steps:
        cols = pas._ensure_columns()

    B = g.B
    f = _FusedPass()
    f.label = pas.label
    f.num_steps = cols.num_steps
    f.checked_for = None
    f.is_read = cols.is_read
    f.step_sizes = cols.step_sizes
    f.read_ids = cols.read_ids
    f.read_sizes = cols.read_sizes
    f.read_portions = cols.read_portions
    f.read_consume_default = cols.read_consume_default
    f.read_consume_value = cols.read_consume_value
    f.read_discard = cols.read_discard
    f.read_striped = _segment_striped(g, f.read_ids, f.read_sizes)
    f.write_ids = cols.write_ids
    f.write_sizes = cols.write_sizes
    f.write_portions = cols.write_portions
    f.write_striped = _segment_striped(g, f.write_ids, f.write_sizes)
    f.write_source = cols.write_source

    f.write_source_min, f.write_source_max = _write_source_extrema(
        B, f.write_sizes, f.write_source
    )

    # Step-position cumulatives: how many read/write steps (and records)
    # precede each step position.  These drive strict replay parity,
    # the ordering audit, and streaming segmentation.
    f.read_before, f.read_rec_cum = _read_cumulatives(B, f.is_read, f.read_sizes)
    f.write_before = np.concatenate(([0], np.cumsum(~f.is_read, dtype=np.int64)))
    f.write_rec_cum = np.concatenate(
        ([0], np.cumsum(f.write_sizes * B, dtype=np.int64))
    )
    f.reads_before = f.read_rec_cum[f.read_before[:-1][~f.is_read]]

    offsets = np.arange(B, dtype=np.int64)[None, :]
    f.read_addr = ((f.read_ids[:, None] << g.b) + offsets).reshape(-1)
    f.write_addr = ((f.write_ids[:, None] << g.b) + offsets).reshape(-1)
    f.rec_read_portion = np.repeat(f.read_portions, f.read_sizes * B)
    f.rec_write_portion = np.repeat(f.write_portions, f.write_sizes * B)

    pas._fused["fused"] = f
    return f


def _check_structure(g: DiskGeometry, num_portions: int, f: _FusedPass) -> None:
    """Per-step model rules, vectorized over one pass."""
    sizes = f.step_sizes
    if (sizes == 0).any():
        raise ValidationError(
            f"pass {f.label!r}: a parallel I/O must transfer at least one block"
        )
    if (sizes > g.D).any():
        raise DiskConflictError(
            f"pass {f.label!r}: a parallel I/O moves at most D={g.D} blocks "
            f"(largest step moves {int(sizes.max())})"
        )
    for ids, portions, step_sizes in (
        (f.read_ids, f.read_portions, f.read_sizes),
        (f.write_ids, f.write_portions, f.write_sizes),
    ):
        if ids.size == 0:
            continue
        if ids.min() < 0 or ids.max() >= g.num_blocks:
            raise ValidationError(f"pass {f.label!r}: block id out of range")
        if portions.size and (
            portions.min() < 0 or portions.max() >= num_portions
        ):
            raise ValidationError(f"pass {f.label!r}: portion out of range")
        step_of = np.repeat(np.arange(step_sizes.size, dtype=np.int64), step_sizes)
        keys = step_of * g.D + (ids & (g.D - 1))
        if np.unique(keys).size != keys.size:
            raise DiskConflictError(
                f"pass {f.label!r}: at most one block per disk per parallel I/O"
            )
    if (f.write_source_max >= f.reads_before).any():
        raise PlanError(
            f"pass {f.label!r}: a write step sources stream slots that are "
            "not yet read at its position in the pass"
        )
    if f.write_source.size and f.write_source.min() < 0:
        raise PlanError(f"pass {f.label!r}: negative stream slot")
    if f.write_source.size and f.read_discard.any():
        rec_discard = np.repeat(f.read_discard, f.read_sizes * g.B)
        if rec_discard[f.write_source].any():
            raise PlanError(
                f"pass {f.label!r}: a write sources records a discarding "
                "read already released from memory"
            )


def _check_fusable(g: DiskGeometry, simple_io: bool, f: _FusedPass) -> None:
    """Reject order-dependent block touches that fusion would reorder."""
    wkeys = f.rec_write_portion[:: g.B] * g.num_blocks + f.write_ids if f.write_ids.size else f.write_ids
    rkeys = f.rec_read_portion[:: g.B] * g.num_blocks + f.read_ids if f.read_ids.size else f.read_ids
    if wkeys.size and np.unique(wkeys).size != wkeys.size:
        raise PlanError(
            f"pass {f.label!r} writes a block twice; fused execution would "
            "reorder the writes -- use the strict engine"
        )
    if rkeys.size:
        uniq, counts = np.unique(rkeys, return_counts=True)
        dup = uniq[counts > 1]
        if dup.size:
            block_consume = np.repeat(
                f.resolved_consume(simple_io), f.read_sizes
            )
            if np.isin(rkeys[block_consume], dup).any():
                raise PlanError(
                    f"pass {f.label!r} re-reads a consumed block; fused "
                    "execution cannot preserve the order -- use the strict engine"
                )
    if wkeys.size and rkeys.size and np.intersect1d(wkeys, rkeys).size:
        raise PlanError(
            f"pass {f.label!r} both reads and writes a block; fused execution "
            "would reorder the touches -- use the strict engine"
        )


def _check_pass(
    g: DiskGeometry, num_portions: int, simple_io: bool, f: _FusedPass
) -> None:
    """Structural + fusability audit, cached per (portions, simple_io).

    Both checks are pure functions of the fused metadata and these two
    system attributes, so re-executing an already-audited plan skips
    straight to the data-dependent work.
    """
    key = (num_portions, simple_io)
    if f.checked_for == key:
        return
    _check_structure(g, num_portions, f)
    _check_fusable(g, simple_io, f)
    f.checked_for = key


@dataclass(frozen=True)
class _PassMemory:
    """One pass's memory effect for one execution (records, absolute).

    Kept off the shared :class:`_FusedPass` on purpose: fused metadata
    is cached on the plan and shared by every execution of a compiled
    plan -- including concurrent ones on different systems -- so
    per-execution values must live in per-execution objects.
    """

    peak: int
    net: int


def _check_memory(
    g: DiskGeometry, capacity: int, in_use_start: int, fused: list[_FusedPass]
) -> tuple[int, int, list[_PassMemory]]:
    """Simulate the record-count memory across all passes; return
    (overall peak, net delta, per-pass :class:`_PassMemory` list).

    Discarding reads allocate-and-release within their own step, so they
    contribute a transient spike to the peak but nothing to the net.
    """
    in_use = in_use_start
    overall_peak = 0
    per_pass: list[_PassMemory] = []
    for f in fused:
        sizes = f.step_sizes * g.B
        step_discard = np.zeros(f.num_steps, dtype=bool)
        if f.read_discard.size and f.read_discard.any():
            step_discard[f.is_read] = f.read_discard
        deltas = np.where(f.is_read, np.where(step_discard, 0, sizes), -sizes)
        transient = np.where(step_discard, sizes, 0)
        prefix = np.cumsum(deltas)
        occupancy = prefix + transient
        if prefix.size:
            hi = int(occupancy.max())
            if in_use + hi > capacity:
                raise MemoryCapacityError(
                    f"pass {f.label!r} would hold {in_use + hi} > "
                    f"M={capacity} records in memory"
                )
            if in_use + int(prefix.min()) < 0:
                raise MemoryCapacityError(
                    f"pass {f.label!r} releases more records than are resident"
                )
            read_occ = occupancy[f.is_read]
            pass_peak = in_use + int(read_occ.max()) if read_occ.size else in_use
            net = int(prefix[-1])
        else:
            pass_peak, net = in_use, 0
        mem = _PassMemory(peak=max(pass_peak, in_use), net=net)
        per_pass.append(mem)
        in_use += net
        overall_peak = max(overall_peak, mem.peak)
    return overall_peak, in_use - in_use_start, per_pass


def _plan_check(fused: list[_FusedPass], peak: int, net: int) -> PlanCheck:
    return PlanCheck(
        passes=len(fused),
        parallel_reads=int(sum(f.read_sizes.size for f in fused)),
        parallel_writes=int(sum(f.write_sizes.size for f in fused)),
        striped_reads=int(sum(int(f.read_striped.sum()) for f in fused)),
        striped_writes=int(sum(int(f.write_striped.sum()) for f in fused)),
        blocks_read=int(sum(int(f.read_sizes.sum()) for f in fused)),
        blocks_written=int(sum(int(f.write_sizes.sum()) for f in fused)),
        peak_memory_records=peak,
        net_memory_records=net,
    )


def audit_plan(
    geometry: DiskGeometry,
    plan: IOPlan,
    num_portions: int = 2,
    simple_io: bool = True,
) -> PlanCheck:
    """Audit a plan without a system: fuse, rule-check, simulate memory.

    This is the compile-time half of :func:`validate_plan` -- the plan
    cache uses it to pre-validate compiled plans without allocating a
    throwaway ``ParallelDiskSystem`` (whose portions cost O(N) host
    memory at huge N).  Memory is simulated from an empty RAM.
    """
    if plan.geometry != geometry:
        raise ValidationError("plan and audit geometries differ")
    fused = [_fuse_pass(geometry, p) for p in plan.passes]
    for f in fused:
        _check_pass(geometry, num_portions, simple_io, f)
    peak, net, _ = _check_memory(geometry, geometry.M, 0, fused)
    return _plan_check(fused, peak, net)


def validate_plan(system: ParallelDiskSystem, plan: IOPlan) -> PlanCheck:
    """Audit a whole plan against the model rules without executing it.

    Raises the same error classes the strict engine would (disk
    conflicts, capacity, malformed steps) plus :class:`PlanError` for
    plans whose within-pass ordering fused execution cannot preserve.
    Data-state (simple I/O emptiness) is inherently a run-time property
    and is checked during execution instead.
    """
    if plan.geometry != system.geometry:
        raise ValidationError("plan and system geometries differ")
    g = system.geometry
    fused = [_fuse_pass(g, p) for p in plan.passes]
    for f in fused:
        _check_pass(g, system.num_portions, system.simple_io, f)
    peak, net, _ = _check_memory(g, system.memory.capacity, system.memory.in_use, fused)
    return _plan_check(fused, max(peak, system.memory.peak), net)


# --------------------------------------------------------------- strict mode
def _execute_strict(
    system: ParallelDiskSystem,
    plan: IOPlan,
    capture: bool = False,
    stream_records=None,
) -> ExecReport:
    """Per-I/O replay with liveness-streamed host buffering.

    Strict replay keeps the reference semantics -- every operation goes
    through the counted, rule-checked ``read_blocks``/``write_blocks``
    path and observers see every event -- but the host-side read-stream
    buffer is recycled at the same liveness boundaries the fast
    executor streams at: when a pass's read stream exceeds the chunk
    budget, the buffer holds only the live chunk, not the whole pass.
    ``capture=True`` needs whole streams and disables streaming, as in
    fast mode.
    """
    g = system.geometry
    budget = None if capture else _stream_budget(stream_records)
    report = ExecReport(engine="strict", streams=[] if capture else None)
    for pas in plan.passes:
        checkpoint("pass", pas.label)
        pass_records = pas.num_read_blocks * g.B
        if budget is not None and pass_records > budget and pas.num_steps > 1:
            meta = _segment_meta(g, pas)
            segments = _liveness_segments(meta, budget)
        else:
            meta = None
            segments = [(0, pas.num_steps)]
        if len(segments) > 1:
            report.streamed_passes += 1
        steps = pas.steps
        base = 0  # records read before the current segment
        system.stats.begin_pass(pas.label)
        try:
            for s0, s1 in segments:
                if s0:
                    checkpoint("shard", pas.label)
                if meta is None:
                    chunk = pass_records
                else:
                    chunk = int(
                        meta.read_rec_cum[meta.read_before[s1]]
                        - meta.read_rec_cum[meta.read_before[s0]]
                    )
                stream = np.empty(chunk, dtype=system.dtype)
                report.host_peak_records = max(report.host_peak_records, chunk)
                cursor = 0
                for step in steps[s0:s1]:
                    if step.kind == "read":
                        values = system.read_blocks(
                            step.portion, step.block_ids, consume=step.consume
                        )
                        stream[cursor : cursor + values.size] = values.reshape(-1)
                        cursor += values.size
                        if step.discard:
                            system.memory.release(values.size)
                    else:
                        if step.source.size and (
                            int(step.source.min()) < base
                            or int(step.source.max()) >= base + cursor
                        ):
                            raise PlanError(
                                f"pass {pas.label!r}: write sources slots outside "
                                f"the records read so far ([{base}, {base + cursor}))"
                            )
                        system.write_blocks(
                            step.portion,
                            step.block_ids,
                            stream[step.source - base].reshape(step.num_blocks, g.B),
                        )
                base += cursor
        finally:
            system.stats.end_pass()
        if capture:
            report.streams.append(stream)
    return report


# ----------------------------------------------------------------- fast mode
def _portion_groups(portions: np.ndarray, rec_portions: np.ndarray):
    """Yield ``(portion, record_indexer)`` pairs; a full slice when uniform."""
    uniq = np.unique(portions)
    if uniq.size <= 1:
        if uniq.size:
            yield int(uniq[0]), slice(None)
        return
    for p in uniq:
        yield int(p), rec_portions == p


def _require_write_targets_empty(
    system: ParallelDiskSystem,
    write_portions: np.ndarray,
    rec_wport: np.ndarray,
    write_addr: np.ndarray,
    kernels: ExecutionBackend = _NUMPY,
) -> None:
    """The simple-I/O write-to-empty rule, vectorized over record addrs.

    Canonical check shared by the fast executor and the optimizer's
    skipped-link audit; keep error text in sync with
    :meth:`ParallelDiskSystem.write_blocks`.
    """
    g = system.geometry
    data = system._data
    for portion, idx in _portion_groups(write_portions, rec_wport):
        if isinstance(idx, slice):
            values = kernels.take(data[portion], write_addr)
        else:
            values = data[portion, write_addr[idx]]
        occupied = ~system._is_empty(values)
        if occupied.any():
            bad = np.unique((write_addr[idx])[occupied] >> g.b)
            raise BlockStateError(
                f"writing to non-empty blocks under simple I/O: {list(bad)}"
            )


def _stream_budget(stream_records) -> int | None:
    """Resolve the streaming knob: None = never stream."""
    if stream_records is None:
        return STREAM_AUTO_RECORDS
    if not stream_records:
        return None
    return int(stream_records)


class _SegmentMeta:
    """Step-level segmentation inputs: what :func:`_liveness_segments`
    needs and nothing more (no record-level gather/scatter arrays)."""

    __slots__ = ("num_steps", "is_read", "read_before", "read_rec_cum", "write_source_min")


def _segment_meta(g: DiskGeometry, pas: PlanPass):
    """Liveness-segmentation metadata for one pass, O(steps) memory.

    Strict replay streams through per-operation I/O and never touches
    the fused record-address arrays, so building a full
    :class:`_FusedPass` (O(pass records) host memory) just to find cut
    points would defeat the streaming guard.  Reuses an existing fused
    cache entry when the fast engine already paid for one.
    """
    cached = pas._fused.get("fused")
    if cached is not None and cached.num_steps == pas.num_steps:
        return cached
    meta = pas._fused.get("segmeta")
    if meta is not None and meta.num_steps == pas.num_steps:
        return meta
    c = pas._ensure_columns()
    meta = _SegmentMeta()
    meta.num_steps = c.num_steps
    meta.is_read = c.is_read
    meta.read_before, meta.read_rec_cum = _read_cumulatives(
        g.B, c.is_read, c.read_sizes
    )
    meta.write_source_min, _ = _write_source_extrema(
        g.B, c.write_sizes, c.write_source
    )
    pas._fused["segmeta"] = meta
    return meta


def _liveness_segments(f, budget: int) -> list[tuple[int, int]]:
    """Cut a pass into step ranges whose read-stream chunks fit ``budget``.

    A cut after step ``i`` is *valid* when every write at a later step
    sources only slots read after ``i`` -- i.e. every slot read so far
    has retired.  Planner-emitted passes retire a memoryload's slots as
    soon as its writes are planned, so valid cuts occur every ~M
    records.  Chunks then greedily pack as many cuts as fit the budget;
    if the tightest liveness window already exceeds the budget, the
    window is taken whole (liveness, not the budget, is the hard floor).
    """
    num_steps = f.num_steps
    rr = f.read_rec_cum[f.read_before[1:]]  # records read after each step
    src_min = np.full(num_steps, _I64_MAX, dtype=np.int64)
    src_min[~f.is_read] = f.write_source_min
    suffix = np.minimum.accumulate(src_min[::-1])[::-1]
    later = np.empty(num_steps, dtype=np.int64)
    later[:-1] = suffix[1:]
    later[-1] = _I64_MAX
    valid = later >= rr
    valid[-1] = True
    cuts = np.flatnonzero(valid)
    cut_rr = rr[cuts]

    segments: list[tuple[int, int]] = []
    s0 = 0
    base = 0
    lo = 0
    while s0 < num_steps:
        j = int(np.searchsorted(cut_rr, base + budget, side="right")) - 1
        j = max(j, lo)  # liveness floor: take at least the next valid cut
        c = int(cuts[j])
        segments.append((s0, c + 1))
        base = int(rr[c])
        s0 = c + 1
        lo = j + 1
    return segments


def _apply_segment(
    system: ParallelDiskSystem,
    f: _FusedPass,
    s0: int,
    s1: int,
    write_keep: np.ndarray | None = None,
    kernels: ExecutionBackend = _NUMPY,
) -> np.ndarray:
    """Gather/check/scatter one step range of a fused pass; returns its
    read-stream chunk (the caller reports/captures it).

    ``write_keep`` is a record-level mask over the pass's write stream
    (the optimizer's dead-write elimination); masked records skip the
    physical scatter while everything else -- checks, consumes, stats
    -- proceeds as usual.  ``kernels`` supplies the gather/scatter
    primitives; the uniform-portion paths shard under the parallel
    backend, the (rare, small) multi-portion mask paths stay inline.
    """
    g = system.geometry
    B = g.B
    data = system._data
    r0, r1 = int(f.read_before[s0]), int(f.read_before[s1])
    w0, w1 = int(f.write_before[s0]), int(f.write_before[s1])
    rec0, rec1 = int(f.read_rec_cum[r0]), int(f.read_rec_cum[r1])
    wrec0, wrec1 = int(f.write_rec_cum[w0]), int(f.write_rec_cum[w1])

    read_addr = f.read_addr[rec0:rec1]
    rec_rport = f.rec_read_portion[rec0:rec1]
    read_portions = f.read_portions[r0:r1]
    stream = np.empty(rec1 - rec0, dtype=system.dtype)
    for portion, idx in _portion_groups(read_portions, rec_rport):
        if isinstance(idx, slice):
            kernels.gather(stream, data[portion], read_addr)
        else:
            stream[idx] = data[portion, read_addr[idx]]

    consume = f.resolved_consume(system.simple_io)[r0:r1]
    rec_consume = np.repeat(consume, f.read_sizes[r0:r1] * B)
    any_consume = bool(rec_consume.any())
    all_consume = any_consume and bool(rec_consume.all())
    if any_consume:
        consumed = stream if all_consume else stream[rec_consume]
        empty = system._is_empty(consumed)
        if empty.any():
            seg_block_ids = f.read_ids[rec0 // B : rec1 // B]
            consumed_blocks = np.repeat(seg_block_ids, B)[rec_consume]
            bad = np.unique(consumed_blocks[empty.reshape(-1)])
            raise BlockStateError(
                f"reading empty/partial blocks {list(bad)} under simple I/O"
            )

    write_addr = f.write_addr[wrec0:wrec1]
    rec_wport = f.rec_write_portion[wrec0:wrec1]
    write_portions = f.write_portions[w0:w1]
    if system.simple_io and write_addr.size:
        _require_write_targets_empty(
            system, write_portions, rec_wport, write_addr, kernels=kernels
        )

    # Mutate: consume sources, then scatter targets (disjoint by the
    # fusability check, so ordering is immaterial).
    if any_consume:
        for portion, idx in _portion_groups(read_portions, rec_rport):
            if isinstance(idx, slice):
                addr = read_addr if all_consume else read_addr[rec_consume]
                kernels.fill(data[portion], addr, system.empty)
            else:
                mask = idx & rec_consume
                data[portion, read_addr[mask]] = system.empty
    if write_addr.size:
        src = f.write_source[wrec0:wrec1]
        if rec0:
            src = src - rec0
        out = kernels.take(stream, src)
        keep = None if write_keep is None else write_keep[wrec0:wrec1]
        for portion, idx in _portion_groups(write_portions, rec_wport):
            if keep is None:
                if isinstance(idx, slice):
                    kernels.scatter(data[portion], write_addr, out)
                else:
                    data[portion, write_addr[idx]] = out[idx]
            else:
                mask = keep if isinstance(idx, slice) else (idx & keep)
                data[portion, write_addr[mask]] = out[mask]
    return stream


def _finish_pass(system: ParallelDiskSystem, f: _FusedPass, mem: _PassMemory) -> None:
    """Bulk-record one fused pass's stats and memory effect."""
    system.stats.record_pass_batch(
        f.label,
        parallel_reads=int(f.read_sizes.size),
        parallel_writes=int(f.write_sizes.size),
        striped_reads=int(f.read_striped.sum()),
        striped_writes=int(f.write_striped.sum()),
        blocks_read=int(f.read_sizes.sum()),
        blocks_written=int(f.write_sizes.sum()),
    )
    system.memory.in_use += mem.net
    if mem.peak > system.memory.peak:
        system.memory.peak = mem.peak


def _run_fused_data(
    system: ParallelDiskSystem,
    f: _FusedPass,
    budget: int | None,
    kernels: ExecutionBackend = _NUMPY,
    write_keep: np.ndarray | None = None,
) -> tuple[int, int]:
    """One fused pass's data movement (no stats); returns the host peak
    stream size and the number of segments executed."""
    if budget is not None and f.stream_records > budget and f.num_steps > 1:
        segments = _liveness_segments(f, budget)
    else:
        segments = [(0, f.num_steps)]
    peak = 0
    for s0, s1 in segments:
        if s0:
            checkpoint("shard", f.label)
        stream = _apply_segment(
            system, f, s0, s1, write_keep=write_keep, kernels=kernels
        )
        peak = max(peak, stream.size)
    return peak, len(segments)


def _run_fused_pass(
    system: ParallelDiskSystem,
    f: _FusedPass,
    budget: int | None,
    report: ExecReport,
    mem: _PassMemory,
    write_keep: np.ndarray | None = None,
    kernels: ExecutionBackend = _NUMPY,
) -> None:
    """Execute one fused pass, streaming when it exceeds ``budget``, and
    fold its host-peak/streamed accounting and stats into ``report``."""
    peak, num_segments = _run_fused_data(
        system, f, budget, kernels=kernels, write_keep=write_keep
    )
    report.host_peak_records = max(report.host_peak_records, peak)
    if num_segments > 1:
        report.streamed_passes += 1
    _finish_pass(system, f, mem)


def _pass_footprint(g: DiskGeometry, f: _FusedPass) -> np.ndarray:
    """Sorted unique portion-qualified block keys a pass touches
    (reads and writes), derived from its columnar metadata."""
    parts = []
    if f.read_ids.size:
        parts.append(f.rec_read_portion[:: g.B] * g.num_blocks + f.read_ids)
    if f.write_ids.size:
        parts.append(f.rec_write_portion[:: g.B] * g.num_blocks + f.write_ids)
    if not parts:
        return np.zeros(0, dtype=np.int64)
    return np.unique(np.concatenate(parts))


def _independent_batches(footprints: list[np.ndarray]) -> list[tuple[int, int]]:
    """Greedy maximal runs ``[i, j)`` of consecutive units whose block
    footprints are pairwise disjoint -- safe to execute concurrently.

    Consecutive-only on purpose: hoisting a later pass over an earlier
    one it is independent of would still be observable through fault
    ordering, and the planners emit dependent chains anyway.
    """
    batches: list[tuple[int, int]] = []
    i = 0
    n = len(footprints)
    while i < n:
        acc = footprints[i]
        j = i + 1
        while j < n:
            nxt = footprints[j]
            if acc.size and nxt.size and np.intersect1d(
                acc, nxt, assume_unique=True
            ).size:
                break
            acc = np.union1d(acc, nxt)
            j += 1
        batches.append((i, j))
        i = j
    return batches


def _execute_fast(
    system: ParallelDiskSystem,
    plan: IOPlan,
    stream_records=None,
    capture: bool = False,
    backend=None,
) -> ExecReport:
    g = system.geometry
    fused = [_fuse_pass(g, p) for p in plan.passes]
    for f in fused:
        _check_pass(g, system.num_portions, system.simple_io, f)
    _, _, mems = _check_memory(g, system.memory.capacity, system.memory.in_use, fused)

    kernels = get_backend(backend)
    budget = None if capture else _stream_budget(stream_records)
    report = ExecReport(
        engine="fast", backend=kernels.name, streams=[] if capture else None
    )
    if capture:
        for f, mem in zip(fused, mems):
            checkpoint("pass", f.label)
            # whole stream, by construction of budget=None
            stream = _apply_segment(system, f, 0, f.num_steps, kernels=kernels)
            report.host_peak_records = max(report.host_peak_records, stream.size)
            report.streams.append(stream)
            _finish_pass(system, f, mem)
        return report

    # Cross-pass scheduling: consecutive passes with disjoint block
    # footprints run concurrently under a parallel backend.  Stats and
    # memory are still recorded in plan order after the batch settles,
    # so pass tables and the memory envelope are order-identical.
    if kernels.parallel_units > 1 and len(fused) > 1:
        batches = _independent_batches([_pass_footprint(g, f) for f in fused])
    else:
        batches = [(i, i + 1) for i in range(len(fused))]
    serial = kernels.serial()
    for i, j in batches:
        checkpoint("pass", fused[i].label)
        if j - i == 1:
            _run_fused_pass(system, fused[i], budget, report, mems[i], kernels=kernels)
            continue
        results: list[tuple[int, int] | None] = [None] * (j - i)

        def _unit(k: int) -> None:
            results[k - i] = _run_fused_data(system, fused[k], budget, kernels=serial)

        kernels.run_units([partial(_unit, k) for k in range(i, j)])
        for k in range(i, j):
            peak, num_segments = results[k - i]
            report.host_peak_records = max(report.host_peak_records, peak)
            if num_segments > 1:
                report.streamed_passes += 1
            _finish_pass(system, fused[k], mems[k])
    return report


# ------------------------------------------------------------------ dispatch
def execute_plan(
    system: ParallelDiskSystem,
    plan,
    engine: str = "strict",
    optimize: bool = False,
    stream_records=None,
    capture: bool = False,
    backend=None,
) -> ExecReport:
    """Execute an I/O plan under the chosen engine.

    ``strict`` replays step-by-step with full per-operation rule
    enforcement; ``fast`` validates up front and executes fused.  Both
    leave byte-identical portions and identical stats.  With observers
    attached, ``fast`` falls back to strict so every
    :class:`~repro.pdm.system.IOEvent` is still delivered.

    ``plan`` may also be a pre-compiled
    :class:`~repro.pdm.optimize.OptimizedPlan`; ``optimize=True``
    compiles one on the fly (fast engine only).  ``stream_records``
    bounds either engine's host read-stream buffer (``None`` = auto
    at :data:`STREAM_AUTO_RECORDS`, ``0`` = never stream);
    ``capture=True`` returns each pass's read stream in the report
    (disables streaming -- the stream must be whole).

    ``backend`` selects the fast engine's kernel backend (a name from
    :data:`BACKENDS`, an :class:`ExecutionBackend` instance, or ``None``
    for the ``REPRO_BACKEND`` environment default).  The strict engine
    is per-operation by definition and ignores it.
    """
    from repro.pdm.optimize import OptimizedPlan  # local: optimize imports us

    if isinstance(plan, OptimizedPlan):
        return plan.execute(
            system,
            engine=engine,
            stream_records=stream_records,
            capture=capture,
            backend=backend,
        )
    if engine not in ENGINES:
        raise ValidationError(f"unknown engine {engine!r}; choose from {ENGINES}")
    get_backend(backend)  # validate the knob even on strict paths
    if plan.geometry != system.geometry:
        raise ValidationError("plan and system geometries differ")
    if optimize and engine == "fast" and not capture and not system._observers:
        from repro.pdm.optimize import optimize_plan

        oplan = optimize_plan(
            plan, num_portions=system.num_portions, simple_io=system.simple_io
        )
        return oplan.execute(
            system, engine=engine, stream_records=stream_records, backend=backend
        )
    if engine == "fast" and not system._observers:
        return _execute_fast(
            system,
            plan,
            stream_records=stream_records,
            capture=capture,
            backend=backend,
        )
    report = _execute_strict(
        system, plan, capture=capture, stream_records=stream_records
    )
    if engine == "fast":
        report.fell_back = "observers"
    return report
