"""Plan execution engines: strict replay and fused fast mode.

Two ways to run an :class:`~repro.pdm.schedule.IOPlan` on a
:class:`~repro.pdm.system.ParallelDiskSystem`, chosen by the
``engine`` knob:

* **strict** replays the plan step-by-step through the existing
  ``read_blocks``/``write_blocks`` path, so every model rule
  (one block per disk, memory capacity, simple I/O) is enforced on
  every operation and observers see every :class:`IOEvent`.  This is
  the reference semantics -- identical to the hand-written performers
  the planners replaced.

* **fast** validates the *whole plan* up front (vectorized conflict,
  capacity, and slot checks across all steps) and then executes each
  pass as one fused numpy gather/scatter, updating
  :class:`~repro.pdm.stats.IOStats` and the memory accountant in bulk.
  Per-step Python overhead disappears; portions, stats snapshots, pass
  tables, and the memory peak come out identical to strict execution.

Fused execution reorders nothing observable: it requires that within a
pass no block is touched twice in an order-dependent way (checked; a
violating plan raises :class:`~repro.errors.PlanError`).  All plans
emitted by :mod:`repro.core` satisfy this by construction -- a pass
reads each source block once and writes each target block once.

When observers are attached (e.g. :class:`~repro.pdm.trace.IOTrace`),
``execute_plan`` silently falls back to strict so per-operation events
keep flowing.

Host-memory note: both executors materialize a pass's whole read
stream (one record per record read, i.e. O(N) for a full pass) --
that buffer is what makes writes pure slot lookups.  The *simulated*
machine still respects its M-record memory rule; the host footprint is
the price of batching and is fine up to N ~ 2^24 (128 MB int64).
Beyond that, see ROADMAP ("memory-footprint guard").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import (
    BlockStateError,
    DiskConflictError,
    MemoryCapacityError,
    PlanError,
    ValidationError,
)
from repro.pdm.schedule import IOPlan, PlanPass
from repro.pdm.system import ParallelDiskSystem

__all__ = ["ENGINES", "execute_plan", "validate_plan", "PlanCheck"]

#: The two execution modes.
ENGINES = ("strict", "fast")


@dataclass(frozen=True)
class PlanCheck:
    """Summary returned by :func:`validate_plan` after a full-plan audit."""

    passes: int
    parallel_reads: int
    parallel_writes: int
    striped_reads: int
    striped_writes: int
    blocks_read: int
    blocks_written: int
    peak_memory_records: int
    net_memory_records: int

    @property
    def parallel_ios(self) -> int:
        return self.parallel_reads + self.parallel_writes


class _FusedPass:
    """Concatenated per-pass step metadata for vectorized checks/execution."""

    __slots__ = (
        "label", "num_steps",
        "read_ids", "read_sizes", "read_portions", "read_striped",
        "read_consume_default", "read_consume_value",
        "read_addr", "rec_read_portion",
        "write_ids", "write_sizes", "write_portions", "write_striped",
        "write_addr", "write_source", "rec_write_portion", "write_source_max",
        "is_read", "step_sizes", "reads_before",
        "mem_net", "mem_peak",  # filled by validation (records, absolute)
        "checked_for",  # num_portions the structural checks last ran against
    )

    def resolved_consume(self, simple_io: bool) -> np.ndarray:
        """Per-read-step consume flags with ``None`` resolved to the default."""
        return np.where(self.read_consume_default, simple_io, self.read_consume_value)


def _segment_striped(g, ids: np.ndarray, sizes: np.ndarray) -> np.ndarray:
    """Per-step striped flags: exactly D blocks, all in one stripe."""
    if sizes.size == 0:
        return np.zeros(0, dtype=bool)
    if (sizes == 0).any():  # malformed; validation will raise
        return np.zeros(sizes.size, dtype=bool)
    stripes = ids >> g.d
    offsets = np.concatenate(([0], np.cumsum(sizes)[:-1]))
    lo = np.minimum.reduceat(stripes, offsets)
    hi = np.maximum.reduceat(stripes, offsets)
    return (sizes == g.D) & (lo == hi)


def _fuse_pass(system: ParallelDiskSystem, pas: PlanPass) -> _FusedPass:
    g = system.geometry
    # Cache on the pass, invalidated if steps were added since fusing.
    cached = pas._fused.get("fused")
    if cached is not None and cached.num_steps == len(pas.steps):
        return cached

    B = g.B
    read_ids, read_sizes, read_portions = [], [], []
    consume_default, consume_value = [], []
    write_ids, write_sizes, write_portions, write_sources = [], [], [], []
    is_read = np.empty(len(pas.steps), dtype=bool)
    step_sizes = np.empty(len(pas.steps), dtype=np.int64)
    reads_before = []
    records_read = 0
    for i, step in enumerate(pas.steps):
        ids = step.block_ids
        if step.kind == "read":
            is_read[i] = True
            step_sizes[i] = ids.size
            read_ids.append(ids)
            read_sizes.append(ids.size)
            read_portions.append(step.portion)
            consume_default.append(step.consume is None)
            consume_value.append(bool(step.consume))
            records_read += ids.size * B
        else:
            is_read[i] = False
            step_sizes[i] = ids.size
            write_ids.append(ids)
            write_sizes.append(ids.size)
            write_portions.append(step.portion)
            write_sources.append(step.source)
            reads_before.append(records_read)

    f = _FusedPass()
    f.label = pas.label
    f.num_steps = len(pas.steps)
    f.checked_for = None
    empty_i64 = np.zeros(0, dtype=np.int64)
    f.read_ids = np.concatenate(read_ids) if read_ids else empty_i64
    f.read_sizes = np.asarray(read_sizes, dtype=np.int64)
    f.read_portions = np.asarray(read_portions, dtype=np.int64)
    f.read_consume_default = np.asarray(consume_default, dtype=bool)
    f.read_consume_value = np.asarray(consume_value, dtype=bool)
    f.read_striped = _segment_striped(g, f.read_ids, f.read_sizes)
    f.write_ids = np.concatenate(write_ids) if write_ids else empty_i64
    f.write_sizes = np.asarray(write_sizes, dtype=np.int64)
    f.write_portions = np.asarray(write_portions, dtype=np.int64)
    f.write_striped = _segment_striped(g, f.write_ids, f.write_sizes)
    f.write_source = np.concatenate(write_sources) if write_sources else empty_i64
    if f.write_sizes.size and (f.write_sizes > 0).all():
        offsets = np.concatenate(([0], np.cumsum(f.write_sizes * B)[:-1]))
        f.write_source_max = np.maximum.reduceat(f.write_source, offsets)
    else:
        f.write_source_max = np.full(f.write_sizes.size, -1, dtype=np.int64)
    f.is_read = is_read
    f.step_sizes = step_sizes
    f.reads_before = np.asarray(reads_before, dtype=np.int64)

    offsets = np.arange(B, dtype=np.int64)[None, :]
    f.read_addr = ((f.read_ids[:, None] << g.b) + offsets).reshape(-1)
    f.write_addr = ((f.write_ids[:, None] << g.b) + offsets).reshape(-1)
    f.rec_read_portion = np.repeat(f.read_portions, f.read_sizes * B)
    f.rec_write_portion = np.repeat(f.write_portions, f.write_sizes * B)

    pas._fused["fused"] = f
    return f


def _check_structure(system: ParallelDiskSystem, f: _FusedPass) -> None:
    """Per-step model rules, vectorized over one pass."""
    g = system.geometry
    sizes = f.step_sizes
    if (sizes == 0).any():
        raise ValidationError(
            f"pass {f.label!r}: a parallel I/O must transfer at least one block"
        )
    if (sizes > g.D).any():
        raise DiskConflictError(
            f"pass {f.label!r}: a parallel I/O moves at most D={g.D} blocks "
            f"(largest step moves {int(sizes.max())})"
        )
    for ids, portions, step_sizes in (
        (f.read_ids, f.read_portions, f.read_sizes),
        (f.write_ids, f.write_portions, f.write_sizes),
    ):
        if ids.size == 0:
            continue
        if ids.min() < 0 or ids.max() >= g.num_blocks:
            raise ValidationError(f"pass {f.label!r}: block id out of range")
        if portions.size and (
            portions.min() < 0 or portions.max() >= system.num_portions
        ):
            raise ValidationError(f"pass {f.label!r}: portion out of range")
        step_of = np.repeat(np.arange(step_sizes.size, dtype=np.int64), step_sizes)
        keys = step_of * g.D + (ids & (g.D - 1))
        if np.unique(keys).size != keys.size:
            raise DiskConflictError(
                f"pass {f.label!r}: at most one block per disk per parallel I/O"
            )
    if (f.write_source_max >= f.reads_before).any():
        raise PlanError(
            f"pass {f.label!r}: a write step sources stream slots that are "
            "not yet read at its position in the pass"
        )
    if f.write_source.size and f.write_source.min() < 0:
        raise PlanError(f"pass {f.label!r}: negative stream slot")


def _check_fusable(system: ParallelDiskSystem, f: _FusedPass) -> None:
    """Reject order-dependent block touches that fusion would reorder."""
    g = system.geometry
    wkeys = f.rec_write_portion[:: g.B] * g.num_blocks + f.write_ids if f.write_ids.size else f.write_ids
    rkeys = f.rec_read_portion[:: g.B] * g.num_blocks + f.read_ids if f.read_ids.size else f.read_ids
    if wkeys.size and np.unique(wkeys).size != wkeys.size:
        raise PlanError(
            f"pass {f.label!r} writes a block twice; fused execution would "
            "reorder the writes -- use the strict engine"
        )
    if rkeys.size:
        uniq, counts = np.unique(rkeys, return_counts=True)
        dup = uniq[counts > 1]
        if dup.size:
            block_consume = np.repeat(
                f.resolved_consume(system.simple_io), f.read_sizes
            )
            if np.isin(rkeys[block_consume], dup).any():
                raise PlanError(
                    f"pass {f.label!r} re-reads a consumed block; fused "
                    "execution cannot preserve the order -- use the strict engine"
                )
    if wkeys.size and rkeys.size and np.intersect1d(wkeys, rkeys).size:
        raise PlanError(
            f"pass {f.label!r} both reads and writes a block; fused execution "
            "would reorder the touches -- use the strict engine"
        )


def _check_pass(system: ParallelDiskSystem, f: _FusedPass) -> None:
    """Structural + fusability audit, cached per (portions, simple_io).

    Both checks are pure functions of the fused metadata and these two
    system attributes, so re-executing an already-audited plan skips
    straight to the data-dependent work.
    """
    key = (system.num_portions, system.simple_io)
    if f.checked_for == key:
        return
    _check_structure(system, f)
    _check_fusable(system, f)
    f.checked_for = key


def _check_memory(system: ParallelDiskSystem, fused: list[_FusedPass]) -> tuple[int, int]:
    """Simulate the record-count memory across all passes; fill per-pass
    ``mem_net``/``mem_peak`` and return (overall peak, net delta)."""
    g = system.geometry
    mem = system.memory
    in_use = mem.in_use
    overall_peak = mem.peak
    for f in fused:
        deltas = np.where(f.is_read, f.step_sizes, -f.step_sizes) * g.B
        prefix = np.cumsum(deltas)
        if prefix.size:
            hi = int(prefix.max())
            if in_use + hi > mem.capacity:
                raise MemoryCapacityError(
                    f"pass {f.label!r} would hold {in_use + hi} > "
                    f"M={mem.capacity} records in memory"
                )
            if in_use + int(prefix.min()) < 0:
                raise MemoryCapacityError(
                    f"pass {f.label!r} releases more records than are resident"
                )
            read_prefix = prefix[f.is_read]
            pass_peak = in_use + int(read_prefix.max()) if read_prefix.size else in_use
            net = int(prefix[-1])
        else:
            pass_peak, net = in_use, 0
        f.mem_peak = max(pass_peak, in_use)
        f.mem_net = net
        in_use += net
        overall_peak = max(overall_peak, f.mem_peak)
    return overall_peak, in_use - mem.in_use


def validate_plan(system: ParallelDiskSystem, plan: IOPlan) -> PlanCheck:
    """Audit a whole plan against the model rules without executing it.

    Raises the same error classes the strict engine would (disk
    conflicts, capacity, malformed steps) plus :class:`PlanError` for
    plans whose within-pass ordering fused execution cannot preserve.
    Data-state (simple I/O emptiness) is inherently a run-time property
    and is checked during execution instead.
    """
    if plan.geometry != system.geometry:
        raise ValidationError("plan and system geometries differ")
    fused = [_fuse_pass(system, p) for p in plan.passes]
    for f in fused:
        _check_pass(system, f)
    peak, net = _check_memory(system, fused)
    return PlanCheck(
        passes=len(fused),
        parallel_reads=int(sum(f.read_sizes.size for f in fused)),
        parallel_writes=int(sum(f.write_sizes.size for f in fused)),
        striped_reads=int(sum(int(f.read_striped.sum()) for f in fused)),
        striped_writes=int(sum(int(f.write_striped.sum()) for f in fused)),
        blocks_read=int(sum(int(f.read_sizes.sum()) for f in fused)),
        blocks_written=int(sum(int(f.write_sizes.sum()) for f in fused)),
        peak_memory_records=peak,
        net_memory_records=net,
    )


# --------------------------------------------------------------- strict mode
def _execute_strict(system: ParallelDiskSystem, plan: IOPlan) -> None:
    g = system.geometry
    for pas in plan.passes:
        stream = np.empty(pas.num_read_blocks * g.B, dtype=system.dtype)
        cursor = 0
        system.stats.begin_pass(pas.label)
        try:
            for step in pas.steps:
                if step.kind == "read":
                    values = system.read_blocks(
                        step.portion, step.block_ids, consume=step.consume
                    )
                    stream[cursor : cursor + values.size] = values.reshape(-1)
                    cursor += values.size
                else:
                    if step.source.size and (
                        int(step.source.min()) < 0 or int(step.source.max()) >= cursor
                    ):
                        raise PlanError(
                            f"pass {pas.label!r}: write sources slots outside the "
                            f"records read so far ([0, {cursor}))"
                        )
                    system.write_blocks(
                        step.portion,
                        step.block_ids,
                        stream[step.source].reshape(step.num_blocks, g.B),
                    )
        finally:
            system.stats.end_pass()


# ----------------------------------------------------------------- fast mode
def _portion_groups(portions: np.ndarray, rec_portions: np.ndarray):
    """Yield ``(portion, record_indexer)`` pairs; a full slice when uniform."""
    uniq = np.unique(portions)
    if uniq.size <= 1:
        if uniq.size:
            yield int(uniq[0]), slice(None)
        return
    for p in uniq:
        yield int(p), rec_portions == p


def _execute_fast(system: ParallelDiskSystem, plan: IOPlan) -> None:
    g = system.geometry
    fused = [_fuse_pass(system, p) for p in plan.passes]
    for f in fused:
        _check_pass(system, f)
    _check_memory(system, fused)

    data = system._data
    for f in fused:
        # Gather the pass's whole read stream from the pre-pass snapshot.
        stream = np.empty(f.read_addr.size, dtype=system.dtype)
        for portion, idx in _portion_groups(f.read_portions, f.rec_read_portion):
            stream[idx] = data[portion, f.read_addr[idx]]

        consume = f.resolved_consume(system.simple_io)
        rec_consume = np.repeat(consume, f.read_sizes * g.B)
        if rec_consume.any():
            consumed = stream[rec_consume]
            empty = system._is_empty(consumed)
            if empty.any():
                consumed_blocks = np.repeat(f.read_ids, g.B)[rec_consume]
                bad = np.unique(consumed_blocks[empty.reshape(-1)])
                raise BlockStateError(
                    f"reading empty/partial blocks {list(bad)} under simple I/O"
                )

        if system.simple_io and f.write_addr.size:
            for portion, idx in _portion_groups(f.write_portions, f.rec_write_portion):
                occupied = ~system._is_empty(data[portion, f.write_addr[idx]])
                if occupied.any():
                    bad = np.unique((f.write_addr[idx])[occupied] >> g.b)
                    raise BlockStateError(
                        f"writing to non-empty blocks under simple I/O: {list(bad)}"
                    )

        # Mutate: consume sources, then scatter targets (disjoint by the
        # fusability check, so ordering is immaterial).
        if rec_consume.any():
            for portion, idx in _portion_groups(f.read_portions, f.rec_read_portion):
                mask = rec_consume if isinstance(idx, slice) else (idx & rec_consume)
                data[portion, f.read_addr[mask]] = system.empty
        if f.write_addr.size:
            out = stream[f.write_source]
            for portion, idx in _portion_groups(f.write_portions, f.rec_write_portion):
                data[portion, f.write_addr[idx]] = out[idx]

        system.stats.record_pass_batch(
            f.label,
            parallel_reads=int(f.read_sizes.size),
            parallel_writes=int(f.write_sizes.size),
            striped_reads=int(f.read_striped.sum()),
            striped_writes=int(f.write_striped.sum()),
            blocks_read=int(f.read_sizes.sum()),
            blocks_written=int(f.write_sizes.sum()),
        )
        mem = system.memory
        mem.in_use += f.mem_net
        if f.mem_peak > mem.peak:
            mem.peak = f.mem_peak


# ------------------------------------------------------------------ dispatch
def execute_plan(
    system: ParallelDiskSystem,
    plan: IOPlan,
    engine: str = "strict",
) -> None:
    """Execute an I/O plan under the chosen engine.

    ``strict`` replays step-by-step with full per-operation rule
    enforcement; ``fast`` validates up front and executes fused.  Both
    leave byte-identical portions and identical stats.  With observers
    attached, ``fast`` falls back to strict so every
    :class:`~repro.pdm.system.IOEvent` is still delivered.
    """
    if engine not in ENGINES:
        raise ValidationError(f"unknown engine {engine!r}; choose from {ENGINES}")
    if plan.geometry != system.geometry:
        raise ValidationError("plan and system geometries differ")
    if engine == "fast" and not system._observers:
        _execute_fast(system, plan)
    else:
        _execute_strict(system, plan)
