"""Renderings of the paper's model figures.

:func:`render_figure1` reproduces Figure 1 (the stripe-by-disk layout
table; with ``N=64, B=2, D=8`` it matches the paper cell for cell), and
:func:`render_figure2` reproduces Figure 2 (the address bit-field
diagram for a given geometry).  These back the FIG1/FIG2 rows of the
experiment index.
"""

from __future__ import annotations

import numpy as np

from repro.pdm.geometry import DiskGeometry

__all__ = ["render_figure1", "render_figure2", "render_portion", "figure1_table"]


def figure1_table(geometry: DiskGeometry) -> np.ndarray:
    """Record indices by (stripe, disk, offset): shape ``(S, D, B)``.

    Entry ``[s, j, o]`` is the address stored at offset ``o`` of the
    block on disk ``j`` in stripe ``s`` -- "record indices vary most
    rapidly within a block, then among disks, and finally among
    stripes".
    """
    g = geometry
    return np.arange(g.N, dtype=np.int64).reshape(g.num_stripes, g.D, g.B)


def render_figure1(geometry: DiskGeometry, max_stripes: int | None = None) -> str:
    """ASCII reproduction of Figure 1 for any geometry."""
    g = geometry
    table = figure1_table(g)
    stripes = g.num_stripes if max_stripes is None else min(max_stripes, g.num_stripes)
    width = len(str(g.N - 1))
    cell_w = (width + 1) * g.B + 1
    header = " " * 10 + "".join(f"D{j}".center(cell_w) for j in range(g.D))
    lines = [header]
    for s in range(stripes):
        cells = []
        for j in range(g.D):
            cells.append(" ".join(str(v).rjust(width) for v in table[s, j]).center(cell_w))
        lines.append(f"stripe {s:>2} " + "".join(cells))
    if stripes < g.num_stripes:
        lines.append(f"... ({g.num_stripes - stripes} more stripes)")
    return "\n".join(lines)


def render_figure2(geometry: DiskGeometry) -> str:
    """ASCII reproduction of Figure 2: the fields of an n-bit address."""
    g = geometry
    rows = []
    for k in range(g.n):
        fields = []
        if k < g.b:
            fields.append("offset")
        elif k < g.b + g.d:
            fields.append("disk")
        else:
            fields.append("stripe")
        if k >= g.m:
            fields.append("memoryload number")
        elif k >= g.b:
            fields.append("relative block number")
        rows.append(f"  x{k:<3} {' + '.join(fields)}")
    head = (
        f"address bits x0..x{g.n - 1}  (n={g.n}, b={g.b}, d={g.d}, m={g.m}, s={g.s})\n"
        f"  least significant bit first"
    )
    return head + "\n" + "\n".join(rows)


def render_portion(system, portion: int, max_stripes: int = 8) -> str:
    """Render current payloads of a portion in Figure 1 layout."""
    g = system.geometry
    data = system.portion_values(portion).reshape(g.num_stripes, g.D, g.B)
    stripes = min(max_stripes, g.num_stripes)
    width = max(2, len(str(g.N - 1)))
    lines = []
    for s in range(stripes):
        cells = []
        for j in range(g.D):
            cells.append(
                " ".join(("." * width if v < 0 else str(v).rjust(width)) for v in data[s, j])
            )
        lines.append(f"stripe {s:>2} | " + " | ".join(cells))
    if stripes < g.num_stripes:
        lines.append(f"... ({g.num_stripes - stripes} more stripes)")
    return "\n".join(lines)
