"""``DiskGeometry``: the (N, B, D, M) parameter tuple and address algebra.

All four parameters are powers of two with ``BD <= M < N`` (Section 1).
The class precomputes the paper's lowercase logarithms

    ``b = lg B``, ``d = lg D``, ``m = lg M``, ``n = lg N``,
    ``s = n - (b + d)``

and exposes the Figure 2 address-field decomposition, scalar or
vectorized: an address ``x`` splits, least significant bits first, into
*offset* (``b`` bits), *disk* (``d`` bits) and *stripe* (``s`` bits);
bits ``m..n-1`` form the *memoryload number* and bits ``b..m-1`` the
*relative block number*.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ValidationError

__all__ = ["DiskGeometry", "is_power_of_two"]


def is_power_of_two(x: int) -> bool:
    return x >= 1 and (x & (x - 1)) == 0


@dataclass(frozen=True)
class DiskGeometry:
    """Validated PDM parameters plus derived quantities.

    Parameters
    ----------
    N : total number of records
    B : records per block
    D : number of disks
    M : records of random-access memory
    """

    N: int
    B: int
    D: int
    M: int

    # Derived, filled in __post_init__ (kept as fields so repr shows them).
    n: int = field(init=False)
    b: int = field(init=False)
    d: int = field(init=False)
    m: int = field(init=False)
    s: int = field(init=False)

    def __post_init__(self) -> None:
        for name in ("N", "B", "D", "M"):
            value = getattr(self, name)
            if not isinstance(value, (int, np.integer)) or not is_power_of_two(int(value)):
                raise ValidationError(f"{name} must be a power of two, got {value!r}")
        if self.B * self.D > self.M:
            raise ValidationError(
                f"need BD <= M so one parallel I/O fits in memory; got "
                f"B*D={self.B * self.D} > M={self.M}"
            )
        if self.M >= self.N:
            raise ValidationError(
                f"need M < N (otherwise permute in memory); got M={self.M}, N={self.N}"
            )
        if self.M < 2 * self.B:
            raise ValidationError(
                "need M >= 2B: the paper's bounds all divide by lg(M/B), which "
                f"must be positive; got M={self.M}, B={self.B}"
            )
        object.__setattr__(self, "n", self.N.bit_length() - 1)
        object.__setattr__(self, "b", self.B.bit_length() - 1)
        object.__setattr__(self, "d", self.D.bit_length() - 1)
        object.__setattr__(self, "m", self.M.bit_length() - 1)
        object.__setattr__(self, "s", self.n - self.b - self.d)

    # ------------------------------------------------------------- capacities
    @property
    def num_blocks(self) -> int:
        """Total blocks across the system: ``N / B``."""
        return self.N // self.B

    @property
    def num_stripes(self) -> int:
        """Stripes per portion: ``N / BD``."""
        return self.N // (self.B * self.D)

    @property
    def records_per_stripe(self) -> int:
        return self.B * self.D

    @property
    def num_memoryloads(self) -> int:
        """``N / M`` memoryloads of ``M`` records each."""
        return self.N // self.M

    @property
    def blocks_per_memoryload(self) -> int:
        """``M / B`` -- also the number of relative block numbers."""
        return self.M // self.B

    @property
    def stripes_per_memoryload(self) -> int:
        """``M / BD`` consecutive stripes per memoryload."""
        return self.M // (self.B * self.D)

    @property
    def memory_blocks(self) -> int:
        return self.M // self.B

    @property
    def one_pass_ios(self) -> int:
        """A pass reads and writes every record once: ``2 N / BD`` I/Os."""
        return 2 * self.num_stripes

    # --------------------------------------------------------- address fields
    def offset(self, x):
        """Bits ``0..b-1``: position of a record within its block."""
        return x & (self.B - 1)

    def disk(self, x):
        """Bits ``b..b+d-1``: the disk a record resides on."""
        return (x >> self.b) & (self.D - 1)

    def stripe(self, x):
        """Bits ``b+d..n-1``: the stripe a record resides in."""
        return x >> (self.b + self.d)

    def memoryload(self, x):
        """Bits ``m..n-1``: the memoryload number."""
        return x >> self.m

    def relative_block(self, x):
        """Bits ``b..m-1``: block number within the memoryload."""
        return (x >> self.b) & (self.blocks_per_memoryload - 1)

    def address(self, stripe, disk, offset):
        """Inverse of the field decomposition."""
        return (stripe << (self.b + self.d)) | (disk << self.b) | offset

    # ---------------------------------------------------------- block algebra
    def block_of(self, x):
        """Global block number of an address: ``x >> b``."""
        return x >> self.b

    def block_disk(self, k):
        """Disk holding block ``k``: low ``d`` bits of the block number."""
        return k & (self.D - 1)

    def block_stripe(self, k):
        """Stripe holding block ``k``."""
        return k >> self.d

    def block_start(self, k):
        """First address of block ``k``."""
        return k << self.b

    def stripe_blocks(self, stripe: int) -> np.ndarray:
        """The ``D`` block numbers of a stripe, in disk order."""
        return (stripe << self.d) + np.arange(self.D, dtype=np.int64)

    def memoryload_addresses(self, ml: int) -> np.ndarray:
        """All ``M`` addresses of memoryload ``ml``, ascending."""
        base = ml * self.M
        return base + np.arange(self.M, dtype=np.int64)

    def memoryload_stripes(self, ml: int) -> range:
        """The ``M/BD`` consecutive stripes of memoryload ``ml``."""
        per = self.stripes_per_memoryload
        return range(ml * per, (ml + 1) * per)

    # --------------------------------------------------------------- sections
    @property
    def sections(self) -> tuple[int, int, int]:
        """Column-section widths ``(b, m-b, n-m)`` used in Sections 4-5."""
        return (self.b, self.m - self.b, self.n - self.m)

    def describe(self) -> str:
        return (
            f"DiskGeometry(N=2^{self.n}, B=2^{self.b}, D=2^{self.d}, M=2^{self.m}; "
            f"s={self.s}, stripes={self.num_stripes}, memoryloads={self.num_memoryloads})"
        )
