"""Declarative I/O plans: *what* an algorithm does, divorced from execution.

An :class:`IOPlan` is an ordered sequence of *passes*, each an ordered
sequence of parallel-I/O steps (:class:`IOStep`).  A step is either a
parallel **read** of up to ``D`` blocks or a parallel **write**; the
records a pass reads form its *read stream* (slot ``i`` is the ``i``-th
record read within the pass, in step order, block-major, offset order
within a block), and every write step names its payload as slot indices
into that stream.  The in-memory permutation an algorithm applies
between reading and writing a memoryload is therefore captured
declaratively by the ``source`` slot arrays -- no callback, no data.

Plans are pure descriptions: building one performs no I/O and touches no
:class:`~repro.pdm.system.ParallelDiskSystem`.  The planners in
:mod:`repro.core` emit plans; :mod:`repro.pdm.engine` executes them
either *strictly* (step-by-step through the counted, rule-checked
``read_blocks``/``write_blocks`` path) or *fast* (validated up front,
then fused numpy gather/scatter over whole passes).  Both modes produce
byte-identical portions and identical :class:`~repro.pdm.stats.IOStats`.

This mirrors how external-memory schedules are treated as first-class
objects independent of the machine that runs them (cf. Guidesort's pass
schedules, arXiv:1807.11328).
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.errors import ValidationError
from repro.pdm.geometry import DiskGeometry

__all__ = ["IOStep", "PlanPass", "IOPlan", "PlanBuilder"]


class IOStep:
    """One parallel I/O: a read or a write of up to ``D`` blocks.

    ``block_ids`` is the int64 array of global block numbers, at most one
    per disk.  For writes, ``source`` holds ``k * B`` slot indices into
    the enclosing pass's read stream (the records to put down, in block-
    major order).  For reads, ``consume`` overrides the system's
    ``simple_io`` default (``None`` defers to it); the run-time detector
    uses ``consume=False`` to inspect records without moving them.

    Steps are immutable: the fast engine caches fused per-pass metadata
    keyed by step count, so rebinding a field in place would silently
    desynchronize it.  Build a new step (and a new pass) instead.
    """

    __slots__ = ("kind", "portion", "block_ids", "source", "consume")

    def __init__(
        self,
        kind: str,
        portion: int,
        block_ids: np.ndarray,
        source: np.ndarray | None = None,
        consume: bool | None = None,
    ) -> None:
        if kind not in ("read", "write"):
            raise ValidationError(f"step kind must be 'read' or 'write', got {kind!r}")
        set_ = super().__setattr__
        set_("kind", kind)
        set_("portion", int(portion))
        set_("block_ids", np.asarray(block_ids, dtype=np.int64))
        set_("source", None if source is None else np.asarray(source, dtype=np.int64))
        set_("consume", consume)

    def __setattr__(self, name, value):
        raise AttributeError(f"IOStep is immutable; cannot set {name!r}")

    @property
    def num_blocks(self) -> int:
        return self.block_ids.size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"IOStep({self.kind}, portion={self.portion}, blocks={list(self.block_ids)})"


class PlanPass:
    """A labelled pass: the unit of the paper's upper bounds.

    The pass label becomes the :class:`~repro.pdm.stats.PassStats` label
    when the plan is executed, so measured I/O tables attribute every
    operation exactly as the hand-written performers did.
    """

    __slots__ = ("label", "steps", "_fused")

    def __init__(self, label: str, steps: list[IOStep] | None = None) -> None:
        self.label = label
        self.steps = steps if steps is not None else []
        self._fused: dict = {}  # engine-side fused-metadata cache

    @property
    def num_read_blocks(self) -> int:
        return sum(s.num_blocks for s in self.steps if s.kind == "read")

    @property
    def num_write_blocks(self) -> int:
        return sum(s.num_blocks for s in self.steps if s.kind == "write")

    @property
    def parallel_ios(self) -> int:
        return len(self.steps)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PlanPass({self.label!r}, steps={len(self.steps)})"


class IOPlan:
    """An ordered sequence of passes over one geometry.

    Composition helpers chain plans into multi-pass pipelines: the
    Theorem 21 BMMC algorithm concatenates one plan per factor,
    ping-ponging portions between passes.
    """

    __slots__ = ("geometry", "passes")

    def __init__(self, geometry: DiskGeometry, passes: list[PlanPass] | None = None) -> None:
        self.geometry = geometry
        self.passes = passes if passes is not None else []

    # ---------------------------------------------------------- composition
    def extend(self, other: "IOPlan") -> "IOPlan":
        """Append ``other``'s passes after this plan's (same geometry)."""
        if other.geometry != self.geometry:
            raise ValidationError("cannot chain plans over different geometries")
        return IOPlan(self.geometry, self.passes + other.passes)

    @classmethod
    def concatenate(cls, plans: Sequence["IOPlan"]) -> "IOPlan":
        """Chain a sequence of plans into one multi-pass plan."""
        if not plans:
            raise ValidationError("cannot concatenate zero plans")
        result = plans[0]
        for plan in plans[1:]:
            result = result.extend(plan)
        return result

    # -------------------------------------------------------------- queries
    @property
    def num_passes(self) -> int:
        return len(self.passes)

    @property
    def num_steps(self) -> int:
        return sum(len(p.steps) for p in self.passes)

    @property
    def parallel_ios(self) -> int:
        return self.num_steps

    @property
    def blocks_moved(self) -> int:
        return sum(p.num_read_blocks + p.num_write_blocks for p in self.passes)

    def describe(self) -> str:
        lines = [
            f"IOPlan over {self.geometry.describe()}",
            f"  {self.num_passes} passes, {self.parallel_ios} parallel I/Os, "
            f"{self.blocks_moved} blocks moved",
        ]
        for p in self.passes:
            lines.append(
                f"  pass {p.label!r}: {p.parallel_ios} steps "
                f"({p.num_read_blocks} blocks read, {p.num_write_blocks} written)"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"IOPlan(passes={self.num_passes}, steps={self.num_steps})"


class PlanBuilder:
    """Incremental :class:`IOPlan` construction with read-stream accounting.

    ``read*`` methods return the slot indices their records occupy in the
    current pass's read stream; planners permute those slot arrays (pure
    index arithmetic) and hand them to ``write*``.  Mirrors the striped
    and memoryload sugar of :class:`~repro.pdm.system.ParallelDiskSystem`
    so planners read like the performers they replace.
    """

    def __init__(self, geometry: DiskGeometry) -> None:
        self.geometry = geometry
        self._passes: list[PlanPass] = []
        self._current: PlanPass | None = None
        self._cursor = 0  # records read so far in the current pass

    # ---------------------------------------------------------------- passes
    def begin_pass(self, label: str) -> "PlanBuilder":
        self._current = PlanPass(label)
        self._passes.append(self._current)
        self._cursor = 0
        return self

    def _require_pass(self) -> PlanPass:
        if self._current is None:
            raise ValidationError("begin_pass() before adding steps")
        return self._current

    # ----------------------------------------------------------------- steps
    def read(
        self,
        portion: int,
        block_ids: Iterable[int] | np.ndarray,
        consume: bool | None = None,
    ) -> np.ndarray:
        """Plan one parallel read; returns the slots its records occupy."""
        p = self._require_pass()
        step = IOStep("read", portion, block_ids, consume=consume)
        p.steps.append(step)
        slots = np.arange(
            self._cursor, self._cursor + step.num_blocks * self.geometry.B, dtype=np.int64
        )
        self._cursor = int(slots[-1]) + 1 if slots.size else self._cursor
        return slots

    def write(
        self,
        portion: int,
        block_ids: Iterable[int] | np.ndarray,
        source: np.ndarray,
    ) -> None:
        """Plan one parallel write of records at ``source`` stream slots."""
        p = self._require_pass()
        step = IOStep("write", portion, block_ids, source=source)
        expect = step.num_blocks * self.geometry.B
        if step.source.shape != (expect,):
            raise ValidationError(
                f"write source expects {expect} slots "
                f"({step.num_blocks} blocks x B={self.geometry.B}), "
                f"got shape {step.source.shape}"
            )
        if expect and (step.source.min() < 0 or step.source.max() >= self._cursor):
            raise ValidationError(
                "write sources records not yet read: slots must lie in "
                f"[0, {self._cursor}), got range "
                f"[{step.source.min()}, {step.source.max()}]"
            )
        p.steps.append(step)

    # --------------------------------------------------------- striped sugar
    def read_stripe(self, portion: int, stripe: int, consume: bool | None = None) -> np.ndarray:
        """Plan a striped read; slots come back in ascending address order."""
        return self.read(portion, self.geometry.stripe_blocks(stripe), consume=consume)

    def write_stripe(self, portion: int, stripe: int, source: np.ndarray) -> None:
        """Plan a striped write from ``BD`` slots in address order."""
        self.write(portion, self.geometry.stripe_blocks(stripe), source)

    def read_memoryload(self, portion: int, ml: int, consume: bool | None = None) -> np.ndarray:
        """Plan ``M/BD`` striped reads of a memoryload; ``M`` slots ascending."""
        parts = [
            self.read_stripe(portion, stripe, consume=consume)
            for stripe in self.geometry.memoryload_stripes(ml)
        ]
        return np.concatenate(parts)

    def write_memoryload(self, portion: int, ml: int, source: np.ndarray) -> None:
        """Plan ``M/BD`` striped writes of a memoryload from ``M`` slots."""
        g = self.geometry
        if source.shape != (g.M,):
            raise ValidationError(f"memoryload write expects {(g.M,)} slots, got {source.shape}")
        per = g.records_per_stripe
        for i, stripe in enumerate(g.memoryload_stripes(ml)):
            self.write_stripe(portion, stripe, source[i * per : (i + 1) * per])

    # ----------------------------------------------------------------- build
    def build(self) -> IOPlan:
        return IOPlan(self.geometry, self._passes)
