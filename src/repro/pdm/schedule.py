"""Declarative I/O plans: *what* an algorithm does, divorced from execution.

An :class:`IOPlan` is an ordered sequence of *passes*, each an ordered
sequence of parallel-I/O steps (:class:`IOStep`).  A step is either a
parallel **read** of up to ``D`` blocks or a parallel **write**; the
records a pass reads form its *read stream* (slot ``i`` is the ``i``-th
record read within the pass, in step order, block-major, offset order
within a block), and every write step names its payload as slot indices
into that stream.  The in-memory permutation an algorithm applies
between reading and writing a memoryload is therefore captured
declaratively by the ``source`` slot arrays -- no callback, no data.

Plans are pure descriptions: building one performs no I/O and touches no
:class:`~repro.pdm.system.ParallelDiskSystem`.  The planners in
:mod:`repro.core` emit plans; :mod:`repro.pdm.engine` executes them
either *strictly* (step-by-step through the counted, rule-checked
``read_blocks``/``write_blocks`` path) or *fast* (validated up front,
then fused numpy gather/scatter over whole passes).  Both modes produce
byte-identical portions and identical :class:`~repro.pdm.stats.IOStats`.

Passes built through :class:`PlanBuilder` carry a *columnar* twin of
their step list (:class:`PassColumns`): one concatenated numpy array per
step field, accumulated while the plan is being built.  The fast engine
fuses a pass directly from these arrays -- no per-step Python loop, no
re-concatenation -- which removes most of the one-time "cold start" cost
the first fused execution used to pay.  The :class:`IOStep` list is
materialized lazily, only when something (the strict engine, a test, a
repr) actually iterates steps.

This mirrors how external-memory schedules are treated as first-class
objects independent of the machine that runs them (cf. Guidesort's pass
schedules, arXiv:1807.11328).
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.errors import ValidationError
from repro.pdm.geometry import DiskGeometry

__all__ = ["IOStep", "PlanPass", "PassColumns", "IOPlan", "PlanBuilder"]

_EMPTY_I64 = np.zeros(0, dtype=np.int64)
_EMPTY_BOOL = np.zeros(0, dtype=bool)


class IOStep:
    """One parallel I/O: a read or a write of up to ``D`` blocks.

    ``block_ids`` is the int64 array of global block numbers, at most one
    per disk.  For writes, ``source`` holds ``k * B`` slot indices into
    the enclosing pass's read stream (the records to put down, in block-
    major order).  For reads, ``consume`` overrides the system's
    ``simple_io`` default (``None`` defers to it); the run-time detector
    uses ``consume=False`` to inspect records without moving them, and
    ``discard=True`` to release the records from the model's M-record
    memory as soon as they are read (inspected-and-dropped data that no
    later write may source).

    Steps are immutable: the fast engine caches fused per-pass metadata
    keyed by step count, so rebinding a field in place would silently
    desynchronize it.  Build a new step (and a new pass) instead.
    """

    __slots__ = ("kind", "portion", "block_ids", "source", "consume", "discard")

    def __init__(
        self,
        kind: str,
        portion: int,
        block_ids: np.ndarray,
        source: np.ndarray | None = None,
        consume: bool | None = None,
        discard: bool = False,
    ) -> None:
        if kind not in ("read", "write"):
            raise ValidationError(f"step kind must be 'read' or 'write', got {kind!r}")
        set_ = super().__setattr__
        set_("kind", kind)
        set_("portion", int(portion))
        set_("block_ids", np.asarray(block_ids, dtype=np.int64))
        set_("source", None if source is None else np.asarray(source, dtype=np.int64))
        set_("consume", consume)
        set_("discard", bool(discard))

    def __setattr__(self, name, value):
        raise AttributeError(f"IOStep is immutable; cannot set {name!r}")

    @property
    def num_blocks(self) -> int:
        return self.block_ids.size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"IOStep({self.kind}, portion={self.portion}, blocks={list(self.block_ids)})"


class PassColumns:
    """Struct-of-arrays form of one pass's steps (builder-produced).

    Field layout matches what the engine's fused representation needs:
    per-step metadata split by kind, with block ids and write sources
    already concatenated.  ``is_read``/``step_sizes`` retain the original
    step order so strict replay and memory accounting stay exact.
    """

    __slots__ = (
        "num_steps", "is_read", "step_sizes",
        "read_ids", "read_sizes", "read_portions",
        "read_consume_default", "read_consume_value", "read_discard",
        "write_ids", "write_sizes", "write_portions", "write_source",
    )

    @classmethod
    def empty(cls) -> "PassColumns":
        c = cls()
        c.num_steps = 0
        c.is_read = _EMPTY_BOOL
        c.step_sizes = _EMPTY_I64
        c.read_ids = _EMPTY_I64
        c.read_sizes = _EMPTY_I64
        c.read_portions = _EMPTY_I64
        c.read_consume_default = _EMPTY_BOOL
        c.read_consume_value = _EMPTY_BOOL
        c.read_discard = _EMPTY_BOOL
        c.write_ids = _EMPTY_I64
        c.write_sizes = _EMPTY_I64
        c.write_portions = _EMPTY_I64
        c.write_source = _EMPTY_I64
        return c


def _steps_from_columns(c: PassColumns) -> list[IOStep]:
    """Materialize the step list a columnar pass describes.

    Write-step record extents are recovered from ``write_sizes``; block
    sizes are uniform per step so ``step_sizes`` drives both id slices.
    The per-block record count is implicit: each write step's source
    array spans ``size / num_blocks`` records per block, i.e. the
    geometry's ``B`` -- recovered here as total source records divided
    by total write blocks (exact for every builder-produced pass).
    """
    steps: list[IOStep] = []
    total_write_blocks = int(c.write_sizes.sum())
    B = c.write_source.size // total_write_blocks if total_write_blocks else 0
    r = w = 0
    rid = wid = wsrc = 0
    for i in range(c.num_steps):
        size = int(c.step_sizes[i])
        if c.is_read[i]:
            consume = None if c.read_consume_default[r] else bool(c.read_consume_value[r])
            steps.append(
                IOStep(
                    "read",
                    int(c.read_portions[r]),
                    c.read_ids[rid : rid + size],
                    consume=consume,
                    discard=bool(c.read_discard[r]),
                )
            )
            r += 1
            rid += size
        else:
            steps.append(
                IOStep(
                    "write",
                    int(c.write_portions[w]),
                    c.write_ids[wid : wid + size],
                    source=c.write_source[wsrc : wsrc + size * B],
                )
            )
            w += 1
            wid += size
            wsrc += size * B
    return steps


def _columns_from_steps(steps: Sequence[IOStep]) -> PassColumns:
    """Columnar form of an explicit step list (slow path, loops once)."""
    c = PassColumns.empty()
    c.num_steps = len(steps)
    if not steps:
        return c
    is_read = np.empty(len(steps), dtype=bool)
    step_sizes = np.empty(len(steps), dtype=np.int64)
    read_ids, read_sizes, read_portions = [], [], []
    consume_default, consume_value, discard = [], [], []
    write_ids, write_sizes, write_portions, write_sources = [], [], [], []
    for i, step in enumerate(steps):
        is_read[i] = step.kind == "read"
        step_sizes[i] = step.num_blocks
        if step.kind == "read":
            read_ids.append(step.block_ids)
            read_sizes.append(step.num_blocks)
            read_portions.append(step.portion)
            consume_default.append(step.consume is None)
            consume_value.append(bool(step.consume))
            discard.append(step.discard)
        else:
            write_ids.append(step.block_ids)
            write_sizes.append(step.num_blocks)
            write_portions.append(step.portion)
            write_sources.append(
                step.source if step.source is not None else _EMPTY_I64
            )
    c.is_read = is_read
    c.step_sizes = step_sizes
    c.read_ids = np.concatenate(read_ids) if read_ids else _EMPTY_I64
    c.read_sizes = np.asarray(read_sizes, dtype=np.int64)
    c.read_portions = np.asarray(read_portions, dtype=np.int64)
    c.read_consume_default = np.asarray(consume_default, dtype=bool)
    c.read_consume_value = np.asarray(consume_value, dtype=bool)
    c.read_discard = np.asarray(discard, dtype=bool)
    c.write_ids = np.concatenate(write_ids) if write_ids else _EMPTY_I64
    c.write_sizes = np.asarray(write_sizes, dtype=np.int64)
    c.write_portions = np.asarray(write_portions, dtype=np.int64)
    c.write_source = np.concatenate(write_sources) if write_sources else _EMPTY_I64
    return c


class PlanPass:
    """A labelled pass: the unit of the paper's upper bounds.

    The pass label becomes the :class:`~repro.pdm.stats.PassStats` label
    when the plan is executed, so measured I/O tables attribute every
    operation exactly as the hand-written performers did.

    A pass is backed by an explicit :class:`IOStep` list, a columnar
    :class:`PassColumns` twin, or both.  Builder-produced passes start
    columnar and materialize steps only on demand; hand-built passes
    (``PlanPass(label, [step, ...])``) start as step lists and grow a
    columnar twin the first time the fast engine fuses them.  Mutating a
    materialized step list (appending steps, as a few tests do) is
    detected by step count and invalidates the columnar/fused caches.
    """

    __slots__ = ("label", "_steps", "_columns", "_fused")

    def __init__(self, label: str, steps: list[IOStep] | None = None) -> None:
        self.label = label
        self._steps = steps if steps is not None else []
        self._columns: PassColumns | None = None
        self._fused: dict = {}  # engine-side fused-metadata cache

    @classmethod
    def _from_columns(cls, label: str, columns: PassColumns) -> "PlanPass":
        p = cls.__new__(cls)
        p.label = label
        p._steps = None
        p._columns = columns
        p._fused = {}
        return p

    @property
    def steps(self) -> list[IOStep]:
        if self._steps is None:
            self._steps = _steps_from_columns(self._columns)
        return self._steps

    @property
    def num_steps(self) -> int:
        c = self.columns_if_fresh()
        return c.num_steps if c is not None else len(self.steps)

    def columns_if_fresh(self) -> PassColumns | None:
        """The columnar twin, or ``None`` if the step list has diverged."""
        c = self._columns
        if c is None:
            return None
        if self._steps is not None and len(self._steps) != c.num_steps:
            return None
        return c

    def _ensure_columns(self) -> PassColumns:
        c = self.columns_if_fresh()
        if c is None:
            c = _columns_from_steps(self.steps)
            self._columns = c
        return c

    @property
    def num_read_blocks(self) -> int:
        c = self.columns_if_fresh()
        if c is not None:
            return int(c.read_sizes.sum())
        return sum(s.num_blocks for s in self.steps if s.kind == "read")

    @property
    def num_write_blocks(self) -> int:
        c = self.columns_if_fresh()
        if c is not None:
            return int(c.write_sizes.sum())
        return sum(s.num_blocks for s in self.steps if s.kind == "write")

    @property
    def parallel_ios(self) -> int:
        return self.num_steps

    def relabelled(self, label: str) -> "PlanPass":
        """A shallow copy under a new label (steps/columns shared)."""
        p = PlanPass.__new__(PlanPass)
        p.label = label
        p._steps = self._steps
        p._columns = self._columns
        p._fused = {}
        return p

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PlanPass({self.label!r}, steps={self.num_steps})"


def _pass_block_keys(g: DiskGeometry, pas: PlanPass):
    """Portion-qualified (read_keys, write_keys) block sets of a pass."""
    c = pas._ensure_columns()
    rkeys = np.repeat(c.read_portions, c.read_sizes) * g.num_blocks + c.read_ids
    wkeys = np.repeat(c.write_portions, c.write_sizes) * g.num_blocks + c.write_ids
    return rkeys, wkeys


def _try_merge_passes(g: DiskGeometry, a: PlanPass, b: PlanPass) -> PlanPass | None:
    """Merge two adjacent same-label passes into one, when provably safe.

    Safe means the union still satisfies the fused-execution discipline
    with room to spare: the two passes touch disjoint blocks (per
    portion, reads and writes alike), so the merged pass reads each
    block at most once and writes each block at most once, and ``b``'s
    write sources can simply be offset past ``a``'s read stream.  This
    is deliberately stricter than the engine's fusability audit --
    ping-pong chains (where ``b`` re-reads what ``a`` wrote) never
    merge; those are the cross-*pass* optimizer's job
    (:mod:`repro.pdm.optimize`).
    """
    if a.label != b.label:
        return None
    ra, wa = _pass_block_keys(g, a)
    rb, wb = _pass_block_keys(g, b)
    touched_a = np.concatenate((ra, wa))
    touched_b = np.concatenate((rb, wb))
    if np.intersect1d(touched_a, touched_b).size:
        return None
    ca, cb = a._ensure_columns(), b._ensure_columns()
    offset = int(ca.read_sizes.sum()) * g.B
    merged = PassColumns.empty()
    merged.num_steps = ca.num_steps + cb.num_steps
    merged.is_read = np.concatenate((ca.is_read, cb.is_read))
    merged.step_sizes = np.concatenate((ca.step_sizes, cb.step_sizes))
    merged.read_ids = np.concatenate((ca.read_ids, cb.read_ids))
    merged.read_sizes = np.concatenate((ca.read_sizes, cb.read_sizes))
    merged.read_portions = np.concatenate((ca.read_portions, cb.read_portions))
    merged.read_consume_default = np.concatenate(
        (ca.read_consume_default, cb.read_consume_default)
    )
    merged.read_consume_value = np.concatenate(
        (ca.read_consume_value, cb.read_consume_value)
    )
    merged.read_discard = np.concatenate((ca.read_discard, cb.read_discard))
    merged.write_ids = np.concatenate((ca.write_ids, cb.write_ids))
    merged.write_sizes = np.concatenate((ca.write_sizes, cb.write_sizes))
    merged.write_portions = np.concatenate((ca.write_portions, cb.write_portions))
    merged.write_source = np.concatenate((ca.write_source, cb.write_source + offset))
    return PlanPass._from_columns(a.label, merged)


class IOPlan:
    """An ordered sequence of passes over one geometry.

    Composition helpers chain plans into multi-pass pipelines: the
    Theorem 21 BMMC algorithm concatenates one plan per factor,
    ping-ponging portions between passes.
    """

    __slots__ = ("geometry", "passes")

    def __init__(self, geometry: DiskGeometry, passes: list[PlanPass] | None = None) -> None:
        self.geometry = geometry
        self.passes = passes if passes is not None else []

    # ---------------------------------------------------------- composition
    def extend(self, other: "IOPlan", merge: bool = True) -> "IOPlan":
        """Append ``other``'s passes after this plan's (same geometry).

        With ``merge=True`` (the default) adjacent passes that share a
        label and touch disjoint blocks are merged into one pass, so
        composing two halves of the same logical pass does not inflate
        the pass count ``describe()`` and :class:`~repro.pdm.stats`
        report.  Unmergeable label collisions are disambiguated by
        suffixing (``mld``, ``mld@2``, ...) so every pass row in a
        measured table names a distinct pass.
        """
        if other.geometry != self.geometry:
            raise ValidationError("cannot chain plans over different geometries")
        passes = list(self.passes)
        for p in other.passes:
            if merge and passes:
                merged = _try_merge_passes(self.geometry, passes[-1], p)
                if merged is not None:
                    passes[-1] = merged
                    continue
            if merge:
                taken = {q.label for q in passes}
                if p.label in taken:
                    k = 2
                    while f"{p.label}@{k}" in taken:
                        k += 1
                    p = p.relabelled(f"{p.label}@{k}")
            passes.append(p)
        return IOPlan(self.geometry, passes)

    @classmethod
    def concatenate(cls, plans: Sequence["IOPlan"], merge: bool = True) -> "IOPlan":
        """Chain a sequence of plans into one multi-pass plan."""
        if not plans:
            raise ValidationError("cannot concatenate zero plans")
        result = plans[0]
        for plan in plans[1:]:
            result = result.extend(plan, merge=merge)
        return result

    # -------------------------------------------------------------- queries
    @property
    def num_passes(self) -> int:
        return len(self.passes)

    @property
    def num_steps(self) -> int:
        return sum(p.num_steps for p in self.passes)

    @property
    def parallel_ios(self) -> int:
        return self.num_steps

    @property
    def blocks_moved(self) -> int:
        return sum(p.num_read_blocks + p.num_write_blocks for p in self.passes)

    # ------------------------------------------------------------ simulation
    def apply_to(self, portions: np.ndarray, simple_io: bool = True, empty=None) -> None:
        """Apply the plan's data movement to a bare portions array, in place.

        ``portions`` has shape ``(num_portions, N)``.  This is the pure
        semantics of the plan -- gather each pass's read stream, empty
        consumed blocks, scatter the writes -- with no system, no model
        rules, and no I/O accounting.  The staged-plan materializer
        (:mod:`repro.pdm.stage`) uses it to advance simulated state
        between stages; it assumes the *fused* within-pass semantics
        (reads before writes), which every pass the fast engine accepts
        satisfies.  ``empty`` defaults to the system's
        :data:`~repro.pdm.system.EMPTY` sentinel.
        """
        if empty is None:
            from repro.pdm.system import EMPTY  # local: system is a peer module

            empty = EMPTY
        g = self.geometry
        offsets = np.arange(g.B, dtype=np.int64)[None, :]
        for pas in self.passes:
            c = pas._ensure_columns()
            read_addr = ((c.read_ids[:, None] << g.b) + offsets).reshape(-1)
            rec_rport = np.repeat(c.read_portions, c.read_sizes * g.B)
            stream = portions[rec_rport, read_addr]
            consume = np.where(
                c.read_consume_default, simple_io, c.read_consume_value
            )
            rec_consume = np.repeat(consume, c.read_sizes * g.B)
            if rec_consume.any():
                portions[rec_rport[rec_consume], read_addr[rec_consume]] = empty
            if c.write_source.size:
                write_addr = ((c.write_ids[:, None] << g.b) + offsets).reshape(-1)
                rec_wport = np.repeat(c.write_portions, c.write_sizes * g.B)
                portions[rec_wport, write_addr] = stream[c.write_source]

    def describe(self) -> str:
        lines = [
            f"IOPlan over {self.geometry.describe()}",
            f"  {self.num_passes} passes, {self.parallel_ios} parallel I/Os, "
            f"{self.blocks_moved} blocks moved",
        ]
        for p in self.passes:
            lines.append(
                f"  pass {p.label!r}: {p.parallel_ios} steps "
                f"({p.num_read_blocks} blocks read, {p.num_write_blocks} written)"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"IOPlan(passes={self.num_passes}, steps={self.num_steps})"


class _PassAccumulator:
    """Per-pass columnar accumulation state inside :class:`PlanBuilder`."""

    __slots__ = (
        "label", "kinds", "sizes",
        "read_ids", "read_portions", "consume_default", "consume_value", "discard",
        "write_ids", "write_portions", "write_sources",
        "built",
    )

    def __init__(self, label: str) -> None:
        self.label = label
        self.kinds: list[bool] = []
        self.sizes: list[int] = []
        self.read_ids: list[np.ndarray] = []
        self.read_portions: list[int] = []
        self.consume_default: list[bool] = []
        self.consume_value: list[bool] = []
        self.discard: list[bool] = []
        self.write_ids: list[np.ndarray] = []
        self.write_portions: list[int] = []
        self.write_sources: list[np.ndarray] = []
        self.built: PlanPass | None = None

    def to_pass(self) -> PlanPass:
        if self.built is not None:
            return self.built
        c = PassColumns.empty()
        c.num_steps = len(self.kinds)
        if c.num_steps:
            c.is_read = np.asarray(self.kinds, dtype=bool)
            c.step_sizes = np.asarray(self.sizes, dtype=np.int64)
            c.read_ids = (
                np.concatenate(self.read_ids) if self.read_ids else _EMPTY_I64
            )
            c.read_sizes = np.asarray(
                [ids.size for ids in self.read_ids], dtype=np.int64
            )
            c.read_portions = np.asarray(self.read_portions, dtype=np.int64)
            c.read_consume_default = np.asarray(self.consume_default, dtype=bool)
            c.read_consume_value = np.asarray(self.consume_value, dtype=bool)
            c.read_discard = np.asarray(self.discard, dtype=bool)
            c.write_ids = (
                np.concatenate(self.write_ids) if self.write_ids else _EMPTY_I64
            )
            c.write_sizes = np.asarray(
                [ids.size for ids in self.write_ids], dtype=np.int64
            )
            c.write_portions = np.asarray(self.write_portions, dtype=np.int64)
            c.write_source = (
                np.concatenate(self.write_sources) if self.write_sources else _EMPTY_I64
            )
        self.built = PlanPass._from_columns(self.label, c)
        return self.built


class PlanBuilder:
    """Incremental :class:`IOPlan` construction with read-stream accounting.

    ``read*`` methods return the slot indices their records occupy in the
    current pass's read stream; planners permute those slot arrays (pure
    index arithmetic) and hand them to ``write*``.  Mirrors the striped
    and memoryload sugar of :class:`~repro.pdm.system.ParallelDiskSystem`
    so planners read like the performers they replace.

    The builder accumulates columnar numpy arrays directly -- no
    :class:`IOStep` objects are created during planning -- so the fast
    engine can fuse the built plan without ever looping over steps.
    """

    def __init__(self, geometry: DiskGeometry) -> None:
        self.geometry = geometry
        self._accs: list[_PassAccumulator] = []
        self._current: _PassAccumulator | None = None
        self._cursor = 0  # records read so far in the current pass

    # ---------------------------------------------------------------- passes
    def begin_pass(self, label: str) -> "PlanBuilder":
        self._current = _PassAccumulator(label)
        self._accs.append(self._current)
        self._cursor = 0
        return self

    def _require_pass(self) -> _PassAccumulator:
        if self._current is None:
            raise ValidationError("begin_pass() before adding steps")
        return self._current

    # ----------------------------------------------------------------- steps
    def read(
        self,
        portion: int,
        block_ids: Iterable[int] | np.ndarray,
        consume: bool | None = None,
        discard: bool = False,
    ) -> np.ndarray:
        """Plan one parallel read; returns the slots its records occupy."""
        acc = self._require_pass()
        ids = np.asarray(block_ids, dtype=np.int64)
        acc.kinds.append(True)
        acc.sizes.append(ids.size)
        acc.read_ids.append(ids)
        acc.read_portions.append(int(portion))
        acc.consume_default.append(consume is None)
        acc.consume_value.append(bool(consume))
        acc.discard.append(bool(discard))
        acc.built = None
        slots = np.arange(
            self._cursor, self._cursor + ids.size * self.geometry.B, dtype=np.int64
        )
        self._cursor = int(slots[-1]) + 1 if slots.size else self._cursor
        return slots

    def write(
        self,
        portion: int,
        block_ids: Iterable[int] | np.ndarray,
        source: np.ndarray,
    ) -> None:
        """Plan one parallel write of records at ``source`` stream slots."""
        acc = self._require_pass()
        ids = np.asarray(block_ids, dtype=np.int64)
        source = np.asarray(source, dtype=np.int64)
        expect = ids.size * self.geometry.B
        if source.shape != (expect,):
            raise ValidationError(
                f"write source expects {expect} slots "
                f"({ids.size} blocks x B={self.geometry.B}), "
                f"got shape {source.shape}"
            )
        if expect and (source.min() < 0 or source.max() >= self._cursor):
            raise ValidationError(
                "write sources records not yet read: slots must lie in "
                f"[0, {self._cursor}), got range "
                f"[{source.min()}, {source.max()}]"
            )
        acc.kinds.append(False)
        acc.sizes.append(ids.size)
        acc.write_ids.append(ids)
        acc.write_portions.append(int(portion))
        acc.write_sources.append(source)
        acc.built = None

    # --------------------------------------------------------- striped sugar
    def read_stripe(
        self,
        portion: int,
        stripe: int,
        consume: bool | None = None,
        discard: bool = False,
    ) -> np.ndarray:
        """Plan a striped read; slots come back in ascending address order."""
        return self.read(
            portion, self.geometry.stripe_blocks(stripe), consume=consume, discard=discard
        )

    def write_stripe(self, portion: int, stripe: int, source: np.ndarray) -> None:
        """Plan a striped write from ``BD`` slots in address order."""
        self.write(portion, self.geometry.stripe_blocks(stripe), source)

    def read_memoryload(self, portion: int, ml: int, consume: bool | None = None) -> np.ndarray:
        """Plan ``M/BD`` striped reads of a memoryload; ``M`` slots ascending."""
        parts = [
            self.read_stripe(portion, stripe, consume=consume)
            for stripe in self.geometry.memoryload_stripes(ml)
        ]
        return np.concatenate(parts)

    def write_memoryload(self, portion: int, ml: int, source: np.ndarray) -> None:
        """Plan ``M/BD`` striped writes of a memoryload from ``M`` slots."""
        g = self.geometry
        if source.shape != (g.M,):
            raise ValidationError(f"memoryload write expects {(g.M,)} slots, got {source.shape}")
        per = g.records_per_stripe
        for i, stripe in enumerate(g.memoryload_stripes(ml)):
            self.write_stripe(portion, stripe, source[i * per : (i + 1) * per])

    # ----------------------------------------------------------------- build
    def build(self) -> IOPlan:
        return IOPlan(self.geometry, [acc.to_pass() for acc in self._accs])
