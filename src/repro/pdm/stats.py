"""I/O accounting: every parallel operation, classified and attributable.

The paper measures algorithms purely by their number of parallel I/Os
and distinguishes *striped* operations (the blocks accessed live at the
same location on each disk) from *independent* ones.  ``IOStats``
counts both, plus blocks and records moved, and supports *passes*: a
pass is the unit of the paper's upper bounds ("a pass consists of
reading and writing each record exactly once and therefore uses exactly
``2N/BD`` parallel I/Os", Table 1 caption).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["IOStats", "PassStats", "StatsSnapshot"]


@dataclass
class PassStats:
    """Per-pass I/O counters, labelled by the algorithm."""

    label: str
    parallel_reads: int = 0
    parallel_writes: int = 0
    striped_reads: int = 0
    striped_writes: int = 0
    independent_reads: int = 0
    independent_writes: int = 0
    blocks_read: int = 0
    blocks_written: int = 0

    @property
    def parallel_ios(self) -> int:
        return self.parallel_reads + self.parallel_writes


@dataclass(frozen=True)
class StatsSnapshot:
    """Immutable counter snapshot; subtract two to measure a phase."""

    parallel_reads: int
    parallel_writes: int
    striped_reads: int
    striped_writes: int
    independent_reads: int
    independent_writes: int
    blocks_read: int
    blocks_written: int

    @property
    def parallel_ios(self) -> int:
        return self.parallel_reads + self.parallel_writes

    def __sub__(self, other: "StatsSnapshot") -> "StatsSnapshot":
        return StatsSnapshot(
            self.parallel_reads - other.parallel_reads,
            self.parallel_writes - other.parallel_writes,
            self.striped_reads - other.striped_reads,
            self.striped_writes - other.striped_writes,
            self.independent_reads - other.independent_reads,
            self.independent_writes - other.independent_writes,
            self.blocks_read - other.blocks_read,
            self.blocks_written - other.blocks_written,
        )


class IOStats:
    """Mutable I/O counters for one :class:`ParallelDiskSystem`."""

    def __init__(self) -> None:
        self.parallel_reads = 0
        self.parallel_writes = 0
        self.striped_reads = 0
        self.striped_writes = 0
        self.independent_reads = 0
        self.independent_writes = 0
        self.blocks_read = 0
        self.blocks_written = 0
        self.passes: list[PassStats] = []
        self._current_pass: PassStats | None = None

    # ------------------------------------------------------------- recording
    def record_read(self, num_blocks: int, striped: bool) -> None:
        self.parallel_reads += 1
        self.blocks_read += num_blocks
        if striped:
            self.striped_reads += 1
        else:
            self.independent_reads += 1
        if self._current_pass is not None:
            p = self._current_pass
            p.parallel_reads += 1
            p.blocks_read += num_blocks
            if striped:
                p.striped_reads += 1
            else:
                p.independent_reads += 1

    def record_write(self, num_blocks: int, striped: bool) -> None:
        self.parallel_writes += 1
        self.blocks_written += num_blocks
        if striped:
            self.striped_writes += 1
        else:
            self.independent_writes += 1
        if self._current_pass is not None:
            p = self._current_pass
            p.parallel_writes += 1
            p.blocks_written += num_blocks
            if striped:
                p.striped_writes += 1
            else:
                p.independent_writes += 1

    def record_pass_batch(
        self,
        label: str,
        parallel_reads: int,
        parallel_writes: int,
        striped_reads: int,
        striped_writes: int,
        blocks_read: int,
        blocks_written: int,
    ) -> PassStats:
        """Account a whole pass in one update (the fast engine's path).

        Produces exactly the counters that ``begin_pass`` + per-operation
        ``record_read``/``record_write`` + ``end_pass`` would have, so
        snapshots and pass tables cannot tell the two engines apart.
        """
        p = PassStats(
            label,
            parallel_reads=parallel_reads,
            parallel_writes=parallel_writes,
            striped_reads=striped_reads,
            striped_writes=striped_writes,
            independent_reads=parallel_reads - striped_reads,
            independent_writes=parallel_writes - striped_writes,
            blocks_read=blocks_read,
            blocks_written=blocks_written,
        )
        self.passes.append(p)
        self.parallel_reads += parallel_reads
        self.parallel_writes += parallel_writes
        self.striped_reads += striped_reads
        self.striped_writes += striped_writes
        self.independent_reads += p.independent_reads
        self.independent_writes += p.independent_writes
        self.blocks_read += blocks_read
        self.blocks_written += blocks_written
        return p

    # ---------------------------------------------------------------- passes
    def begin_pass(self, label: str) -> PassStats:
        """Open a labelled pass; subsequent I/Os accrue to it."""
        self._current_pass = PassStats(label)
        self.passes.append(self._current_pass)
        return self._current_pass

    def end_pass(self) -> PassStats | None:
        finished = self._current_pass
        self._current_pass = None
        return finished

    # -------------------------------------------------------------- querying
    @property
    def parallel_ios(self) -> int:
        return self.parallel_reads + self.parallel_writes

    def snapshot(self) -> StatsSnapshot:
        return StatsSnapshot(
            self.parallel_reads,
            self.parallel_writes,
            self.striped_reads,
            self.striped_writes,
            self.independent_reads,
            self.independent_writes,
            self.blocks_read,
            self.blocks_written,
        )

    def summary(self) -> str:
        lines = [
            f"parallel I/Os: {self.parallel_ios} "
            f"({self.parallel_reads} reads, {self.parallel_writes} writes)",
            f"  striped: {self.striped_reads} reads, {self.striped_writes} writes",
            f"  independent: {self.independent_reads} reads, {self.independent_writes} writes",
            f"  blocks moved: {self.blocks_read} read, {self.blocks_written} written",
        ]
        for p in self.passes:
            lines.append(
                f"  pass {p.label!r}: {p.parallel_ios} I/Os "
                f"({p.parallel_reads}R/{p.parallel_writes}W)"
            )
        return "\n".join(lines)
