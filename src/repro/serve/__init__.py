"""Concurrent permutation serving: many requests, one shared plan cache.

The paper's bound is about I/O parallelism *within* one permutation
(D disks working every operation); this package is about parallelism
*across* permutations -- the traffic shape of a production relayout
service, where many independent workloads (FFT bit-reversals,
transposes, distribution sorts, ad-hoc BMMCs) arrive concurrently and
most of them repeat.

Layout:

* :mod:`repro.serve.requests` -- request/result values, workload
  construction, and the sequential reference runner.
* :mod:`repro.serve.service` -- :class:`PermutationService`: the worker
  pool with admission control, deadlines, retries, and fault injection.
* :mod:`repro.serve.robust` -- :class:`RetryPolicy`,
  :class:`CircuitBreaker`, and transient-failure classification.
* :mod:`repro.serve.faults` -- :class:`FaultPlan`: deterministic,
  seeded chaos fired through the execution stack's cooperative
  checkpoints.
* :mod:`repro.serve.metrics` -- the stdlib Prometheus-format registry
  and :class:`ServiceMetrics`, the standard instrument set.
* :mod:`repro.serve.http` -- :class:`HttpFrontend`: the HTTP/JSON API
  (submit/poll, ``/stats``, ``/metrics``, graceful drain).
* :mod:`repro.serve.warmup` -- boot-time cache warming from a JSON
  spec.
* :mod:`repro.serve.loadgen` -- the socket-level load generator and
  the ``/stats`` vs ``/metrics`` reconciliation check.
* :mod:`repro.serve.workload` -- workload traces: the versioned JSONL
  record/replay format, the deterministic skewed/bursty generator, and
  the replay oracle.

Quick start::

    from repro import DiskGeometry
    from repro.serve import PermutationService, synthetic_mix

    g = DiskGeometry(N=2**14, B=2**3, D=2**2, M=2**8)
    with PermutationService(g, workers=8) as service:
        results = service.run(synthetic_mix(32))
    print(service.cache.info())
    print(service.stats())

or from the shell::

    python -m repro serve --workers 8 --count 32 --repeat 2
"""

from repro.serve.faults import FaultPlan, FaultSession, chaos_plan
from repro.serve.http import HttpFrontend, status_for
from repro.serve.loadgen import run_loadgen
from repro.serve.metrics import MetricsRegistry, ServiceMetrics, parse_prometheus_text
from repro.serve.requests import (
    PERM_CHOICES,
    PermutationRequest,
    RequestTrace,
    ServiceResult,
    _execute_request,
    execution_key,
    load_requests,
    make_permutation,
    request_from_dict,
    request_to_dict,
    run_sequential,
    synthetic_mix,
)
from repro.serve.robust import (
    QUEUE_POLICIES,
    CircuitBreaker,
    GuardedCache,
    RetryPolicy,
    is_transient,
)
from repro.serve.service import PermutationService, ServiceStats
from repro.serve.warmup import WarmupReport, load_warmup_spec, warm_service
from repro.serve.workload import (
    ReplayReport,
    TraceEvent,
    TraceRecorder,
    WorkloadSpec,
    WorkloadTrace,
    generate_trace,
    geometry_variants,
    mix_trace,
    reconcile_replay,
    replay_trace,
)

__all__ = [
    "PERM_CHOICES",
    "QUEUE_POLICIES",
    "PermutationRequest",
    "PermutationService",
    "RequestTrace",
    "ServiceResult",
    "ServiceStats",
    "ReplayReport",
    "RetryPolicy",
    "CircuitBreaker",
    "GuardedCache",
    "FaultPlan",
    "FaultSession",
    "HttpFrontend",
    "MetricsRegistry",
    "ServiceMetrics",
    "TraceEvent",
    "TraceRecorder",
    "WarmupReport",
    "WorkloadSpec",
    "WorkloadTrace",
    "chaos_plan",
    "execution_key",
    "generate_trace",
    "geometry_variants",
    "is_transient",
    "make_permutation",
    "run_sequential",
    "synthetic_mix",
    "load_requests",
    "load_warmup_spec",
    "mix_trace",
    "parse_prometheus_text",
    "reconcile_replay",
    "replay_trace",
    "request_from_dict",
    "request_to_dict",
    "run_loadgen",
    "status_for",
    "warm_service",
]
