"""Workload traces: record, generate, and replay service traffic.

The paper's bounds are per-permutation; the serving stack's behavior --
cache policy, admission control, deadlines, the breaker -- only shows
under *traffic*, and real traffic is skewed and bursty.  This module
makes traffic a first-class, reproducible artifact:

* **Trace format** -- a versioned JSONL file: one schema'd header line
  (:data:`FORMAT_NAME`/:data:`FORMAT_VERSION`, geometry, generator
  spec, event count) followed by one event per line (``{"at": seconds,
  "request": {...}}`` in the :func:`~repro.serve.request_to_dict`
  shape).  Serialization is canonical (sorted keys, minimal
  separators), so equal traces are equal *bytes* -- the property every
  determinism test below leans on.

* **Record** -- :class:`TraceRecorder` captures everything submitted to
  a :class:`~repro.serve.PermutationService` (the service calls
  :meth:`TraceRecorder.record` on every ``submit``, *before* admission
  control, so a trace is the offered load, not the admitted load) with
  arrival offsets on the recorder's own monotonic clock.  Any
  production-ish session becomes a replayable benchmark artifact via
  ``repro serve --record FILE``.

* **Generate** -- :func:`generate_trace` turns a :class:`WorkloadSpec`
  into a trace deterministically: Zipfian or uniform key popularity
  over a catalog of distinct request keys, Poisson / bursty / uniform
  arrival processes, optional geometry diversity.  The same spec
  byte-reproduces the same trace (one ``default_rng(seed)``, arrivals
  drawn before keys -- the draw order is part of the format contract).

* **Replay** -- :func:`replay_trace` drives a trace through a service
  with faithful arrival timing (or as fast as possible) and returns a
  :class:`ReplayReport` with per-request digests, latency percentiles,
  and the service/cache counter snapshot.  Replay is the determinism
  oracle: the same trace through a fresh service twice yields
  byte-identical digests, identical per-request IOStats, and exactly
  reconciled counters -- asserted by ``tests/serve/test_workload*.py``
  and gated in CI's ``workloads`` job.

The standard uniform mix the CLI load generator and ``bench_serve.py``
previously hand-rolled separately now has one shared builder here,
:func:`mix_trace`.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
from dataclasses import dataclass, field, fields, replace

import numpy as np

from repro.errors import ValidationError
from repro.pdm.geometry import DiskGeometry
from repro.serve.requests import (
    PermutationRequest,
    request_from_dict,
    request_to_dict,
    synthetic_mix,
)

__all__ = [
    "FORMAT_NAME",
    "FORMAT_VERSION",
    "ARRIVALS",
    "POPULARITIES",
    "TraceEvent",
    "WorkloadTrace",
    "WorkloadSpec",
    "TraceRecorder",
    "ReplayReport",
    "generate_trace",
    "geometry_variants",
    "mix_trace",
    "replay_trace",
    "reconcile_replay",
]

#: Schema identity of the trace file's header line.
FORMAT_NAME = "repro-workload-trace"

#: Bump on any incompatible change to the header or event shape.
FORMAT_VERSION = 1

#: Supported arrival processes.
ARRIVALS = ("uniform", "poisson", "bursty")

#: Supported key-popularity distributions.
POPULARITIES = ("uniform", "zipf")


def _canonical(obj) -> str:
    """Canonical JSON: sorted keys, no whitespace -- byte-stable."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def _geometry_to_dict(geometry: DiskGeometry) -> dict:
    return {"N": geometry.N, "B": geometry.B, "D": geometry.D, "M": geometry.M}


# --------------------------------------------------------------------------
# the trace itself
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class TraceEvent:
    """One arrival: ``at`` seconds after the trace starts, one request.

    Offsets are rounded to nanosecond precision at construction so the
    canonical serialization round-trips exactly.
    """

    at: float
    request: PermutationRequest

    def __post_init__(self) -> None:
        object.__setattr__(self, "at", round(float(self.at), 9))
        if self.at < 0:
            raise ValidationError(f"arrival offset must be >= 0, got {self.at}")

    def to_dict(self) -> dict:
        return {"at": self.at, "request": request_to_dict(self.request)}

    @classmethod
    def from_dict(cls, payload: dict) -> "TraceEvent":
        unknown = set(payload) - {"at", "request"}
        if unknown:
            raise ValidationError(f"unknown trace event fields: {sorted(unknown)}")
        if "at" not in payload or "request" not in payload:
            raise ValidationError('a trace event needs both "at" and "request"')
        return cls(at=payload["at"], request=request_from_dict(payload["request"]))


@dataclass
class WorkloadTrace:
    """A named sequence of timed requests, with its provenance.

    ``geometry`` is the service default the trace was built for (events
    may still carry per-request overrides); ``spec`` is the generator
    spec dict when the trace was generated (``None`` for recorded
    traces), kept in the header so a committed trace can be checked for
    drift against its own recipe.
    """

    events: list[TraceEvent]
    name: str = "trace"
    geometry: DiskGeometry | None = None
    seed: int = 0
    spec: dict | None = None

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def requests(self) -> list[PermutationRequest]:
        return [event.request for event in self.events]

    @property
    def duration(self) -> float:
        """The last arrival offset (0 for an empty trace)."""
        return self.events[-1].at if self.events else 0.0

    def header(self) -> dict:
        head = {
            "format": FORMAT_NAME,
            "version": FORMAT_VERSION,
            "name": self.name,
            "seed": self.seed,
            "events": len(self.events),
        }
        if self.geometry is not None:
            head["geometry"] = _geometry_to_dict(self.geometry)
        if self.spec is not None:
            head["spec"] = self.spec
        return head

    def dumps(self) -> str:
        """The canonical JSONL serialization (header + one event/line)."""
        lines = [_canonical(self.header())]
        lines.extend(_canonical(event.to_dict()) for event in self.events)
        return "\n".join(lines) + "\n"

    def save(self, path) -> None:
        with open(path, "w") as handle:
            handle.write(self.dumps())

    @classmethod
    def loads(cls, text: str, path: str = "<string>") -> "WorkloadTrace":
        lines = [line for line in text.splitlines() if line.strip()]
        if not lines:
            raise ValidationError(f"{path}: empty workload trace")
        try:
            head = json.loads(lines[0])
        except json.JSONDecodeError as exc:
            raise ValidationError(f"{path}: malformed header line: {exc}") from exc
        if not isinstance(head, dict) or head.get("format") != FORMAT_NAME:
            raise ValidationError(
                f"{path}: not a workload trace (header must carry "
                f'"format": "{FORMAT_NAME}")'
            )
        version = head.get("version")
        if version != FORMAT_VERSION:
            raise ValidationError(
                f"{path}: unsupported trace version {version!r} "
                f"(this build reads version {FORMAT_VERSION})"
            )
        events = []
        for lineno, line in enumerate(lines[1:], start=2):
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValidationError(f"{path}:{lineno}: malformed event: {exc}") from exc
            event = TraceEvent.from_dict(payload)
            if events and event.at < events[-1].at:
                raise ValidationError(
                    f"{path}:{lineno}: arrival offsets must be non-decreasing "
                    f"({event.at} after {events[-1].at})"
                )
            events.append(event)
        declared = head.get("events")
        if declared is not None and declared != len(events):
            raise ValidationError(
                f"{path}: header declares {declared} events, file has "
                f"{len(events)} (truncated or concatenated trace?)"
            )
        geometry = head.get("geometry")
        if geometry is not None:
            geometry = DiskGeometry(**geometry)
        return cls(
            events=events,
            name=head.get("name", "trace"),
            geometry=geometry,
            seed=int(head.get("seed", 0)),
            spec=head.get("spec"),
        )

    @classmethod
    def load(cls, path) -> "WorkloadTrace":
        with open(path) as handle:
            return cls.loads(handle.read(), path=str(path))

    def describe(self) -> str:
        perms: dict[str, int] = {}
        for event in self.events:
            name = (
                event.request.perm
                if isinstance(event.request.perm, str)
                else type(event.request.perm).__name__
            )
            perms[name] = perms.get(name, 0) + 1
        top = ", ".join(
            f"{name} x{count}"
            for name, count in sorted(perms.items(), key=lambda kv: -kv[1])[:4]
        )
        geometry = (
            f" geometry N={self.geometry.N} B={self.geometry.B} "
            f"D={self.geometry.D} M={self.geometry.M}"
            if self.geometry is not None
            else ""
        )
        return (
            f"{self.name!r}: {len(self.events)} events over "
            f"{self.duration:.3f}s{geometry}; seed={self.seed}; "
            f"top perms: {top or 'none'}"
        )


# --------------------------------------------------------------------------
# the generator
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class WorkloadSpec:
    """A deterministic recipe for a synthetic trace.

    ``key_space`` distinct request keys (perm family x seed, via the
    standard mix catalog) are ranked 1..K; ``popularity`` draws each
    event's key uniformly or Zipf(``zipf_alpha``) over ranks --
    rank 1 is the hottest key.  ``arrival`` shapes the offsets:
    ``uniform`` spaces events ``1/rate`` apart, ``poisson`` draws
    exponential interarrivals at ``rate``/s, ``bursty`` lands bursts of
    ``burst_size`` events every ``burst_gap`` seconds with exponential
    intra-burst jitter (mean ``burst_jitter``).  ``geometries`` (a
    tuple of ``{"N","B","D","M"}`` dicts) assigns each key a stable
    geometry round-robin -- geometry diversity without breaking the
    key<->plan-key correspondence.

    ``duplicates`` makes the trace duplicate-heavy: ``ceil(count /
    duplicates)`` base events are drawn as usual, then each is repeated
    ``duplicates`` times at the *same* arrival offset (truncated back
    to ``count``) -- back-to-back identical requests, the shape
    single-flight coalescing exists for.  ``duplicates=1`` (the
    default) reproduces the pre-knob generator byte-for-byte, and the
    field is omitted from the serialized spec at its default so the
    committed golden traces stay byte-stable.

    Pure value: :func:`generate_trace` on the same spec byte-reproduces
    the same trace.
    """

    count: int = 32
    seed: int = 0
    arrival: str = "uniform"
    rate: float = 64.0
    burst_size: int = 8
    burst_gap: float = 0.25
    burst_jitter: float = 0.002
    popularity: str = "uniform"
    zipf_alpha: float = 1.1
    key_space: int = 12
    duplicates: int = 1
    geometry: dict | None = None
    geometries: tuple = ()
    engine: str = "fast"
    backend: str | None = None
    optimize: bool = True
    verify: bool = False
    capture_portion: bool = True
    timeout: float | None = None
    name: str = "generated"

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValidationError(f"count must be >= 1, got {self.count}")
        if self.arrival not in ARRIVALS:
            raise ValidationError(
                f"unknown arrival process {self.arrival!r}; choose from {ARRIVALS}"
            )
        if self.popularity not in POPULARITIES:
            raise ValidationError(
                f"unknown popularity {self.popularity!r}; choose from {POPULARITIES}"
            )
        if self.rate <= 0:
            raise ValidationError(f"rate must be > 0 requests/s, got {self.rate}")
        if self.burst_size < 1 or self.burst_gap <= 0 or self.burst_jitter <= 0:
            raise ValidationError(
                "bursty arrivals need burst_size >= 1, burst_gap > 0 and "
                f"burst_jitter > 0; got {self.burst_size}/{self.burst_gap}/"
                f"{self.burst_jitter}"
            )
        if self.zipf_alpha <= 0:
            raise ValidationError(f"zipf_alpha must be > 0, got {self.zipf_alpha}")
        if self.key_space < 1:
            raise ValidationError(f"key_space must be >= 1, got {self.key_space}")
        if self.duplicates < 1:
            raise ValidationError(
                f"duplicates must be >= 1, got {self.duplicates}"
            )
        # normalize geometries to a hashable tuple of canonical dicts
        geometries = tuple(
            _geometry_to_dict(g) if isinstance(g, DiskGeometry) else dict(g)
            for g in self.geometries
        )
        for g in geometries:
            DiskGeometry(**g)  # validate early, not at replay time
        object.__setattr__(self, "geometries", geometries)
        if self.geometry is not None:
            geometry = (
                _geometry_to_dict(self.geometry)
                if isinstance(self.geometry, DiskGeometry)
                else dict(self.geometry)
            )
            DiskGeometry(**geometry)
            object.__setattr__(self, "geometry", geometry)

    def to_dict(self) -> dict:
        payload = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if f.name == "geometries":
                if value:
                    payload["geometries"] = [dict(g) for g in value]
                continue
            if f.name == "geometry":
                if value is not None:
                    payload["geometry"] = dict(value)
                continue
            if f.name == "duplicates" and value == 1:
                # omitted at its default so pre-knob golden traces'
                # embedded specs stay byte-identical
                continue
            payload[f.name] = value
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "WorkloadSpec":
        known = {f.name for f in fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ValidationError(f"unknown workload spec fields: {sorted(unknown)}")
        kwargs = dict(payload)
        if "geometries" in kwargs:
            kwargs["geometries"] = tuple(kwargs["geometries"])
        return cls(**kwargs)


def geometry_variants(base: DiskGeometry, k: int) -> list[DiskGeometry]:
    """``k`` valid geometries derived from ``base`` by halving N.

    The first variant is ``base`` itself; each next halves N while the
    result stays legal (``M < N``).  When no smaller legal geometry
    exists the last one repeats, so the list always has ``k`` entries.
    """
    if k < 1:
        raise ValidationError(f"need k >= 1 geometry variants, got {k}")
    variants = [base]
    while len(variants) < k:
        prev = variants[-1]
        if prev.N // 2 > prev.M:
            variants.append(DiskGeometry(N=prev.N // 2, B=prev.B, D=prev.D, M=prev.M))
        else:
            variants.append(prev)
    return variants


def _key_catalog(spec: WorkloadSpec) -> list[PermutationRequest]:
    """The ``key_space`` distinct request keys, rank-ordered.

    Rank r (0-based) cycles the standard mix's perm families and rotates
    seeds once per full cycle, so every rank is a distinct plan key.
    """
    catalog = synthetic_mix(
        spec.key_space,
        seed=spec.seed,
        distinct_seeds=max(1, spec.key_space),
        engine=spec.engine,
        backend=spec.backend,
        optimize=spec.optimize,
        verify=spec.verify,
        capture_portion=spec.capture_portion,
    )
    if spec.geometries:
        catalog = [
            replace(req, geometry=DiskGeometry(**spec.geometries[i % len(spec.geometries)]))
            for i, req in enumerate(catalog)
        ]
    if spec.timeout is not None:
        catalog = [replace(req, timeout=spec.timeout) for req in catalog]
    return catalog


def _arrival_offsets(spec: WorkloadSpec, rng: np.random.Generator) -> np.ndarray:
    if spec.arrival == "uniform":
        return np.arange(spec.count, dtype=float) / spec.rate
    if spec.arrival == "poisson":
        return np.cumsum(rng.exponential(1.0 / spec.rate, size=spec.count))
    # bursty: bursts of burst_size every burst_gap seconds, with
    # exponential jitter inside the burst; the global sort keeps the
    # clustering while guaranteeing non-decreasing offsets.
    starts = (np.arange(spec.count) // spec.burst_size) * spec.burst_gap
    jitter = rng.exponential(spec.burst_jitter, size=spec.count)
    return np.sort(starts + jitter)


def generate_trace(spec: WorkloadSpec) -> WorkloadTrace:
    """Deterministically expand a spec into a trace.

    One ``default_rng(spec.seed)`` drives everything; arrival offsets
    are drawn before popularity ranks.  That draw order is part of the
    format contract -- changing it would silently invalidate every
    committed golden trace, so don't.
    """
    rng = np.random.default_rng(spec.seed)
    # Duplicate-heavy traces draw ceil(count/duplicates) base events
    # and repeat each at its offset; with duplicates=1 the draw is the
    # original one, so pre-knob golden traces reproduce byte-for-byte.
    base_count = -(-spec.count // spec.duplicates)
    draw_spec = spec if base_count == spec.count else replace(spec, count=base_count)
    offsets = _arrival_offsets(draw_spec, rng)
    if spec.popularity == "uniform":
        ranks = rng.integers(0, spec.key_space, size=base_count)
    else:
        weights = 1.0 / np.arange(1, spec.key_space + 1) ** spec.zipf_alpha
        weights /= weights.sum()
        ranks = rng.choice(spec.key_space, size=base_count, p=weights)
    if spec.duplicates > 1:
        offsets = np.repeat(offsets, spec.duplicates)[: spec.count]
        ranks = np.repeat(ranks, spec.duplicates)[: spec.count]
    catalog = _key_catalog(spec)
    events = [
        TraceEvent(at=float(at), request=catalog[int(rank)])
        for at, rank in zip(offsets, ranks)
    ]
    geometry = DiskGeometry(**spec.geometry) if spec.geometry is not None else None
    return WorkloadTrace(
        events=events,
        name=spec.name,
        geometry=geometry,
        seed=spec.seed,
        spec=spec.to_dict(),
    )


def mix_trace(
    count: int,
    seed: int = 0,
    distinct_seeds: int = 2,
    rate: float | None = None,
    **request_knobs,
) -> WorkloadTrace:
    """The standard uniform mixed workload, as a trace.

    This is the one shared builder for the deterministic
    MLD/MRC/BMMC/distribution mix that the CLI load generator and
    ``bench_serve.py`` consume (previously each hand-rolled its own
    :func:`~repro.serve.synthetic_mix` call + serialization).  With
    ``rate=None`` every offset is 0 (an as-fast-as-possible batch);
    otherwise events are spaced ``1/rate`` apart.
    """
    spacing = 0.0 if rate is None else 1.0 / rate
    requests = synthetic_mix(
        count, seed=seed, distinct_seeds=distinct_seeds, **request_knobs
    )
    events = [
        TraceEvent(at=i * spacing, request=request)
        for i, request in enumerate(requests)
    ]
    return WorkloadTrace(events=events, name="uniform-mix", seed=seed)


# --------------------------------------------------------------------------
# recording
# --------------------------------------------------------------------------

class TraceRecorder:
    """Capture every request submitted to a service as a trace.

    The service calls :meth:`record` on each ``submit`` *before* its
    admission decision, so the trace is the offered load: shed requests
    are recorded too (replaying the trace re-offers them).  The clock
    starts at the first recorded request.  Requests that cannot
    serialize (a ready :class:`~repro.perms.base.Permutation` object
    instead of a name) are counted in ``skipped`` rather than breaking
    the serving path.
    """

    def __init__(self, name: str = "recorded", geometry: DiskGeometry | None = None):
        self.name = name
        self.geometry = geometry
        self.skipped = 0
        self._lock = threading.Lock()
        self._t0: float | None = None
        self._events: list[TraceEvent] = []

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def record(self, request: PermutationRequest) -> None:
        now = time.monotonic()
        with self._lock:
            if self._t0 is None:
                self._t0 = now
            try:
                request_to_dict(request)  # serializability check up front
            except ValidationError:
                self.skipped += 1
                return
            self._events.append(TraceEvent(at=now - self._t0, request=request))

    def trace(self) -> WorkloadTrace:
        with self._lock:
            return WorkloadTrace(
                events=list(self._events), name=self.name, geometry=self.geometry
            )


# --------------------------------------------------------------------------
# replay
# --------------------------------------------------------------------------

def _percentile(values: list[float], q: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[index]


@dataclass
class ReplayReport:
    """What one replay measured.

    ``digests`` maps request index to the final-portion SHA-256 for
    every successful capture; :attr:`workload_digest` folds them into
    one SHA-256 so two replays compare with a single string.  ``stats``
    and ``cache`` are the service's counter snapshots after the replay
    (replay assumes a fresh service; the oracle suites always build
    one).
    """

    trace_name: str
    count: int
    wall_seconds: float
    results: list = field(default_factory=list)
    stats: object = None
    cache: object = None
    paced: bool = False

    @property
    def ok(self) -> int:
        return sum(1 for r in self.results if r.ok)

    @property
    def failed(self) -> int:
        return len(self.results) - self.ok

    @property
    def digests(self) -> dict[int, str]:
        return {
            r.index: r.digest
            for r in self.results
            if r.ok and r.digest is not None
        }

    @property
    def workload_digest(self) -> str:
        digest = hashlib.sha256()
        for index in sorted(self.digests):
            digest.update(f"{index}:{self.digests[index]}\n".encode())
        return digest.hexdigest()

    @property
    def throughput_rps(self) -> float:
        return self.count / self.wall_seconds if self.wall_seconds > 0 else 0.0

    def latency(self, q: float) -> float:
        return _percentile([r.elapsed for r in self.results if r.ok], q)

    def summary_dict(self) -> dict:
        """The per-scenario summary shape ``bench_workloads.py`` tracks."""
        stats = self.stats
        cache = self.cache
        return {
            "events": self.count,
            "ok": self.ok,
            "failed": self.failed,
            "throughput_rps": self.throughput_rps,
            "wall_seconds": self.wall_seconds,
            "latency_p50_ms": self.latency(0.50) * 1e3,
            "latency_p99_ms": self.latency(0.99) * 1e3,
            "hit_rate": cache.hit_rate if cache is not None else 0.0,
            "cache_hits": cache.hits if cache is not None else 0,
            "cache_misses": cache.misses if cache is not None else 0,
            "cache_evictions": cache.evictions if cache is not None else 0,
            "shed": stats.shed if stats is not None else 0,
            "deadline_exceeded": (
                stats.deadline_exceeded if stats is not None else 0
            ),
            "retries": stats.retries if stats is not None else 0,
            "coalesced": getattr(stats, "coalesced", 0) if stats is not None else 0,
            "workload_digest": self.workload_digest,
        }

    def summary(self) -> str:
        return (
            f"replayed {self.trace_name!r}: {self.ok}/{self.count} ok "
            f"({self.failed} failed) in {self.wall_seconds:.3f}s "
            f"({self.throughput_rps:.1f} req/s, "
            f"{'paced' if self.paced else 'as fast as possible'}); "
            f"p50 {self.latency(0.5) * 1e3:.1f} ms, "
            f"p99 {self.latency(0.99) * 1e3:.1f} ms; "
            f"workload digest {self.workload_digest[:16]}"
        )


def replay_trace(
    service,
    trace: WorkloadTrace,
    as_fast_as_possible: bool = False,
    speed: float = 1.0,
    capture: bool | None = None,
) -> ReplayReport:
    """Drive a trace through a service and report.

    Faithful mode (the default) submits each event at its recorded
    arrival offset (scaled by ``speed``); ``as_fast_as_possible``
    submits the whole trace back to back -- same requests, same order,
    no think time.  ``capture=True`` forces ``capture_portion`` on
    every request (the determinism oracle needs digests);
    ``capture=None`` leaves requests as the trace recorded them.

    Submission order is trace order on one thread, so service-assigned
    request indices -- and everything seeded by them (retry jitter,
    fault sessions) -- are identical across replays of the same trace.
    """
    if speed <= 0:
        raise ValidationError(f"replay speed must be > 0, got {speed}")
    requests = trace.requests()
    if capture:
        requests = [
            req if req.capture_portion else replace(req, capture_portion=True)
            for req in requests
        ]
    paced = not as_fast_as_possible
    futures = []
    t0 = time.monotonic()
    for event, request in zip(trace.events, requests):
        if paced:
            delay = event.at / speed - (time.monotonic() - t0)
            if delay > 0:
                time.sleep(delay)
        futures.append(service.submit(request))
    results = [future.result() for future in futures]
    wall = time.monotonic() - t0
    return ReplayReport(
        trace_name=trace.name,
        count=len(results),
        wall_seconds=wall,
        results=results,
        stats=service.stats(),
        cache=service.cache_info(),
        paced=paced,
    )


def reconcile_replay(service, metrics) -> list[str]:
    """Check a service's ``/metrics`` rendering against its ``stats()``.

    The in-process twin of :func:`repro.serve.loadgen.reconcile` (which
    works on HTTP scrapes): returns the violated equalities, empty when
    the books balance exactly.
    """
    from dataclasses import asdict

    from repro.serve.loadgen import reconcile

    return reconcile(asdict(service.stats()), metrics.render(service))
