"""Retry/backoff policy and the per-plan-key circuit breaker.

Two complementary guards against wasting workers on failure:

* :class:`RetryPolicy` re-attempts *transient* failures (see
  :func:`is_transient`) with jittered exponential backoff.  Jitter is
  drawn from an RNG seeded by ``(policy seed, request index)``, so the
  delay sequence for any request is deterministic -- tests assert exact
  schedules, and a fleet of identical requests still decorrelates.

* :class:`CircuitBreaker` quarantines *plan keys* whose compiles fail
  repeatedly.  Compile failures are the expensive, shareable kind of
  failure: every request for a poisoned key pays a full planning pass
  just to blow up, and under the compile-once latch its co-arrivals
  queue behind it.  After ``threshold`` consecutive failures the key's
  circuit opens and requests fail fast with
  :class:`~repro.errors.CircuitOpenError` (no planner work, no latch)
  until ``cooldown`` elapses; the next request is the half-open probe --
  its success closes the circuit, its failure re-opens it.

:class:`GuardedCache` splices the breaker into any plan cache's
``get_or_compile`` protocol, so the algorithm wrappers and the engines
stay breaker-oblivious.
"""

from __future__ import annotations

import threading
import time

import numpy as np

from repro.errors import CircuitOpenError, TransientError, ValidationError

__all__ = [
    "QUEUE_POLICIES",
    "RetryPolicy",
    "CircuitBreaker",
    "GuardedCache",
    "is_transient",
]

#: Admission-control behaviors when the bounded queue is full.
QUEUE_POLICIES = ("reject", "block", "shed-oldest")


def is_transient(exc: BaseException) -> bool:
    """Whether retrying the request that raised ``exc`` could help.

    :class:`~repro.errors.TransientError` subclasses (including
    injected faults) are; so is anything carrying a truthy
    ``transient`` attribute (an escape hatch for exceptions raised by
    code this package doesn't own).  Everything else -- validation,
    model-rule violations, class preconditions -- is deterministic and
    would fail identically on every attempt.
    """
    return isinstance(exc, TransientError) or bool(getattr(exc, "transient", False))


class RetryPolicy:
    """Jittered exponential backoff for transient failures.

    ``attempts`` counts *total* executions (1 = no retries).  Delay
    before retry ``k`` (1-based) is ``base * multiplier**(k-1) * u``,
    ``u`` uniform in ``[1 - jitter, 1 + jitter]``, capped at
    ``max_delay``.  :meth:`delays` returns the whole schedule for a
    request index so callers (and tests) can see it without sleeping.
    """

    def __init__(
        self,
        attempts: int = 3,
        base: float = 0.01,
        multiplier: float = 2.0,
        max_delay: float = 1.0,
        jitter: float = 0.5,
        seed: int = 0,
    ) -> None:
        if attempts < 1:
            raise ValidationError(f"retry attempts must be >= 1, got {attempts}")
        if base < 0 or max_delay < 0:
            raise ValidationError("retry delays must be >= 0")
        if not 0.0 <= jitter <= 1.0:
            raise ValidationError(f"retry jitter must be in [0, 1], got {jitter}")
        self.attempts = int(attempts)
        self.base = float(base)
        self.multiplier = float(multiplier)
        self.max_delay = float(max_delay)
        self.jitter = float(jitter)
        self.seed = int(seed)

    def delays(self, request_index: int) -> list[float]:
        """The backoff schedule for one request: ``attempts - 1`` delays,
        deterministic in ``(self.seed, request_index)``."""
        rng = np.random.default_rng((self.seed, int(request_index)))
        delays = []
        for k in range(self.attempts - 1):
            raw = self.base * self.multiplier**k
            if self.jitter:
                raw *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
            delays.append(min(raw, self.max_delay))
        return delays

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RetryPolicy(attempts={self.attempts}, base={self.base}, "
            f"multiplier={self.multiplier}, jitter={self.jitter})"
        )


class _Circuit:
    __slots__ = ("failures", "opened_at", "probing")

    def __init__(self) -> None:
        self.failures = 0
        self.opened_at: float | None = None
        self.probing = False


class CircuitBreaker:
    """Per-key consecutive-failure breaker with cooldown + half-open probe.

    Thread-safe; one instance guards all plan keys of a service.
    ``clock`` is injectable for tests (defaults to
    :func:`time.monotonic`).
    """

    def __init__(
        self, threshold: int = 3, cooldown: float = 5.0, clock=time.monotonic
    ) -> None:
        if threshold < 1:
            raise ValidationError(f"breaker threshold must be >= 1, got {threshold}")
        if cooldown < 0:
            raise ValidationError(f"breaker cooldown must be >= 0, got {cooldown}")
        self.threshold = int(threshold)
        self.cooldown = float(cooldown)
        self._clock = clock
        self._lock = threading.Lock()
        self._circuits: dict = {}
        self.trips = 0  # closed -> open transitions
        self.fast_failures = 0  # requests refused while open

    def allow(self, key) -> None:
        """Gate one compile attempt for ``key``.

        Raises :class:`~repro.errors.CircuitOpenError` while the
        circuit is open and cooling down.  After cooldown, exactly one
        caller is admitted as the half-open probe; others keep failing
        fast until the probe reports back.
        """
        with self._lock:
            circuit = self._circuits.get(key)
            if circuit is None or circuit.opened_at is None:
                return
            elapsed = self._clock() - circuit.opened_at
            if elapsed >= self.cooldown and not circuit.probing:
                circuit.probing = True
                return
            self.fast_failures += 1
        raise CircuitOpenError(
            f"plan key {key[0]!r} is quarantined after {self.threshold} "
            f"consecutive compile failures; retry after cooldown "
            f"({self.cooldown:.3g}s)"
        )

    def record_failure(self, key) -> None:
        with self._lock:
            circuit = self._circuits.setdefault(key, _Circuit())
            circuit.failures += 1
            circuit.probing = False
            if circuit.opened_at is not None:
                # failed probe: restart the cooldown window
                circuit.opened_at = self._clock()
            elif circuit.failures >= self.threshold:
                circuit.opened_at = self._clock()
                self.trips += 1

    def record_success(self, key) -> None:
        with self._lock:
            self._circuits.pop(key, None)

    def open_keys(self) -> list:
        with self._lock:
            return [
                k for k, c in self._circuits.items() if c.opened_at is not None
            ]

    def snapshot(self) -> dict:
        """One consistent view of the breaker for /stats and /metrics."""
        with self._lock:
            open_count = sum(
                1 for c in self._circuits.values() if c.opened_at is not None
            )
            return {
                "threshold": self.threshold,
                "cooldown": self.cooldown,
                "trips": self.trips,
                "fast_failures": self.fast_failures,
                "tracked_keys": len(self._circuits),
                "open_keys": open_count,
            }


class GuardedCache:
    """A plan cache wrapped with a :class:`CircuitBreaker`.

    Implements the same ``get_or_compile`` protocol the algorithm
    wrappers already use (via
    :func:`repro.pdm.cache.cached_execute`), so threading the breaker
    through the stack costs nothing but this wrapper: hits bypass the
    breaker entirely (a cached plan proves the key compiles), misses
    consult :meth:`CircuitBreaker.allow` before any planner work and
    report the compile's outcome back.

    Everything else (``info()``, ``hits``, ``clear()``, ...) delegates
    to the wrapped cache, so counters reconcile exactly as before.
    """

    def __init__(self, cache, breaker: CircuitBreaker) -> None:
        self._cache = cache
        self.breaker = breaker

    def get_or_compile(self, key, compile_fn):
        breaker = self.breaker
        # Fast-fail *before* any cache traffic: an open circuit must not
        # count misses, install latches, or queue waiters.  A cached
        # entry proves the key compiles, so hits skip the gate.  (The
        # key-not-cached probe and the compile are not atomic; the worst
        # race is one extra admitted compile, which just reports its
        # outcome to the breaker like any other.)
        if key not in self._cache:
            breaker.allow(key)

        def _guarded():
            try:
                compiled = compile_fn()
            except BaseException:
                breaker.record_failure(key)
                raise
            breaker.record_success(key)
            return compiled

        return self._cache.get_or_compile(key, _guarded)

    def __getattr__(self, name):
        return getattr(self._cache, name)

    def __len__(self) -> int:
        return len(self._cache)

    def __contains__(self, key) -> bool:
        return key in self._cache

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"GuardedCache({self._cache!r}, trips={self.breaker.trips})"
