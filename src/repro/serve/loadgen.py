"""Socket-level load generation against the HTTP frontend.

This is the closed-box half of the serving story: where the test suites
drive :class:`~repro.serve.PermutationService` in-process, the load
generator speaks to a running server the way a real client fleet would
-- TCP connect, JSON over HTTP, concurrent workers, and no shared state
with the server beyond the wire.

The workload is either the standard deterministic mix (built by the
shared :func:`~repro.serve.workload.mix_trace` builder) or any
:class:`~repro.serve.workload.WorkloadTrace` -- a recorded session, a
generated skewed/bursty scenario, a committed golden trace.  Burst
mode issues the whole load *open-loop* from a pool of ``concurrency``
workers that rendezvous on a barrier before the first request -- so a
run with ``concurrency=8`` provably has 8 simultaneous in-flight
clients (``peak_concurrency`` in the report measures it, the HTTP
bench asserts it).  Trace replay instead fires each POST at its
recorded arrival offset (faithful timing), or back to back with
``as_fast_as_possible``.

After the burst drains, :func:`reconcile` scrapes ``/stats`` and
``/metrics`` from the same server and checks them against each other
*exactly* -- no tolerances: the metrics layer bridges consistent
``stats()`` snapshots (see :mod:`repro.serve.metrics`), so any drift is
a bug, and ``admitted + shed == submitted`` must hold on the scraped
page itself.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor

from repro.serve.metrics import parse_prometheus_text
from repro.serve.requests import request_to_dict
from repro.serve.workload import mix_trace

__all__ = ["http_json", "http_text", "reconcile", "run_loadgen"]


def http_json(
    method: str,
    base_url: str,
    path: str,
    payload=None,
    timeout: float = 30.0,
    headers: dict | None = None,
):
    """One HTTP exchange; returns ``(status, parsed_json)``.

    Non-2xx answers are returned, not raised -- the generator *wants*
    429/503/504 traffic when it probes overload behavior.
    """
    url = base_url.rstrip("/") + path
    data = None
    headers = {"Accept": "application/json", **(headers or {})}
    if payload is not None:
        data = json.dumps(payload).encode()
        headers["Content-Type"] = "application/json"
    request = urllib.request.Request(url, data=data, method=method, headers=headers)
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            status, body = response.status, response.read()
    except urllib.error.HTTPError as err:
        status, body = err.code, err.read()
    try:
        parsed = json.loads(body)
    except (json.JSONDecodeError, UnicodeDecodeError):
        parsed = {"raw": body.decode(errors="replace")}
    return status, parsed


def http_text(base_url: str, path: str, timeout: float = 30.0):
    """GET a text resource (``/metrics``); returns ``(status, text)``."""
    url = base_url.rstrip("/") + path
    try:
        with urllib.request.urlopen(url, timeout=timeout) as response:
            return response.status, response.read().decode()
    except urllib.error.HTTPError as err:
        return err.code, err.read().decode(errors="replace")


def reconcile(stats: dict, metrics_text: str) -> list[str]:
    """Check a scraped ``/metrics`` page against a ``/stats`` snapshot.

    Returns the list of violated equalities (empty == reconciled).  The
    two documents are scraped at different instants, so only quantities
    that are stable once traffic has drained are compared -- the caller
    is expected to scrape after its burst completes.  The internal
    invariant ``admitted + shed == submitted`` is checked on *each*
    document, which needs no quiescence at all.
    """
    samples = parse_prometheus_text(metrics_text)
    problems = []

    def check(label: str, left, right) -> None:
        if left != right:
            problems.append(f"{label}: {left!r} != {right!r}")

    check(
        "stats: admitted + shed == submitted",
        stats["admitted"] + stats["shed"],
        stats["submitted"],
    )
    check(
        "metrics: admitted + shed == submitted",
        samples.get("repro_requests_admitted_total", 0)
        + samples.get("repro_requests_shed_total", 0),
        samples.get("repro_requests_submitted_total", 0),
    )
    for field, sample in [
        ("submitted", "repro_requests_submitted_total"),
        ("admitted", "repro_requests_admitted_total"),
        ("shed", "repro_requests_shed_total"),
        ("completed", "repro_requests_completed_total"),
        ("failed", "repro_requests_failed_total"),
        ("retries", "repro_request_retries_total"),
        ("deadline_exceeded", "repro_requests_deadline_exceeded_total"),
        ("cancelled", "repro_requests_cancelled_total"),
        ("coalesced", "repro_requests_coalesced_total"),
    ]:
        check(
            f"stats.{field} == {sample}",
            float(stats.get(field, 0)),
            samples.get(sample, 0.0),
        )
    return problems


class _Tracker:
    """Counts in-flight workers; ``peak`` proves real concurrency."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._inflight = 0
        self.peak = 0

    def __enter__(self) -> "_Tracker":
        with self._lock:
            self._inflight += 1
            self.peak = max(self.peak, self._inflight)
        return self

    def __exit__(self, *exc) -> None:
        with self._lock:
            self._inflight -= 1


def _percentile(values: list[float], q: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[index]


def run_loadgen(
    url: str,
    count: int = 32,
    concurrency: int = 8,
    mode: str = "sync",
    seed: int = 0,
    distinct_seeds: int = 2,
    wait_timeout: float | None = None,
    poll_interval: float = 0.01,
    timeout: float = 60.0,
    check_reconcile: bool = True,
    trace=None,
    as_fast_as_possible: bool = False,
    idempotent_repeat: int = 1,
) -> dict:
    """Fire a workload at ``url`` from ``concurrency`` workers.

    ``trace=None`` sends ``count`` requests of the standard mix as one
    barrier-synchronized burst; a :class:`~repro.serve.workload
    .WorkloadTrace` replays that trace over real sockets instead --
    each POST at its recorded arrival offset (``as_fast_as_possible``
    skips the pacing; a trace whose offsets are all zero is effectively
    a burst).  ``mode="sync"`` posts blocking requests (a 202 answer --
    a ``wait_timeout`` degrade -- is polled to completion); ``"async"``
    uses submit-then-poll for every request.  Returns a JSON-ready
    report: status histogram, latency percentiles, ``peak_concurrency``,
    the final ``/stats`` snapshot, and the reconciliation verdict.

    ``idempotent_repeat > 1`` exercises the idempotency-key protocol:
    every event POSTs with a deterministic ``Idempotency-Key`` and,
    once the primary answer lands, re-POSTs the same keyed request
    ``idempotent_repeat - 1`` more times.  Repeats must come back with
    the *same* ``request_id`` (``idem_mismatches`` counts violations),
    and because the server maps them to the original submission, the
    final ``/stats`` still reconciles against ``count`` submissions --
    not ``count * idempotent_repeat``.
    """
    if mode not in ("sync", "async"):
        raise ValueError(f'mode must be "sync" or "async", got {mode!r}')
    idempotent_repeat = max(1, int(idempotent_repeat))
    if trace is None:
        trace = mix_trace(count, seed=seed, distinct_seeds=distinct_seeds)
    events = [
        (index, event.at, request_to_dict(event.request))
        for index, event in enumerate(trace.events)
    ]
    count = len(events)
    paced = not as_fast_as_possible and trace.duration > 0
    workers = max(1, min(concurrency, count))
    # The rendezvous barrier proves burst concurrency; under paced
    # replay the recorded arrival times rule instead.
    barrier = threading.Barrier(workers) if not paced else None
    tracker = _Tracker()
    first_seen = threading.Event()
    clock0 = time.monotonic()

    def poll(request_id: str) -> tuple[int, dict]:
        deadline = time.monotonic() + timeout
        while True:
            status, body = http_json(
                "GET", url, f"/permutations/{request_id}", timeout=timeout
            )
            if status != 202 or time.monotonic() >= deadline:
                return status, body
            time.sleep(poll_interval)

    def one(item: tuple) -> dict:
        index, at, payload = item
        idem_headers = (
            {"Idempotency-Key": f"lg-{seed}-{index:06d}"}
            if idempotent_repeat > 1
            else None
        )
        if paced:
            delay = at - (time.monotonic() - clock0)
            if delay > 0:
                time.sleep(delay)
        with tracker:
            if barrier is not None and not first_seen.is_set():
                # Rendezvous inside the tracker: every worker counts as
                # in-flight while holding at the barrier, so the burst
                # provably opens with `workers` simultaneous clients.
                try:
                    barrier.wait(timeout=timeout)
                except threading.BrokenBarrierError:
                    pass
                first_seen.set()
            started = time.perf_counter()
            if mode == "async":
                wrapped = {"request": payload, "mode": "async"}
            else:
                wrapped = dict(payload)
                if wait_timeout is not None:
                    wrapped = {"request": payload, "wait_timeout": wait_timeout}
            status, body = http_json(
                "POST", url, "/permutations", wrapped, timeout=timeout,
                headers=idem_headers,
            )
            if status == 202:
                status, body = poll(body["request_id"])
            mismatches = 0
            if idem_headers is not None:
                # The answer has landed, so the keyed repeats must map
                # to the settled request_id without re-executing.
                primary_id = body.get("request_id", "")
                for _ in range(idempotent_repeat - 1):
                    rstatus, rbody = http_json(
                        "POST", url, "/permutations", wrapped,
                        timeout=timeout, headers=idem_headers,
                    )
                    if rstatus == 202:
                        rstatus, rbody = poll(rbody["request_id"])
                    if rbody.get("request_id", "") != primary_id:
                        mismatches += 1
        return {
            "status": status,
            "elapsed": time.perf_counter() - started,
            "request_id": body.get("request_id", ""),
            "error": (body.get("error") or {}).get("type"),
            "idem_mismatches": mismatches,
        }

    t0 = time.perf_counter()
    with ThreadPoolExecutor(max_workers=workers) as pool:
        outcomes = list(pool.map(one, events))
    wall = time.perf_counter() - t0

    statuses: dict[str, int] = {}
    errors: dict[str, int] = {}
    latencies = []
    for outcome in outcomes:
        key = str(outcome["status"])
        statuses[key] = statuses.get(key, 0) + 1
        if outcome["error"]:
            errors[outcome["error"]] = errors.get(outcome["error"], 0) + 1
        latencies.append(outcome["elapsed"])
    report = {
        "url": url,
        "mode": mode,
        "count": count,
        "trace": trace.name,
        "paced": paced,
        "concurrency": workers,
        "peak_concurrency": tracker.peak,
        "wall_seconds": wall,
        "throughput_rps": count / wall if wall > 0 else 0.0,
        "statuses": dict(sorted(statuses.items())),
        "errors": dict(sorted(errors.items())),
        "ok": statuses.get("200", 0),
        "idempotent_repeat": idempotent_repeat,
        "idem_mismatches": sum(o["idem_mismatches"] for o in outcomes),
        "latency": {
            "mean": sum(latencies) / len(latencies) if latencies else 0.0,
            "p50": _percentile(latencies, 0.50),
            "p95": _percentile(latencies, 0.95),
            "max": max(latencies, default=0.0),
        },
    }
    if check_reconcile:
        _, stats = http_json("GET", url, "/stats", timeout=timeout)
        _, metrics_text = http_text(url, "/metrics", timeout=timeout)
        problems = reconcile(stats, metrics_text)
        report["stats"] = stats
        report["reconciled"] = not problems
        report["reconcile_problems"] = problems
    return report
