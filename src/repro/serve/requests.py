"""Service request values, results, and the sequential reference runner.

This module is the *data* half of :mod:`repro.serve`: the
:class:`PermutationRequest` value, the :class:`ServiceResult` envelope,
deterministic workload construction (:func:`synthetic_mix`,
:func:`load_requests`), and :func:`run_sequential` -- the
single-threaded reference semantics every concurrency suite compares
the service against.  The concurrent service itself lives in
:mod:`repro.serve.service`.

Determinism is the contract the whole test suite holds the service to:
a request's result -- final portion bytes, I/O stats, pass table --
must be byte-identical to running the same request alone through
:func:`repro.core.runner.perform_permutation`.  Concurrency may reorder
*completion*, never *content*.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, fields

import numpy as np

from repro.core.runner import RunReport, perform_permutation
from repro.errors import ValidationError
from repro.pdm.cancel import run_scope
from repro.pdm.geometry import DiskGeometry
from repro.pdm.system import ParallelDiskSystem
from repro.perms import library
from repro.perms.base import ExplicitPermutation, Permutation
from repro.perms.bmmc import BMMCPermutation

__all__ = [
    "PermutationRequest",
    "RequestTrace",
    "ServiceResult",
    "execution_key",
    "make_permutation",
    "run_sequential",
    "synthetic_mix",
    "load_requests",
    "request_from_dict",
    "request_to_dict",
    "PERM_CHOICES",
]

#: Permutation names accepted by :func:`make_permutation` (and the CLI).
PERM_CHOICES = [
    "identity",
    "transpose",
    "bit-reversal",
    "vector-reversal",
    "gray",
    "gray-inverse",
    "permuted-gray",
    "shuffle",
    "random-bmmc",
    "random-bpc",
    "random-mrc",
    "random-mld",
    "random",
]


def make_permutation(
    name: str,
    geometry: DiskGeometry,
    seed: int = 0,
    rank_gamma: int | None = None,
) -> Permutation:
    """Resolve a named permutation for ``geometry``.

    Deterministic in ``(name, geometry, seed, rank_gamma)``: the
    ``random-*`` families draw from ``default_rng(seed)``, so a request
    is a pure value and re-running it reproduces the same permutation.
    """
    from repro.bits.random import (
        random_bmmc_with_rank_gamma,
        random_bit_permutation,
        random_mld_matrix,
        random_mrc_matrix,
    )

    g = geometry
    rng = np.random.default_rng(seed)
    if name == "identity":
        from repro.bits.matrix import BitMatrix

        return BMMCPermutation(BitMatrix.identity(g.n))
    if name == "transpose":
        return library.matrix_transpose(g.n // 2, g.n - g.n // 2)
    if name == "bit-reversal":
        return library.bit_reversal(g.n)
    if name == "vector-reversal":
        return library.vector_reversal(g.n)
    if name == "gray":
        return library.gray_code(g.n)
    if name == "gray-inverse":
        return library.gray_code_inverse(g.n)
    if name == "permuted-gray":
        return library.permuted_gray_code(g.n, list(rng.permutation(g.n)))
    if name == "shuffle":
        return library.perfect_shuffle(g.n)
    if name == "random-bmmc":
        r = min(g.b, g.n - g.b) if rank_gamma is None else rank_gamma
        return BMMCPermutation(
            random_bmmc_with_rank_gamma(g.n, g.b, r, rng), int(rng.integers(0, g.N))
        )
    if name == "random-bpc":
        return BMMCPermutation(random_bit_permutation(g.n, rng), validate=False)
    if name == "random-mrc":
        return BMMCPermutation(random_mrc_matrix(g.n, g.m, rng))
    if name == "random-mld":
        return BMMCPermutation(random_mld_matrix(g.n, g.b, g.m, rng))
    if name == "random":
        return ExplicitPermutation(rng.permutation(g.N))
    raise ValidationError(f"unknown permutation {name!r}")


@dataclass(frozen=True)
class PermutationRequest:
    """One unit of service work, as a pure value.

    ``perm`` is a permutation name (see :data:`PERM_CHOICES`, resolved
    deterministically from ``seed``/``rank_gamma``) or a ready
    :class:`~repro.perms.base.Permutation` object.  ``seed`` doubles as
    the distribution sort's placement-RNG seed, so two requests that
    differ only in seed are distinct workloads (and distinct cache
    keys).  ``capture_portion`` asks the worker for a SHA-256 digest of
    the final portion's bytes -- the byte-identity handle the
    differential suites compare against sequential reference runs.

    ``timeout`` bounds the request in *seconds from admission* (queue
    wait counts -- a deadline is a promise to the client, not to the
    worker); ``deadline`` is an absolute :func:`time.monotonic` instant
    for callers that computed one themselves.  When both are set the
    earlier wins.  An expired request unwinds at the next pass/shard
    boundary with :class:`~repro.errors.DeadlineExceeded` captured on
    its result.
    """

    perm: str | Permutation = "random-bmmc"
    method: str = "auto"
    seed: int = 0
    rank_gamma: int | None = None
    engine: str = "fast"
    backend: str | None = None
    optimize: bool = True
    verify: bool = True
    capture_portion: bool = False
    stream_records: int | None = None
    source_portion: int = 0
    target_portion: int = 1
    geometry: DiskGeometry | None = None
    timeout: float | None = None
    deadline: float | None = None

    def describe(self) -> str:
        perm = self.perm if isinstance(self.perm, str) else type(self.perm).__name__
        backend = f" backend={self.backend}" if self.backend else ""
        return f"{perm}/{self.method} seed={self.seed} engine={self.engine}{backend}"


def execution_key(
    request: PermutationRequest, default_geometry: DiskGeometry | None = None
) -> tuple | None:
    """The request's *execution identity*: two requests with equal keys
    produce byte-identical ``(report, digest)`` pairs, so one execution
    can serve both (single-flight coalescing).

    Mirrors :func:`~repro.pdm.cache.plan_key`'s discipline: everything
    that shapes the observable result is in -- the named permutation
    (resolved deterministically from seed/rank_gamma), geometry, method,
    seed, engine, optimizer and capture settings -- while ``backend``
    stays *out*, because backends are bit-identical by the conformance
    contract.  ``timeout``/``deadline`` stay out too: they bound *when*
    a result may arrive, never *what* it is.

    Returns ``None`` for requests that are not coalescible: a ready
    :class:`~repro.perms.base.Permutation` object has no value identity
    (two distinct objects may differ), so such requests always execute
    themselves.
    """
    if not isinstance(request.perm, str):
        return None
    geometry = request.geometry or default_geometry
    if geometry is None:
        return None
    return (
        request.perm,
        (geometry.N, geometry.B, geometry.D, geometry.M),
        request.method,
        request.seed,
        request.rank_gamma,
        request.engine,
        request.optimize,
        request.verify,
        request.capture_portion,
        request.stream_records,
        request.source_portion,
        request.target_portion,
    )


class RequestTrace:
    """Per-request identity + timing breakdown, carried in the worker's
    ambient scope (:func:`~repro.pdm.cancel.run_scope`).

    ``request_id`` travels with the executing thread, so anything the
    request touches -- the planner, the cache, a log line -- can
    attribute work to it.  ``timings`` accumulates named stage costs in
    seconds: the service records ``queue_wait``, the plan cache records
    ``plan``/``compile``/``execute``/``latch_wait``
    (:func:`~repro.pdm.cache.cached_execute`).  :meth:`record` *adds*,
    so staged plans and retries accumulate per stage rather than
    overwrite.
    """

    __slots__ = ("request_id", "timings")

    def __init__(self, request_id: str = "") -> None:
        self.request_id = request_id
        self.timings: dict[str, float] = {}

    def record(self, stage: str, seconds: float) -> None:
        self.timings[stage] = self.timings.get(stage, 0.0) + float(seconds)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(f"{k}={v * 1e3:.1f}ms" for k, v in self.timings.items())
        return f"RequestTrace({self.request_id!r}, {parts})"


@dataclass
class ServiceResult:
    """What the service hands back for one request.

    Exactly one of ``report``/``error`` is set.  ``digest`` is the
    SHA-256 of the final portion (requests with ``capture_portion``),
    ``worker`` the executing thread's name, ``elapsed`` wall seconds.
    ``attempts`` counts executions including retries (1 = first try
    succeeded or was not retryable; 0 = never executed -- shed by
    admission control, expired while still queued, or coalesced onto a
    leader's execution).  ``coalesced`` marks results resolved by
    single-flight coalescing: the report/digest (or error) came from an
    identical in-flight request's one execution, not from running this
    request.  ``request_id`` is the service-assigned identity (the HTTP
    polling handle) and ``trace`` the per-request
    :class:`RequestTrace`; ``timings`` is its stage breakdown (empty
    for requests that never executed).
    """

    index: int
    request: PermutationRequest
    report: RunReport | None = None
    error: BaseException | None = None
    digest: str | None = None
    worker: str = ""
    elapsed: float = 0.0
    attempts: int = 1
    request_id: str = ""
    trace: RequestTrace | None = None
    coalesced: bool = False

    @property
    def ok(self) -> bool:
        return self.error is None

    @property
    def timings(self) -> dict[str, float]:
        return self.trace.timings if self.trace is not None else {}

    def summary(self) -> str:
        if not self.ok:
            return (
                f"[{self.index}] {self.request.describe()}: "
                f"FAILED {type(self.error).__name__}: {self.error}"
            )
        r = self.report
        return (
            f"[{self.index}] {self.request.describe()}: method={r.method} "
            f"passes={r.passes} I/Os={r.io.parallel_ios} verified={r.verified} "
            f"({self.elapsed * 1e3:.1f} ms on {self.worker})"
        )


def _execute_request(
    system: ParallelDiskSystem,
    request: PermutationRequest,
    cache,
    backend=None,
) -> tuple[RunReport, str | None]:
    """Run one request on a clean system; shared by workers and the
    sequential reference.  The system must already be reset.

    ``backend`` is the caller's default kernel backend (the service's
    per-worker choice); a request-level ``backend`` overrides it.
    """
    system.fill_identity(request.source_portion)
    perm = request.perm
    if isinstance(perm, str):
        perm = make_permutation(
            perm, system.geometry, seed=request.seed, rank_gamma=request.rank_gamma
        )
    report = perform_permutation(
        system,
        perm,
        method=request.method,
        source_portion=request.source_portion,
        target_portion=request.target_portion,
        verify=request.verify,
        engine=request.engine,
        optimize=request.optimize,
        cache=cache,
        seed=request.seed,
        stream_records=request.stream_records,
        backend=request.backend if request.backend is not None else backend,
    )
    digest = None
    if request.capture_portion:
        digest = hashlib.sha256(
            system.portion_values(report.final_portion).tobytes()
        ).hexdigest()
    return report, digest


def run_sequential(
    geometry: DiskGeometry, requests, cache=None, backend=None
) -> list[ServiceResult]:
    """The single-threaded reference semantics for a request batch.

    One fresh system per request, strictly in submission order, no pool,
    no thread-local state -- this is what every concurrency suite
    compares :class:`PermutationService` output against.  ``cache`` may
    be ``None`` (each request plans from scratch) or any plan cache.
    """
    results = []
    for index, request in enumerate(requests):
        trace = RequestTrace(f"seq-{index}")
        result = ServiceResult(
            index=index, request=request, worker="sequential",
            request_id=trace.request_id, trace=trace,
        )
        t0 = time.perf_counter()
        try:
            system = ParallelDiskSystem(request.geometry or geometry)
            with run_scope(trace=trace):
                result.report, result.digest = _execute_request(
                    system, request, cache, backend=backend
                )
        except Exception as exc:
            result.error = exc
        result.elapsed = time.perf_counter() - t0
        results.append(result)
    return results


# --------------------------------------------------------------------------
# workload construction
# --------------------------------------------------------------------------

#: The synthetic mixed workload: one template per algorithm family the
#: service multiplexes (MLD, MRC, BMMC multi-pass, auto-classified
#: one-pass, randomized distribution sort).
_MIX_TEMPLATES = [
    ("random-mld", "mld"),
    ("random-mrc", "mrc"),
    ("random-bmmc", "bmmc"),
    ("bit-reversal", "auto"),
    ("transpose", "distribution"),
    ("gray", "auto"),
]


def synthetic_mix(
    count: int,
    seed: int = 0,
    distinct_seeds: int = 2,
    engine: str = "fast",
    backend: str | None = None,
    optimize: bool = True,
    verify: bool = True,
    capture_portion: bool = False,
) -> list[PermutationRequest]:
    """A deterministic mixed MLD/MRC/BMMC/distribution workload.

    Cycles the family templates and rotates ``distinct_seeds`` seeds, so
    a long mix repeatedly re-requests a bounded set of plan keys -- the
    warm-cache serving shape.  Pure function of its arguments: the same
    call always produces the same request list.
    """
    requests = []
    for i in range(count):
        perm, method = _MIX_TEMPLATES[i % len(_MIX_TEMPLATES)]
        requests.append(
            PermutationRequest(
                perm=perm,
                method=method,
                seed=seed + (i // len(_MIX_TEMPLATES)) % max(1, distinct_seeds),
                engine=engine,
                backend=backend,
                optimize=optimize,
                verify=verify,
                capture_portion=capture_portion,
            )
        )
    return requests


_REQUEST_FIELDS = {f.name for f in fields(PermutationRequest)}


def request_from_dict(payload: dict) -> PermutationRequest:
    """Build a request from a JSON-shaped dict (the CLI's file format).

    ``geometry`` may be a ``{"N":..,"B":..,"D":..,"M":..}`` mapping.
    Unknown keys raise -- a typo'd knob must not silently run with
    defaults.
    """
    unknown = set(payload) - _REQUEST_FIELDS
    if unknown:
        raise ValidationError(f"unknown request fields: {sorted(unknown)}")
    kwargs = dict(payload)
    geometry = kwargs.get("geometry")
    if isinstance(geometry, dict):
        kwargs["geometry"] = DiskGeometry(**geometry)
    return PermutationRequest(**kwargs)


def request_to_dict(request: PermutationRequest) -> dict:
    """Serialize a request to the JSON shape :func:`request_from_dict`
    reads (and the HTTP API accepts).

    Only fields that differ from the dataclass defaults are emitted, so
    the wire form stays minimal and forward-compatible.  Requests
    carrying a ready :class:`~repro.perms.base.Permutation` object
    (rather than a name) are not serializable -- the service protocol
    is names + seeds precisely so requests stay pure values.
    """
    payload = {}
    for f in fields(PermutationRequest):
        value = getattr(request, f.name)
        if value == f.default:
            continue
        if f.name == "perm" and not isinstance(value, str):
            raise ValidationError(
                "only named permutations serialize; got a "
                f"{type(value).__name__} object"
            )
        if f.name == "geometry" and value is not None:
            value = {"N": value.N, "B": value.B, "D": value.D, "M": value.M}
        payload[f.name] = value
    return payload


def load_requests(path) -> list[PermutationRequest]:
    """Read requests from a file: JSON lines, or one JSON array."""
    with open(path) as handle:
        text = handle.read()
    stripped = text.lstrip()
    if stripped.startswith("["):
        return [request_from_dict(d) for d in json.loads(text)]
    return [
        request_from_dict(json.loads(line))
        for line in text.splitlines()
        if line.strip()
    ]
