"""The concurrent permutation service: admission, deadlines, retries.

:class:`PermutationService` executes a stream of
:class:`~repro.serve.requests.PermutationRequest`\\ s on a pool of
service-owned worker threads.  Each worker keeps a private
:class:`~repro.pdm.system.ParallelDiskSystem` per geometry (reset
before every attempt, so record state, stats, traces and memory
accounting are strictly per-request) while all workers share one
:class:`~repro.pdm.cache.ShardedPlanCache`.

On top of the PR-4 execution core this adds the robustness layer:

* **Admission control** -- ``queue_capacity`` bounds the submission
  queue; ``queue_policy`` picks what happens at capacity (``reject``
  the newcomer, ``block`` the submitter, or ``shed-oldest`` -- evict
  the stalest queued request in favor of the newcomer).  Shed requests
  resolve immediately with :class:`~repro.errors.RequestRejected`
  captured on their result; ``stats()`` reconciles exactly:
  ``admitted + shed == submitted`` always.

* **Deadlines + cooperative cancellation** -- every admitted request
  gets a :class:`~repro.pdm.cancel.CancellationToken` (from its
  ``timeout``/``deadline``, or the service ``default_timeout``),
  installed as the worker's ambient scope for the attempt.  The
  engines, the optimizer, the parallel backend and the plan cache's
  latch waits all call :func:`~repro.pdm.cancel.checkpoint`, so an
  expired request frees its worker at the next pass/shard boundary
  with :class:`~repro.errors.DeadlineExceeded` on its result -- it
  never occupies the pool to completion.

* **Retry/backoff + circuit breaker** -- ``retry`` re-attempts
  transient failures on the same worker with the policy's seeded
  jittered backoff (deadline-aware: backoff sleeps are cut short by
  cancellation).  ``breaker`` quarantines plan keys whose compiles
  fail repeatedly (see :class:`~repro.serve.robust.CircuitBreaker`);
  it engages only when the service has a cache, since it guards the
  compile path.

* **Fault injection** -- ``faults`` (a
  :class:`~repro.serve.faults.FaultPlan`) gives each admitted request
  a deterministic, seeded fault session that fires through the same
  checkpoints, so overload and failure behavior is testable to exact
  counters.

Failures of any kind are isolated: the exception is captured on that
request's :class:`~repro.serve.requests.ServiceResult`, the worker and
its pooled system survive, and the shared cache stays uncorrupted.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass

from repro.errors import (
    DeadlineExceeded,
    RequestCancelled,
    RequestRejected,
    ServiceClosedError,
    ValidationError,
)
from repro.pdm.cache import PlanCache, ShardedPlanCache
from repro.pdm.cancel import CancellationToken, run_scope
from repro.pdm.geometry import DiskGeometry
from repro.pdm.system import ParallelDiskSystem
from repro.serve.requests import (
    PermutationRequest,
    RequestTrace,
    ServiceResult,
    _execute_request,
)
from repro.serve.robust import QUEUE_POLICIES, GuardedCache, is_transient

__all__ = ["PermutationService", "ServiceStats"]


@dataclass(frozen=True)
class ServiceStats:
    """A consistent counter snapshot (taken under the service lock).

    Invariants (hold at every instant, not just at rest):

    * ``admitted + shed == submitted``
    * ``admitted == completed + queue_depth + running``
    * ``failed <= completed``; ``deadline_exceeded + cancelled <= failed``
    """

    submitted: int
    admitted: int
    shed: int
    completed: int
    failed: int
    retries: int
    deadline_exceeded: int
    cancelled: int
    queue_depth: int
    running: int
    workers: int
    closed: bool
    breaker_trips: int = 0
    breaker_fast_failures: int = 0


class _Item:
    """One admitted request waiting in (or popped from) the queue."""

    __slots__ = (
        "index", "request", "future", "token", "faults", "trace", "enqueued_at",
    )

    def __init__(self, index, request, future, token, faults, trace) -> None:
        self.index = index
        self.request = request
        self.future = future
        self.token = token
        self.faults = faults
        self.trace = trace
        self.enqueued_at = time.monotonic()


class PermutationService:
    """A worker pool serving permutation requests off a shared plan cache.

    See the module docstring for the robustness semantics.  Defaults
    (unbounded queue, no deadlines, no retries, no breaker, no faults)
    reproduce the PR-4 service exactly.

    ``cache=None`` (the default) builds a
    :class:`~repro.pdm.cache.ShardedPlanCache`; pass ``cache=False`` to
    serve uncached, or a *thread-safe* cache object implementing
    ``get_or_compile`` (a plain single-threaded
    :class:`~repro.pdm.cache.PlanCache` is rejected when ``workers >
    1`` -- its unlocked LRU would be corrupted by the pool).
    """

    def __init__(
        self,
        geometry: DiskGeometry,
        workers: int = 4,
        cache=None,
        cache_maxsize: int = 64,
        num_shards: int = 8,
        backend=None,
        queue_capacity: int | None = None,
        queue_policy: str = "reject",
        default_timeout: float | None = None,
        retry=None,
        breaker=None,
        faults=None,
        metrics=None,
        recorder=None,
    ) -> None:
        self.geometry = geometry
        self.workers = max(1, int(workers))
        self.backend = backend  # worker default; request.backend overrides
        if queue_policy not in QUEUE_POLICIES:
            raise ValidationError(
                f"unknown queue policy {queue_policy!r}; "
                f"choose from {QUEUE_POLICIES}"
            )
        if queue_capacity is not None and int(queue_capacity) < 1:
            raise ValidationError(
                f"queue capacity must be >= 1, got {queue_capacity}"
            )
        self.queue_capacity = None if queue_capacity is None else int(queue_capacity)
        self.queue_policy = queue_policy
        self.default_timeout = default_timeout
        self.retry = retry
        self.faults = faults
        if cache is None:
            cache = ShardedPlanCache(maxsize=cache_maxsize, num_shards=num_shards)
        elif cache is False:
            cache = None
        if self.workers > 1 and type(cache) is PlanCache:
            raise ValidationError(
                "PlanCache is not thread-safe; a multi-worker service needs "
                "a ShardedPlanCache (or workers=1)"
            )
        self.breaker = breaker
        if breaker is not None and cache is not None:
            cache = GuardedCache(cache, breaker)
        self.cache = cache
        # ``metrics`` is any object with observe_result(result) -- the
        # HTTP layer passes a ServiceMetrics.  Counters are NOT counted
        # here event-by-event: /metrics bridges stats() snapshots, so
        # the two always reconcile exactly.  This hook only feeds the
        # latency / stage / pass-count histograms.
        self.metrics = metrics
        # ``recorder`` is any object with record(request) -- a
        # :class:`~repro.serve.workload.TraceRecorder`.  Every submit is
        # recorded *before* admission control, so a recorded trace is
        # the offered load (shed requests included) and replaying it
        # re-offers the same traffic.
        self.recorder = recorder

        self._local = threading.local()
        self._lock = threading.Lock()
        self._work = threading.Condition(self._lock)   # queue gained an item
        self._space = threading.Condition(self._lock)  # queue freed a slot
        self._done = threading.Condition(self._lock)   # a request finished
        self._queue: deque[_Item] = deque()
        self._active: dict[int, CancellationToken] = {}
        self._closed = False
        self._submitted = 0
        self._admitted = 0
        self._shed = 0
        self._completed = 0
        self._failed = 0
        self._retries = 0
        self._deadline_exceeded = 0
        self._cancelled = 0
        self._running = 0
        self._threads = [
            threading.Thread(
                target=self._worker_loop, name=f"perm-worker-{i}", daemon=True
            )
            for i in range(self.workers)
        ]
        for t in self._threads:
            t.start()

    # ------------------------------------------------------------ worker side
    def _worker_system(self, geometry: DiskGeometry) -> ParallelDiskSystem:
        systems = getattr(self._local, "systems", None)
        if systems is None:
            systems = self._local.systems = {}
        key = (geometry.N, geometry.B, geometry.D, geometry.M)
        system = systems.get(key)
        if system is None:
            system = systems[key] = ParallelDiskSystem(geometry)
        else:
            system.reset()
        return system

    def _worker_loop(self) -> None:
        while True:
            with self._lock:
                while not self._queue and not self._closed:
                    self._work.wait()
                if not self._queue:
                    return  # closed and drained
                item = self._queue.popleft()
                self._running += 1
                self._active[item.index] = item.token
                self._space.notify()
            item.trace.record("queue_wait", time.monotonic() - item.enqueued_at)
            result = self._serve_item(item)
            with self._lock:
                self._running -= 1
                self._active.pop(item.index, None)
                self._record_locked(result)
                self._done.notify_all()
            self._observe(result)
            item.future.set_result(result)

    def _observe(self, result: ServiceResult) -> None:
        """Feed one resolved result to the metrics hook (histograms)."""
        if self.metrics is not None:
            self.metrics.observe_result(result)

    def _record_locked(self, result: ServiceResult) -> None:
        self._completed += 1
        self._retries += max(0, result.attempts - 1)
        if result.error is None:
            return
        self._failed += 1
        if isinstance(result.error, DeadlineExceeded):
            self._deadline_exceeded += 1
        elif isinstance(result.error, (RequestCancelled, ServiceClosedError)):
            self._cancelled += 1

    def _serve_item(self, item: _Item) -> ServiceResult:
        """Run one admitted request, retrying transient failures.

        Never raises: failures are captured on the result.  Cancellation
        (deadline or hard-cancel) is never retried -- the request's time
        is up regardless of why the attempt failed.
        """
        request = item.request
        result = ServiceResult(
            index=item.index,
            request=request,
            worker=threading.current_thread().name,
            attempts=0,
            request_id=item.trace.request_id,
            trace=item.trace,
        )
        delays = self.retry.delays(item.index) if self.retry is not None else []
        t0 = time.perf_counter()
        while True:
            try:
                # Expired while queued (or during backoff): unwind before
                # paying for a system fill.
                item.token.check()
                result.attempts += 1
                system = self._worker_system(request.geometry or self.geometry)
                with run_scope(item.token, item.faults, item.trace):
                    result.report, result.digest = _execute_request(
                        system, request, self.cache, backend=self.backend
                    )
                result.error = None
                break
            except Exception as exc:  # isolate: the pool and cache must survive
                result.error = exc
                if isinstance(exc, RequestCancelled):
                    break
                if result.attempts > len(delays) or not is_transient(exc):
                    break
                # Deadline-aware backoff: a cancel/expiry during the
                # sleep surfaces on the next loop's token.check().
                item.token.wait(delays[result.attempts - 1])
        result.elapsed = time.perf_counter() - t0
        return result

    # ------------------------------------------------------------ client side
    @staticmethod
    def _request_id(index: int) -> str:
        return f"r{index:06d}"

    def _shed_result(
        self, index: int, request, reason: str, trace=None
    ) -> ServiceResult:
        return ServiceResult(
            index=index,
            request=request,
            error=RequestRejected(reason),
            worker="admission",
            attempts=0,
            request_id=self._request_id(index),
            trace=trace,
        )

    def _make_token(self, request: PermutationRequest) -> CancellationToken:
        if request.timeout is None and request.deadline is None:
            return CancellationToken(timeout=self.default_timeout)
        return CancellationToken(
            deadline=request.deadline, timeout=request.timeout
        )

    def submit(self, request: PermutationRequest) -> Future:
        """Enqueue one request; the future resolves to a
        :class:`~repro.serve.requests.ServiceResult` (failures --
        including admission rejections -- are captured, never raised).

        Only submitting to a closed service raises
        (:class:`~repro.errors.ServiceClosedError`): that is a caller
        bug, not a traffic condition.

        The returned future carries the service-assigned ``request_id``
        as an attribute, available immediately -- the HTTP frontend's
        submit-then-poll protocol needs the handle before the result
        exists.
        """
        future: Future = Future()
        evicted: _Item | None = None
        if self.recorder is not None:
            self.recorder.record(request)
        with self._lock:
            if self._closed:
                raise ServiceClosedError("service is closed")
            capacity = self.queue_capacity
            if capacity is not None and len(self._queue) >= capacity:
                if self.queue_policy == "reject":
                    index = self._submitted
                    self._submitted += 1
                    self._shed += 1
                    result = self._shed_result(
                        index, request,
                        f"queue at capacity ({capacity}); request rejected",
                    )
                elif self.queue_policy == "shed-oldest":
                    evicted = self._queue.popleft()
                    self._admitted -= 1
                    self._shed += 1
                    result = None
                else:  # block
                    while len(self._queue) >= capacity and not self._closed:
                        self._space.wait()
                    if self._closed:
                        raise ServiceClosedError(
                            "service closed while submit was blocked on a "
                            "full queue"
                        )
                    result = None
                if result is not None:
                    future.request_id = result.request_id
                    future.set_result(result)
                    self._observe(result)
                    return future
            index = self._submitted
            self._submitted += 1
            self._admitted += 1
            faults = (
                self.faults.session(index)
                if self.faults is not None and self.faults.active
                else None
            )
            trace = RequestTrace(self._request_id(index))
            future.request_id = trace.request_id
            self._queue.append(
                _Item(
                    index, request, future, self._make_token(request), faults,
                    trace,
                )
            )
            self._work.notify()
        if evicted is not None:
            shed = self._shed_result(
                evicted.index, evicted.request,
                "shed from a full queue in favor of a newer request",
                trace=evicted.trace,
            )
            evicted.future.set_result(shed)
            self._observe(shed)
        return future

    def run(self, requests) -> list[ServiceResult]:
        """Submit a batch and gather results in request order."""
        futures = [self.submit(r) for r in requests]
        return [f.result() for f in futures]

    def map_unordered(self, requests):
        """Yield results as they complete (completion order)."""
        from concurrent.futures import as_completed

        futures = [self.submit(r) for r in requests]
        for f in as_completed(futures):
            yield f.result()

    def cache_info(self):
        return self.cache.info() if self.cache is not None else None

    def stats(self) -> ServiceStats:
        with self._lock:
            return ServiceStats(
                submitted=self._submitted,
                admitted=self._admitted,
                shed=self._shed,
                completed=self._completed,
                failed=self._failed,
                retries=self._retries,
                deadline_exceeded=self._deadline_exceeded,
                cancelled=self._cancelled,
                queue_depth=len(self._queue),
                running=self._running,
                workers=self.workers,
                closed=self._closed,
                breaker_trips=self.breaker.trips if self.breaker else 0,
                breaker_fast_failures=(
                    self.breaker.fast_failures if self.breaker else 0
                ),
            )

    def close(self, wait: bool = True, drain_timeout: float | None = None) -> None:
        """Stop accepting work and shut the pool down.  Idempotent.

        With ``drain_timeout=None`` (the default) the close is fully
        graceful: already-queued requests still execute, and the call
        blocks until the pool drains (``wait=False`` skips the block).
        With a ``drain_timeout``, queued-and-running work gets that many
        seconds to finish; whatever remains is then hard-cancelled --
        queued requests resolve with
        :class:`~repro.errors.ServiceClosedError`, running requests'
        tokens are cancelled so they unwind at their next checkpoint --
        and the call still joins every worker before returning.
        """
        with self._lock:
            self._closed = True
            self._work.notify_all()
            self._space.notify_all()
        if not wait:
            return
        flushed: list[_Item] = []
        if drain_timeout is not None:
            deadline = time.monotonic() + drain_timeout
            with self._lock:
                while self._queue or self._running:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or not self._done.wait(remaining):
                        break
                while self._queue:
                    item = self._queue.popleft()
                    self._completed += 1
                    self._failed += 1
                    self._cancelled += 1
                    flushed.append(item)
                for token in self._active.values():
                    token.cancel("service closed")
                self._work.notify_all()
            for item in flushed:
                result = ServiceResult(
                    index=item.index,
                    request=item.request,
                    error=ServiceClosedError(
                        "request was still queued when the service "
                        "hard-closed"
                    ),
                    worker="close",
                    attempts=0,
                    request_id=item.trace.request_id,
                    trace=item.trace,
                )
                item.future.set_result(result)
                self._observe(result)
        for t in self._threads:
            t.join()

    def __enter__(self) -> "PermutationService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PermutationService(workers={self.workers}, "
            f"submitted={self._submitted}, cache={self.cache!r})"
        )
