"""The concurrent permutation service: admission, deadlines, retries.

:class:`PermutationService` executes a stream of
:class:`~repro.serve.requests.PermutationRequest`\\ s on a pool of
service-owned worker threads.  Each worker keeps a private
:class:`~repro.pdm.system.ParallelDiskSystem` per geometry (reset
before every attempt, so record state, stats, traces and memory
accounting are strictly per-request) while all workers share one
:class:`~repro.pdm.cache.ShardedPlanCache`.

On top of the PR-4 execution core this adds the robustness layer:

* **Admission control** -- ``queue_capacity`` bounds the submission
  queue; ``queue_policy`` picks what happens at capacity (``reject``
  the newcomer, ``block`` the submitter, or ``shed-oldest`` -- evict
  the stalest queued request in favor of the newcomer).  Shed requests
  resolve immediately with :class:`~repro.errors.RequestRejected`
  captured on their result; ``stats()`` reconciles exactly:
  ``admitted + shed == submitted`` always.

* **Deadlines + cooperative cancellation** -- every admitted request
  gets a :class:`~repro.pdm.cancel.CancellationToken` (from its
  ``timeout``/``deadline``, or the service ``default_timeout``),
  installed as the worker's ambient scope for the attempt.  The
  engines, the optimizer, the parallel backend and the plan cache's
  latch waits all call :func:`~repro.pdm.cancel.checkpoint`, so an
  expired request frees its worker at the next pass/shard boundary
  with :class:`~repro.errors.DeadlineExceeded` on its result -- it
  never occupies the pool to completion.

* **Retry/backoff + circuit breaker** -- ``retry`` re-attempts
  transient failures on the same worker with the policy's seeded
  jittered backoff (deadline-aware: backoff sleeps are cut short by
  cancellation).  ``breaker`` quarantines plan keys whose compiles
  fail repeatedly (see :class:`~repro.serve.robust.CircuitBreaker`);
  it engages only when the service has a cache, since it guards the
  compile path.

* **Fault injection** -- ``faults`` (a
  :class:`~repro.serve.faults.FaultPlan`) gives each admitted request
  a deterministic, seeded fault session that fires through the same
  checkpoints, so overload and failure behavior is testable to exact
  counters.

* **Single-flight coalescing** -- with ``coalesce=True``, a submitted
  request whose :func:`~repro.serve.requests.execution_key` matches one
  already queued or running attaches to that *leader* as a *follower*
  instead of occupying a queue slot: the leader executes once and every
  follower resolves with the leader's ``report``/``digest`` on its own
  :class:`~repro.serve.requests.ServiceResult` (own index, request_id,
  queue_wait; ``coalesced=True``, ``attempts=0``).  Failures propagate
  to followers un-retried -- the leader's retry policy governs the one
  execution.  Deadlines stay per-request: an expired follower detaches
  with :class:`~repro.errors.DeadlineExceeded` without cancelling the
  leader.  Off by default: coalescing changes cache/execution counts
  for duplicate traffic, so callers opt in.

Failures of any kind are isolated: the exception is captured on that
request's :class:`~repro.serve.requests.ServiceResult`, the worker and
its pooled system survive, and the shared cache stays uncorrupted.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass

from repro.errors import (
    DeadlineExceeded,
    RequestCancelled,
    RequestRejected,
    ServiceClosedError,
    ValidationError,
)
from repro.pdm.cache import PlanCache, ShardedPlanCache
from repro.pdm.cancel import CancellationToken, run_scope
from repro.pdm.geometry import DiskGeometry
from repro.pdm.system import ParallelDiskSystem
from repro.serve.requests import (
    PermutationRequest,
    RequestTrace,
    ServiceResult,
    _execute_request,
    execution_key,
)
from repro.serve.robust import QUEUE_POLICIES, GuardedCache, is_transient

__all__ = ["PermutationService", "ServiceStats"]


@dataclass(frozen=True)
class ServiceStats:
    """A consistent counter snapshot (taken under the service lock).

    Invariants (hold at every instant, not just at rest):

    * ``admitted + shed == submitted``
    * ``admitted == completed + queue_depth + running + coalesced_in_flight``
    * ``failed <= completed``; ``deadline_exceeded + cancelled <= failed``
    * ``coalesced <= completed``

    ``coalesced`` counts follower requests resolved without an
    execution of their own (single-flight coalescing; includes
    followers whose deadline expired while attached), and
    ``coalesced_in_flight`` is the gauge of followers currently
    attached to a queued-or-running leader.  Followers are *admitted*
    but never occupy a queue slot or a worker, hence the extended
    ``admitted`` reconciliation above.
    """

    submitted: int
    admitted: int
    shed: int
    completed: int
    failed: int
    retries: int
    deadline_exceeded: int
    cancelled: int
    queue_depth: int
    running: int
    workers: int
    closed: bool
    breaker_trips: int = 0
    breaker_fast_failures: int = 0
    coalesced: int = 0
    coalesced_in_flight: int = 0


class _Item:
    """One admitted request waiting in (or popped from) the queue.

    When coalescing is on, an item may be the *leader* for its
    execution key: ``key`` is the registered
    :func:`~repro.serve.requests.execution_key` (``None`` when the
    request is not coalescible or coalescing is off) and ``followers``
    holds the :class:`_Follower` records attached to it.
    """

    __slots__ = (
        "index", "request", "future", "token", "faults", "trace",
        "enqueued_at", "key", "followers",
    )

    def __init__(self, index, request, future, token, faults, trace,
                 key=None) -> None:
        self.index = index
        self.request = request
        self.future = future
        self.token = token
        self.faults = faults
        self.trace = trace
        self.enqueued_at = time.monotonic()
        self.key = key
        self.followers: list[_Follower] = []


class _Follower:
    """A coalesced request riding on a leader's execution.

    ``resolved`` is the single-winner latch between the leader's
    resolution and the follower's own deadline timer -- whichever
    flips it under the service lock delivers the result; the loser
    does nothing.
    """

    __slots__ = (
        "index", "request", "future", "trace", "enqueued_at", "resolved",
        "timer",
    )

    def __init__(self, index, request, future, trace) -> None:
        self.index = index
        self.request = request
        self.future = future
        self.trace = trace
        self.enqueued_at = time.monotonic()
        self.resolved = False
        self.timer: threading.Timer | None = None


class PermutationService:
    """A worker pool serving permutation requests off a shared plan cache.

    See the module docstring for the robustness semantics.  Defaults
    (unbounded queue, no deadlines, no retries, no breaker, no faults)
    reproduce the PR-4 service exactly.

    ``cache=None`` (the default) builds a
    :class:`~repro.pdm.cache.ShardedPlanCache`; pass ``cache=False`` to
    serve uncached, or a *thread-safe* cache object implementing
    ``get_or_compile`` (a plain single-threaded
    :class:`~repro.pdm.cache.PlanCache` is rejected when ``workers >
    1`` -- its unlocked LRU would be corrupted by the pool).
    """

    def __init__(
        self,
        geometry: DiskGeometry,
        workers: int = 4,
        cache=None,
        cache_maxsize: int = 64,
        num_shards: int = 8,
        backend=None,
        queue_capacity: int | None = None,
        queue_policy: str = "reject",
        default_timeout: float | None = None,
        retry=None,
        breaker=None,
        faults=None,
        metrics=None,
        recorder=None,
        coalesce: bool = False,
    ) -> None:
        self.geometry = geometry
        self.workers = max(1, int(workers))
        self.backend = backend  # worker default; request.backend overrides
        if queue_policy not in QUEUE_POLICIES:
            raise ValidationError(
                f"unknown queue policy {queue_policy!r}; "
                f"choose from {QUEUE_POLICIES}"
            )
        if queue_capacity is not None and int(queue_capacity) < 1:
            raise ValidationError(
                f"queue capacity must be >= 1, got {queue_capacity}"
            )
        self.queue_capacity = None if queue_capacity is None else int(queue_capacity)
        self.queue_policy = queue_policy
        self.default_timeout = default_timeout
        self.retry = retry
        self.faults = faults
        if cache is None:
            cache = ShardedPlanCache(maxsize=cache_maxsize, num_shards=num_shards)
        elif cache is False:
            cache = None
        if self.workers > 1 and type(cache) is PlanCache:
            raise ValidationError(
                "PlanCache is not thread-safe; a multi-worker service needs "
                "a ShardedPlanCache (or workers=1)"
            )
        self.breaker = breaker
        if breaker is not None and cache is not None:
            cache = GuardedCache(cache, breaker)
        self.cache = cache
        # ``metrics`` is any object with observe_result(result) -- the
        # HTTP layer passes a ServiceMetrics.  Counters are NOT counted
        # here event-by-event: /metrics bridges stats() snapshots, so
        # the two always reconcile exactly.  This hook only feeds the
        # latency / stage / pass-count histograms.
        self.metrics = metrics
        # ``recorder`` is any object with record(request) -- a
        # :class:`~repro.serve.workload.TraceRecorder`.  Every submit is
        # recorded *before* admission control, so a recorded trace is
        # the offered load (shed requests included) and replaying it
        # re-offers the same traffic.
        self.recorder = recorder
        self.coalesce = bool(coalesce)

        self._local = threading.local()
        self._lock = threading.Lock()
        self._work = threading.Condition(self._lock)   # queue gained an item
        self._space = threading.Condition(self._lock)  # queue freed a slot
        self._done = threading.Condition(self._lock)   # a request finished
        self._queue: deque[_Item] = deque()
        self._active: dict[int, CancellationToken] = {}
        self._leaders: dict[tuple, _Item] = {}
        self._closed = False
        self._submitted = 0
        self._admitted = 0
        self._shed = 0
        self._completed = 0
        self._failed = 0
        self._retries = 0
        self._deadline_exceeded = 0
        self._cancelled = 0
        self._running = 0
        self._coalesced = 0
        self._coalesced_in_flight = 0
        self._threads = [
            threading.Thread(
                target=self._worker_loop, name=f"perm-worker-{i}", daemon=True
            )
            for i in range(self.workers)
        ]
        for t in self._threads:
            t.start()

    # ------------------------------------------------------------ worker side
    def _worker_system(self, geometry: DiskGeometry) -> ParallelDiskSystem:
        systems = getattr(self._local, "systems", None)
        if systems is None:
            systems = self._local.systems = {}
        key = (geometry.N, geometry.B, geometry.D, geometry.M)
        system = systems.get(key)
        if system is None:
            system = systems[key] = ParallelDiskSystem(geometry)
        else:
            system.reset()
        return system

    def _worker_loop(self) -> None:
        while True:
            with self._lock:
                while not self._queue and not self._closed:
                    self._work.wait()
                if not self._queue:
                    return  # closed and drained
                item = self._queue.popleft()
                self._running += 1
                self._active[item.index] = item.token
                self._space.notify()
            item.trace.record("queue_wait", time.monotonic() - item.enqueued_at)
            result = self._serve_item(item)
            with self._lock:
                self._running -= 1
                self._active.pop(item.index, None)
                if item.key is not None:
                    self._leaders.pop(item.key, None)
                self._record_locked(result)
                settled = self._settle_followers_locked(item, result)
                self._done.notify_all()
            self._observe(result)
            item.future.set_result(result)
            self._resolve_followers(settled)

    def _settle_followers_locked(
        self, item: _Item, result: ServiceResult
    ) -> list[tuple[_Follower, ServiceResult]]:
        """Build follower results off the leader's, under the lock.

        The leader must already be out of ``_leaders`` (no new
        followers can attach) and ``result`` fully settled.  Each
        unresolved follower gets its own :class:`ServiceResult` sharing
        the leader's report/digest/error -- a leader failure propagates
        un-retried -- and the counters move ``coalesced_in_flight`` ->
        ``coalesced``/``completed`` atomically with the snapshot, so
        ``stats()`` reconciles at every instant.  Futures resolve
        outside the lock (:meth:`_resolve_followers`).
        """
        settled = []
        for follower in item.followers:
            if follower.resolved:
                continue
            follower.resolved = True
            self._coalesced_in_flight -= 1
            self._coalesced += 1
            fresult = ServiceResult(
                index=follower.index,
                request=follower.request,
                report=result.report,
                error=result.error,
                digest=result.digest,
                worker=result.worker,
                elapsed=result.elapsed,
                attempts=0,
                request_id=follower.trace.request_id,
                trace=follower.trace,
                coalesced=True,
            )
            self._record_locked(fresult)
            settled.append((follower, fresult))
        return settled

    def _resolve_followers(self, settled) -> None:
        """Deliver follower results built by
        :meth:`_settle_followers_locked` -- outside the lock, so done
        callbacks may re-enter the service freely."""
        for follower, fresult in settled:
            if follower.timer is not None:
                follower.timer.cancel()
            follower.trace.record(
                "queue_wait", time.monotonic() - follower.enqueued_at
            )
            self._observe(fresult)
            follower.future.set_result(fresult)

    def _observe(self, result: ServiceResult) -> None:
        """Feed one resolved result to the metrics hook (histograms)."""
        if self.metrics is not None:
            self.metrics.observe_result(result)

    def _record_locked(self, result: ServiceResult) -> None:
        self._completed += 1
        self._retries += max(0, result.attempts - 1)
        if result.error is None:
            return
        self._failed += 1
        if isinstance(result.error, DeadlineExceeded):
            self._deadline_exceeded += 1
        elif isinstance(result.error, (RequestCancelled, ServiceClosedError)):
            self._cancelled += 1

    def _serve_item(self, item: _Item) -> ServiceResult:
        """Run one admitted request, retrying transient failures.

        Never raises: failures are captured on the result.  Cancellation
        (deadline or hard-cancel) is never retried -- the request's time
        is up regardless of why the attempt failed.
        """
        request = item.request
        result = ServiceResult(
            index=item.index,
            request=request,
            worker=threading.current_thread().name,
            attempts=0,
            request_id=item.trace.request_id,
            trace=item.trace,
        )
        delays = self.retry.delays(item.index) if self.retry is not None else []
        t0 = time.perf_counter()
        while True:
            try:
                # Expired while queued (or during backoff): unwind before
                # paying for a system fill.
                item.token.check()
                result.attempts += 1
                system = self._worker_system(request.geometry or self.geometry)
                with run_scope(item.token, item.faults, item.trace):
                    result.report, result.digest = _execute_request(
                        system, request, self.cache, backend=self.backend
                    )
                result.error = None
                break
            except Exception as exc:  # isolate: the pool and cache must survive
                result.error = exc
                if isinstance(exc, RequestCancelled):
                    break
                if result.attempts > len(delays) or not is_transient(exc):
                    break
                # Deadline-aware backoff: a cancel/expiry during the
                # sleep surfaces on the next loop's token.check().
                item.token.wait(delays[result.attempts - 1])
        result.elapsed = time.perf_counter() - t0
        return result

    # ------------------------------------------------------------ client side
    @staticmethod
    def _request_id(index: int) -> str:
        return f"r{index:06d}"

    def _shed_result(
        self, index: int, request, reason: str, trace=None
    ) -> ServiceResult:
        return ServiceResult(
            index=index,
            request=request,
            error=RequestRejected(reason),
            worker="admission",
            attempts=0,
            request_id=self._request_id(index),
            trace=trace,
        )

    def _make_token(self, request: PermutationRequest) -> CancellationToken:
        if request.timeout is None and request.deadline is None:
            return CancellationToken(timeout=self.default_timeout)
        return CancellationToken(
            deadline=request.deadline, timeout=request.timeout
        )

    def submit(self, request: PermutationRequest) -> Future:
        """Enqueue one request; the future resolves to a
        :class:`~repro.serve.requests.ServiceResult` (failures --
        including admission rejections -- are captured, never raised).

        Only submitting to a closed service raises
        (:class:`~repro.errors.ServiceClosedError`): that is a caller
        bug, not a traffic condition.

        The returned future carries the service-assigned ``request_id``
        as an attribute, available immediately -- the HTTP frontend's
        submit-then-poll protocol needs the handle before the result
        exists.
        """
        future: Future = Future()
        evicted: _Item | None = None
        evicted_shed: ServiceResult | None = None
        evicted_settled: list = []
        rejected: ServiceResult | None = None
        follower: _Follower | None = None
        follower_remaining: float | None = None
        if self.recorder is not None:
            self.recorder.record(request)
        with self._lock:
            if self._closed:
                raise ServiceClosedError("service is closed")
            key = execution_key(request, self.geometry) if self.coalesce else None
            if key is not None:
                leader = self._leaders.get(key)
                if leader is not None:
                    # Single-flight: attach to the in-flight leader.
                    # Followers are admitted but occupy no queue slot,
                    # so coalescing happens *before* admission control
                    # -- duplicates never contend for capacity.
                    index = self._submitted
                    self._submitted += 1
                    self._admitted += 1
                    self._coalesced_in_flight += 1
                    trace = RequestTrace(self._request_id(index))
                    future.request_id = trace.request_id
                    follower = _Follower(index, request, future, trace)
                    leader.followers.append(follower)
                    follower_remaining = self._make_token(request).remaining()
            if follower is None:
                capacity = self.queue_capacity
                if capacity is not None and len(self._queue) >= capacity:
                    if self.queue_policy == "reject":
                        index = self._submitted
                        self._submitted += 1
                        self._shed += 1
                        rejected = self._shed_result(
                            index, request,
                            f"queue at capacity ({capacity}); request rejected",
                        )
                    elif self.queue_policy == "shed-oldest":
                        evicted = self._queue.popleft()
                        if evicted.key is not None:
                            self._leaders.pop(evicted.key, None)
                        self._admitted -= 1
                        self._shed += 1
                        evicted_shed = self._shed_result(
                            evicted.index, evicted.request,
                            "shed from a full queue in favor of a newer "
                            "request",
                            trace=evicted.trace,
                        )
                        evicted_settled = self._settle_followers_locked(
                            evicted, evicted_shed
                        )
                    else:  # block
                        while len(self._queue) >= capacity and not self._closed:
                            self._space.wait()
                        if self._closed:
                            raise ServiceClosedError(
                                "service closed while submit was blocked on a "
                                "full queue"
                            )
                if rejected is None:
                    index = self._submitted
                    self._submitted += 1
                    self._admitted += 1
                    faults = (
                        self.faults.session(index)
                        if self.faults is not None and self.faults.active
                        else None
                    )
                    trace = RequestTrace(self._request_id(index))
                    future.request_id = trace.request_id
                    item = _Item(
                        index, request, future, self._make_token(request),
                        faults, trace, key=key,
                    )
                    if key is not None:
                        self._leaders[key] = item
                    self._queue.append(item)
                    self._work.notify()
        # Every future resolves *outside* the lock: an inline done
        # callback may re-enter the service (stats(), submit(), the
        # HTTP frontend's tracking) and the lock is not reentrant.
        if rejected is not None:
            future.request_id = rejected.request_id
            future.set_result(rejected)
            self._observe(rejected)
            return future
        if follower is not None:
            if follower_remaining is not None:
                # Per-request deadline: the timer detaches this
                # follower without touching the leader.  Resolution
                # cancels it; a late firing finds ``resolved`` set.
                timer = threading.Timer(
                    max(0.0, follower_remaining),
                    self._expire_follower, args=(follower,),
                )
                timer.daemon = True
                follower.timer = timer
                timer.start()
            return future
        if evicted is not None:
            evicted.future.set_result(evicted_shed)
            self._observe(evicted_shed)
            self._resolve_followers(evicted_settled)
        return future

    def _expire_follower(self, follower: _Follower) -> None:
        """Deadline-timer callback: detach one expired follower.

        The follower resolves with :class:`~repro.errors.DeadlineExceeded`
        on its own result; the leader and its other followers are
        untouched -- deadlines are per-request promises, and one
        impatient client must not cancel the shared execution.
        """
        fresult = ServiceResult(
            index=follower.index,
            request=follower.request,
            error=DeadlineExceeded(
                "deadline expired while coalesced behind an identical "
                "in-flight request"
            ),
            worker="coalesce",
            attempts=0,
            request_id=follower.trace.request_id,
            trace=follower.trace,
            coalesced=True,
        )
        with self._lock:
            if follower.resolved:
                return
            follower.resolved = True
            self._coalesced_in_flight -= 1
            self._coalesced += 1
            self._record_locked(fresult)
            self._done.notify_all()
        follower.trace.record(
            "queue_wait", time.monotonic() - follower.enqueued_at
        )
        self._observe(fresult)
        follower.future.set_result(fresult)

    def run(self, requests) -> list[ServiceResult]:
        """Submit a batch and gather results in request order."""
        futures = [self.submit(r) for r in requests]
        return [f.result() for f in futures]

    def map_unordered(self, requests):
        """Yield results as they complete (completion order)."""
        from concurrent.futures import as_completed

        futures = [self.submit(r) for r in requests]
        for f in as_completed(futures):
            yield f.result()

    def cache_info(self):
        return self.cache.info() if self.cache is not None else None

    def stats(self) -> ServiceStats:
        with self._lock:
            return ServiceStats(
                submitted=self._submitted,
                admitted=self._admitted,
                shed=self._shed,
                completed=self._completed,
                failed=self._failed,
                retries=self._retries,
                deadline_exceeded=self._deadline_exceeded,
                cancelled=self._cancelled,
                queue_depth=len(self._queue),
                running=self._running,
                workers=self.workers,
                closed=self._closed,
                breaker_trips=self.breaker.trips if self.breaker else 0,
                breaker_fast_failures=(
                    self.breaker.fast_failures if self.breaker else 0
                ),
                coalesced=self._coalesced,
                coalesced_in_flight=self._coalesced_in_flight,
            )

    def close(self, wait: bool = True, drain_timeout: float | None = None) -> None:
        """Stop accepting work and shut the pool down.  Idempotent.

        With ``drain_timeout=None`` (the default) the close is fully
        graceful: already-queued requests still execute, and the call
        blocks until the pool drains (``wait=False`` skips the block).
        With a ``drain_timeout``, queued-and-running work gets that many
        seconds to finish; whatever remains is then hard-cancelled --
        queued requests resolve with
        :class:`~repro.errors.ServiceClosedError`, running requests'
        tokens are cancelled so they unwind at their next checkpoint --
        and the call still joins every worker before returning.
        """
        with self._lock:
            self._closed = True
            self._work.notify_all()
            self._space.notify_all()
        if not wait:
            return
        flushed: list[tuple[_Item, ServiceResult, list]] = []
        if drain_timeout is not None:
            deadline = time.monotonic() + drain_timeout
            with self._lock:
                while self._queue or self._running:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or not self._done.wait(remaining):
                        break
                while self._queue:
                    item = self._queue.popleft()
                    if item.key is not None:
                        self._leaders.pop(item.key, None)
                    self._completed += 1
                    self._failed += 1
                    self._cancelled += 1
                    result = ServiceResult(
                        index=item.index,
                        request=item.request,
                        error=ServiceClosedError(
                            "request was still queued when the service "
                            "hard-closed"
                        ),
                        worker="close",
                        attempts=0,
                        request_id=item.trace.request_id,
                        trace=item.trace,
                    )
                    settled = self._settle_followers_locked(item, result)
                    flushed.append((item, result, settled))
                for token in self._active.values():
                    token.cancel("service closed")
                self._work.notify_all()
            for item, result, settled in flushed:
                item.future.set_result(result)
                self._observe(result)
                self._resolve_followers(settled)
        for t in self._threads:
            t.join()

    def __enter__(self) -> "PermutationService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PermutationService(workers={self.workers}, "
            f"submitted={self._submitted}, cache={self.cache!r})"
        )
