"""The HTTP/JSON frontend: a network face for :class:`PermutationService`.

Everything here is standard library -- :class:`ThreadingHTTPServer`
plus ``json`` -- so the repo stays dependency-free while still serving
real sockets.  The frontend is deliberately thin: admission control,
deadlines, retries, the breaker, and fault injection all live in the
service; this layer translates HTTP to requests and typed errors to
status codes.

Routes
======

``POST /permutations``
    Body is a request dict (the :func:`~repro.serve.request_from_dict`
    shape), optionally wrapped as ``{"request": {...}, "mode":
    "sync"|"async", "wait_timeout": seconds, "idempotency_key": str}``.
    ``sync`` (default) blocks until the result and answers with its
    outcome status; ``async`` answers ``202`` immediately with the
    service-assigned ``request_id`` for polling.  A ``sync`` call whose
    ``wait_timeout`` elapses degrades to the async answer -- the work
    is not cancelled, the client just polls for it.

    An ``idempotency_key`` (body field, or the ``Idempotency-Key``
    header; both present must agree) makes the POST safely retryable:
    the first submission with a key executes and is remembered in a
    keyed resolved-backlog, and every repeat maps to the *same*
    ``request_id`` -- it neither re-executes nor double-counts in
    ``/stats``.  Reusing a key with a *different* request body is a
    400: a key names one request, not a slot.

``GET /permutations/{id}``
    Poll one request: ``202`` while pending, the outcome status with
    the full result once resolved, ``404`` for an unknown id.

``GET /healthz`` ``/stats`` ``/cache`` ``/config``
    Liveness + introspection, all JSON.  ``/stats`` is the exact
    :class:`~repro.serve.ServiceStats` snapshot (plus breaker and
    cache detail) the load generator reconciles ``/metrics`` against.

``GET /metrics``
    Prometheus text format 0.0.4
    (:meth:`~repro.serve.metrics.ServiceMetrics.render` with the
    snapshot bridge refreshed), ready for a real scraper.

Error mapping (:func:`status_for`): the service's typed failures become
meaningful statuses -- ``RequestRejected`` 429, ``DeadlineExceeded``
504, ``CircuitOpenError`` and ``ServiceClosedError`` 503,
``ValidationError`` 400, cooperative ``RequestCancelled`` 499, anything
else 500.  Subclass order matters twice: ``ServiceClosedError`` *is a*
``ValidationError`` but means "stop sending traffic here", and
``DeadlineExceeded`` *is a* ``RequestCancelled`` but deserves 504.

Shutdown (the graceful-drain contract): :meth:`HttpFrontend.close`
first stops the accept loop and closes the listener socket -- new
connections are refused cleanly, none are accepted-then-reset -- then
drains the service (``drain_timeout`` bounds it; queued work past the
timeout is hard-cancelled and resolves as 503), and finally joins the
in-flight handler threads, whose blocked ``future.result()`` calls were
released by the drain.  SIGTERM/SIGINT wiring lives in the CLI.
"""

from __future__ import annotations

import json
import threading
import time
from collections import OrderedDict
from concurrent.futures import TimeoutError as _FutureTimeout
from dataclasses import asdict
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.errors import (
    CircuitOpenError,
    DeadlineExceeded,
    ReproError,
    RequestCancelled,
    RequestRejected,
    ServiceClosedError,
    ValidationError,
)
from repro.serve.metrics import ServiceMetrics
from repro.serve.requests import request_from_dict, request_to_dict

__all__ = [
    "HttpFrontend",
    "status_for",
    "error_to_dict",
    "result_to_dict",
]

#: nginx's "client closed request" -- the request was cancelled, not failed.
_CLIENT_CLOSED_REQUEST = 499


def status_for(error: BaseException | None) -> int:
    """Map a service failure to its HTTP status (200 for success).

    Checked in subclass-precedence order; see the module docstring for
    the two places ordering is load-bearing.
    """
    if error is None:
        return 200
    if isinstance(error, RequestRejected):
        return 429
    if isinstance(error, DeadlineExceeded):
        return 504
    if isinstance(error, (CircuitOpenError, ServiceClosedError)):
        return 503
    if isinstance(error, RequestCancelled):
        return _CLIENT_CLOSED_REQUEST
    if isinstance(error, ValidationError):
        return 400
    return 500


def error_to_dict(error: BaseException) -> dict:
    from repro.serve.robust import is_transient

    return {
        "type": type(error).__name__,
        "message": str(error),
        "status": status_for(error),
        "transient": is_transient(error),
    }


def result_to_dict(result) -> dict:
    """JSON-encode one :class:`~repro.serve.ServiceResult`."""
    payload = {
        "request_id": result.request_id,
        "index": result.index,
        "ok": result.ok,
        "status": status_for(result.error),
        "worker": result.worker,
        "attempts": result.attempts,
        "elapsed": result.elapsed,
        "timings": dict(result.timings),
    }
    try:
        payload["request"] = request_to_dict(result.request)
    except ValidationError:
        payload["request"] = {"describe": result.request.describe()}
    if result.digest is not None:
        payload["digest"] = result.digest
    if result.error is not None:
        payload["error"] = error_to_dict(result.error)
    if result.report is not None:
        report = result.report
        payload["report"] = {
            "method": report.method,
            "classes": sorted(c.value for c in report.classes),
            "passes": report.passes,
            "parallel_ios": report.io.parallel_ios,
            "parallel_reads": report.io.parallel_reads,
            "parallel_writes": report.io.parallel_writes,
            "blocks_read": report.io.blocks_read,
            "blocks_written": report.io.blocks_written,
            "final_portion": report.final_portion,
            "verified": report.verified,
            "bounds": dict(report.bounds),
        }
    return payload


class _Handler(BaseHTTPRequestHandler):
    """One HTTP exchange.  All routing happens in :meth:`_dispatch`;
    the do_* methods only name the verb."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-serve/1.0"

    # ------------------------------------------------------------ plumbing
    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # the metrics registry is the access log

    @property
    def frontend(self) -> "HttpFrontend":
        return self.server.frontend

    def _send_json(self, status: int, payload: dict) -> None:
        body = json.dumps(payload, indent=2, sort_keys=True).encode() + b"\n"
        self._status = status
        self._account(status)
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, status: int, text: str, content_type: str) -> None:
        body = text.encode()
        self._status = status
        self._account(status)
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, error: BaseException, status=None) -> None:
        status = status_for(error) if status is None else status
        self._send_json(status, {"error": error_to_dict(error)})

    def _read_body(self) -> dict:
        raw_length = self.headers.get("Content-Length")
        try:
            length = int(raw_length) if raw_length else 0
        except ValueError:
            # A malformed header is the client's bug, not a 500: there
            # is no body length to trust, so refuse before reading.
            raise ValidationError(
                f"Content-Length must be an integer, got {raw_length!r}"
            ) from None
        if length < 0:
            raise ValidationError(
                f"Content-Length must be >= 0, got {length}"
            )
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        try:
            payload = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ValidationError(f"request body is not valid JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise ValidationError(
                f"request body must be a JSON object, got {type(payload).__name__}"
            )
        return payload

    # ------------------------------------------------------------ dispatch
    def do_GET(self) -> None:  # noqa: N802 - stdlib casing
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 - stdlib casing
        self._dispatch("POST")

    def _account(self, status: int) -> None:
        """Record this exchange's counter + latency samples.

        Called from the _send helpers *before* any response byte goes
        out, so a client that has read its reply is guaranteed to see
        the request on a subsequent /metrics scrape (counting in a
        ``finally`` after the write loses that race).  Idempotent; the
        dispatch ``finally`` is only a net for exchanges that died
        before sending anything.
        """
        if self._accounted:
            return
        self._accounted = True
        metrics = self.frontend.metrics
        metrics.http_requests.inc(
            method=self._method, path=self._route_label, status=str(status)
        )
        metrics.http_latency.observe(
            time.perf_counter() - self._started, path=self._route_label
        )

    def _dispatch(self, method: str) -> None:
        fe = self.frontend
        metrics = fe.metrics
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        route, handler = self._route(method, path)
        self._status = 500
        self._method = method
        self._route_label = route
        self._accounted = False
        metrics.http_inflight.inc()
        self._started = time.perf_counter()
        try:
            if handler is None:
                known = path in fe.ROUTES
                self._route_label = path if known else "*unrouted*"
                self._send_json(
                    405 if known else 404,
                    {
                        "error": {
                            "type": "MethodNotAllowed" if known else "NotFound",
                            "message": (
                                f"{method} {path} is not routed; see /config"
                            ),
                            "status": 405 if known else 404,
                        }
                    },
                )
            else:
                handler(self)
        except ReproError as exc:
            # Typed library failures surfacing on the submit path
            # (closed service, malformed request, ...).
            try:
                self._send_error_json(exc)
            except OSError:
                pass  # client went away mid-answer
        except OSError:
            pass  # broken pipe / reset while writing
        except Exception as exc:  # pragma: no cover - handler bug guard
            try:
                self._send_error_json(exc, status=500)
            except OSError:
                pass
        finally:
            metrics.http_inflight.dec()
            self._account(self._status)

    def _route(self, method: str, path: str):
        fe = self.frontend
        handler = fe.ROUTES.get(path, {}).get(method)
        if handler is not None:
            return path, handler
        if path.startswith("/permutations/") and method == "GET":
            return "/permutations/{id}", _Handler._get_poll
        return path, None

    # ------------------------------------------------------------- routes
    def _get_healthz(self) -> None:
        fe = self.frontend
        stats = fe.service.stats()
        status = 200 if not stats.closed else 503
        self._send_json(
            status,
            {
                "status": "ok" if not stats.closed else "closed",
                "workers": stats.workers,
                "queue_depth": stats.queue_depth,
                "running": stats.running,
                "uptime": time.monotonic() - fe.started_at,
            },
        )

    def _get_stats(self) -> None:
        fe = self.frontend
        payload = asdict(fe.service.stats())
        breaker = fe.service.breaker
        if breaker is not None:
            payload["breaker"] = breaker.snapshot()
        cache = fe.service.cache
        if cache is not None:
            payload["cache"] = asdict(cache.info())
        self._send_json(200, payload)

    def _get_cache(self) -> None:
        cache = self.frontend.service.cache
        if cache is None:
            self._send_json(200, {"cache": None})
            return
        payload = {"cache": asdict(cache.info())}
        shard_infos = getattr(cache, "shard_infos", None)
        if shard_infos is not None:
            payload["shards"] = [asdict(s) for s in shard_infos()]
        self._send_json(200, payload)

    def _get_config(self) -> None:
        self._send_json(200, self.frontend.describe_config())

    def _get_metrics(self) -> None:
        fe = self.frontend
        text = fe.metrics.render(service=fe.service)
        self._send_text(
            200, text, "text/plain; version=0.0.4; charset=utf-8"
        )

    @staticmethod
    def _coerce_wait_timeout(value):
        """Validate a client-supplied wait_timeout (400 on junk).

        ``future.result()`` would raise ``TypeError`` on a non-numeric
        timeout -- a 500 for what is squarely the client's mistake.
        """
        if value is None:
            return None
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ValidationError(
                f"wait_timeout must be a number of seconds, got {value!r}"
            )
        if value < 0:
            raise ValidationError(f"wait_timeout must be >= 0, got {value}")
        return float(value)

    @staticmethod
    def _coerce_idempotency_key(body_key, header_key):
        """Reconcile the body field and the Idempotency-Key header."""
        if body_key is not None and not isinstance(body_key, str):
            raise ValidationError(
                f"idempotency_key must be a string, got {body_key!r}"
            )
        if (
            body_key is not None
            and header_key is not None
            and body_key != header_key
        ):
            raise ValidationError(
                "idempotency_key body field and Idempotency-Key header "
                f"disagree: {body_key!r} != {header_key!r}"
            )
        key = body_key if body_key is not None else header_key
        if key is None:
            return None
        if not key or len(key) > 256:
            raise ValidationError(
                "idempotency key must be 1..256 characters, "
                f"got {len(key)}"
            )
        return key

    def _post_permutations(self) -> None:
        fe = self.frontend
        body = self._read_body()
        header_key = self.headers.get("Idempotency-Key")
        if "request" in body:
            mode = body.get("mode", "sync")
            wait_timeout = body.get("wait_timeout")
            body_key = body.get("idempotency_key")
            spec = body["request"]
            if not isinstance(spec, dict):
                raise ValidationError('"request" must be a JSON object')
        else:
            mode = body.pop("mode", "sync")
            wait_timeout = body.pop("wait_timeout", None)
            body_key = body.pop("idempotency_key", None)
            spec = body
        if mode not in ("sync", "async"):
            raise ValidationError(f'mode must be "sync" or "async", got {mode!r}')
        wait_timeout = self._coerce_wait_timeout(wait_timeout)
        idem_key = self._coerce_idempotency_key(body_key, header_key)
        request = request_from_dict(spec)
        if idem_key is not None:
            future, request_id = fe.submit_idempotent(idem_key, request)
        else:
            future = fe.service.submit(request)  # may raise ServiceClosedError
            request_id = future.request_id
            fe.track(request_id, future)
        if mode == "async":
            self._send_json(202, fe.pending_payload(request_id))
            return
        try:
            result = future.result(timeout=wait_timeout)
        except (_FutureTimeout, TimeoutError):
            # Degrade to polling; the request keeps its place in line.
            self._send_json(202, fe.pending_payload(request_id))
            return
        payload = result_to_dict(result)
        self._send_json(payload["status"], payload)

    def _get_poll(self) -> None:
        fe = self.frontend
        request_id = self.path.split("?", 1)[0].rstrip("/").rsplit("/", 1)[-1]
        future = fe.lookup(request_id)
        if future is None:
            self._send_json(
                404,
                {
                    "error": {
                        "type": "NotFound",
                        "message": f"unknown request id {request_id!r}",
                        "status": 404,
                    }
                },
            )
            return
        if not future.done():
            self._send_json(202, fe.pending_payload(request_id))
            return
        payload = result_to_dict(future.result())
        self._send_json(payload["status"], payload)


class _Server(ThreadingHTTPServer):
    """ThreadingHTTPServer that tracks its handler threads itself.

    ``block_on_close=False`` because the stdlib's close-time join would
    deadlock our drain: handler threads block on service futures, and
    those futures only resolve once :meth:`HttpFrontend.close` drains
    the service *after* closing the listener.  The frontend joins the
    tracked threads at the correct point in the sequence instead.
    """

    daemon_threads = True
    block_on_close = False

    def __init__(self, address, frontend: "HttpFrontend") -> None:
        self.frontend = frontend
        self._handlers_lock = threading.Lock()
        self._handlers: list[threading.Thread] = []
        super().__init__(address, _Handler)

    def process_request(self, request, client_address) -> None:
        thread = threading.Thread(
            target=self._handle_one,
            args=(request, client_address),
            name=f"http-handler-{client_address[1]}",
            daemon=True,
        )
        with self._handlers_lock:
            self._handlers = [t for t in self._handlers if t.is_alive()]
            self._handlers.append(thread)
        thread.start()

    def _handle_one(self, request, client_address) -> None:
        try:
            self.finish_request(request, client_address)
        except Exception:
            self.handle_error(request, client_address)
        finally:
            self.shutdown_request(request)

    def join_handlers(self, timeout: float) -> int:
        """Join live handler threads, bounded; returns how many remain."""
        deadline = time.monotonic() + timeout
        with self._handlers_lock:
            threads = list(self._handlers)
        for thread in threads:
            thread.join(max(0.0, deadline - time.monotonic()))
        return sum(1 for t in threads if t.is_alive())


class _IdemEntry:
    """One idempotency-key reservation.

    ``canonical`` is the normalized request identity the key is bound
    to; ``ready`` latches once the first submit settled (``request_id``
    + ``future`` on success, ``error`` on a submit-time failure, which
    also releases the key so a later retry can try again).
    """

    __slots__ = ("canonical", "request_id", "future", "error", "ready")

    def __init__(self, canonical: str) -> None:
        self.canonical = canonical
        self.request_id: str | None = None
        self.future = None
        self.error: BaseException | None = None
        self.ready = threading.Event()


class HttpFrontend:
    """Own one listening socket serving one :class:`PermutationService`.

    ``port=0`` binds an ephemeral port (the tests' pattern); the bound
    address is available as :attr:`address`/:attr:`url` after
    :meth:`start`.  The frontend does NOT own the service -- callers
    that want the frontend to close it pass ``own_service=True`` (the
    CLI does).
    """

    #: Completed-request results kept for polling before the oldest
    #: resolved entries are dropped.
    RESULT_BACKLOG = 4096

    ROUTES = {
        "/healthz": {"GET": _Handler._get_healthz},
        "/stats": {"GET": _Handler._get_stats},
        "/cache": {"GET": _Handler._get_cache},
        "/config": {"GET": _Handler._get_config},
        "/metrics": {"GET": _Handler._get_metrics},
        "/permutations": {"POST": _Handler._post_permutations},
    }

    def __init__(
        self,
        service,
        host: str = "127.0.0.1",
        port: int = 0,
        metrics: ServiceMetrics | None = None,
        drain_timeout: float | None = None,
        own_service: bool = False,
    ) -> None:
        self.service = service
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        if service.metrics is None:
            service.metrics = self.metrics
        self.host = host
        self.port = port
        self.drain_timeout = drain_timeout
        self.own_service = own_service
        self.started_at = time.monotonic()
        self._server: _Server | None = None
        self._thread: threading.Thread | None = None
        self._lock = threading.Lock()
        self._futures: OrderedDict[str, object] = OrderedDict()
        self._idempotency: dict[str, _IdemEntry] = {}
        self._idem_by_rid: dict[str, str] = {}
        self._closed = False

    # ------------------------------------------------------------ lifecycle
    def start(self) -> "HttpFrontend":
        if self._server is not None:
            return self
        self._server = _Server((self.host, self.port), self)
        self.host, self.port = self._server.server_address[:2]
        self.started_at = time.monotonic()
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="http-accept",
            daemon=True,
        )
        self._thread.start()
        return self

    @property
    def address(self) -> tuple[str, int]:
        return (self.host, self.port)

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def close(self, drain_timeout: float | None = None) -> None:
        """Graceful shutdown, in the order that avoids reset flakes:
        stop accepting, close the listener, drain the service (which
        releases handler threads blocked on futures), join handlers.
        Idempotent."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        if drain_timeout is None:
            drain_timeout = self.drain_timeout
        server, thread = self._server, self._thread
        if server is not None:
            server.shutdown()  # stop the accept loop...
            server.server_close()  # ...and close the listener socket
        if thread is not None:
            thread.join(timeout=5.0)
        if self.own_service:
            self.service.close(drain_timeout=drain_timeout)
        elif drain_timeout is not None:
            self.service.close(drain_timeout=drain_timeout)
        else:
            self.service.close()
        if server is not None:
            server.join_handlers(timeout=5.0)

    def __enter__(self) -> "HttpFrontend":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------- request registry
    def track(self, request_id: str, future) -> None:
        with self._lock:
            self._futures[request_id] = future
            while len(self._futures) > self.RESULT_BACKLOG:
                # Evict the oldest *resolved* entry; never forget live
                # work.  An idempotency key lives exactly as long as
                # its tracked result: once the resolved entry ages out
                # of the backlog, the key is forgotten with it.
                for key, pending in self._futures.items():
                    if pending.done():
                        del self._futures[key]
                        idem_key = self._idem_by_rid.pop(key, None)
                        if idem_key is not None:
                            self._idempotency.pop(idem_key, None)
                        break
                else:
                    break

    def submit_idempotent(self, key: str, request) -> tuple:
        """Submit under an idempotency key: first caller executes,
        repeats map to the same ``(future, request_id)``.

        The key is bound to the request's canonical serialized form, so
        a retry with the *same* request (however spelled) coalesces
        onto the original submission while reuse with a *different*
        request is a :class:`~repro.errors.ValidationError` (400).  A
        submit-time failure (e.g. closed service) releases the key --
        the retry that follows a 503 must be able to try again.
        """
        from repro.errors import TransientError

        canonical = json.dumps(request_to_dict(request), sort_keys=True)
        with self._lock:
            entry = self._idempotency.get(key)
            if entry is None:
                entry = self._idempotency[key] = _IdemEntry(canonical)
                leader = True
            else:
                if entry.canonical != canonical:
                    raise ValidationError(
                        f"idempotency key {key!r} was already used for a "
                        "different request"
                    )
                leader = False
        if leader:
            try:
                future = self.service.submit(request)
            except BaseException as exc:
                entry.error = exc
                entry.ready.set()
                with self._lock:
                    if self._idempotency.get(key) is entry:
                        del self._idempotency[key]
                raise
            entry.request_id = future.request_id
            entry.future = future
            entry.ready.set()
            with self._lock:
                self._idem_by_rid[future.request_id] = key
            self.track(future.request_id, future)
            return future, future.request_id
        if not entry.ready.wait(timeout=30.0):  # pragma: no cover - submit hung
            raise TransientError(
                f"idempotent submission for key {key!r} is still settling; "
                "retry"
            )
        if entry.error is not None:
            raise entry.error
        return entry.future, entry.request_id

    def lookup(self, request_id: str):
        with self._lock:
            return self._futures.get(request_id)

    def pending_payload(self, request_id: str) -> dict:
        future = self.lookup(request_id)
        return {
            "request_id": request_id,
            "status": "done" if future is not None and future.done() else "pending",
            "href": f"/permutations/{request_id}",
        }

    # ---------------------------------------------------------- introspection
    def describe_config(self) -> dict:
        service = self.service
        g = service.geometry
        config = {
            "geometry": {"N": g.N, "B": g.B, "D": g.D, "M": g.M},
            "workers": service.workers,
            "backend": service.backend,
            "queue_capacity": service.queue_capacity,
            "queue_policy": service.queue_policy,
            "coalesce": getattr(service, "coalesce", False),
            "default_timeout": service.default_timeout,
            "drain_timeout": self.drain_timeout,
            "cache": type(service.cache).__name__ if service.cache else None,
            "faults_active": bool(service.faults and service.faults.active),
            "recording": service.recorder is not None,
            "routes": {
                path: sorted(methods)
                for path, methods in sorted(self.ROUTES.items())
            },
        }
        retry = service.retry
        if retry is not None:
            config["retry"] = {
                "attempts": retry.attempts,
                "base": retry.base,
                "multiplier": retry.multiplier,
                "max_delay": retry.max_delay,
                "jitter": retry.jitter,
                "seed": retry.seed,
            }
        breaker = service.breaker
        if breaker is not None:
            config["breaker"] = breaker.snapshot()
        return config
