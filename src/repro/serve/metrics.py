"""Dependency-free Prometheus-style metrics for the serving stack.

The BSP/PDM view of serving (see ROADMAP + PAPERS.md) treats
communication and I/O *accounting* as a first-class measured quantity,
not a logging side effect.  This module is that accounting layer: a
small, stdlib-only metrics registry rendering the Prometheus text
exposition format (version 0.0.4), plus :class:`ServiceMetrics` -- the
standard instrument set for one :class:`~repro.serve.PermutationService`
and its HTTP frontend.

Three instrument kinds, all thread-safe and label-aware:

* :class:`Counter` -- monotone totals.  Besides ``inc()`` it supports
  ``set_total()``, the *snapshot bridge*: the service's authoritative
  counters (submitted/admitted/shed/...) live in
  :class:`~repro.serve.service.ServiceStats`, whose snapshot is taken
  under the service lock and is therefore exactly consistent
  (``admitted + shed == submitted`` at every instant).  Re-counting
  those events independently here could drift by a race; instead the
  scrape path copies the consistent snapshot into the counters, so
  ``/metrics`` *provably* reconciles against ``stats()``.
* :class:`Gauge` -- instantaneous values (queue depth, running).
* :class:`Histogram` -- cumulative-bucket distributions (per-algorithm
  latency, queue wait, PDM pass counts and parallel I/Os per request --
  the paper's cost model as a live distribution).

:func:`parse_prometheus_text` inverts :meth:`MetricsRegistry.render`;
the load generator and the CI reconciliation step use it to compare a
scraped ``/metrics`` page against ``/stats`` numerically.
"""

from __future__ import annotations

import re
import threading
from bisect import bisect_left

from repro.errors import ValidationError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ServiceMetrics",
    "parse_prometheus_text",
    "sample_name",
    "LATENCY_BUCKETS",
    "PASS_BUCKETS",
    "IO_BUCKETS",
]

#: Wall-clock seconds buckets for request/stage/HTTP latency histograms.
LATENCY_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5,
    5.0, 10.0,
)

#: PDM pass-count buckets (Theorem 21 puts BMMC passes at a handful;
#: the general sort's merge passes go higher).
PASS_BUCKETS = (1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0, 24.0, 32.0)

#: Parallel-I/O-count buckets per request (the paper's cost unit).
IO_BUCKETS = (16.0, 64.0, 256.0, 1024.0, 4096.0, 16384.0, 65536.0)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _format_value(value: float) -> str:
    """Render a sample value: integers without a trailing ``.0``."""
    value = float(value)
    if value == float("inf"):
        return "+Inf"
    if value.is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _escape_label(value) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace("\n", "\\n")
        .replace('"', '\\"')
    )


def sample_name(name: str, labels: dict | None = None) -> str:
    """The canonical sample key: ``name{k="v",...}`` with sorted labels.

    Both :meth:`MetricsRegistry.render` and
    :func:`parse_prometheus_text` use this form, so a rendered page
    round-trips into a dict keyed by exactly these strings.
    """
    if not labels:
        return name
    inner = ",".join(
        f'{k}="{_escape_label(v)}"' for k, v in sorted(labels.items())
    )
    return f"{name}{{{inner}}}"


class _Metric:
    """Shared label plumbing for one named metric family."""

    kind = "untyped"

    def __init__(self, name: str, help: str, labelnames: tuple = ()) -> None:
        if not _NAME_RE.match(name):
            raise ValidationError(f"invalid metric name {name!r}")
        labelnames = tuple(labelnames)
        for label in labelnames:
            if not _LABEL_RE.match(label):
                raise ValidationError(f"invalid label name {label!r}")
        self.name = name
        self.help = help
        self.labelnames = labelnames
        self._lock = threading.Lock()
        self._series: dict = {}

    def _key(self, labels: dict) -> tuple:
        if set(labels) != set(self.labelnames):
            raise ValidationError(
                f"metric {self.name!r} takes labels {self.labelnames}, "
                f"got {sorted(labels)}"
            )
        return tuple(str(labels[k]) for k in self.labelnames)

    def _labels_of(self, key: tuple) -> dict:
        return dict(zip(self.labelnames, key))

    def samples(self):  # pragma: no cover - overridden
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name!r}, series={len(self._series)})"


class Counter(_Metric):
    """A monotone total.  ``inc`` for event counting, ``set_total`` for
    bridging an externally-consistent snapshot (see module docs)."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels) -> None:
        if amount < 0:
            raise ValidationError(f"counter {self.name} cannot decrease")
        key = self._key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def set_total(self, value: float, **labels) -> None:
        """Overwrite the total from an authoritative snapshot.

        The *source* must be monotone (the service's own counters are);
        this is the scrape-time bridge that makes ``/metrics`` agree
        with ``stats()`` exactly rather than approximately.
        """
        key = self._key(labels)
        with self._lock:
            self._series[key] = float(value)

    def value(self, **labels) -> float:
        key = self._key(labels)
        with self._lock:
            return self._series.get(key, 0.0)

    def samples(self):
        with self._lock:
            items = list(self._series.items())
        for key, value in sorted(items):
            yield sample_name(self.name, self._labels_of(key)), value


class Gauge(_Metric):
    """An instantaneous value; goes up and down."""

    kind = "gauge"

    def set(self, value: float, **labels) -> None:
        key = self._key(labels)
        with self._lock:
            self._series[key] = float(value)

    def inc(self, amount: float = 1.0, **labels) -> None:
        key = self._key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels) -> float:
        key = self._key(labels)
        with self._lock:
            return self._series.get(key, 0.0)

    def samples(self):
        with self._lock:
            items = list(self._series.items())
        for key, value in sorted(items):
            yield sample_name(self.name, self._labels_of(key)), value


class Histogram(_Metric):
    """Cumulative-bucket histogram (``_bucket{le=...}``, ``_sum``,
    ``_count``), Prometheus semantics: every observation lands in all
    buckets with ``le >= value`` plus ``+Inf``."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: tuple = (),
        buckets: tuple = LATENCY_BUCKETS,
    ) -> None:
        super().__init__(name, help, labelnames)
        uppers = tuple(float(b) for b in buckets)
        if not uppers or any(
            b >= c for b, c in zip(uppers, uppers[1:])
        ):
            raise ValidationError(
                f"histogram {name!r} buckets must be strictly increasing"
            )
        self.uppers = uppers

    def observe(self, value: float, **labels) -> None:
        key = self._key(labels)
        value = float(value)
        with self._lock:
            state = self._series.get(key)
            if state is None:
                state = self._series[key] = [
                    [0] * (len(self.uppers) + 1), 0.0, 0
                ]
            counts, _, _ = state
            counts[bisect_left(self.uppers, value)] += 1
            state[1] += value
            state[2] += 1

    def count(self, **labels) -> int:
        key = self._key(labels)
        with self._lock:
            state = self._series.get(key)
            return state[2] if state is not None else 0

    def samples(self):
        with self._lock:
            items = [
                (key, (list(state[0]), state[1], state[2]))
                for key, state in self._series.items()
            ]
        for key, (counts, total, count) in sorted(items):
            labels = self._labels_of(key)
            cumulative = 0
            for upper, bucket in zip(self.uppers, counts):
                cumulative += bucket
                yield (
                    sample_name(
                        f"{self.name}_bucket",
                        {**labels, "le": _format_value(upper)},
                    ),
                    cumulative,
                )
            yield (
                sample_name(f"{self.name}_bucket", {**labels, "le": "+Inf"}),
                count,
            )
            yield sample_name(f"{self.name}_sum", labels), total
            yield sample_name(f"{self.name}_count", labels), count


class MetricsRegistry:
    """An ordered set of metrics with get-or-create factories and a
    text-format renderer.  Creation is idempotent by name; asking for an
    existing name with a different kind or label set raises."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, _Metric] = {}

    def _get_or_create(self, cls, name, help, labelnames, **kwargs):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is not None:
                if type(metric) is not cls or metric.labelnames != tuple(labelnames):
                    raise ValidationError(
                        f"metric {name!r} already registered with a "
                        "different kind or label set"
                    )
                return metric
            metric = cls(name, help, labelnames, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str, labelnames: tuple = ()) -> Counter:
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str, labelnames: tuple = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(
        self,
        name: str,
        help: str,
        labelnames: tuple = (),
        buckets: tuple = LATENCY_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, help, labelnames, buckets=buckets
        )

    def get(self, name: str) -> _Metric | None:
        with self._lock:
            return self._metrics.get(name)

    def render(self) -> str:
        """The Prometheus text exposition page (format 0.0.4)."""
        with self._lock:
            metrics = list(self._metrics.values())
        lines = []
        for metric in metrics:
            lines.append(f"# HELP {metric.name} {metric.help}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            for name, value in metric.samples():
                lines.append(f"{name} {_format_value(value)}")
        return "\n".join(lines) + "\n"


def _parse_labels(raw: str) -> dict:
    """Parse the ``k="v",...`` interior of a sample's label braces."""
    labels = {}
    i, n = 0, len(raw)
    while i < n:
        eq = raw.index("=", i)
        key = raw[i:eq].strip()
        assert raw[eq + 1] == '"', f"malformed labels: {raw!r}"
        j = eq + 2
        out = []
        while raw[j] != '"':
            if raw[j] == "\\":
                escape = raw[j + 1]
                out.append({"n": "\n", "\\": "\\", '"': '"'}[escape])
                j += 2
            else:
                out.append(raw[j])
                j += 1
        labels[key] = "".join(out)
        i = j + 1
        if i < n and raw[i] == ",":
            i += 1
    return labels


def parse_prometheus_text(text: str) -> dict[str, float]:
    """Invert :meth:`MetricsRegistry.render`: sample key -> value.

    Keys are normalized through :func:`sample_name` (labels sorted), so
    lookups can be built with the same helper regardless of the order
    the page rendered them in.
    """
    samples: dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        head, _, value = line.rpartition(" ")
        if "{" in head:
            name, _, rest = head.partition("{")
            labels = _parse_labels(rest.rstrip("}"))
        else:
            name, labels = head, {}
        samples[sample_name(name, labels)] = float(value)
    return samples


class ServiceMetrics:
    """The standard instrument set for one service + HTTP frontend.

    Two halves:

    * **Event-driven** -- :meth:`observe_result` is called by the
      service as each request resolves: per-algorithm latency, queue
      wait, the plan/compile/execute/latch-wait stage breakdown, PDM
      pass-count and parallel-I/O histograms, and a typed error
      counter.
    * **Snapshot-bridged** -- :meth:`collect` copies one consistent
      :class:`~repro.serve.service.ServiceStats` snapshot (plus cache,
      per-shard, and breaker counters) into the registry, so the core
      totals on ``/metrics`` reconcile *exactly* against ``/stats``:
      ``admitted + shed == submitted`` holds on every scrape.
    """

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        r = self.registry = registry or MetricsRegistry()
        # ---- snapshot-bridged service counters (authoritative: stats())
        self.submitted = r.counter(
            "repro_requests_submitted_total", "Requests submitted to the service"
        )
        self.admitted = r.counter(
            "repro_requests_admitted_total", "Requests admitted past the queue"
        )
        self.shed = r.counter(
            "repro_requests_shed_total", "Requests shed by admission control"
        )
        self.completed = r.counter(
            "repro_requests_completed_total", "Requests resolved by a worker"
        )
        self.failed = r.counter(
            "repro_requests_failed_total", "Requests resolved with an error"
        )
        self.retries = r.counter(
            "repro_request_retries_total", "Retry attempts beyond the first"
        )
        self.deadline_exceeded = r.counter(
            "repro_requests_deadline_exceeded_total",
            "Requests that missed their deadline",
        )
        self.cancelled = r.counter(
            "repro_requests_cancelled_total",
            "Requests cancelled (hard-close or client cancel)",
        )
        self.coalesced = r.counter(
            "repro_requests_coalesced_total",
            "Follower requests resolved by a leader's single execution",
        )
        self.queue_depth = r.gauge(
            "repro_queue_depth", "Admitted requests waiting for a worker"
        )
        self.coalesced_in_flight = r.gauge(
            "repro_requests_coalesced_in_flight",
            "Followers currently attached to a queued-or-running leader",
        )
        self.running = r.gauge(
            "repro_requests_running", "Requests executing right now"
        )
        self.workers = r.gauge("repro_workers", "Worker pool size")
        self.up = r.gauge(
            "repro_service_up", "1 while the service accepts work, 0 once closed"
        )
        # ---- breaker
        self.breaker_trips = r.counter(
            "repro_breaker_trips_total", "Circuit-breaker closed->open transitions"
        )
        self.breaker_fast_failures = r.counter(
            "repro_breaker_fast_failures_total",
            "Requests refused while a plan-key circuit was open",
        )
        self.breaker_open_keys = r.gauge(
            "repro_breaker_open_keys", "Plan keys currently quarantined"
        )
        # ---- plan cache (totals + per-shard)
        self.cache_hits = r.counter(
            "repro_cache_hits_total", "Compiled-plan cache hits"
        )
        self.cache_misses = r.counter(
            "repro_cache_misses_total", "Compiled-plan cache misses"
        )
        self.cache_evictions = r.counter(
            "repro_cache_evictions_total", "Compiled plans evicted (LRU)"
        )
        self.cache_latch_waits = r.counter(
            "repro_cache_latch_waits_total",
            "Requests that waited on another thread's in-flight compile",
        )
        self.cache_size = r.gauge(
            "repro_cache_size", "Compiled plans currently held"
        )
        self.cache_shard_hits = r.counter(
            "repro_cache_shard_hits_total", "Cache hits by shard", ("shard",)
        )
        self.cache_shard_misses = r.counter(
            "repro_cache_shard_misses_total", "Cache misses by shard", ("shard",)
        )
        self.cache_shard_evictions = r.counter(
            "repro_cache_shard_evictions_total", "Cache evictions by shard", ("shard",)
        )
        self.cache_shard_latch_waits = r.counter(
            "repro_cache_shard_latch_waits_total", "Latch waits by shard", ("shard",)
        )
        # ---- event-driven request distributions
        self.latency = r.histogram(
            "repro_request_latency_seconds",
            "Request wall time by permutation family and method",
            ("perm", "method"),
        )
        self.queue_wait = r.histogram(
            "repro_request_queue_wait_seconds",
            "Seconds between admission and a worker picking the request up",
        )
        self.stage_seconds = r.histogram(
            "repro_request_stage_seconds",
            "Per-request stage breakdown: plan, compile, execute, latch_wait",
            ("stage",),
        )
        self.passes = r.histogram(
            "repro_request_pdm_passes",
            "PDM passes per served request (the paper's pass count)",
            ("method",),
            buckets=PASS_BUCKETS,
        )
        self.parallel_ios = r.histogram(
            "repro_request_parallel_ios",
            "Parallel I/Os per served request (the paper's cost unit)",
            buckets=IO_BUCKETS,
        )
        self.errors = r.counter(
            "repro_request_errors_total", "Failed requests by error type", ("type",)
        )
        # ---- HTTP frontend
        self.http_requests = r.counter(
            "repro_http_requests_total",
            "HTTP requests by method, route template, and status",
            ("method", "path", "status"),
        )
        self.http_latency = r.histogram(
            "repro_http_request_seconds",
            "HTTP handling time by route template",
            ("path",),
        )
        self.http_inflight = r.gauge(
            "repro_http_inflight", "HTTP requests currently being handled"
        )

    # ------------------------------------------------------------ event side
    def observe_result(self, result) -> None:
        """Record one resolved :class:`~repro.serve.ServiceResult`."""
        request = result.request
        perm = request.perm if isinstance(request.perm, str) else type(request.perm).__name__
        self.latency.observe(result.elapsed, perm=perm, method=request.method)
        timings = result.timings
        if "queue_wait" in timings:
            self.queue_wait.observe(timings["queue_wait"])
        for stage in ("plan", "compile", "execute", "latch_wait"):
            if stage in timings:
                self.stage_seconds.observe(timings[stage], stage=stage)
        if result.error is not None:
            self.errors.inc(type=type(result.error).__name__)
        elif result.report is not None:
            self.passes.observe(result.report.passes, method=result.report.method)
            self.parallel_ios.observe(result.report.io.parallel_ios)

    # --------------------------------------------------------- snapshot side
    def collect(self, service) -> None:
        """Copy one consistent service/cache/breaker snapshot in.

        Shard counters are read one shard lock at a time
        (:meth:`~repro.pdm.cache.ShardedPlanCache.shard_infos`), never
        all at once -- a scrape must not stall the serving hot path.
        """
        stats = service.stats()
        self.submitted.set_total(stats.submitted)
        self.admitted.set_total(stats.admitted)
        self.shed.set_total(stats.shed)
        self.completed.set_total(stats.completed)
        self.failed.set_total(stats.failed)
        self.retries.set_total(stats.retries)
        self.deadline_exceeded.set_total(stats.deadline_exceeded)
        self.cancelled.set_total(stats.cancelled)
        self.coalesced.set_total(getattr(stats, "coalesced", 0))
        self.queue_depth.set(stats.queue_depth)
        self.coalesced_in_flight.set(getattr(stats, "coalesced_in_flight", 0))
        self.running.set(stats.running)
        self.workers.set(stats.workers)
        self.up.set(0.0 if stats.closed else 1.0)
        self.breaker_trips.set_total(stats.breaker_trips)
        self.breaker_fast_failures.set_total(stats.breaker_fast_failures)
        breaker = getattr(service, "breaker", None)
        if breaker is not None:
            self.breaker_open_keys.set(len(breaker.open_keys()))
        cache = getattr(service, "cache", None)
        if cache is not None:
            info = cache.info()
            self.cache_hits.set_total(info.hits)
            self.cache_misses.set_total(info.misses)
            self.cache_evictions.set_total(info.evictions)
            self.cache_latch_waits.set_total(getattr(info, "latch_waits", 0))
            self.cache_size.set(info.size)
            shard_infos = getattr(cache, "shard_infos", None)
            if shard_infos is not None:
                for shard in shard_infos():
                    label = str(shard.shard)
                    self.cache_shard_hits.set_total(shard.hits, shard=label)
                    self.cache_shard_misses.set_total(shard.misses, shard=label)
                    self.cache_shard_evictions.set_total(
                        shard.evictions, shard=label
                    )
                    self.cache_shard_latch_waits.set_total(
                        shard.latch_waits, shard=label
                    )

    def render(self, service=None) -> str:
        """Scrape: optionally refresh the snapshot half, then render."""
        if service is not None:
            self.collect(service)
        return self.registry.render()
