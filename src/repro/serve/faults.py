"""Deterministic fault injection: chaos as a first-class, seeded seam.

A :class:`FaultPlan` describes *where* and *how often* things go wrong:
planner errors (a compile blows up), kernel-shard errors (a fused pass
dies mid-flight), slow passes (injected latency at pass boundaries),
and latch stalls (a cold-compile builder that dawdles while waiters
queue).  Probabilities are evaluated by a per-request
:class:`FaultSession` whose RNG is seeded from ``(plan seed, request
index)``, so every draw is a pure function of the plan and the request:
the same seed injects the same faults into the same checkpoint
sequences on every run, on every machine.  Execution-path faults
(``pass``/``shard``) therefore replay identically under any thread
interleaving -- a request's own plan fixes its checkpoint sequence.
The one scheduling-dependent edge is *which* request a planner fault
lands on: the ``planner`` checkpoint fires inside the compile thunk,
and compile-once latching means only the race winner compiles (its
co-arrivals wait and get hits).  That is what lets CI pin
``REPRO_CHAOS_SEED`` and replay a failing cell bit-for-bit locally.

Faults fire *through* the cooperative checkpoints
(:func:`repro.pdm.cancel.checkpoint`), the same boundaries cancellation
uses -- so injected failures exercise exactly the unwind paths real
failures take, and the old test-suite idiom of monkeypatching backends
and planners is no longer the only way to make the stack misbehave.

Injected errors are :class:`~repro.errors.InjectedFault`, a
:class:`~repro.errors.TransientError`: the retry machinery re-attempts
them, and because the session RNG advances across attempts, a retry
may genuinely succeed -- the failure shape retry/backoff exists for.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.errors import InjectedFault, ValidationError

__all__ = ["FaultPlan", "FaultSession", "chaos_plan"]

#: Checkpoint names a fault session reacts to.
FAULT_POINTS = ("planner", "pass", "shard", "latch-wait")


@dataclass(frozen=True)
class FaultPlan:
    """Seeded fault probabilities, evaluated per checkpoint.

    * ``planner_failures`` -- probability a plan compile raises (fired
      at the ``planner`` checkpoint, inside the cache's compile thunk,
      so breaker and compile-once latch semantics are exercised).
    * ``kernel_failures`` -- probability a ``pass``/``shard`` boundary
      raises mid-execution (the partially-moved-data shape).
    * ``slow_passes`` / ``slow_seconds`` -- probability a pass boundary
      sleeps before proceeding (injected I/O latency; this is how tests
      make deadlines expire mid-request without huge workloads).
    * ``latch_stalls`` / ``stall_seconds`` -- probability a *builder*
      stalls before compiling, stretching the cold-compile window other
      threads spend waiting on the in-flight latch.
    * ``max_faults_per_request`` -- cap on injected *errors* per
      request attempt sequence (sleeps don't count), so chaos at high
      probability still lets retried requests eventually succeed.
    """

    seed: int = 0
    planner_failures: float = 0.0
    kernel_failures: float = 0.0
    slow_passes: float = 0.0
    slow_seconds: float = 0.01
    latch_stalls: float = 0.0
    stall_seconds: float = 0.05
    max_faults_per_request: int | None = None

    def __post_init__(self) -> None:
        for name in ("planner_failures", "kernel_failures", "slow_passes", "latch_stalls"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValidationError(f"FaultPlan.{name} must be in [0, 1], got {p}")
        if self.slow_seconds < 0 or self.stall_seconds < 0:
            raise ValidationError("FaultPlan delays must be >= 0")

    @property
    def active(self) -> bool:
        return any(
            (self.planner_failures, self.kernel_failures,
             self.slow_passes, self.latch_stalls)
        )

    def session(self, request_index: int) -> "FaultSession":
        """The per-request fault stream: deterministic in
        ``(self.seed, request_index)`` and stateful across that
        request's retry attempts (each attempt sees fresh draws)."""
        return FaultSession(self, request_index)


class FaultSession:
    """One request's draw stream against a :class:`FaultPlan`.

    Carried in the worker's ambient scope (see
    :func:`repro.pdm.cancel.run_scope`) and consulted by every
    checkpoint.  The RNG is private to the request, so concurrent
    requests never race on draw order -- determinism survives any
    thread interleaving.
    """

    __slots__ = ("plan", "request_index", "_rng", "fired")

    def __init__(self, plan: FaultPlan, request_index: int) -> None:
        self.plan = plan
        self.request_index = int(request_index)
        self._rng = np.random.default_rng((int(plan.seed), self.request_index))
        self.fired = 0  # injected errors so far (sleeps not counted)

    def _exhausted(self) -> bool:
        cap = self.plan.max_faults_per_request
        return cap is not None and self.fired >= cap

    def _raise(self, point: str, label: str) -> None:
        self.fired += 1
        where = f" [{label}]" if label else ""
        raise InjectedFault(
            f"injected {point} fault{where} "
            f"(request {self.request_index}, fault #{self.fired})"
        )

    def fire(self, point: str, label: str = "") -> None:
        """Checkpoint hook: maybe sleep, maybe raise, usually neither.

        Draw order is fixed per point kind, so the stream is stable:
        a given checkpoint sequence always consumes the same draws.
        """
        plan = self.plan
        if point == "planner":
            if plan.latch_stalls and self._rng.random() < plan.latch_stalls:
                time.sleep(plan.stall_seconds)
            if plan.planner_failures and self._rng.random() < plan.planner_failures:
                if not self._exhausted():
                    self._raise(point, label)
        elif point == "pass":
            if plan.slow_passes and self._rng.random() < plan.slow_passes:
                time.sleep(plan.slow_seconds)
            if plan.kernel_failures and self._rng.random() < plan.kernel_failures:
                if not self._exhausted():
                    self._raise(point, label)
        elif point == "shard":
            if plan.kernel_failures and self._rng.random() < plan.kernel_failures:
                if not self._exhausted():
                    self._raise(point, label)
        # "latch-wait" checkpoints exist for cancellation only: a waiter
        # blocked on someone else's compile has no work to corrupt.


def chaos_plan(seed: int = 0, intensity: float = 0.05) -> FaultPlan:
    """The CLI's ``--chaos`` preset: a little of everything.

    ``intensity`` scales the error probabilities; sleeps stay short so
    chaos runs finish.  Capped at one injected error per request so a
    retried request converges.
    """
    if not 0.0 <= intensity <= 1.0:
        raise ValidationError(f"chaos intensity must be in [0, 1], got {intensity}")
    return FaultPlan(
        seed=seed,
        planner_failures=intensity,
        kernel_failures=intensity,
        slow_passes=min(1.0, 2 * intensity),
        slow_seconds=0.002,
        latch_stalls=intensity,
        stall_seconds=0.005,
        max_faults_per_request=1,
    )
