"""Boot-time cache warmup for the serving stack.

A permutation service's worst latency is its first request per plan
key: classification + planning + compile, serialized behind the
compile-once latch for every co-arriving request of the same key.
Warmup pays that cost before the listener opens, so the first real
client sees hit-path latency.

The warmup spec is JSON, either

* a request list (the :func:`~repro.serve.load_requests` file format:
  one JSON object per line, or one array), or
* ``{"mix": {"count": 12, "seed": 0, ...}}`` -- keyword arguments for
  :func:`~repro.serve.synthetic_mix`, the standard mixed workload.

Warmup runs *through the service* (not around it), so it exercises the
same worker pool, cache shards, and breaker the real traffic will --
and its requests are counted in ``stats()`` like any others.  Failures
don't abort the boot: a key that fails to compile during warmup will
fail identically for real clients, which is precisely what the breaker
and the error taxonomy are for; the report just records it.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field

from repro.errors import ValidationError
from repro.serve.requests import (
    PermutationRequest,
    load_requests,
    request_from_dict,
    synthetic_mix,
)

__all__ = ["WarmupReport", "load_warmup_spec", "warm_service"]


@dataclass
class WarmupReport:
    """What the boot sequence learned from warming the cache."""

    requests: int = 0
    succeeded: int = 0
    failed: int = 0
    elapsed: float = 0.0
    cache_size: int = 0
    cache_misses: int = 0
    errors: dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "requests": self.requests,
            "succeeded": self.succeeded,
            "failed": self.failed,
            "elapsed": self.elapsed,
            "cache_size": self.cache_size,
            "cache_misses": self.cache_misses,
            "errors": dict(self.errors),
        }

    def summary(self) -> str:
        return (
            f"warmup: {self.succeeded}/{self.requests} ok "
            f"({self.failed} failed) in {self.elapsed * 1e3:.0f} ms; "
            f"cache holds {self.cache_size} plans "
            f"({self.cache_misses} compiles)"
        )


def load_warmup_spec(path) -> list[PermutationRequest]:
    """Read a warmup spec file into a request list (see module docs)."""
    with open(path) as handle:
        text = handle.read()
    stripped = text.lstrip()
    if stripped.startswith("{"):
        spec = json.loads(text)
        if "mix" in spec:
            mix = spec["mix"]
            if not isinstance(mix, dict):
                raise ValidationError('"mix" must be a JSON object of kwargs')
            return synthetic_mix(**mix)
        # A single request object is a one-item warmup.
        return [request_from_dict(spec)]
    return load_requests(path)


def warm_service(service, requests) -> WarmupReport:
    """Drive ``requests`` through ``service`` and report what happened.

    Uses the service's own pool, so D-disk-parallel compiles of distinct
    keys overlap; duplicate keys coalesce on the cache's in-flight
    latches.  Never raises for request failures.
    """
    report = WarmupReport()
    t0 = time.perf_counter()
    results = service.run(requests)
    report.elapsed = time.perf_counter() - t0
    report.requests = len(results)
    for result in results:
        if result.ok:
            report.succeeded += 1
        else:
            report.failed += 1
            name = type(result.error).__name__
            report.errors[name] = report.errors.get(name, 0) + 1
    info = service.cache_info()
    if info is not None:
        report.cache_size = info.size
        report.cache_misses = info.misses
    return report
