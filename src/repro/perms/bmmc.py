"""``BMMCPermutation``: ``y = A x (+) c`` over GF(2).

The class stores the characteristic matrix ``A`` (validated nonsingular)
and the integer-encoded complement vector ``c``, and implements the
algebra the paper builds on:

* Lemma 1 / Corollary 2 -- composition is matrix product (complement
  vectors compose as ``c = A_2 c_1 (+) c_2``);
* inverse -- ``x = A^{-1} y (+) A^{-1} c``;
* Lemma 9's fixed-point machinery -- ``|Pre(A (+) I, c)|`` counts the
  fixed points, which is how the tests validate the universal lower
  bound's "at least N/2 records move" argument.
"""

from __future__ import annotations

import numpy as np

from repro.bits import bitops, linalg
from repro.bits.matrix import BitMatrix
from repro.errors import SingularMatrixError, ValidationError
from repro.perms.base import Permutation

__all__ = ["BMMCPermutation"]


class BMMCPermutation(Permutation):
    """A bit-matrix-multiply/complement permutation."""

    def __init__(self, matrix: BitMatrix, complement: int = 0, validate: bool = True) -> None:
        if not matrix.is_square:
            raise ValidationError(f"characteristic matrix must be square, got {matrix.shape}")
        super().__init__(matrix.num_rows)
        if int(complement) >> self.n or int(complement) < 0:
            raise ValidationError(f"complement vector must fit in {self.n} bits")
        if validate and not linalg.is_nonsingular(matrix):
            raise SingularMatrixError(
                "characteristic matrix is singular; BMMC permutations require "
                "a nonsingular matrix over GF(2)"
            )
        self.matrix = matrix
        self.complement = int(complement)

    # -------------------------------------------------------------- protocol
    def apply(self, x: int) -> int:
        return self.matrix.mulvec(x) ^ self.complement

    def apply_array(self, xs: np.ndarray) -> np.ndarray:
        return bitops.apply_affine(self.matrix, self.complement, np.asarray(xs))

    def inverse(self) -> "BMMCPermutation":
        inv = linalg.inverse(self.matrix)
        return BMMCPermutation(inv, inv.mulvec(self.complement), validate=False)

    def compose(self, first: Permutation) -> Permutation:
        """``self o first`` (apply ``first``, then ``self``).

        When ``first`` is BMMC the result is BMMC with matrix
        ``A_self A_first`` (Lemma 1) and complement
        ``A_self c_first (+) c_self``; otherwise falls back to the
        explicit representation.
        """
        if isinstance(first, BMMCPermutation):
            if first.n != self.n:
                raise ValidationError("cannot compose permutations of different sizes")
            return BMMCPermutation(
                self.matrix @ first.matrix,
                self.matrix.mulvec(first.complement) ^ self.complement,
                validate=False,
            )
        return super().compose(first)

    def is_identity(self) -> bool:
        return self.matrix.is_identity and self.complement == 0

    # ----------------------------------------------------- paper's quantities
    def gamma(self, b: int) -> BitMatrix:
        """The paper's ``gamma = A[b..n-1, 0..b-1]`` (Theorem 3's submatrix)."""
        return self.matrix[b : self.n, 0:b]

    def rank_gamma(self, b: int) -> int:
        """``rank gamma``: the quantity both tight bounds are written in."""
        return linalg.rank(self.gamma(b))

    def leading_rank(self, m: int) -> int:
        """Rank of the leading ``m x m`` submatrix (the old bound's ``r``)."""
        return linalg.rank(self.matrix[0:m, 0:m])

    def fixed_point_count(self) -> int:
        """Number of addresses with ``A x (+) c = x`` (Lemma 9's analysis).

        Equals ``|Pre(A (+) I, c)|``: zero if ``c`` is outside the range
        of ``A (+) I``, else ``2^{n - rank(A (+) I)}``; the identity
        permutation fixes all ``N``.
        """
        if self.is_identity():
            return self.N
        a_xor_i = self.matrix ^ BitMatrix.identity(self.n)
        return linalg.preimage_size(a_xor_i, self.complement)

    def is_bpc(self) -> bool:
        return self.matrix.is_permutation_matrix

    def __repr__(self) -> str:
        return (
            f"BMMCPermutation(n={self.n}, c={self.complement:#x})\n{self.matrix!r}"
        )
