"""BPC permutations and cross-ranks (eqs. 2-3 of the paper).

A bit-permute/complement permutation's characteristic matrix is a
permutation matrix: target address bits are a fixed permutation of
source address bits, optionally complemented.  The prior-art BPC bound
of [4] is written in terms of the *cross-rank*

    ``rho(A) = max(rho_b(A), rho_m(A))``,
    ``rho_k(A) = rank A[k..n-1, 0..k-1] = rank A[0..k-1, k..n-1]``

which for a permutation matrix counts the source bits below position
``k`` that map to positions at or above ``k``.  This paper's Theorem 21
obviates the cross-rank, but the benchmarks still report it for the
Table 1 comparison.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.bits import linalg
from repro.bits.matrix import BitMatrix
from repro.errors import ValidationError
from repro.perms.bmmc import BMMCPermutation

__all__ = ["BPCPermutation", "k_cross_rank", "cross_rank"]


class BPCPermutation(BMMCPermutation):
    """A bit-permute/complement permutation.

    ``target_of[j]`` is the target bit position of source bit ``j``;
    the characteristic matrix has ``A[target_of[j], j] = 1``.
    """

    def __init__(self, target_of: Sequence[int], complement: int = 0) -> None:
        matrix = BitMatrix.permutation(list(target_of))
        super().__init__(matrix, complement, validate=False)
        self.target_of = list(int(t) for t in target_of)

    @classmethod
    def from_matrix(cls, matrix: BitMatrix, complement: int = 0) -> "BPCPermutation":
        if not matrix.is_permutation_matrix:
            raise ValidationError("BPC requires a permutation characteristic matrix")
        return cls([int(t) for t in matrix.permutation_targets()], complement)

    def apply(self, x: int) -> int:
        y = 0
        for j, t in enumerate(self.target_of):
            if (x >> j) & 1:
                y |= 1 << t
        return y ^ self.complement

    def inverse(self) -> "BPCPermutation":
        inv = [0] * self.n
        for j, t in enumerate(self.target_of):
            inv[t] = j
        # inverse complement: x = A^{-1}(y xor c); A^{-1} permutes c's bits
        c = 0
        for j, t in enumerate(self.target_of):
            if (self.complement >> t) & 1:
                c |= 1 << j
        return BPCPermutation(inv, c)

    def cross_rank(self, b: int, m: int) -> int:
        """``rho(A) = max(rho_b, rho_m)`` (eq. 3)."""
        return cross_rank(self.matrix, b, m)

    def __repr__(self) -> str:
        return f"BPCPermutation(target_of={self.target_of}, c={self.complement:#x})"


def k_cross_rank(matrix: BitMatrix, k: int) -> int:
    """``rho_k(A) = rank A[k..n-1, 0..k-1]`` (eq. 2).

    For permutation matrices the two expressions of eq. 2 agree; the
    implementation works for any matrix and the tests check the
    symmetry on permutation matrices.
    """
    n = matrix.num_rows
    if not (0 <= k <= n):
        raise ValidationError(f"cross-rank index {k} out of range for n={n}")
    if k in (0, n):
        return 0
    return linalg.rank(matrix[k:n, 0:k])


def cross_rank(matrix: BitMatrix, b: int, m: int) -> int:
    """``rho(A) = max(rho_b(A), rho_m(A))`` (eq. 3)."""
    return max(k_cross_rank(matrix, b), k_cross_rank(matrix, m))
