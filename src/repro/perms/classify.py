"""Classification of permutations into the paper's class lattice.

Given a geometry, a BMMC permutation may additionally be BPC (structural
property of ``A``), MRC, and/or MLD (properties relative to ``b`` and
``m``).  The classes overlap but do not nest linearly; for algorithm
dispatch the relevant *cost* order is

    identity (0 passes)  <  MRC / MLD (1 pass)  <  general BMMC.

Every MRC permutation is MLD (end of Section 3), so the dispatcher
prefers MRC (striped writes) over MLD (independent writes) when both
hold.

:func:`fit_bmmc` recovers ``(A, c)`` from an explicit target vector by
the two observations of Section 6 (``c = pi(0)``, columns from unit
vectors) -- this is the *algebraic* fitting step; the I/O-faithful
schedule lives in :mod:`repro.core.detect`.
"""

from __future__ import annotations

import enum

import numpy as np

from repro.bits import bitops, linalg
from repro.bits.matrix import BitMatrix
from repro.errors import ValidationError
from repro.pdm.geometry import DiskGeometry
from repro.perms.base import ExplicitPermutation, Permutation
from repro.perms.bmmc import BMMCPermutation
from repro.perms.mld import is_mld
from repro.perms.mrc import is_mrc

__all__ = ["PermClass", "classify", "classify_matrix", "fit_bmmc"]


class PermClass(enum.Enum):
    IDENTITY = "identity"
    MRC = "mrc"
    MLD = "mld"
    INVERSE_MLD = "inverse-mld"
    BPC = "bpc"
    BMMC = "bmmc"
    NON_BMMC = "non-bmmc"


def classify_matrix(
    matrix: BitMatrix, complement: int, geometry: DiskGeometry
) -> set[PermClass]:
    """All classes a (validated-nonsingular) characteristic matrix falls in."""
    from repro.core.inverse_mld import is_inverse_mld

    labels = {PermClass.BMMC}
    if matrix.is_identity and complement == 0:
        labels.add(PermClass.IDENTITY)
    if matrix.is_permutation_matrix:
        labels.add(PermClass.BPC)
    if is_mrc(matrix, geometry.m):
        labels.add(PermClass.MRC)
        labels.add(PermClass.MLD)  # every MRC permutation is MLD (Section 3)
    elif is_mld(matrix, geometry.b, geometry.m):
        labels.add(PermClass.MLD)
    if is_inverse_mld(matrix, geometry.b, geometry.m):
        # Section 7: the inverse of a one-pass permutation is one-pass.
        labels.add(PermClass.INVERSE_MLD)
    return labels


def classify(perm: Permutation, geometry: DiskGeometry) -> set[PermClass]:
    """Classes of any permutation; explicit permutations are fitted first."""
    if perm.N != geometry.N:
        raise ValidationError(
            f"permutation acts on {perm.N} records but geometry has {geometry.N}"
        )
    if isinstance(perm, BMMCPermutation):
        return classify_matrix(perm.matrix, perm.complement, geometry)
    fitted = fit_bmmc(perm.target_vector())
    if fitted is None:
        labels = {PermClass.NON_BMMC}
        if perm.is_identity():
            labels.add(PermClass.IDENTITY)
        return labels
    matrix, complement = fitted
    return classify_matrix(matrix, complement, geometry)


def fit_bmmc(targets: np.ndarray) -> tuple[BitMatrix, int] | None:
    """Recover ``(A, c)`` from a target vector, or ``None`` if not BMMC.

    Builds the unique candidate (``c = targets[0]``,
    ``A_k = targets[2^k] (+) c``), requires it nonsingular, then
    verifies ``y = A x (+) c`` for *all* addresses (vectorized).
    """
    targets = np.asarray(targets, dtype=np.int64)
    size = targets.shape[0]
    if size == 0 or size & (size - 1):
        return None
    n = size.bit_length() - 1
    c = int(targets[0])
    columns = [int(targets[1 << k]) ^ c for k in range(n)]
    matrix = BitMatrix.from_int_columns(columns, n)
    if not linalg.is_nonsingular(matrix):
        return None
    xs = np.arange(size, dtype=np.uint64)
    ys = bitops.apply_affine(matrix, c, xs)
    if not (np.asarray(ys, dtype=np.int64) == targets).all():
        return None
    return matrix, c
