"""Permutation protocol and the explicit (target-vector) representation.

A permutation here is always on the address space ``{0, ..., N-1}`` with
``N = 2^n``.  The abstract interface deliberately exposes *vectorized*
application -- algorithms and verification never loop over records in
Python.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.errors import ValidationError

__all__ = ["Permutation", "ExplicitPermutation", "identity_permutation"]


class Permutation(ABC):
    """A bijection on ``{0, ..., 2^n - 1}``."""

    def __init__(self, n: int) -> None:
        if n < 0:
            raise ValidationError(f"address width must be nonnegative, got {n}")
        self.n = int(n)

    @property
    def N(self) -> int:
        """Number of records the permutation acts on."""
        return 1 << self.n

    @abstractmethod
    def apply(self, x: int) -> int:
        """Target address of source address ``x``."""

    @abstractmethod
    def apply_array(self, xs: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`apply` over a numpy array of addresses."""

    @abstractmethod
    def inverse(self) -> "Permutation":
        """The inverse bijection."""

    def target_vector(self) -> np.ndarray:
        """The full image ``[apply(0), ..., apply(N-1)]`` as int64."""
        return np.asarray(
            self.apply_array(np.arange(self.N, dtype=np.uint64)), dtype=np.int64
        )

    def compose(self, first: "Permutation") -> "Permutation":
        """``self o first``: perform ``first``, then ``self`` (paper order)."""
        if first.n != self.n:
            raise ValidationError("cannot compose permutations of different sizes")
        mine = self.target_vector()
        theirs = first.target_vector()
        return ExplicitPermutation(mine[theirs])

    def is_identity(self) -> bool:
        xs = np.arange(self.N, dtype=np.uint64)
        return bool((np.asarray(self.apply_array(xs), dtype=np.int64) == xs.astype(np.int64)).all())

    def __call__(self, x: int) -> int:
        return self.apply(x)


class ExplicitPermutation(Permutation):
    """A permutation given by its length-``N`` vector of target addresses.

    This is the input representation of Section 6's run-time detector:
    "if instead the permutation is given by a vector of N target
    addresses".
    """

    def __init__(self, targets: np.ndarray) -> None:
        targets = np.asarray(targets, dtype=np.int64)
        size = targets.shape[0]
        if targets.ndim != 1 or size == 0 or size & (size - 1):
            raise ValidationError("target vector length must be a positive power of two")
        super().__init__(size.bit_length() - 1)
        seen = np.zeros(size, dtype=bool)
        if targets.min() < 0 or targets.max() >= size:
            raise ValidationError("target addresses out of range")
        seen[targets] = True
        if not seen.all():
            raise ValidationError("target vector is not a bijection")
        self._targets = targets

    def apply(self, x: int) -> int:
        return int(self._targets[int(x)])

    def apply_array(self, xs: np.ndarray) -> np.ndarray:
        return self._targets[np.asarray(xs, dtype=np.int64)]

    def target_vector(self) -> np.ndarray:
        return self._targets.copy()

    def inverse(self) -> "ExplicitPermutation":
        inv = np.empty_like(self._targets)
        inv[self._targets] = np.arange(self.N, dtype=np.int64)
        return ExplicitPermutation(inv)


def identity_permutation(n: int) -> ExplicitPermutation:
    """The identity on ``2^n`` addresses."""
    return ExplicitPermutation(np.arange(1 << n, dtype=np.int64))
