"""Named permutations of practical interest (Section 1 of the paper).

"The class of BPC permutations includes many common permutations such
as matrix transposition, bit-reversal permutations (used in performing
FFTs), vector-reversal permutations, hypercube permutations, and matrix
reblocking" -- plus the binary-reflected Gray code and its inverse,
which are MRC (unit upper-triangular characteristic matrices).

All constructors return :class:`BMMCPermutation` subclasses ready to
run on the simulator or feed to the bound calculators.
"""

from __future__ import annotations

import numpy as np

from repro.bits.matrix import BitMatrix
from repro.errors import ValidationError
from repro.perms.bmmc import BMMCPermutation
from repro.perms.bpc import BPCPermutation

__all__ = [
    "matrix_transpose",
    "bit_reversal",
    "vector_reversal",
    "hypercube_exchange",
    "gray_code",
    "gray_code_inverse",
    "perfect_shuffle",
    "field_exchange",
    "complement_permutation",
    "permuted_gray_code",
    "z_order",
    "z_order_inverse",
    "matrix_reblocking",
]


def matrix_transpose(lg_rows: int, lg_cols: int) -> BPCPermutation:
    """Transpose an ``R x S`` matrix (``R = 2^lg_rows``, ``S = 2^lg_cols``).

    Records are stored column-major: element ``(i, j)`` at address
    ``i + R*j``; the transpose sends it to ``j + S*i``.  On address bits
    this is a left-rotation by ``lg_cols``: the ``lg_rows`` low bits
    (``i``) move to the top, the ``lg_cols`` high bits (``j``) drop to
    the bottom.
    """
    n = lg_rows + lg_cols
    target_of = [(k + lg_cols) % n if k < lg_rows else k - lg_rows for k in range(n)]
    return BPCPermutation(target_of)


def bit_reversal(n: int) -> BPCPermutation:
    """Bit-reversal: address bit ``k`` maps to bit ``n-1-k`` (FFT staging)."""
    return BPCPermutation([n - 1 - k for k in range(n)])


def vector_reversal(n: int) -> BMMCPermutation:
    """``x -> N-1-x``: identity matrix with an all-ones complement vector."""
    return BMMCPermutation(BitMatrix.identity(n), (1 << n) - 1, validate=False)


def hypercube_exchange(n: int, dimension_mask: int) -> BMMCPermutation:
    """Exchange across the hypercube dimensions set in ``dimension_mask``."""
    if dimension_mask >> n:
        raise ValidationError(f"dimension mask must fit in {n} bits")
    return BMMCPermutation(BitMatrix.identity(n), dimension_mask, validate=False)


def gray_code(n: int) -> BMMCPermutation:
    """The standard binary-reflected Gray code ``y = x (+) (x >> 1)``.

    Its characteristic matrix is unit upper bidiagonal
    (``y_i = x_i (+) x_{i+1}``), hence unit upper triangular, hence MRC
    for every memory size -- exactly the paper's Section 1 example.
    """
    a = np.eye(n, dtype=np.uint8)
    for i in range(n - 1):
        a[i, i + 1] = 1
    return BMMCPermutation(BitMatrix(a), 0, validate=False)


def gray_code_inverse(n: int) -> BMMCPermutation:
    """Inverse Gray code: ``x_i = y_i (+) y_{i+1} (+) ... (+) y_{n-1}``.

    Characteristic matrix is the full unit upper-triangular matrix of
    ones -- also MRC.
    """
    a = np.triu(np.ones((n, n), dtype=np.uint8))
    return BMMCPermutation(BitMatrix(a), 0, validate=False)


def perfect_shuffle(n: int, amount: int = 1) -> BPCPermutation:
    """Rotate address bits left by ``amount`` (the perfect shuffle)."""
    amount %= max(n, 1)
    return BPCPermutation([(k + amount) % n for k in range(n)])


def field_exchange(n: int, low_width: int, high_width: int, offset: int = 0) -> BPCPermutation:
    """Exchange two adjacent bit fields (matrix-reblocking style).

    Bits ``[offset, offset+low_width)`` and
    ``[offset+low_width, offset+low_width+high_width)`` swap as whole
    fields; all other bits stay put.
    """
    if offset + low_width + high_width > n:
        raise ValidationError("fields exceed the address width")
    target_of = list(range(n))
    for k in range(low_width):
        target_of[offset + k] = offset + high_width + k
    for k in range(high_width):
        target_of[offset + low_width + k] = offset + k
    return BPCPermutation(target_of)


def complement_permutation(n: int, complement: int) -> BMMCPermutation:
    """Pure complement: ``y = x (+) c``."""
    return BMMCPermutation(BitMatrix.identity(n), complement, validate=False)


def z_order(n: int) -> BPCPermutation:
    """Z-order (Morton) interleaving of a 2-D index pair.

    The address holds ``(i, j)`` as low/high halves (``n`` even); the
    target interleaves their bits: ``i``-bit ``k`` to position ``2k``,
    ``j``-bit ``k`` to ``2k + 1``.  Converts row-of-halves layout to the
    cache/disk-friendly Morton curve -- a BPC permutation.
    """
    if n % 2:
        raise ValidationError("z_order needs an even number of address bits")
    half = n // 2
    target_of = [0] * n
    for k in range(half):
        target_of[k] = 2 * k          # i bits
        target_of[half + k] = 2 * k + 1  # j bits
    return BPCPermutation(target_of)


def z_order_inverse(n: int) -> BPCPermutation:
    """De-interleave a Morton-ordered address back to ``(i, j)`` halves."""
    return z_order(n).inverse()


def matrix_reblocking(
    lg_rows: int, lg_cols: int, lg_tile_rows: int, lg_tile_cols: int
) -> BPCPermutation:
    """Convert a column-major ``R x S`` matrix to a tiled layout.

    Source address of element ``(i, j)`` is ``i + R*j``; the target
    layout stores ``T x U`` tiles (``T = 2^lg_tile_rows``,
    ``U = 2^lg_tile_cols``) contiguously, column-major within each tile
    and tile-column-major across tiles.  On address bits this reorders
    the four fields ``[i_lo | i_hi | j_lo | j_hi]`` to
    ``[i_lo | j_lo | i_hi | j_hi]`` -- the matrix-reblocking BPC
    permutation Section 1 lists among the common special cases.
    """
    if not (0 <= lg_tile_rows <= lg_rows and 0 <= lg_tile_cols <= lg_cols):
        raise ValidationError("tile must divide the matrix dimensions")
    n = lg_rows + lg_cols
    t, u = lg_tile_rows, lg_tile_cols
    target_of = list(range(n))
    # i_lo: bits [0, t) stay put.
    # i_hi: bits [t, lg_rows) move up past j_lo.
    for k in range(t, lg_rows):
        target_of[k] = k + u
    # j_lo: bits [lg_rows, lg_rows + u) drop down next to i_lo.
    for k in range(lg_rows, lg_rows + u):
        target_of[k] = t + (k - lg_rows)
    # j_hi: bits [lg_rows + u, n) stay put.
    return BPCPermutation(target_of)


def permuted_gray_code(n: int, target_of: list[int]) -> BMMCPermutation:
    """Section 6's detection example: ``Pi G Pi^T`` -- "a standard Gray code
    with all bits permuted the same".

    BMMC but generally not MRC, which is why run-time detection matters:
    a programmer would not recognize it as a fast class.
    """
    pi = BitMatrix.permutation(target_of)
    g = gray_code(n).matrix
    return BMMCPermutation(pi @ g @ pi.T, 0, validate=False)
