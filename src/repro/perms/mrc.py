"""MRC (memory-rearrangement/complement) permutations.

The characteristic-matrix form (Table 1):

    ``[[alpha, beta], [0, delta]]`` with ``alpha`` (``m x m``) and
    ``delta`` (``(n-m) x (n-m)``) nonsingular.

Each memoryload maps wholesale onto one target memoryload (records that
start together stay together), which is why one pass of striped reads
and striped writes suffices.  Theorem 18 closure (composition, inverse)
is exercised by the tests through :class:`BMMCPermutation` composition
plus this predicate.
"""

from __future__ import annotations

from repro.bits import linalg
from repro.bits.colops import is_mrc_form
from repro.bits.matrix import BitMatrix
from repro.errors import NotInClassError
from repro.perms.bmmc import BMMCPermutation

__all__ = ["is_mrc", "memoryload_mapping", "require_mrc"]


def is_mrc(perm_or_matrix, m: int) -> bool:
    """Whether a BMMC permutation (or bare matrix) is MRC for memory ``2^m``."""
    matrix = _matrix_of(perm_or_matrix)
    return is_mrc_form(matrix, m)


def require_mrc(perm: BMMCPermutation, m: int) -> None:
    if not is_mrc(perm, m):
        raise NotInClassError(
            "permutation is not MRC: the lower-left (n-m) x m block of its "
            "characteristic matrix must be zero with nonsingular diagonal blocks"
        )


def memoryload_mapping(perm: BMMCPermutation, m: int) -> "BMMCPermutation":
    """The induced permutation on memoryload numbers.

    For an MRC permutation, target memoryload = ``delta * ml (+) c_hi``
    where ``delta`` is the trailing block and ``c_hi`` the top ``n-m``
    complement bits; this is itself a BMMC permutation on ``n-m`` bits.
    """
    require_mrc(perm, m)
    n = perm.n
    delta = perm.matrix[m:n, m:n]
    c_hi = perm.complement >> m
    return BMMCPermutation(delta, c_hi, validate=False)


def _matrix_of(perm_or_matrix) -> BitMatrix:
    if isinstance(perm_or_matrix, BMMCPermutation):
        return perm_or_matrix.matrix
    if isinstance(perm_or_matrix, BitMatrix):
        return perm_or_matrix
    raise NotInClassError(f"expected BMMCPermutation or BitMatrix, got {type(perm_or_matrix)}")
