"""MLD (memoryload-dispersal) permutations -- the paper's new subclass.

The characteristic matrix, blocked by rows ``[0,b) / [b,m) / [m,n)`` and
columns ``[0,m) / [m,n)``:

    ``[[*,     *],
       [mu,    *],
       [gamma, *]]``   subject to   ``ker mu <= ker gamma``   (eq. 4).

Consequences proved in Section 3 and checked by the tests here:

* Lemma 12 -- the leading ``m x m`` submatrix is nonsingular;
* Lemma 13 -- each source memoryload maps onto exactly ``M/B`` relative
  block numbers, ``B`` records each (full target blocks);
* Lemma 14 -- records sharing a relative block number share a target
  memoryload (the kernel condition, operationally);
* Lemma 16 -- ``rank gamma <= m - b``;
* Theorem 15 -- one pass suffices (striped reads, independent writes).

The membership test is the two-step procedure of Section 6: compute a
basis of ``ker mu`` (exactly ``b`` vectors, else not MLD) and check
``gamma`` kills each basis vector.
"""

from __future__ import annotations

from repro.bits import linalg
from repro.bits.colops import is_mld_form
from repro.bits.matrix import BitMatrix
from repro.errors import NotInClassError
from repro.perms.bmmc import BMMCPermutation

__all__ = [
    "is_mld",
    "kernel_condition_holds",
    "mld_block_structure",
    "require_mld",
]


def mld_block_structure(matrix: BitMatrix, b: int, m: int) -> tuple[BitMatrix, BitMatrix]:
    """The pair ``(mu, gamma)``: rows ``[b,m)`` and ``[m,n)`` of columns ``[0,m)``."""
    n = matrix.num_rows
    return matrix[b:m, 0:m], matrix[m:n, 0:m]


def kernel_condition_holds(matrix: BitMatrix, b: int, m: int) -> bool:
    """Eq. 4 check via Section 6's basis procedure.

    ``dim(ker mu) = b`` exactly (i.e. ``rank mu = m - b``), and every
    basis vector of ``ker mu`` lies in ``ker gamma``.
    """
    mu, gamma = mld_block_structure(matrix, b, m)
    basis = linalg.kernel_basis(mu)
    if basis.num_cols != b:
        return False
    if gamma.num_rows == 0 or basis.num_cols == 0:
        return True
    return (gamma @ basis).is_zero


def is_mld(perm_or_matrix, b: int, m: int) -> bool:
    """Whether a BMMC permutation (or bare matrix) is MLD."""
    if isinstance(perm_or_matrix, BMMCPermutation):
        matrix = perm_or_matrix.matrix
    elif isinstance(perm_or_matrix, BitMatrix):
        matrix = perm_or_matrix
    else:
        raise NotInClassError(f"expected BMMCPermutation or BitMatrix, got {type(perm_or_matrix)}")
    return is_mld_form(matrix, b, m)


def require_mld(perm: BMMCPermutation, b: int, m: int) -> None:
    if not is_mld(perm, b, m):
        raise NotInClassError(
            "permutation is not MLD: the kernel condition ker(mu) <= ker(gamma) "
            "(eq. 4 of the paper) fails or the matrix is singular"
        )
