"""Permutation classes of the paper: BMMC and its subclasses.

The hierarchy (Table 1 plus the new MLD class of Section 3):

* **BMMC** -- ``y = A x (+) c`` with ``A`` nonsingular over GF(2);
* **BPC** -- ``A`` is a permutation matrix (bit-permute/complement);
* **MRC** -- lower-left ``(n-m) x m`` block of ``A`` is zero, leading and
  trailing diagonal blocks nonsingular; one pass, striped both ways;
* **MLD** -- the kernel condition ``ker mu <= ker gamma`` holds
  (eq. 4); one pass, striped reads + independent writes.

Composition follows the paper's convention (Lemma 1 / Corollary 2):
``compose(Z, Y)`` performs ``Y`` first, and its characteristic matrix is
the product ``Z Y``.
"""

from repro.perms.base import ExplicitPermutation, Permutation, identity_permutation
from repro.perms.bmmc import BMMCPermutation
from repro.perms.bpc import BPCPermutation, cross_rank, k_cross_rank
from repro.perms.mrc import is_mrc, memoryload_mapping
from repro.perms.mld import is_mld, kernel_condition_holds, mld_block_structure
from repro.perms.classify import PermClass, classify, classify_matrix, fit_bmmc
from repro.perms import library

__all__ = [
    "Permutation",
    "ExplicitPermutation",
    "identity_permutation",
    "BMMCPermutation",
    "BPCPermutation",
    "cross_rank",
    "k_cross_rank",
    "is_mrc",
    "memoryload_mapping",
    "is_mld",
    "kernel_condition_holds",
    "mld_block_structure",
    "PermClass",
    "classify",
    "classify_matrix",
    "fit_bmmc",
    "library",
]
