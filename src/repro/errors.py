"""Exception hierarchy for the BMMC reproduction library.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch library failures without masking programming errors
such as :class:`TypeError`.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ValidationError",
    "DimensionError",
    "SingularMatrixError",
    "NotInClassError",
    "DiskConflictError",
    "MemoryCapacityError",
    "BlockStateError",
    "DetectionError",
    "PlanError",
]


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ValidationError(ReproError, ValueError):
    """An argument failed validation (bad shape, range, or structure)."""


class DimensionError(ValidationError):
    """Operands have incompatible dimensions."""


class SingularMatrixError(ReproError, ValueError):
    """A matrix required to be nonsingular over GF(2) is singular."""


class NotInClassError(ReproError, ValueError):
    """A permutation does not belong to the class an algorithm requires.

    Raised, for example, when the one-pass MLD performer is handed a
    characteristic matrix that violates the kernel condition (eq. 4 of
    the paper).
    """


class DiskConflictError(ReproError, ValueError):
    """A single parallel I/O requested two blocks on the same disk.

    The Vitter-Shriver model transfers *at most one block per disk* in a
    parallel I/O operation; violating that is an algorithm bug, not a
    recoverable condition.
    """


class MemoryCapacityError(ReproError, RuntimeError):
    """An I/O operation would exceed the M-record memory capacity."""


class BlockStateError(ReproError, RuntimeError):
    """A block was read while empty or written while occupied.

    The simulator's *simple I/O* discipline (Lemma 4 of the paper)
    requires reads to consume blocks and writes to fill empty ones.
    """


class DetectionError(ReproError, RuntimeError):
    """Run-time BMMC detection was asked something it cannot answer."""


class PlanError(ValidationError):
    """An I/O plan is malformed or not eligible for fused execution.

    The fast engine requires that within one pass no block is touched
    twice in an order-dependent way (a consuming read after another read
    of the same block, two writes to one block, or a read and a write of
    the same block); such plans must run on the strict engine.
    """
