"""Exception hierarchy for the BMMC reproduction library.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch library failures without masking programming errors
such as :class:`TypeError`.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ValidationError",
    "DimensionError",
    "SingularMatrixError",
    "NotInClassError",
    "DiskConflictError",
    "MemoryCapacityError",
    "BlockStateError",
    "DetectionError",
    "PlanError",
    "TransientError",
    "InjectedFault",
    "RequestCancelled",
    "DeadlineExceeded",
    "RequestRejected",
    "ServiceClosedError",
    "CircuitOpenError",
]


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ValidationError(ReproError, ValueError):
    """An argument failed validation (bad shape, range, or structure)."""


class DimensionError(ValidationError):
    """Operands have incompatible dimensions."""


class SingularMatrixError(ReproError, ValueError):
    """A matrix required to be nonsingular over GF(2) is singular."""


class NotInClassError(ReproError, ValueError):
    """A permutation does not belong to the class an algorithm requires.

    Raised, for example, when the one-pass MLD performer is handed a
    characteristic matrix that violates the kernel condition (eq. 4 of
    the paper).
    """


class DiskConflictError(ReproError, ValueError):
    """A single parallel I/O requested two blocks on the same disk.

    The Vitter-Shriver model transfers *at most one block per disk* in a
    parallel I/O operation; violating that is an algorithm bug, not a
    recoverable condition.
    """


class MemoryCapacityError(ReproError, RuntimeError):
    """An I/O operation would exceed the M-record memory capacity."""


class BlockStateError(ReproError, RuntimeError):
    """A block was read while empty or written while occupied.

    The simulator's *simple I/O* discipline (Lemma 4 of the paper)
    requires reads to consume blocks and writes to fill empty ones.
    """


class DetectionError(ReproError, RuntimeError):
    """Run-time BMMC detection was asked something it cannot answer."""


class PlanError(ValidationError):
    """An I/O plan is malformed or not eligible for fused execution.

    The fast engine requires that within one pass no block is touched
    twice in an order-dependent way (a consuming read after another read
    of the same block, two writes to one block, or a read and a write of
    the same block); such plans must run on the strict engine.
    """


class TransientError(ReproError, RuntimeError):
    """A failure classified as *transient*: retrying the same request may
    succeed.

    The service's retry machinery only re-attempts failures of this
    class (or exceptions carrying a truthy ``transient`` attribute);
    everything else -- model-rule violations, class preconditions, bad
    arguments -- is deterministic and retrying would just repeat it.
    """


class InjectedFault(TransientError):
    """A deterministic fault fired by a :class:`~repro.serve.FaultPlan`.

    Chaos-testing errors are transient by definition: the fault plan's
    seeded RNG may decide differently on the next attempt, which is
    exactly the failure shape retry/backoff exists for.
    """


class RequestCancelled(ReproError, RuntimeError):
    """A request was cancelled cooperatively before it completed.

    Raised from :meth:`~repro.pdm.cancel.CancellationToken.check` at
    pass/shard boundaries and cache latch waits; the executing worker
    unwinds promptly and the partial state is discarded (per-request
    systems are reset before every attempt).
    """


class DeadlineExceeded(RequestCancelled):
    """A request's deadline expired; cancellation was deadline-driven."""


class RequestRejected(ReproError, RuntimeError):
    """Admission control shed this request (bounded queue at capacity)."""


class ServiceClosedError(ValidationError):
    """A request was submitted to (or stranded in) a closed service."""


class CircuitOpenError(ReproError, RuntimeError):
    """A plan key is quarantined by the per-key circuit breaker.

    Repeated compile failures for one key open its circuit; further
    requests for that key fail fast instead of burning a worker on a
    compile that is expected to fail, until the cooldown elapses and a
    probe request is let through.
    """
