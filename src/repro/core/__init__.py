"""The paper's contribution: algorithms, bounds, and detection.

* :mod:`repro.core.mrc_algorithm` / :mod:`repro.core.mld_algorithm` --
  the one-pass performers (Table 1 row MRC; Theorem 15);
* :mod:`repro.core.factoring` -- the Section 5 factorization
  ``A = F E_g^-1 S_g^-1 ... E_1^-1 S_1^-1 P^-1``;
* :mod:`repro.core.bmmc_algorithm` -- the asymptotically optimal BMMC
  algorithm (Theorem 21);
* :mod:`repro.core.general` -- the general-permutation baseline;
* :mod:`repro.core.bounds` -- every closed-form bound in the paper;
* :mod:`repro.core.potential` -- the Aggarwal-Vitter potential argument,
  executable;
* :mod:`repro.core.detect` -- Section 6 run-time detection;
* :mod:`repro.core.runner` -- classification-driven dispatch.
"""

from repro.core.mrc_algorithm import perform_mrc_pass, plan_mrc_pass
from repro.core.mld_algorithm import perform_mld_pass, plan_mld_pass
from repro.core.inverse_mld import (
    is_inverse_mld,
    perform_inverse_mld_pass,
    plan_inverse_mld_pass,
)
from repro.core.factoring import Factorization, factor_bmmc
from repro.core.bmmc_algorithm import (
    PlanStep,
    perform_bmmc,
    plan_bmmc_io,
    plan_bmmc_passes,
)
from repro.core.general import perform_general_sort, plan_general_sort
from repro.core import bounds
from repro.core.potential import PotentialTracker, compute_potential, f
from repro.core.detect import DetectionResult, detect_bmmc, store_target_vector
from repro.core.runner import RunReport, perform_permutation

__all__ = [
    "perform_mrc_pass",
    "plan_mrc_pass",
    "perform_mld_pass",
    "plan_mld_pass",
    "is_inverse_mld",
    "perform_inverse_mld_pass",
    "plan_inverse_mld_pass",
    "Factorization",
    "factor_bmmc",
    "PlanStep",
    "perform_bmmc",
    "plan_bmmc_io",
    "plan_bmmc_passes",
    "perform_general_sort",
    "plan_general_sort",
    "bounds",
    "PotentialTracker",
    "compute_potential",
    "f",
    "DetectionResult",
    "detect_bmmc",
    "store_target_vector",
    "RunReport",
    "perform_permutation",
]
