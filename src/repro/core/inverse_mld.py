"""Inverse-MLD permutations: the Section 7 one-pass extension.

The conclusions note that "the inverse of any one-pass permutation is a
one-pass permutation".  For MLD this dualizes Theorem 15 exactly: if
``A^-1`` satisfies the kernel condition, then for each *target*
memoryload the needed source records occupy exactly ``M/B`` full source
blocks spread evenly over the disks (Lemma 13 applied to ``A^-1``), so
one pass of *independent reads* and *striped writes* suffices -- the
mirror image of the MLD discipline.

This extends the paper's one-pass catalog: MRC (striped/striped), MLD
(striped/independent), inverse-MLD (independent/striped).
"""

from __future__ import annotations

import numpy as np

from repro.bits import linalg
from repro.bits.colops import is_mld_form
from repro.bits.matrix import BitMatrix
from repro.errors import NotInClassError
from repro.pdm.system import ParallelDiskSystem
from repro.perms.bmmc import BMMCPermutation

__all__ = [
    "is_inverse_mld",
    "perform_inverse_mld_pass",
    "require_inverse_mld",
    "perform_mld_composition_pass",
]


def is_inverse_mld(perm_or_matrix, b: int, m: int) -> bool:
    """Whether the permutation's *inverse* is MLD."""
    if isinstance(perm_or_matrix, BMMCPermutation):
        matrix = perm_or_matrix.matrix
    elif isinstance(perm_or_matrix, BitMatrix):
        matrix = perm_or_matrix
    else:
        raise NotInClassError(
            f"expected BMMCPermutation or BitMatrix, got {type(perm_or_matrix)}"
        )
    if not linalg.is_nonsingular(matrix):
        return False
    return is_mld_form(linalg.inverse(matrix), b, m)


def require_inverse_mld(perm: BMMCPermutation, b: int, m: int) -> None:
    if not is_inverse_mld(perm, b, m):
        raise NotInClassError(
            "permutation is not inverse-MLD: its inverse characteristic "
            "matrix violates the kernel condition (eq. 4)"
        )


def perform_inverse_mld_pass(
    system: ParallelDiskSystem,
    perm: BMMCPermutation,
    source_portion: int = 0,
    target_portion: int = 1,
    label: str = "inv-mld",
    check_class: bool = True,
) -> None:
    """One pass of independent reads and striped writes.

    For each target memoryload: compute the source addresses via the
    inverse map; Lemma 13 on ``A^-1`` guarantees they form ``M/B`` full
    source blocks, ``M/BD`` per disk; read them with ``M/BD``
    independent parallel reads, rearrange in memory, and write the
    target memoryload with ``M/BD`` striped writes.  Total: ``2N/BD``
    parallel I/Os.
    """
    g = system.geometry
    if check_class:
        require_inverse_mld(perm, g.b, g.m)
    inverse = perm.inverse()
    blocks_per_ml = g.blocks_per_memoryload
    reads_per_ml = g.stripes_per_memoryload
    system.stats.begin_pass(label)
    try:
        for ml in range(g.num_memoryloads):
            targets = g.memoryload_addresses(ml).astype(np.uint64)
            sources = np.asarray(inverse.apply_array(targets), dtype=np.int64)
            order = np.argsort(sources)
            sorted_sources = sources[order]

            per_block = sorted_sources.reshape(blocks_per_ml, g.B)
            block_ids = per_block[:, 0] >> g.b
            if not (per_block >> g.b == block_ids[:, None]).all():
                raise NotInClassError(
                    "target memoryload does not gather from full source "
                    "blocks; the inverse kernel condition is violated"
                )
            disks = g.block_disk(block_ids)
            if not (np.bincount(disks, minlength=g.D) == reads_per_ml).all():
                raise NotInClassError("source blocks not spread evenly over disks")

            # Independent reads: one block per disk per parallel read.
            disk_order = np.argsort(disks, kind="stable")
            grouped = block_ids[disk_order].reshape(g.D, reads_per_ml)
            gathered = np.empty((blocks_per_ml, g.B), dtype=np.int64)
            ordered_ids = grouped.T  # read i takes column i: one block per disk
            position_of = {int(bid): i for i, bid in enumerate(block_ids[disk_order])}
            for i in range(reads_per_ml):
                values = system.read_blocks(source_portion, ordered_ids[i])
                for bid, block_vals in zip(ordered_ids[i], values):
                    gathered[position_of[int(bid)]] = block_vals

            # Arrange records into target-address order and write striped.
            # gathered rows follow block_ids[disk_order]; flatten back to
            # per-source-address order, then to target order.
            flat_sources = (
                (block_ids[disk_order][:, None] << g.b)
                + np.arange(g.B, dtype=np.int64)[None, :]
            ).reshape(-1)
            flat_values = gathered.reshape(-1)
            # target of each gathered record:
            record_targets = np.asarray(
                perm.apply_array(flat_sources.astype(np.uint64)), dtype=np.int64
            )
            out = np.empty(g.M, dtype=np.int64)
            out[record_targets - ml * g.M] = flat_values
            system.write_memoryload(target_portion, ml, out)
    finally:
        system.stats.end_pass()


def perform_mld_composition_pass(
    system: ParallelDiskSystem,
    y_perm: BMMCPermutation,
    x_perm: BMMCPermutation,
    source_portion: int = 0,
    target_portion: int = 1,
    label: str = "mld-o-mldinv",
) -> BMMCPermutation:
    """Perform ``Y o X^-1`` in one pass, for MLD matrices ``Y`` and ``X``.

    Section 7: "the composition of an MLD permutation with the inverse
    of an MLD permutation is a one-pass permutation."  Operationally:
    both ``X`` and ``Y`` disperse the same *intermediate* memoryload
    space, so for each intermediate memoryload the pass

    1. independent-reads the ``M/B`` full source blocks that ``X`` sent
       that memoryload to (Lemma 13 on ``X``, read backwards),
    2. permutes the ``M`` records in memory, and
    3. independent-writes the ``M/B`` full target blocks that ``Y``
       disperses the memoryload to (Lemma 13 on ``Y``),

    using ``2 M/BD`` parallel I/Os per memoryload -- one pass in total,
    with *both* sides independent (completing the discipline catalog:
    MRC s/s, MLD s/i, inverse-MLD i/s, MLD o MLD^-1 i/i).

    Returns the composed :class:`BMMCPermutation` that was performed.
    """
    from repro.perms.mld import require_mld

    g = system.geometry
    require_mld(x_perm, g.b, g.m)
    require_mld(y_perm, g.b, g.m)
    composed = y_perm.compose(x_perm.inverse())
    blocks_per_ml = g.blocks_per_memoryload
    ios_per_side = g.stripes_per_memoryload
    system.stats.begin_pass(label)
    try:
        for ml in range(g.num_memoryloads):
            intermediate = g.memoryload_addresses(ml).astype(np.uint64)
            # where X put this memoryload (= where we must read from)
            sources = np.asarray(x_perm.apply_array(intermediate), dtype=np.int64)
            # where Y sends this memoryload (= where we must write to)
            targets = np.asarray(y_perm.apply_array(intermediate), dtype=np.int64)

            src_order = np.argsort(sources)
            src_blocks = sources[src_order].reshape(blocks_per_ml, g.B)
            src_ids = src_blocks[:, 0] >> g.b
            if (src_blocks >> g.b != src_ids[:, None]).any():
                raise NotInClassError("X does not disperse into full blocks")
            src_disks = g.block_disk(src_ids)
            if not (np.bincount(src_disks, minlength=g.D) == ios_per_side).all():
                raise NotInClassError("X's blocks not spread evenly over disks")

            # Independent reads, one block per disk per operation.
            order_by_disk = np.argsort(src_disks, kind="stable")
            ids_by_disk = src_ids[order_by_disk]
            read_ids = ids_by_disk.reshape(g.D, ios_per_side)
            block_rows = np.empty((blocks_per_ml, g.B), dtype=np.int64)
            for i in range(ios_per_side):
                vals = system.read_blocks(source_portion, read_ids[:, i])
                block_rows[i::ios_per_side] = vals  # row order = ids_by_disk order

            # Reassemble records into intermediate order: record with
            # intermediate address a sits at source address X(a).
            sort_rows = np.argsort(ids_by_disk)
            sorted_rows = block_rows[sort_rows]
            sorted_ids = ids_by_disk[sort_rows]
            rows = np.searchsorted(sorted_ids, sources >> g.b)
            values = sorted_rows[rows, sources & (g.B - 1)]

            # Cluster by target block and independent-write.
            tgt_order = np.argsort(targets)
            tgt_blocks = targets[tgt_order].reshape(blocks_per_ml, g.B)
            tgt_ids = tgt_blocks[:, 0] >> g.b
            if (tgt_blocks >> g.b != tgt_ids[:, None]).any():
                raise NotInClassError("Y does not disperse into full blocks")
            tgt_disks = g.block_disk(tgt_ids)
            if not (np.bincount(tgt_disks, minlength=g.D) == ios_per_side).all():
                raise NotInClassError("Y's blocks not spread evenly over disks")
            sorted_values = values[tgt_order].reshape(blocks_per_ml, g.B)
            order_by_disk = np.argsort(tgt_disks, kind="stable")
            write_ids = tgt_ids[order_by_disk].reshape(g.D, ios_per_side)
            write_vals = sorted_values[order_by_disk].reshape(g.D, ios_per_side, g.B)
            for i in range(ios_per_side):
                system.write_blocks(target_portion, write_ids[:, i], write_vals[:, i])
    finally:
        system.stats.end_pass()
    return composed
