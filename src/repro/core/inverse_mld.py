"""Inverse-MLD permutations: the Section 7 one-pass extension.

The conclusions note that "the inverse of any one-pass permutation is a
one-pass permutation".  For MLD this dualizes Theorem 15 exactly: if
``A^-1`` satisfies the kernel condition, then for each *target*
memoryload the needed source records occupy exactly ``M/B`` full source
blocks spread evenly over the disks (Lemma 13 applied to ``A^-1``), so
one pass of *independent reads* and *striped writes* suffices -- the
mirror image of the MLD discipline.

This extends the paper's one-pass catalog: MRC (striped/striped), MLD
(striped/independent), inverse-MLD (independent/striped).  Both
algorithms here are planners emitting :class:`~repro.pdm.schedule.IOPlan`
objects; the ``perform_*`` wrappers execute them under either engine.
"""

from __future__ import annotations

import numpy as np

from repro.bits import linalg
from repro.bits.colops import is_mld_form
from repro.bits.matrix import BitMatrix
from repro.errors import NotInClassError
from repro.pdm.cache import PlanCache, cached_execute, plan_key
from repro.pdm.engine import execute_plan
from repro.pdm.geometry import DiskGeometry
from repro.pdm.schedule import IOPlan, PlanBuilder
from repro.pdm.system import ParallelDiskSystem
from repro.perms.bmmc import BMMCPermutation

__all__ = [
    "is_inverse_mld",
    "plan_inverse_mld_pass",
    "perform_inverse_mld_pass",
    "require_inverse_mld",
    "plan_mld_composition_pass",
    "perform_mld_composition_pass",
]


def is_inverse_mld(perm_or_matrix, b: int, m: int) -> bool:
    """Whether the permutation's *inverse* is MLD."""
    if isinstance(perm_or_matrix, BMMCPermutation):
        matrix = perm_or_matrix.matrix
    elif isinstance(perm_or_matrix, BitMatrix):
        matrix = perm_or_matrix
    else:
        raise NotInClassError(
            f"expected BMMCPermutation or BitMatrix, got {type(perm_or_matrix)}"
        )
    if not linalg.is_nonsingular(matrix):
        return False
    return is_mld_form(linalg.inverse(matrix), b, m)


def require_inverse_mld(perm: BMMCPermutation, b: int, m: int) -> None:
    if not is_inverse_mld(perm, b, m):
        raise NotInClassError(
            "permutation is not inverse-MLD: its inverse characteristic "
            "matrix violates the kernel condition (eq. 4)"
        )


def _slot_of_block(g: DiskGeometry, read_order_ids: np.ndarray, slots: np.ndarray):
    """Map source addresses to stream slots given blocks in read order.

    ``read_order_ids`` lists the block ids in the order they were read;
    ``slots`` is the concatenation of the slot arrays those reads
    returned (so block ``j`` of the read order owns slots
    ``slots[j*B : (j+1)*B]``).  Returns a vectorized address-to-slot map.
    """
    bases = slots[:: g.B]
    sort_idx = np.argsort(read_order_ids)
    sorted_ids = read_order_ids[sort_idx]
    sorted_bases = bases[sort_idx]

    def lookup(addresses: np.ndarray) -> np.ndarray:
        rows = np.searchsorted(sorted_ids, g.block_of(addresses))
        return sorted_bases[rows] + g.offset(addresses)

    return lookup


def plan_inverse_mld_pass(
    geometry: DiskGeometry,
    perm: BMMCPermutation,
    source_portion: int = 0,
    target_portion: int = 1,
    label: str = "inv-mld",
    check_class: bool = True,
) -> IOPlan:
    """Plan one pass of independent reads and striped writes.

    For each target memoryload: compute the source addresses via the
    inverse map; Lemma 13 on ``A^-1`` guarantees they form ``M/B`` full
    source blocks, ``M/BD`` per disk; read them with ``M/BD``
    independent parallel reads, rearrange in memory (slot permutation),
    and write the target memoryload with ``M/BD`` striped writes.
    Total: ``2N/BD`` parallel I/Os.
    """
    g = geometry
    if check_class:
        require_inverse_mld(perm, g.b, g.m)
    inverse = perm.inverse()
    blocks_per_ml = g.blocks_per_memoryload
    reads_per_ml = g.stripes_per_memoryload
    builder = PlanBuilder(g)
    builder.begin_pass(label)
    for ml in range(g.num_memoryloads):
        targets = g.memoryload_addresses(ml).astype(np.uint64)
        sources = np.asarray(inverse.apply_array(targets), dtype=np.int64)
        order = np.argsort(sources)
        sorted_sources = sources[order]

        per_block = sorted_sources.reshape(blocks_per_ml, g.B)
        block_ids = per_block[:, 0] >> g.b
        if not (per_block >> g.b == block_ids[:, None]).all():
            raise NotInClassError(
                "target memoryload does not gather from full source "
                "blocks; the inverse kernel condition is violated"
            )
        disks = g.block_disk(block_ids)
        if not (np.bincount(disks, minlength=g.D) == reads_per_ml).all():
            raise NotInClassError("source blocks not spread evenly over disks")

        # Independent reads: one block per disk per parallel read.
        disk_order = np.argsort(disks, kind="stable")
        grouped = block_ids[disk_order].reshape(g.D, reads_per_ml)
        slot_parts = [builder.read(source_portion, grouped[:, i]) for i in range(reads_per_ml)]
        read_order_ids = grouped.T.reshape(-1)
        slot_of = _slot_of_block(g, read_order_ids, np.concatenate(slot_parts))

        # ``sources`` is aligned to ascending target addresses, so the
        # slot permutation below *is* the in-memory rearrangement.
        builder.write_memoryload(target_portion, ml, slot_of(sources))
    return builder.build()


def perform_inverse_mld_pass(
    system: ParallelDiskSystem,
    perm: BMMCPermutation,
    source_portion: int = 0,
    target_portion: int = 1,
    label: str = "inv-mld",
    check_class: bool = True,
    engine: str = "strict",
    optimize: bool = False,
    cache: PlanCache | None = None,
    stream_records=None,
    backend=None,
) -> None:
    """Perform an inverse-MLD permutation in one pass."""
    if cache is not None:
        key = plan_key(
            "inv-mld", system.geometry, perm.matrix, perm.complement,
            source_portion, target_portion, label,
            system.num_portions, system.simple_io,
        )
        cached_execute(
            system, cache, key,
            lambda: (
                plan_inverse_mld_pass(
                    system.geometry, perm, source_portion, target_portion,
                    label=label, check_class=check_class,
                ),
                None,
            ),
            engine=engine, optimize=optimize, stream_records=stream_records,
            backend=backend,
        )
        return
    plan = plan_inverse_mld_pass(
        system.geometry,
        perm,
        source_portion,
        target_portion,
        label=label,
        check_class=check_class,
    )
    execute_plan(
        system, plan, engine=engine, optimize=optimize,
        stream_records=stream_records, backend=backend,
    )


def plan_mld_composition_pass(
    geometry: DiskGeometry,
    y_perm: BMMCPermutation,
    x_perm: BMMCPermutation,
    source_portion: int = 0,
    target_portion: int = 1,
    label: str = "mld-o-mldinv",
) -> IOPlan:
    """Plan ``Y o X^-1`` in one pass, for MLD matrices ``Y`` and ``X``.

    Section 7: "the composition of an MLD permutation with the inverse
    of an MLD permutation is a one-pass permutation."  Operationally:
    both ``X`` and ``Y`` disperse the same *intermediate* memoryload
    space, so for each intermediate memoryload the pass

    1. independent-reads the ``M/B`` full source blocks that ``X`` sent
       that memoryload to (Lemma 13 on ``X``, read backwards),
    2. permutes the ``M`` records in memory (a slot permutation), and
    3. independent-writes the ``M/B`` full target blocks that ``Y``
       disperses the memoryload to (Lemma 13 on ``Y``),

    using ``2 M/BD`` parallel I/Os per memoryload -- one pass in total,
    with *both* sides independent (completing the discipline catalog:
    MRC s/s, MLD s/i, inverse-MLD i/s, MLD o MLD^-1 i/i).
    """
    from repro.perms.mld import require_mld

    g = geometry
    require_mld(x_perm, g.b, g.m)
    require_mld(y_perm, g.b, g.m)
    blocks_per_ml = g.blocks_per_memoryload
    ios_per_side = g.stripes_per_memoryload
    builder = PlanBuilder(g)
    builder.begin_pass(label)
    for ml in range(g.num_memoryloads):
        intermediate = g.memoryload_addresses(ml).astype(np.uint64)
        # where X put this memoryload (= where we must read from)
        sources = np.asarray(x_perm.apply_array(intermediate), dtype=np.int64)
        # where Y sends this memoryload (= where we must write to)
        targets = np.asarray(y_perm.apply_array(intermediate), dtype=np.int64)

        src_order = np.argsort(sources)
        src_blocks = sources[src_order].reshape(blocks_per_ml, g.B)
        src_ids = src_blocks[:, 0] >> g.b
        if (src_blocks >> g.b != src_ids[:, None]).any():
            raise NotInClassError("X does not disperse into full blocks")
        src_disks = g.block_disk(src_ids)
        if not (np.bincount(src_disks, minlength=g.D) == ios_per_side).all():
            raise NotInClassError("X's blocks not spread evenly over disks")

        # Independent reads, one block per disk per operation.
        order_by_disk = np.argsort(src_disks, kind="stable")
        read_ids = src_ids[order_by_disk].reshape(g.D, ios_per_side)
        slot_parts = [builder.read(source_portion, read_ids[:, i]) for i in range(ios_per_side)]
        slot_of = _slot_of_block(g, read_ids.T.reshape(-1), np.concatenate(slot_parts))
        # record with intermediate address a sits at source address X(a):
        slot_of_intermediate = slot_of(sources)

        # Cluster by target block and independent-write.
        tgt_order = np.argsort(targets)
        tgt_blocks = targets[tgt_order].reshape(blocks_per_ml, g.B)
        tgt_ids = tgt_blocks[:, 0] >> g.b
        if (tgt_blocks >> g.b != tgt_ids[:, None]).any():
            raise NotInClassError("Y does not disperse into full blocks")
        tgt_disks = g.block_disk(tgt_ids)
        if not (np.bincount(tgt_disks, minlength=g.D) == ios_per_side).all():
            raise NotInClassError("Y's blocks not spread evenly over disks")
        sorted_slots = slot_of_intermediate[tgt_order].reshape(blocks_per_ml, g.B)
        order_by_disk = np.argsort(tgt_disks, kind="stable")
        write_ids = tgt_ids[order_by_disk].reshape(g.D, ios_per_side)
        write_slots = sorted_slots[order_by_disk].reshape(g.D, ios_per_side, g.B)
        for i in range(ios_per_side):
            builder.write(
                target_portion, write_ids[:, i], write_slots[:, i].reshape(-1)
            )
    return builder.build()


def perform_mld_composition_pass(
    system: ParallelDiskSystem,
    y_perm: BMMCPermutation,
    x_perm: BMMCPermutation,
    source_portion: int = 0,
    target_portion: int = 1,
    label: str = "mld-o-mldinv",
    engine: str = "strict",
    optimize: bool = False,
    cache: PlanCache | None = None,
    stream_records=None,
    backend=None,
) -> BMMCPermutation:
    """Perform ``Y o X^-1`` in one pass; returns the composed permutation."""
    if cache is not None:
        key = plan_key(
            "mld-o-mldinv", system.geometry,
            y_perm.matrix, y_perm.complement, x_perm.matrix, x_perm.complement,
            source_portion, target_portion, label,
            system.num_portions, system.simple_io,
        )
        cached_execute(
            system, cache, key,
            lambda: (
                plan_mld_composition_pass(
                    system.geometry, y_perm, x_perm,
                    source_portion, target_portion, label=label,
                ),
                None,
            ),
            engine=engine, optimize=optimize, stream_records=stream_records,
            backend=backend,
        )
        return y_perm.compose(x_perm.inverse())
    plan = plan_mld_composition_pass(
        system.geometry, y_perm, x_perm, source_portion, target_portion, label=label
    )
    execute_plan(
        system, plan, engine=engine, optimize=optimize,
        stream_records=stream_records, backend=backend,
    )
    return y_perm.compose(x_perm.inverse())
