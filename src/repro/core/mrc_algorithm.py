"""One-pass MRC planner and performer (Table 1; Cormen [4], Section 1).

"Any MRC permutation can be performed by reading in a memoryload,
permuting its records in memory, and writing them out to a (possibly
different) memoryload number."  Reads and writes are both striped, so a
pass costs exactly ``2N/BD`` parallel I/Os, all striped.

Planning is pure: :func:`plan_mrc_pass` turns the permutation into an
:class:`~repro.pdm.schedule.IOPlan` without touching a simulator;
:func:`perform_mrc_pass` executes that plan under either engine.
"""

from __future__ import annotations

import numpy as np

from repro.errors import NotInClassError
from repro.pdm.cache import PlanCache, cached_execute, plan_key
from repro.pdm.engine import execute_plan
from repro.pdm.geometry import DiskGeometry
from repro.pdm.schedule import IOPlan, PlanBuilder
from repro.pdm.system import ParallelDiskSystem
from repro.perms.bmmc import BMMCPermutation
from repro.perms.mrc import require_mrc

__all__ = ["plan_mrc_pass", "perform_mrc_pass"]


def plan_mrc_pass(
    geometry: DiskGeometry,
    perm: BMMCPermutation,
    source_portion: int = 0,
    target_portion: int = 1,
    label: str = "mrc",
) -> IOPlan:
    """Plan an MRC permutation as one pass of striped reads and writes.

    Raises :class:`NotInClassError` if ``perm`` is not MRC for the
    geometry's memory size.
    """
    g = geometry
    require_mrc(perm, g.m)
    builder = PlanBuilder(g)
    builder.begin_pass(label)
    for ml in range(g.num_memoryloads):
        slots = builder.read_memoryload(source_portion, ml)
        addresses = g.memoryload_addresses(ml).astype(np.uint64)
        targets = np.asarray(perm.apply_array(addresses), dtype=np.int64)
        order = np.argsort(targets)
        sorted_targets = targets[order]
        target_ml = int(sorted_targets[0]) >> g.m
        # MRC guarantee: the whole memoryload lands in one memoryload.
        if int(sorted_targets[-1]) >> g.m != target_ml:
            raise NotInClassError(
                "memoryload scattered across target memoryloads; "
                "matrix is not MRC despite passing the form check"
            )
        builder.write_memoryload(target_portion, target_ml, slots[order])
    return builder.build()


def perform_mrc_pass(
    system: ParallelDiskSystem,
    perm: BMMCPermutation,
    source_portion: int = 0,
    target_portion: int = 1,
    label: str = "mrc",
    engine: str = "strict",
    optimize: bool = False,
    cache: PlanCache | None = None,
    stream_records=None,
    backend=None,
) -> None:
    """Perform an MRC permutation in one pass (striped reads and writes).

    ``cache`` reuses a compiled plan for repeated (geometry, matrix)
    workloads; ``optimize`` enables the plan-level rewrites;
    ``stream_records`` bounds the executor's host buffer.
    """
    if cache is not None:
        key = plan_key(
            "mrc", system.geometry, perm.matrix, perm.complement,
            source_portion, target_portion, label,
            system.num_portions, system.simple_io,
        )
        cached_execute(
            system, cache, key,
            lambda: (
                plan_mrc_pass(
                    system.geometry, perm, source_portion, target_portion, label=label
                ),
                None,
            ),
            engine=engine, optimize=optimize, stream_records=stream_records,
            backend=backend,
        )
        return
    plan = plan_mrc_pass(
        system.geometry, perm, source_portion, target_portion, label=label
    )
    execute_plan(
        system, plan, engine=engine, optimize=optimize,
        stream_records=stream_records, backend=backend,
    )
