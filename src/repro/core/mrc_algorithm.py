"""One-pass MRC performer (Table 1; Cormen [4] Section recalled in Section 1).

"Any MRC permutation can be performed by reading in a memoryload,
permuting its records in memory, and writing them out to a (possibly
different) memoryload number."  Reads and writes are both striped, so a
pass costs exactly ``2N/BD`` parallel I/Os, all striped.
"""

from __future__ import annotations

import numpy as np

from repro.errors import NotInClassError
from repro.pdm.system import ParallelDiskSystem
from repro.perms.bmmc import BMMCPermutation
from repro.perms.mrc import require_mrc

__all__ = ["perform_mrc_pass"]


def perform_mrc_pass(
    system: ParallelDiskSystem,
    perm: BMMCPermutation,
    source_portion: int = 0,
    target_portion: int = 1,
    label: str = "mrc",
) -> None:
    """Perform an MRC permutation in one pass (striped reads and writes).

    Raises :class:`NotInClassError` if ``perm`` is not MRC for the
    system's memory size.
    """
    g = system.geometry
    require_mrc(perm, g.m)
    system.stats.begin_pass(label)
    try:
        for ml in range(g.num_memoryloads):
            values = system.read_memoryload(source_portion, ml)
            addresses = g.memoryload_addresses(ml).astype(np.uint64)
            targets = np.asarray(perm.apply_array(addresses), dtype=np.int64)
            order = np.argsort(targets)
            sorted_targets = targets[order]
            target_ml = int(sorted_targets[0]) >> g.m
            # MRC guarantee: the whole memoryload lands in one memoryload.
            if int(sorted_targets[-1]) >> g.m != target_ml:
                raise NotInClassError(
                    "memoryload scattered across target memoryloads; "
                    "matrix is not MRC despite passing the form check"
                )
            system.write_memoryload(target_portion, target_ml, values[order])
    finally:
        system.stats.end_pass()
