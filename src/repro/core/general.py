"""General-permutation baseline: striped external merge sort.

Permuting is sorting by target address.  This baseline is the classic
PDM merge sort with *striped* layout: every run occupies consecutive
stripes, every read and write moves one full stripe (``D`` blocks, one
per disk), so every parallel I/O is maximally parallel and the pass
count is exact:

    ``1 + ceil(log_K(N/M))`` passes of ``2N/BD`` I/Os each,

with fan-in ``K = M/(BD) - 2`` (each open run holds one stripe buffer,
plus head-room for the output stripe).  That is the
``Theta((N/BD) lg(N/B) / lg(M/B))`` sorting shape of the Vitter-Shriver
general-permutation bound whenever ``BD << M``; their truly optimal
algorithm needs randomized placement (see DESIGN.md substitution note).

I/O fidelity: the plan contains exactly the reads and writes a
buffer-driven K-way merge issues -- a run's next stripe is fetched when
its buffer empties, the output stripe is flushed when it fills.  The
schedule is data-dependent, so :func:`plan_general_sort` takes the
source portion's record values and simulates the data flow pass by
pass (the hand-written performer derived the same schedule from peeked
keys); the data itself still moves through counted, memory-checked I/O
when the plan executes, and the resident-record peak stays at
``(K+1) * BD`` as in a real merge.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ValidationError
from repro.pdm.engine import execute_plan
from repro.pdm.geometry import DiskGeometry
from repro.pdm.schedule import IOPlan, PlanBuilder
from repro.pdm.system import ParallelDiskSystem
from repro.perms.base import Permutation

__all__ = ["plan_general_sort", "perform_general_sort", "GeneralSortPlan", "GeneralSortResult"]


@dataclass
class GeneralSortResult:
    passes: int
    fan_in: int
    final_portion: int
    parallel_ios: int


@dataclass
class GeneralSortPlan:
    """A planned external merge sort: the I/O plan plus its shape."""

    io_plan: IOPlan
    passes: int
    fan_in: int
    final_portion: int


@dataclass
class _Run:
    """A sorted run: ``length`` stripes starting at stripe ``start``."""

    start: int
    length: int


def plan_general_sort(
    geometry: DiskGeometry,
    perm: Permutation,
    source_values: np.ndarray,
    source_portion: int = 0,
    target_portion: int = 1,
    fan_in: int | None = None,
) -> GeneralSortPlan:
    """Plan a permutation as an external merge sort on target addresses.

    Requires ``M >= 4BD`` (two-way merge with buffers).  The schedule is
    data-dependent, so ``source_values`` must hold the source portion's
    record payloads (``peek``-ed by :func:`perform_general_sort`); the
    planner simulates each pass's output to derive the next pass's
    buffer-refill order, exactly as the performer did from peeked keys.
    """
    g = geometry
    if fan_in is None:
        fan_in = max(2, g.M // (g.B * g.D) - 2)
    if (fan_in + 2) * g.B * g.D > g.M or fan_in < 2:
        raise ValidationError(
            f"fan-in {fan_in} needs (K+2) BD <= M; geometry has M={g.M}, BD={g.B * g.D}"
        )
    source_values = np.asarray(source_values)
    if source_values.shape != (g.N,):
        raise ValidationError(
            f"planner needs the full source portion ({g.N} records), "
            f"got shape {source_values.shape}"
        )
    builder = PlanBuilder(g)

    # ---- pass 0: run formation -------------------------------------------
    builder.begin_pass("sort:runs")
    runs: list[_Run] = []
    spm = g.stripes_per_memoryload
    current = np.empty(g.N, dtype=source_values.dtype)  # simulated dst portion
    for ml in range(g.num_memoryloads):
        slots = builder.read_memoryload(source_portion, ml)
        values = source_values[ml * g.M : (ml + 1) * g.M]
        targets = np.asarray(perm.apply_array(values.astype(np.uint64)), dtype=np.int64)
        order = np.argsort(targets)
        builder.write_memoryload(target_portion, ml, slots[order])
        current[ml * g.M : (ml + 1) * g.M] = values[order]
        runs.append(_Run(start=ml * spm, length=spm))
    passes = 1
    src, dst = target_portion, source_portion

    # ---- merge passes ------------------------------------------------------
    slot_of_addr = np.empty(g.N, dtype=np.int64)  # per-group scratch, reused
    while len(runs) > 1:
        builder.begin_pass(f"sort:merge{passes}")
        merged_portion = np.empty_like(current)
        new_runs: list[_Run] = []
        out_stripe = 0
        for i in range(0, len(runs), fan_in):
            group = runs[i : i + fan_in]
            out_len = sum(r.length for r in group)
            _plan_merge_group(
                builder, perm, current, merged_portion, src, group, dst, out_stripe,
                slot_of_addr,
            )
            new_runs.append(_Run(start=out_stripe, length=out_len))
            out_stripe += out_len
        runs = new_runs
        current = merged_portion
        src, dst = dst, src
        passes += 1

    return GeneralSortPlan(
        io_plan=builder.build(),
        passes=passes,
        fan_in=fan_in,
        final_portion=src,
    )


def _plan_merge_group(
    builder: PlanBuilder,
    perm: Permutation,
    current: np.ndarray,
    merged_portion: np.ndarray,
    src: int,
    group: list[_Run],
    dst: int,
    out_start: int,
    slot_of_addr: np.ndarray,
) -> None:
    """Plan one K-way merge with the exact buffer-driven I/O schedule.

    Sort keys are the records' target addresses (recomputed from the
    payloads, which are the original source addresses).  ``current``
    holds the simulated contents of the source portion;
    ``merged_portion`` receives the simulated output for the next pass;
    ``slot_of_addr`` is caller-provided scratch (every entry this group
    consumes is written by one of its own reads first).
    """
    g = builder.geometry
    per = g.records_per_stripe

    run_bounds = [(run.start * per, (run.start + run.length) * per) for run in group]
    all_values = np.concatenate([current[lo:hi] for lo, hi in run_bounds])
    all_addresses = np.concatenate(
        [np.arange(lo, hi, dtype=np.int64) for lo, hi in run_bounds]
    )
    all_keys = np.asarray(perm.apply_array(all_values.astype(np.uint64)), dtype=np.int64)

    merged_order = np.argsort(all_keys, kind="stable")
    merged_values = all_values[merged_order]
    merged_addresses = all_addresses[merged_order]
    total = all_keys.size

    # Event schedule: (position, priority, kind, stripe).  Writes (prio 0)
    # precede reads (prio 1) at equal positions so the output buffer is
    # flushed before the next refill -- keeping residency at (K+1) BD.
    run_of = np.repeat(np.arange(len(group)), [hi - lo for lo, hi in run_bounds])
    merged_runs = run_of[merged_order]
    events: list[tuple[int, int, str, int]] = []
    for r, run in enumerate(group):
        positions = np.flatnonzero(merged_runs == r)
        for j in range(run.length):
            pos = 0 if j == 0 else int(positions[j * per - 1]) + 1
            events.append((pos, 1, "read", run.start + j))
    for chunk in range(total // per):
        events.append(((chunk + 1) * per, 0, "write", out_start + chunk))
    events.sort(key=lambda e: (e[0], e[1]))

    # Reads register their records' stream slots by source address; a
    # write chunk's sources are then the merged addresses it covers.
    write_ptr = 0
    for _pos, _prio, kind, stripe in events:
        if kind == "read":
            lo = stripe * per
            slot_of_addr[lo : lo + per] = builder.read_stripe(src, stripe)
        else:
            chunk_addresses = merged_addresses[write_ptr : write_ptr + per]
            builder.write_stripe(dst, stripe, slot_of_addr[chunk_addresses])
            merged_portion[stripe * per : (stripe + 1) * per] = merged_values[
                write_ptr : write_ptr + per
            ]
            write_ptr += per


def perform_general_sort(
    system: ParallelDiskSystem,
    perm: Permutation,
    source_portion: int = 0,
    target_portion: int = 1,
    fan_in: int | None = None,
    engine: str = "strict",
    optimize: bool = False,
    stream_records=None,
    backend=None,
) -> GeneralSortResult:
    """Permute by external merge sort on target addresses.

    Ping-pongs between the two portions; the result reports where the
    output landed.  The schedule is data-dependent, so there is no plan
    cache, but ``optimize`` still applies: the merge passes ping-pong
    full portions, so the cross-pass optimizer fuses the whole sort
    into one physical gather/scatter while reporting per-pass stats.
    """
    g = system.geometry
    plan = plan_general_sort(
        g,
        perm,
        system.peek(source_portion, 0, g.N),
        source_portion,
        target_portion,
        fan_in=fan_in,
    )
    before = system.stats.parallel_ios
    execute_plan(
        system, plan.io_plan, engine=engine, optimize=optimize,
        stream_records=stream_records, backend=backend,
    )
    return GeneralSortResult(
        passes=plan.passes,
        fan_in=plan.fan_in,
        final_portion=plan.final_portion,
        parallel_ios=system.stats.parallel_ios - before,
    )
