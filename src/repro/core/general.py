"""General-permutation baseline: striped external merge sort.

Permuting is sorting by target address.  This baseline is the classic
PDM merge sort with *striped* layout: every run occupies consecutive
stripes, every read and write moves one full stripe (``D`` blocks, one
per disk), so every parallel I/O is maximally parallel and the pass
count is exact:

    ``1 + ceil(log_K(N/M))`` passes of ``2N/BD`` I/Os each,

with fan-in ``K = M/(BD) - 2`` (each open run holds one stripe buffer,
plus head-room for the output stripe).  That is the
``Theta((N/BD) lg(N/B) / lg(M/B))`` sorting shape of the Vitter-Shriver
general-permutation bound whenever ``BD << M``; their truly optimal
algorithm needs randomized placement (see DESIGN.md substitution note).

I/O fidelity: the simulator executes exactly the reads and writes a
buffer-driven K-way merge issues -- a run's next stripe is fetched when
its buffer empties, the output stripe is flushed when it fills.  The
schedule is data-dependent, so it is derived from peeked keys up front;
the data itself still moves through counted, memory-checked I/O, and the
resident-record peak stays at ``(K+1) * BD`` as in a real merge.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ValidationError
from repro.pdm.system import ParallelDiskSystem
from repro.perms.base import Permutation

__all__ = ["perform_general_sort", "GeneralSortResult"]


@dataclass
class GeneralSortResult:
    passes: int
    fan_in: int
    final_portion: int
    parallel_ios: int


@dataclass
class _Run:
    """A sorted run: ``length`` stripes starting at stripe ``start``."""

    start: int
    length: int


def perform_general_sort(
    system: ParallelDiskSystem,
    perm: Permutation,
    source_portion: int = 0,
    target_portion: int = 1,
    fan_in: int | None = None,
) -> GeneralSortResult:
    """Permute by external merge sort on target addresses.

    Requires ``M >= 4BD`` (two-way merge with buffers).  Ping-pongs
    between the two portions; the result reports where the output
    landed.
    """
    g = system.geometry
    if fan_in is None:
        fan_in = max(2, g.M // (g.B * g.D) - 2)
    if (fan_in + 2) * g.B * g.D > g.M or fan_in < 2:
        raise ValidationError(
            f"fan-in {fan_in} needs (K+2) BD <= M; geometry has M={g.M}, BD={g.B * g.D}"
        )
    before = system.stats.parallel_ios

    # ---- pass 0: run formation -------------------------------------------
    system.stats.begin_pass("sort:runs")
    runs: list[_Run] = []
    spm = g.stripes_per_memoryload
    for ml in range(g.num_memoryloads):
        values = system.read_memoryload(source_portion, ml)
        targets = np.asarray(perm.apply_array(values.astype(np.uint64)), dtype=np.int64)
        system.write_memoryload(target_portion, ml, values[np.argsort(targets)])
        runs.append(_Run(start=ml * spm, length=spm))
    system.stats.end_pass()
    passes = 1
    src, dst = target_portion, source_portion

    # ---- merge passes ------------------------------------------------------
    while len(runs) > 1:
        system.stats.begin_pass(f"sort:merge{passes}")
        new_runs: list[_Run] = []
        out_stripe = 0
        for i in range(0, len(runs), fan_in):
            group = runs[i : i + fan_in]
            out_len = sum(r.length for r in group)
            _merge_group(system, perm, src, group, dst, out_stripe)
            new_runs.append(_Run(start=out_stripe, length=out_len))
            out_stripe += out_len
        system.stats.end_pass()
        runs = new_runs
        src, dst = dst, src
        passes += 1

    return GeneralSortResult(
        passes=passes,
        fan_in=fan_in,
        final_portion=src,
        parallel_ios=system.stats.parallel_ios - before,
    )


def _merge_group(
    system: ParallelDiskSystem,
    perm: Permutation,
    src: int,
    group: list[_Run],
    dst: int,
    out_start: int,
) -> None:
    """Merge sorted runs, issuing the exact buffer-driven I/O schedule.

    Sort keys are the records' target addresses (recomputed from the
    payloads, which are the original source addresses).  Keys are peeked
    to derive the schedule; all data moves through counted I/O.
    """
    g = system.geometry
    per = g.records_per_stripe

    run_values = []
    for run in group:
        lo = run.start * per
        hi = (run.start + run.length) * per
        run_values.append(system.peek(src, lo, hi))
    all_values = np.concatenate(run_values)
    all_keys = np.asarray(perm.apply_array(all_values.astype(np.uint64)), dtype=np.int64)
    run_of = np.repeat(np.arange(len(group)), [v.size for v in run_values])

    merged_order = np.argsort(all_keys, kind="stable")
    merged_values = all_values[merged_order]
    merged_runs = run_of[merged_order]
    total = all_keys.size

    # Event schedule: (position, priority, kind, stripe).  Writes (prio 0)
    # precede reads (prio 1) at equal positions so the output buffer is
    # flushed before the next refill -- keeping residency at (K+1) BD.
    events: list[tuple[int, int, str, int]] = []
    for r, run in enumerate(group):
        positions = np.flatnonzero(merged_runs == r)
        for j in range(run.length):
            pos = 0 if j == 0 else int(positions[j * per - 1]) + 1
            events.append((pos, 1, "read", run.start + j))
    for chunk in range(total // per):
        events.append(((chunk + 1) * per, 0, "write", out_start + chunk))
    events.sort(key=lambda e: (e[0], e[1]))

    write_ptr = 0
    for _pos, _prio, kind, stripe in events:
        if kind == "read":
            system.read_stripe(src, stripe)
        else:
            chunk = merged_values[write_ptr : write_ptr + per]
            system.write_stripe(dst, stripe, chunk.reshape(g.D, g.B))
            write_ptr += per
