"""Every closed-form bound in the paper, as executable formulas.

All functions return parallel-I/O counts (or pass counts where noted)
for a given :class:`DiskGeometry` and the relevant structural rank.
The benchmark harness compares these against *measured* I/O counts from
the simulator.

Index (paper source -> function):

* Theorem 3 (universal lower bound) ........ :func:`theorem3_lower_bound`
* Section 7 sharpened lower bound .......... :func:`sharpened_lower_bound`
* Lemma 9 trivial bound (non-identity) ..... :func:`nonidentity_lower_bound`
* Theorem 21 upper bound ................... :func:`theorem21_upper_bound`
* exact pass prediction (Section 5) ........ :func:`predicted_passes`
* Table 1, BMMC row of [4] (incl. eq. 1) ... :func:`old_bmmc_bound_passes`,
  :func:`h_function`
* Table 1, BPC row of [4] .................. :func:`old_bpc_bound_passes`
* Table 1, MRC row ......................... :func:`mrc_bound_passes`
* Vitter-Shriver general/sorting bound ..... :func:`general_permutation_bound`
* Section 6 detection cost ................. :func:`detection_read_bound`
* Section 7 potential-increase cap ......... :func:`delta_max`
"""

from __future__ import annotations

import math

from repro.bits import linalg
from repro.bits.colops import is_mld_form, is_mrc_form
from repro.bits.matrix import BitMatrix
from repro.pdm.geometry import DiskGeometry

__all__ = [
    "theorem3_lower_bound",
    "sharpened_lower_bound",
    "nonidentity_lower_bound",
    "theorem21_upper_bound",
    "predicted_passes",
    "predicted_ios",
    "h_function",
    "old_bmmc_bound_passes",
    "old_bmmc_bound_ios",
    "old_bpc_bound_passes",
    "old_bpc_bound_ios",
    "mrc_bound_passes",
    "general_permutation_bound",
    "merge_sort_passes",
    "detection_read_bound",
    "delta_max",
    "rank_gamma",
]


def _ceil_div(a: int, b: int) -> int:
    return -(-a // b)


def rank_gamma(matrix: BitMatrix, b: int) -> int:
    """``rank gamma`` for ``gamma = A[b..n-1, 0..b-1]`` (Theorem 3's submatrix)."""
    n = matrix.num_rows
    return linalg.rank(matrix[b:n, 0:b])


# --------------------------------------------------------------------------
# lower bounds
# --------------------------------------------------------------------------

def theorem3_lower_bound(geometry: DiskGeometry, rank_g: int) -> float:
    """Theorem 3: ``Omega((N/BD) (1 + rank gamma / lg(M/B)))`` parallel I/Os.

    Returned as the expression's value with constant 1 -- an Omega
    statement, so measured/bound ratios (not absolute dominance) are
    what the experiments report.
    """
    g = geometry
    return (g.N / (g.B * g.D)) * (1 + rank_g / (g.m - g.b))


def sharpened_lower_bound(geometry: DiskGeometry, rank_g: int) -> float:
    """Section 7: ``2N/BD * rank gamma / (2/(e ln 2) + lg(M/B))`` parallel I/Os.

    Derived from the exact ``Delta_max`` bound; within a factor of about
    1.06 of the exact upper bound when ``rank gamma`` dominates.
    """
    g = geometry
    denom = 2.0 / (math.e * math.log(2)) + (g.m - g.b)
    return 2.0 * g.N / (g.B * g.D) * rank_g / denom


def nonidentity_lower_bound(geometry: DiskGeometry) -> float:
    """Lemma 9: any non-identity BMMC permutation moves >= N/2 records,
    so at least ``N/(2B)`` block reads, i.e. ``N/(2BD)`` parallel I/Os."""
    g = geometry
    return g.N / (2 * g.B * g.D)


# --------------------------------------------------------------------------
# this paper's upper bound
# --------------------------------------------------------------------------

def theorem21_upper_bound(geometry: DiskGeometry, rank_g: int) -> int:
    """Theorem 21: at most ``(2N/BD) (ceil(rank gamma / lg(M/B)) + 2)`` I/Os."""
    g = geometry
    passes = _ceil_div(rank_g, g.m - g.b) + 2
    return g.one_pass_ios * passes


def predicted_passes(matrix: BitMatrix, geometry: DiskGeometry) -> int:
    """Exact pass count of our implementation for a characteristic matrix.

    1 for MRC or MLD matrices (direct shortcut), else
    ``g + 1 = ceil(rho / lg(M/B)) + 1`` with
    ``rho = rank A[m:, 0:m]`` (eqs. 16-17: ``rho <= rank gamma +
    lg(M/B)``, which is how Theorem 21's form arises).
    """
    g = geometry
    if is_mrc_form(matrix, g.m) or is_mld_form(matrix, g.b, g.m):
        return 1
    rho = linalg.rank(matrix[g.m : g.n, 0 : g.m])
    return _ceil_div(rho, g.m - g.b) + 1


def predicted_ios(matrix: BitMatrix, geometry: DiskGeometry) -> int:
    """Exact parallel-I/O count: ``2N/BD`` per predicted pass."""
    return geometry.one_pass_ios * predicted_passes(matrix, geometry)


# --------------------------------------------------------------------------
# prior art: the bounds of [4] (Table 1)
# --------------------------------------------------------------------------

def h_function(geometry: DiskGeometry) -> int:
    """``H(N, M, B)`` of eq. 1, with exact power-of-two case analysis.

    ``M <= sqrt(N)``         iff ``2m <= n``      -> ``4 ceil(b/(m-b)) + 9``
    ``sqrt(N) < M < sqrt(NB)`` iff ``n < 2m < n+b`` -> ``4 ceil((n-b)/(m-b)) + 1``
    ``sqrt(NB) <= M``        iff ``2m >= n+b``    -> ``5``
    """
    g = geometry
    lg_mb = g.m - g.b
    if 2 * g.m <= g.n:
        return 4 * _ceil_div(g.b, lg_mb) + 9
    if 2 * g.m < g.n + g.b:
        return 4 * _ceil_div(g.n - g.b, lg_mb) + 1
    return 5


def old_bmmc_bound_passes(geometry: DiskGeometry, leading_rank: int) -> int:
    """BMMC bound of [4]: ``2 ceil((lg M - r)/lg(M/B)) + H(N, M, B)`` passes,
    where ``r`` is the rank of the leading ``lg M x lg M`` submatrix."""
    g = geometry
    return 2 * _ceil_div(g.m - leading_rank, g.m - g.b) + h_function(geometry)


def old_bmmc_bound_ios(geometry: DiskGeometry, leading_rank: int) -> int:
    return geometry.one_pass_ios * old_bmmc_bound_passes(geometry, leading_rank)


def old_bpc_bound_passes(geometry: DiskGeometry, cross_rank_value: int) -> int:
    """BPC bound of [4]: ``2 ceil(rho(A)/lg(M/B)) + 1`` passes (eq. 3 cross-rank)."""
    g = geometry
    return 2 * _ceil_div(cross_rank_value, g.m - g.b) + 1


def old_bpc_bound_ios(geometry: DiskGeometry, cross_rank_value: int) -> int:
    return geometry.one_pass_ios * old_bpc_bound_passes(geometry, cross_rank_value)


def mrc_bound_passes() -> int:
    """Table 1, MRC row: one pass."""
    return 1


# --------------------------------------------------------------------------
# general permutations
# --------------------------------------------------------------------------

def general_permutation_bound(geometry: DiskGeometry) -> float:
    """Vitter-Shriver general-permutation bound (expression value):
    ``min(N/D, (N/BD) * ceil(lg(N/B)/lg(M/B)))`` parallel I/Os (one way);
    doubled here to count reads and writes like our pass accounting."""
    g = geometry
    sorting = (g.N / (g.B * g.D)) * _ceil_div(g.n - g.b, g.m - g.b)
    return 2 * min(g.N / g.D, sorting)


def merge_sort_passes(geometry: DiskGeometry, fan_in: int | None = None) -> int:
    """Exact pass count of the striped merge-sort baseline.

    One run-formation pass plus ``ceil(log_K(N/M))`` merge passes with
    fan-in ``K = M/(BD) - 2`` (two stripes of head-room for the output
    buffer), the choice made by :mod:`repro.core.general`.
    """
    g = geometry
    if fan_in is None:
        fan_in = max(2, g.M // (g.B * g.D) - 2)
    runs = g.num_memoryloads
    passes = 1
    while runs > 1:
        runs = _ceil_div(runs, fan_in)
        passes += 1
    return passes


# --------------------------------------------------------------------------
# detection and potential
# --------------------------------------------------------------------------

def detection_read_bound(geometry: DiskGeometry) -> int:
    """Section 6: ``N/BD + ceil((lg(N/B) + 1)/D)`` parallel reads."""
    g = geometry
    return g.num_stripes + _ceil_div(g.n - g.b + 1, g.D)


def detection_formation_reads(geometry: DiskGeometry) -> int:
    """The candidate-formation part alone: ``ceil((lg(N/B) + 1)/D)`` reads."""
    g = geometry
    return _ceil_div(g.n - g.b + 1, g.D)


def delta_max(geometry: DiskGeometry) -> float:
    """Section 7: ``Delta_max <= B (2/(e ln 2) + lg(M/B))`` per read."""
    g = geometry
    return g.B * (2.0 / (math.e * math.log(2)) + (g.m - g.b))
