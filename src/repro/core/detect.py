"""Section 6: detecting BMMC permutations at run time.

The permutation is given as a vector of ``N`` target addresses stored on
the parallel disk system (record at address ``x`` holds ``pi(x)``).  The
detector

1. checks ``N`` is a power of 2 (structural, free);
2. forms the unique candidate ``(A, c)``: ``c = pi(0)`` and column
   ``A_k = pi(2^k) (+) c`` -- but fetching naive unit-vector addresses
   would hammer disk ``D_0``, so the paper's schedule spreads the work:
   the first parallel read grabs block 0 (giving ``c`` and the ``b``
   offset columns), stripe 0 of disks ``1, 2, 4, ..., D/2`` (the ``d``
   disk columns), and stripe ``2^t`` of the ``t``-th non-power-of-two
   disk (each yielding a stripe column after XORing out the known disk
   columns, eq. 20); each subsequent read uses all ``D`` disks, one new
   stripe bit each -- ``ceil((lg(N/B) + 1)/D)`` reads in total;
3. checks the candidate matrix is nonsingular;
4. verifies ``y = A x (+) c`` for all ``N`` addresses with ``N/BD``
   striped reads, stopping at the first counterexample.

Total: at most ``N/BD + ceil((lg(N/B)+1)/D)`` parallel reads, usually
far fewer on non-BMMC inputs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bits import bitops, linalg
from repro.bits.matrix import BitMatrix
from repro.errors import DetectionError
from repro.pdm.engine import execute_plan
from repro.pdm.schedule import IOPlan, PlanBuilder
from repro.pdm.system import ParallelDiskSystem
from repro.perms.base import Permutation
from repro.perms.bmmc import BMMCPermutation

__all__ = [
    "DetectionResult",
    "detect_bmmc",
    "store_target_vector",
    "formation_schedule",
    "plan_detection_formation",
    "plan_detection_verification",
]


@dataclass
class DetectionResult:
    """Outcome of run-time detection."""

    is_bmmc: bool
    matrix: BitMatrix | None
    complement: int | None
    formation_reads: int
    verification_reads: int
    reason: str = ""

    @property
    def total_reads(self) -> int:
        return self.formation_reads + self.verification_reads

    def permutation(self) -> BMMCPermutation:
        if not self.is_bmmc:
            raise DetectionError(f"not a BMMC permutation: {self.reason}")
        return BMMCPermutation(self.matrix, self.complement, validate=False)


def store_target_vector(
    system: ParallelDiskSystem, perm_or_targets, portion: int = 0
) -> None:
    """Store a permutation's target vector as record payloads.

    Record at address ``x`` holds ``pi(x)`` -- the input representation
    Section 6 assumes.
    """
    if isinstance(perm_or_targets, Permutation):
        targets = perm_or_targets.target_vector()
    else:
        targets = np.asarray(perm_or_targets, dtype=np.int64)
    system.fill(portion, targets)


def formation_schedule(geometry) -> list[list[tuple[int, int, int]]]:
    """The candidate-formation parallel reads.

    Returns a list of parallel reads; each read is a list of
    ``(block_id, source_address, new_column_index)`` triples where
    ``new_column_index`` is the matrix column that block resolves
    (-1 for the block-0 read, which resolves ``c`` and columns
    ``0..b+d-1`` via its offset records... block 0 carries index -1,
    power-of-two-disk blocks carry their disk-column index).
    """
    g = geometry
    schedule: list[list[tuple[int, int, int]]] = []
    first: list[tuple[int, int, int]] = [(0, 0, -1)]  # block 0: c and offset columns
    for j in range(g.d):
        disk = 1 << j
        first.append((disk, disk * g.B, g.b + j))  # stripe 0, disk 2^j
    non_pow2 = [q for q in range(g.D) if q & (q - 1) and q != 0]
    t = 0
    for q in non_pow2:
        if t >= g.s:
            break
        block = ((1 << t) << g.d) | q  # stripe 2^t, disk q
        first.append((block, block * g.B, g.b + g.d + t))
        t += 1
    schedule.append(first)
    while t < g.s:
        batch: list[tuple[int, int, int]] = []
        for q in range(g.D):
            if t >= g.s:
                break
            block = ((1 << t) << g.d) | q
            batch.append((block, block * g.B, g.b + g.d + t))
            t += 1
        schedule.append(batch)
    return schedule


def plan_detection_formation(
    geometry, portion: int = 0, label: str = "detect:form", schedule=None
) -> IOPlan:
    """The candidate-formation reads as a one-pass detection plan.

    All reads are non-consuming (inspection must not destroy the data)
    and *discarding*: the records leave the M-record memory as soon as
    they are read, exactly as the hand-written detector's explicit
    ``memory.release`` did.  Executing the plan with ``capture=True``
    returns the read stream the formation logic parses -- record order
    follows ``schedule`` (:func:`formation_schedule` by default), so
    callers that parse the stream should pass the schedule they parse
    with rather than recomputing it.
    """
    if schedule is None:
        schedule = formation_schedule(geometry)
    builder = PlanBuilder(geometry)
    builder.begin_pass(label)
    for batch in schedule:
        builder.read(
            portion, [entry[0] for entry in batch], consume=False, discard=True
        )
    return builder.build()


def plan_detection_verification(
    geometry,
    portion: int = 0,
    start_stripe: int = 0,
    num_stripes: int | None = None,
    label: str = "detect:verify",
) -> IOPlan:
    """A verification-scan chunk: striped, non-consuming, discarding reads.

    The detector executes the scan in chunks so ``early_exit`` can stop
    between them; each chunk is one pass of ``num_stripes`` striped
    reads.
    """
    g = geometry
    if num_stripes is None:
        num_stripes = g.num_stripes - start_stripe
    builder = PlanBuilder(g)
    builder.begin_pass(label)
    for stripe in range(start_stripe, start_stripe + num_stripes):
        builder.read_stripe(portion, stripe, consume=False, discard=True)
    return builder.build()


def detect_bmmc(
    system: ParallelDiskSystem,
    portion: int = 0,
    verify: bool = True,
    early_exit: bool = True,
    engine: str = "strict",
    verify_chunk: int | None = None,
) -> DetectionResult:
    """Run-time BMMC detection on a stored target vector.

    Issues exactly the paper's formation schedule (reads are
    non-consuming: inspection must not destroy the data), then the
    verification scan.  ``early_exit`` stops verification at the first
    stripe containing a counterexample.

    All I/O goes through detection :class:`~repro.pdm.schedule.IOPlan`
    objects, so the detector runs under either plan engine.  Under
    ``engine="fast"`` the verification scan executes in fused chunks of
    ``verify_chunk`` stripes (default: one memoryload's worth), trading
    early-exit granularity for vectorization -- on a non-BMMC input the
    detector may read up to one chunk past the first counterexample,
    and ``verification_reads`` counts the reads actually issued.  The
    strict default chunks per stripe, reproducing the hand-written
    detector's exact read counts.
    """
    g = system.geometry
    n, b, d = g.n, g.b, g.d

    # ---- step 2: form candidate (A, c) ------------------------------------
    schedule = formation_schedule(g)
    report = execute_plan(
        system,
        plan_detection_formation(g, portion, schedule=schedule),
        engine=engine,
        capture=True,
    )
    stream = report.streams[0]
    formation_reads = len(schedule)
    columns: dict[int, int] = {}
    complement = 0
    cursor = 0
    for batch in schedule:
        for block, _address, col_index in batch:
            block_values = stream[cursor : cursor + g.B]
            cursor += g.B
            y0 = int(block_values[0])
            if col_index == -1:
                # block 0: offset 0 gives c, offsets 2^k give columns 0..b-1
                complement = y0
                for k in range(b):
                    columns[k] = int(block_values[1 << k]) ^ complement
            elif col_index < b + d:
                columns[col_index] = y0 ^ complement
            else:
                # stripe column: XOR out the disk columns named by the
                # disk number's set bits (eq. 20 with S_k = disk bits).
                disk = g.block_disk(block)
                acc = y0 ^ complement
                for j in range(d):
                    if (disk >> j) & 1:
                        acc ^= columns[b + j]
                columns[col_index] = acc

    matrix = BitMatrix.from_int_columns([columns[k] for k in range(n)], n)

    # ---- step 3: candidate must be nonsingular -----------------------------
    if not linalg.is_nonsingular(matrix):
        return DetectionResult(
            is_bmmc=False,
            matrix=None,
            complement=None,
            formation_reads=formation_reads,
            verification_reads=0,
            reason="candidate characteristic matrix is singular",
        )

    # ---- step 4: verify all N addresses ------------------------------------
    verification_reads = 0
    mismatch_stripe: int | None = None
    if verify:
        per = g.records_per_stripe
        if verify_chunk is None:
            verify_chunk = 1 if engine == "strict" else g.stripes_per_memoryload
        verify_chunk = max(1, int(verify_chunk))  # 0/negative would never advance
        stripe = 0
        while stripe < g.num_stripes:
            hi = min(stripe + verify_chunk, g.num_stripes)
            chunk_report = execute_plan(
                system,
                plan_detection_verification(g, portion, stripe, hi - stripe),
                engine=engine,
                capture=True,
            )
            values = chunk_report.streams[0]
            verification_reads += hi - stripe
            addresses = (
                stripe * per + np.arange((hi - stripe) * per, dtype=np.int64)
            ).astype(np.uint64)
            expected = bitops.apply_affine(matrix, complement, addresses)
            mismatch = np.asarray(expected, dtype=system.dtype) != values
            if mismatch_stripe is None and mismatch.any():
                mismatch_stripe = stripe + int(np.argmax(
                    mismatch.reshape(hi - stripe, per).any(axis=1)
                ))
                if early_exit:
                    break
            stripe = hi
    if mismatch_stripe is not None:
        return DetectionResult(
            is_bmmc=False,
            matrix=None,
            complement=None,
            formation_reads=formation_reads,
            verification_reads=verification_reads,
            reason=f"mismatch in stripe {mismatch_stripe}",
        )
    return DetectionResult(
        is_bmmc=True,
        matrix=matrix,
        complement=complement,
        formation_reads=formation_reads,
        verification_reads=verification_reads,
    )
