"""Section 5: factoring a BMMC characteristic matrix into one-pass factors.

The pipeline transforms ``A`` (nonsingular ``n x n``) into an MRC matrix
``F`` by right-multiplying with column-operation matrices:

1. **Trailer** ``T`` -- add columns from the leftmost ``m`` into the
   rightmost ``n-m`` so the trailing ``(n-m) x (n-m)`` submatrix becomes
   nonsingular (Gaussian elimination chooses which columns);
2. **Reducer** ``R`` -- zero out the linearly dependent columns of the
   lower-left ``(n-m) x m`` submatrix, leaving ``rho = rank A[m:, :m]``
   independent nonzero columns (*reduced form*); ``P = T R`` is MRC;
3. **Swap/erase rounds** ``S_i, E_i`` -- each round swaps up to ``m-b``
   remaining nonzero lower-left columns from the left section into zero
   slots of the middle section (``S_i``, an MRC swapper) and then erases
   the middle section's lower band by adding right-section columns
   (``E_i``, an MLD erasure; possible because the trailing submatrix is
   a basis for the bottom rows).  ``g = ceil(rho / (m-b))`` rounds
   suffice (eq. 17).

The factorization (eq. 18) is then

    ``A = F E_g^-1 S_g^-1 ... E_1^-1 S_1^-1 P^-1``

performed right to left (Corollary 2).  Merging per Theorems 17/18
yields ``g + 1`` one-pass permutations: ``E_1^-1 S_1^-1 P^-1`` (MLD),
``E_i^-1 S_i^-1`` for ``i >= 2`` (MLD), and ``F`` (MRC, absorbing the
complement vector).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bits import linalg
from repro.bits.colops import (
    erasure_matrix,
    is_erasure_form,
    is_mld_form,
    is_mrc_form,
    is_reducer_form,
    is_swapper_form,
    is_trailer_form,
    reducer_matrix,
    swapper_matrix,
    trailer_matrix,
)
from repro.bits.matrix import BitMatrix
from repro.errors import SingularMatrixError, ValidationError

__all__ = ["Factor", "Factorization", "factor_bmmc"]


@dataclass(frozen=True)
class Factor:
    """One factor of the factorization, with its one-pass class certificate."""

    matrix: BitMatrix
    kind: str  # "mrc" or "mld"
    name: str


@dataclass
class Factorization:
    """Result of :func:`factor_bmmc`.

    ``apply_order`` lists the factors in the order they are *performed*
    (right to left in eq. 18): ``P^-1, S_1^-1, E_1^-1, ..., S_g^-1,
    E_g^-1, F``.  ``merged`` lists the ``g + 1`` one-pass factors after
    Theorem 17/18 grouping.
    """

    original: BitMatrix
    b: int
    m: int
    trailer: BitMatrix
    reducer: BitMatrix
    swap_erase: list[tuple[BitMatrix, BitMatrix]]
    final: BitMatrix
    rho: int  # rank of A[m:, :m] -- nonzero columns entering the swap/erase loop
    apply_order: list[Factor] = field(default_factory=list)
    merged: list[Factor] = field(default_factory=list)

    @property
    def g(self) -> int:
        """Number of swap/erase rounds, ``ceil(rho / (m - b))`` (eq. 17)."""
        return len(self.swap_erase)

    @property
    def num_passes(self) -> int:
        """Passes after merging: ``g + 1`` (Theorem 21's count)."""
        return len(self.merged)

    def product_of_apply_order(self) -> BitMatrix:
        """Recompose: must equal ``original`` (performing right-to-left)."""
        prod = BitMatrix.identity(self.original.num_rows)
        for factor in self.apply_order:
            prod = factor.matrix @ prod  # later factors multiply on the left
        return prod

    def product_of_merged(self) -> BitMatrix:
        prod = BitMatrix.identity(self.original.num_rows)
        for factor in self.merged:
            prod = factor.matrix @ prod
        return prod


def factor_bmmc(matrix: BitMatrix, b: int, m: int, check: bool = True) -> Factorization:
    """Factor a nonsingular matrix per Section 5.

    ``b`` and ``m`` are the geometry's ``lg B`` and ``lg M``; requires
    ``0 <= b < m <= n`` (``m > b`` because every bound divides by
    ``lg(M/B)``).  With ``check=True`` every intermediate form and the
    final recomposition are verified.
    """
    n = matrix.num_rows
    if not (0 <= b < m <= n):
        raise ValidationError(f"need 0 <= b < m <= n, got b={b}, m={m}, n={n}")
    if not linalg.is_nonsingular(matrix):
        raise SingularMatrixError("can only factor nonsingular characteristic matrices")

    trailer = _build_trailer(matrix, b, m)
    a1 = matrix @ trailer
    if check and not linalg.is_nonsingular(a1[m:n, m:n]):
        raise AssertionError("trailer failed to make the trailing submatrix nonsingular")

    reducer = _build_reducer(a1, b, m)
    a2 = a1 @ reducer
    rho = linalg.rank(matrix[m:n, 0:m])
    if check:
        nonzero = sum(1 for j in range(m) if a2[m:n, 0:m].column(j) != 0)
        if nonzero != rho:
            raise AssertionError(
                f"reduced form has {nonzero} nonzero lower-left columns, expected rho={rho}"
            )

    p = trailer @ reducer
    if check and not is_mrc_form(p, m):
        raise AssertionError("P = T R is not MRC")

    swap_erase: list[tuple[BitMatrix, BitMatrix]] = []
    cur = a2
    guard = 0
    while True:
        bottom = cur[m:n, 0:m]
        nonzero_cols = [j for j in range(m) if bottom.column(j) != 0]
        if not nonzero_cols:
            break
        guard += 1
        if guard > m + 1:  # cannot need more than ceil(m/(m-b)) <= m rounds
            raise AssertionError("swap/erase loop failed to terminate")
        swapper = _build_swapper(cur, b, m)
        cur = cur @ swapper
        eraser = _build_eraser(cur, b, m)
        cur = cur @ eraser
        if check and cur[m:n, b:m].column(0) is None:  # pragma: no cover
            raise AssertionError("unreachable")
        if check and not _middle_bottom_zero(cur, b, m):
            raise AssertionError("erasure left nonzero columns in the lower middle band")
        swap_erase.append((swapper, eraser))

    final = cur
    if check and not is_mrc_form(final, m):
        raise AssertionError("final factor F is not MRC")

    expected_g = -(-rho // (m - b))  # ceil(rho / (m - b)), eq. 17
    if check and len(swap_erase) != expected_g:
        raise AssertionError(
            f"performed {len(swap_erase)} swap/erase rounds, eq. 17 predicts {expected_g}"
        )

    fact = Factorization(
        original=matrix,
        b=b,
        m=m,
        trailer=trailer,
        reducer=reducer,
        swap_erase=swap_erase,
        final=final,
        rho=rho,
    )
    fact.apply_order = _apply_order(fact, check)
    fact.merged = _merge(fact, check)
    if check:
        if fact.product_of_apply_order() != matrix:
            raise AssertionError("factor recomposition does not reproduce A")
        if fact.product_of_merged() != matrix:
            raise AssertionError("merged-pass recomposition does not reproduce A")
    return fact


# --------------------------------------------------------------------------
# construction steps
# --------------------------------------------------------------------------

def _build_trailer(matrix: BitMatrix, b: int, m: int) -> BitMatrix:
    """Make the trailing submatrix nonsingular by adding left/middle columns.

    Works on the bottom ``n - m`` rows: choose a maximal independent set
    ``V`` among the right-section columns, extend to a full basis with
    left/middle columns ``W`` (possible because ``A`` is nonsingular, so
    its bottom rows have full row rank), then add each ``w`` into a
    distinct dependent right-section column.
    """
    n = matrix.num_rows
    bottom = matrix[m:n, :]
    kept, added = linalg.complete_column_basis(
        bottom, primary=range(m, n), candidates=range(0, m)
    )
    if len(kept) + len(added) != n - m:
        raise SingularMatrixError(
            "bottom rows do not have full row rank; matrix is singular"
        )
    dependent_right = [j for j in range(m, n) if j not in set(kept)]
    additions = list(zip(added, dependent_right))
    return trailer_matrix(n, b, m, additions)


def _build_reducer(a1: BitMatrix, b: int, m: int) -> BitMatrix:
    """Zero the dependent columns of the lower-left band (reduced form)."""
    n = a1.num_rows
    gamma_full = a1[m:n, 0:m]
    basis_cols = linalg.independent_columns(gamma_full)
    basis_set = set(basis_cols)
    additions: list[tuple[int, int]] = []
    for j in range(m):
        if j in basis_set:
            continue
        target = gamma_full.column(j)
        if target == 0:
            continue
        sources = linalg.express_in_column_basis(gamma_full, basis_cols, target)
        if sources is None:  # pragma: no cover - basis is maximal by construction
            raise AssertionError("dependent column outside the span of the basis")
        additions.extend((u, j) for u in sources)
    return reducer_matrix(n, b, m, additions)


def _build_swapper(cur: BitMatrix, b: int, m: int) -> BitMatrix:
    """Swap nonzero lower-left columns into zero slots of the middle section."""
    n = cur.num_rows
    bottom = cur[m:n, 0:m]
    nz_left = [j for j in range(b) if bottom.column(j) != 0]
    nz_mid = {j for j in range(b, m) if bottom.column(j) != 0}
    zero_mid = [j for j in range(b, m) if j not in nz_mid]
    k = min(len(nz_left), len(zero_mid))
    sigma = list(range(m))
    for left_col, mid_col in zip(nz_left[:k], zero_mid[:k]):
        sigma[left_col], sigma[mid_col] = sigma[mid_col], sigma[left_col]
    return swapper_matrix(n, m, sigma)


def _build_eraser(cur: BitMatrix, b: int, m: int) -> BitMatrix:
    """Zero the lower middle band by adding right-section columns.

    The trailing submatrix is nonsingular, so for each nonzero lower
    middle column ``v`` the unique coefficient vector is
    ``z = delta^-1 v``; adding the right-section columns selected by
    ``z`` XORs ``delta z = v`` onto the bottom band, zeroing it.
    """
    n = cur.num_rows
    delta = cur[m:n, m:n]
    delta_inv = linalg.inverse(delta)
    additions: list[tuple[int, int]] = []
    for j in range(b, m):
        v = cur[m:n, 0:m].column(j)
        if v == 0:
            continue
        z = delta_inv.mulvec(v)
        for t in range(n - m):
            if (z >> t) & 1:
                additions.append((m + t, j))
    return erasure_matrix(n, b, m, additions)


def _middle_bottom_zero(cur: BitMatrix, b: int, m: int) -> bool:
    n = cur.num_rows
    return cur[m:n, b:m].is_zero


# --------------------------------------------------------------------------
# assembling apply order and merged passes
# --------------------------------------------------------------------------

def _apply_order(fact: Factorization, check: bool) -> list[Factor]:
    """Eq. 18 read right to left: ``P^-1, S_1^-1, E_1^-1, ..., F``."""
    n = fact.original.num_rows
    b, m = fact.b, fact.m
    order: list[Factor] = []
    p = fact.trailer @ fact.reducer
    p_inv = linalg.inverse(p)
    if check and not is_mrc_form(p_inv, m):
        raise AssertionError("P^-1 is not MRC (violates Theorem 18)")
    order.append(Factor(p_inv, "mrc", "P^-1"))
    for i, (s, e) in enumerate(fact.swap_erase, start=1):
        s_inv = linalg.inverse(s)
        if check and not is_swapper_form(s_inv, m):
            raise AssertionError("S^-1 is not a swapper")
        order.append(Factor(s_inv, "mrc", f"S_{i}^-1"))
        # Erasure matrices are involutions: E^-1 = E.
        if check and (e @ e) != BitMatrix.identity(n):
            raise AssertionError("erasure matrix is not an involution")
        if check and not is_mld_form(e, b, m):
            raise AssertionError("E^-1 is not MLD")
        order.append(Factor(e, "mld", f"E_{i}^-1"))
    if check and not is_mrc_form(fact.final, m):
        raise AssertionError("F is not MRC")
    order.append(Factor(fact.final, "mrc", "F"))
    return order


def _merge(fact: Factorization, check: bool) -> list[Factor]:
    """Group factors into ``g + 1`` one-pass permutations (Thms 17/18).

    ``E_1^-1 (S_1^-1 P^-1)`` is MLD compose MRC = MLD; each later
    ``E_i^-1 S_i^-1`` likewise; ``F`` stays MRC.  When ``g = 0`` the
    whole product collapses to the single MRC matrix ``A`` itself.
    """
    b, m = fact.b, fact.m
    order = fact.apply_order
    if fact.g == 0:
        # order is [P^-1, F]; product F P^-1 = A is MRC.
        merged_matrix = order[-1].matrix @ order[0].matrix
        if check and not is_mrc_form(merged_matrix, m):
            raise AssertionError("g=0 merge is not MRC")
        return [Factor(merged_matrix, "mrc", "F P^-1")]
    merged: list[Factor] = []
    # First MLD pass: E_1^-1 S_1^-1 P^-1.
    first = order[2].matrix @ order[1].matrix @ order[0].matrix
    if check and not is_mld_form(first, b, m):
        raise AssertionError("merged pass E_1^-1 S_1^-1 P^-1 is not MLD (Thm 17)")
    merged.append(Factor(first, "mld", "E_1^-1 S_1^-1 P^-1"))
    # Middle MLD passes: E_i^-1 S_i^-1 for i = 2..g.
    for i in range(2, fact.g + 1):
        s_factor = order[2 * i - 1]
        e_factor = order[2 * i]
        mat = e_factor.matrix @ s_factor.matrix
        if check and not is_mld_form(mat, b, m):
            raise AssertionError(f"merged pass E_{i}^-1 S_{i}^-1 is not MLD (Thm 17)")
        merged.append(Factor(mat, "mld", f"E_{i}^-1 S_{i}^-1"))
    # Final MRC pass: F.
    merged.append(Factor(order[-1].matrix, "mrc", "F"))
    return merged
