"""One-pass MLD planner and performer (Section 3, Theorem 15).

For each source memoryload: ``M/BD`` *striped* reads bring in ``M``
records; the kernel condition guarantees (Lemmas 13-14 and property 3)
that they cluster into exactly ``M/B`` *full* target blocks distributed
evenly over the disks, ``M/BD`` per disk; ``M/BD`` *independent* writes
put them down.  Total: one pass, ``2N/BD`` parallel I/Os.

The planner *asserts* the three properties as it builds the plan --
planning a random MLD instance is an executable proof of Theorem 15,
and handing it a non-MLD matrix fails loudly (before any I/O) rather
than silently scattering records.
"""

from __future__ import annotations

import numpy as np

from repro.errors import NotInClassError
from repro.pdm.cache import PlanCache, cached_execute, plan_key
from repro.pdm.engine import execute_plan
from repro.pdm.geometry import DiskGeometry
from repro.pdm.schedule import IOPlan, PlanBuilder
from repro.pdm.system import ParallelDiskSystem
from repro.perms.bmmc import BMMCPermutation
from repro.perms.mld import require_mld

__all__ = ["plan_mld_pass", "perform_mld_pass"]


def plan_mld_pass(
    geometry: DiskGeometry,
    perm: BMMCPermutation,
    source_portion: int = 0,
    target_portion: int = 1,
    label: str = "mld",
    check_class: bool = True,
) -> IOPlan:
    """Plan an MLD permutation: striped reads, independent writes.

    Even with ``check_class=False`` a non-MLD matrix cannot slip
    through: the in-flight Lemma 13 / property 3 assertions raise
    :class:`NotInClassError` while the plan is being built.
    """
    g = geometry
    if check_class:
        require_mld(perm, g.b, g.m)
    blocks_per_ml = g.blocks_per_memoryload  # M/B
    writes_per_ml = g.stripes_per_memoryload  # M/BD
    builder = PlanBuilder(g)
    builder.begin_pass(label)
    for ml in range(g.num_memoryloads):
        slots = builder.read_memoryload(source_portion, ml)
        addresses = g.memoryload_addresses(ml).astype(np.uint64)
        targets = np.asarray(perm.apply_array(addresses), dtype=np.int64)
        order = np.argsort(targets)
        sorted_targets = targets[order]

        # Lemma 13: exactly M/B full target blocks.
        per_block_targets = sorted_targets.reshape(blocks_per_ml, g.B)
        block_ids = per_block_targets[:, 0] >> g.b
        if not (per_block_targets >> g.b == block_ids[:, None]).all():
            raise NotInClassError(
                "memoryload does not cluster into full target blocks; "
                "the kernel condition (eq. 4) is violated"
            )
        if np.unique(block_ids).size != blocks_per_ml:
            raise NotInClassError("duplicate target blocks within a memoryload")

        # Property 3: M/BD blocks per disk.
        disks = g.block_disk(block_ids)
        if not (np.bincount(disks, minlength=g.D) == writes_per_ml).all():
            raise NotInClassError(
                "target blocks are not spread evenly over the disks"
            )

        # Group blocks by disk and emit M/BD independent writes of D
        # blocks each, one block per disk per write.
        disk_order = np.argsort(disks, kind="stable")
        grouped_ids = block_ids[disk_order].reshape(g.D, writes_per_ml)
        grouped_slots = slots[order].reshape(blocks_per_ml, g.B)[disk_order].reshape(
            g.D, writes_per_ml, g.B
        )
        for i in range(writes_per_ml):
            builder.write(
                target_portion, grouped_ids[:, i], grouped_slots[:, i].reshape(-1)
            )
    return builder.build()


def perform_mld_pass(
    system: ParallelDiskSystem,
    perm: BMMCPermutation,
    source_portion: int = 0,
    target_portion: int = 1,
    label: str = "mld",
    check_class: bool = True,
    engine: str = "strict",
    optimize: bool = False,
    cache: PlanCache | None = None,
    stream_records=None,
    backend=None,
) -> None:
    """Perform an MLD permutation in one pass (striped reads, independent writes).

    ``cache`` reuses a compiled plan for repeated (geometry, matrix)
    workloads; ``optimize`` runs the plan-level rewrites of
    :mod:`repro.pdm.optimize` (fast engine only); ``stream_records``
    bounds the executor's host read-stream buffer.
    """
    if cache is not None:
        key = plan_key(
            "mld", system.geometry, perm.matrix, perm.complement,
            source_portion, target_portion, label,
            system.num_portions, system.simple_io,
        )
        cached_execute(
            system, cache, key,
            lambda: (
                plan_mld_pass(
                    system.geometry, perm, source_portion, target_portion,
                    label=label, check_class=check_class,
                ),
                None,
            ),
            engine=engine, optimize=optimize, stream_records=stream_records,
            backend=backend,
        )
        return
    plan = plan_mld_pass(
        system.geometry,
        perm,
        source_portion,
        target_portion,
        label=label,
        check_class=check_class,
    )
    execute_plan(
        system, plan, engine=engine, optimize=optimize,
        stream_records=stream_records, backend=backend,
    )
