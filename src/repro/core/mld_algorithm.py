"""One-pass MLD performer (Section 3, Theorem 15).

For each source memoryload: ``M/BD`` *striped* reads bring in ``M``
records; the kernel condition guarantees (Lemmas 13-14 and property 3)
that they cluster into exactly ``M/B`` *full* target blocks distributed
evenly over the disks, ``M/BD`` per disk; ``M/BD`` *independent* writes
put them down.  Total: one pass, ``2N/BD`` parallel I/Os.

The performer *asserts* the three properties as it goes -- running it on
random MLD instances is an executable proof of Theorem 15, and handing
it a non-MLD matrix fails loudly rather than silently scattering
records.
"""

from __future__ import annotations

import numpy as np

from repro.errors import NotInClassError
from repro.pdm.system import ParallelDiskSystem
from repro.perms.bmmc import BMMCPermutation
from repro.perms.mld import require_mld

__all__ = ["perform_mld_pass"]


def perform_mld_pass(
    system: ParallelDiskSystem,
    perm: BMMCPermutation,
    source_portion: int = 0,
    target_portion: int = 1,
    label: str = "mld",
    check_class: bool = True,
) -> None:
    """Perform an MLD permutation in one pass (striped reads, independent writes)."""
    g = system.geometry
    if check_class:
        require_mld(perm, g.b, g.m)
    blocks_per_ml = g.blocks_per_memoryload  # M/B
    writes_per_ml = g.stripes_per_memoryload  # M/BD
    system.stats.begin_pass(label)
    try:
        for ml in range(g.num_memoryloads):
            values = system.read_memoryload(source_portion, ml)
            addresses = g.memoryload_addresses(ml).astype(np.uint64)
            targets = np.asarray(perm.apply_array(addresses), dtype=np.int64)
            order = np.argsort(targets)
            sorted_targets = targets[order]
            sorted_values = values[order]

            # Lemma 13: exactly M/B full target blocks.
            per_block_targets = sorted_targets.reshape(blocks_per_ml, g.B)
            block_ids = per_block_targets[:, 0] >> g.b
            if not (per_block_targets >> g.b == block_ids[:, None]).all():
                raise NotInClassError(
                    "memoryload does not cluster into full target blocks; "
                    "the kernel condition (eq. 4) is violated"
                )
            if np.unique(block_ids).size != blocks_per_ml:
                raise NotInClassError("duplicate target blocks within a memoryload")

            # Property 3: M/BD blocks per disk.
            disks = g.block_disk(block_ids)
            if not (np.bincount(disks, minlength=g.D) == writes_per_ml).all():
                raise NotInClassError(
                    "target blocks are not spread evenly over the disks"
                )

            # Group blocks by disk and emit M/BD independent writes of D
            # blocks each, one block per disk per write.
            disk_order = np.argsort(disks, kind="stable")
            grouped_ids = block_ids[disk_order].reshape(g.D, writes_per_ml)
            grouped_data = sorted_values.reshape(blocks_per_ml, g.B)[disk_order].reshape(
                g.D, writes_per_ml, g.B
            )
            for i in range(writes_per_ml):
                system.write_blocks(target_portion, grouped_ids[:, i], grouped_data[:, i])
    finally:
        system.stats.end_pass()
