"""Classification-driven dispatch: run any permutation the cheapest way.

This is the "practical" entry point Section 6 motivates: given a
permutation (BMMC object or explicit target vector), classify it, pick
the fastest applicable algorithm, run it on the simulator, verify the
result, and report measured I/Os next to every relevant bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core import bounds
from repro.core.bmmc_algorithm import perform_bmmc
from repro.core.general import perform_general_sort
from repro.core.mld_algorithm import perform_mld_pass
from repro.core.mrc_algorithm import perform_mrc_pass
from repro.errors import ValidationError
from repro.pdm.cache import PlanCache
from repro.pdm.stats import StatsSnapshot
from repro.pdm.system import ParallelDiskSystem
from repro.perms.base import Permutation
from repro.perms.bmmc import BMMCPermutation
from repro.perms.bpc import cross_rank
from repro.perms.classify import PermClass, classify, fit_bmmc

__all__ = [
    "RunReport",
    "perform_permutation",
    "perform_pipeline",
    "perform_requests",
]


@dataclass
class RunReport:
    """Everything an experiment row needs about one run."""

    method: str
    classes: set[PermClass]
    passes: int
    io: StatsSnapshot
    final_portion: int
    verified: bool
    bounds: dict[str, float] = field(default_factory=dict)

    def summary(self) -> str:
        cls = "/".join(sorted(c.value for c in self.classes))
        lines = [
            f"method={self.method} classes={cls} passes={self.passes} "
            f"parallel I/Os={self.io.parallel_ios} verified={self.verified}",
        ]
        for name, value in self.bounds.items():
            lines.append(f"  {name}: {value:.2f}")
        return "\n".join(lines)


def perform_permutation(
    system: ParallelDiskSystem,
    perm: Permutation,
    method: str = "auto",
    source_portion: int = 0,
    target_portion: int = 1,
    verify: bool = True,
    engine: str = "strict",
    optimize: bool = False,
    cache: PlanCache | None = None,
    seed: int = 0,
    stream_records=None,
    backend=None,
) -> RunReport:
    """Run ``perm`` on ``system`` and report.

    ``method``: ``auto`` (classify, pick cheapest), ``mrc``, ``mld``,
    ``inv-mld``, ``bmmc`` (Theorem 21 algorithm), ``bmmc-unmerged`` (the
    ablation without Theorem 17/18 factor grouping), ``general``
    (merge-sort baseline), or ``distribution`` (randomized-placement
    distribution sort); the last two work for any permutation.

    ``engine`` selects plan execution: ``strict`` replays every parallel
    I/O through the rule-checked simulator path, ``fast`` runs the same
    plan as fused numpy batches (identical portions and stats).  The
    distribution sort is adaptive (its I/Os depend on sampled state); it
    runs as a staged plan (:mod:`repro.pdm.stage`) whose stages execute
    under either engine.

    ``optimize`` compiles the plan through :mod:`repro.pdm.optimize`
    (cross-pass fusion, dead-write elimination; fast engine only) and
    ``cache`` -- a :class:`~repro.pdm.cache.PlanCache` -- serves
    repeated (geometry, matrix, method) workloads from compiled plans,
    skipping classification, planning, fusing, and validation.  Both
    leave portions and :class:`~repro.pdm.stats.IOStats` identical to
    an unoptimized strict run.  The general sort's schedule is
    data-dependent and is never cached; the distribution sort caches
    its materialized staged plan keyed by the RNG seed (its canonical
    input makes the schedule a pure function of the seed and knobs).

    ``seed`` feeds the distribution sort's placement RNG (other methods
    are deterministic and ignore it); ``stream_records`` bounds the
    executors' host read-stream buffer as in
    :func:`repro.pdm.engine.execute_plan`.

    The source portion must already hold the canonical payloads
    (``fill_identity``); verification checks
    ``target[pi(x)] == x`` afterwards.
    """
    g = system.geometry
    source_values = system.peek(source_portion, 0, g.N)
    classes = classify(perm, g)
    bperm = _as_bmmc(perm, classes)

    chosen = method
    if method == "auto":
        if PermClass.MRC in classes:
            chosen = "mrc"
        elif PermClass.MLD in classes:
            chosen = "mld"
        elif PermClass.INVERSE_MLD in classes:
            chosen = "inv-mld"
        elif PermClass.BMMC in classes:
            chosen = "bmmc"
        else:
            chosen = "general"

    before = system.stats.snapshot()
    passes_before = len(system.stats.passes)
    if chosen == "mrc":
        perform_mrc_pass(
            system, _require_bmmc(bperm, chosen), source_portion, target_portion,
            engine=engine, optimize=optimize, cache=cache,
            stream_records=stream_records, backend=backend,
        )
        final = target_portion
    elif chosen == "mld":
        perform_mld_pass(
            system, _require_bmmc(bperm, chosen), source_portion, target_portion,
            engine=engine, optimize=optimize, cache=cache,
            stream_records=stream_records, backend=backend,
        )
        final = target_portion
    elif chosen == "inv-mld":
        from repro.core.inverse_mld import perform_inverse_mld_pass

        perform_inverse_mld_pass(
            system, _require_bmmc(bperm, chosen), source_portion, target_portion,
            engine=engine, optimize=optimize, cache=cache,
            stream_records=stream_records, backend=backend,
        )
        final = target_portion
    elif chosen in ("bmmc", "bmmc-unmerged"):
        result = perform_bmmc(
            system,
            _require_bmmc(bperm, chosen),
            source_portion,
            target_portion,
            merge_factors=(chosen == "bmmc"),
            engine=engine,
            optimize=optimize,
            cache=cache,
            stream_records=stream_records, backend=backend,
        )
        final = result.final_portion
    elif chosen == "general":
        result = perform_general_sort(
            system, perm, source_portion, target_portion, engine=engine,
            optimize=optimize, stream_records=stream_records,
            backend=backend,
        )
        final = result.final_portion
    elif chosen == "distribution":
        from repro.core.distribution import perform_distribution_sort

        result = perform_distribution_sort(
            system, perm, source_portion, target_portion, seed=seed,
            engine=engine, optimize=optimize, cache=cache,
            stream_records=stream_records, backend=backend,
        )
        final = result.final_portion
    else:
        raise ValidationError(f"unknown method {method!r}")
    io = system.stats.snapshot() - before
    passes = len(system.stats.passes) - passes_before

    verified = True
    if verify:
        verified = system.verify_permutation(perm, source_values, final)

    report = RunReport(
        method=chosen,
        classes=classes,
        passes=passes,
        io=io,
        final_portion=final,
        verified=verified,
    )
    report.bounds = _bound_table(g, bperm, classes)
    return report


def perform_pipeline(
    system: ParallelDiskSystem,
    perms: list[Permutation],
    source_portion: int = 0,
    target_portion: int = 1,
    verify: bool = True,
    engine: str = "strict",
    optimize: bool = False,
    cache: PlanCache | None = None,
    backend=None,
) -> RunReport:
    """Perform a sequence of permutations as *one* composed run.

    Lemma 1 made operational: instead of running ``pi_1`` then ``pi_2``
    (each paying its own passes), compose their characteristic matrices
    and run the single BMMC permutation ``pi_k o ... o pi_1``.  Data-
    parallel programs chain relayouts constantly (e.g. Gray-code then
    transpose); composition frequently collapses several multi-pass
    permutations into fewer passes than their sum -- sometimes into a
    single one-pass class.

    All stages must be BMMC (or fitted explicit vectors); otherwise the
    composition falls back to an explicit permutation run by the
    general sorter.
    """
    if not perms:
        raise ValidationError("pipeline needs at least one permutation")
    composed: Permutation = perms[0]
    for nxt in perms[1:]:
        if isinstance(nxt, BMMCPermutation) and isinstance(composed, BMMCPermutation):
            composed = nxt.compose(composed)
        else:
            composed = nxt.compose(composed)  # explicit fallback composition
    return perform_permutation(
        system,
        composed,
        source_portion=source_portion,
        target_portion=target_portion,
        verify=verify,
        engine=engine,
        optimize=optimize,
        cache=cache,
        backend=backend,
    )


def perform_requests(
    geometry,
    requests,
    workers: int = 1,
    cache=None,
    cache_maxsize: int = 64,
    queue_capacity: int | None = None,
    queue_policy: str = "reject",
    default_timeout: float | None = None,
    retry=None,
    breaker=None,
    faults=None,
):
    """Run a batch of :class:`~repro.serve.PermutationRequest`\\ s.

    ``workers <= 1`` is the sequential reference semantics: one fresh
    system per request, executed in submission order through
    :func:`perform_permutation` -- exactly what the concurrency suites
    compare the service against.  ``workers > 1`` delegates to
    :class:`~repro.serve.PermutationService` with a shared
    :class:`~repro.pdm.cache.ShardedPlanCache` (or the ``cache`` you
    pass); the robustness knobs (``queue_capacity``/``queue_policy``,
    ``default_timeout``, ``retry``, ``breaker``, ``faults``) pass
    through to the service and are ignored on the sequential path,
    which by construction has no queue to bound.  Returns
    :class:`~repro.serve.ServiceResult` objects in request order
    either way.
    """
    from repro import serve

    if workers > 1:
        with serve.PermutationService(
            geometry,
            workers=workers,
            cache=cache,
            cache_maxsize=cache_maxsize,
            queue_capacity=queue_capacity,
            queue_policy=queue_policy,
            default_timeout=default_timeout,
            retry=retry,
            breaker=breaker,
            faults=faults,
        ) as service:
            return service.run(requests)
    return serve.run_sequential(geometry, requests, cache=cache)


def _as_bmmc(perm: Permutation, classes: set[PermClass]) -> BMMCPermutation | None:
    if isinstance(perm, BMMCPermutation):
        return perm
    if PermClass.BMMC in classes:
        fitted = fit_bmmc(perm.target_vector())
        if fitted is not None:
            return BMMCPermutation(fitted[0], fitted[1], validate=False)
    return None


def _require_bmmc(bperm: BMMCPermutation | None, method: str) -> BMMCPermutation:
    if bperm is None:
        raise ValidationError(f"method {method!r} needs a BMMC permutation")
    return bperm


def _bound_table(g, bperm: BMMCPermutation | None, classes: set[PermClass]) -> dict[str, float]:
    table: dict[str, float] = {
        "one_pass_ios": float(g.one_pass_ios),
        "general_permutation_bound": bounds.general_permutation_bound(g),
    }
    if bperm is not None:
        rg = bperm.rank_gamma(g.b)
        table["rank_gamma"] = float(rg)
        table["theorem3_lower_bound"] = bounds.theorem3_lower_bound(g, rg)
        table["sharpened_lower_bound"] = bounds.sharpened_lower_bound(g, rg)
        table["theorem21_upper_bound"] = float(bounds.theorem21_upper_bound(g, rg))
        table["predicted_ios"] = float(bounds.predicted_ios(bperm.matrix, g))
        table["old_bmmc_bound_ios"] = float(
            bounds.old_bmmc_bound_ios(g, bperm.leading_rank(g.m))
        )
        if PermClass.BPC in classes:
            table["old_bpc_bound_ios"] = float(
                bounds.old_bpc_bound_ios(g, cross_rank(bperm.matrix, g.b, g.m))
            )
    return table
