"""The asymptotically optimal BMMC algorithm (Section 5, Theorem 21).

Planning: classify first -- an MRC or MLD matrix runs in one direct pass
-- otherwise factor per :mod:`repro.core.factoring` and execute the
``g + 1`` merged one-pass factors right-to-left, ping-ponging between
the source and target portions.  The complement vector rides on the
*final* pass ("If the complement vector c is nonzero, we include it as
part of the MRC permutation characterized by the leftmost factor F");
because our one-pass performers handle full affine maps, a direct
MRC/MLD shortcut also carries its complement.

Two planning layers: :func:`plan_bmmc_passes` picks the sequence of
one-pass permutations (the paper's factor schedule), and
:func:`plan_bmmc_io` lowers that schedule to a concrete multi-pass
:class:`~repro.pdm.schedule.IOPlan` -- one plan object for the whole
run, executable strictly or fused.

``merge_factors=False`` is the reproduction's stand-in for the prior
BMMC/BPC algorithms of [4]: every factor of eq. 18 becomes its own pass
(``2g + 2`` passes instead of ``g + 1``), exhibiting the "innermost
factor of 2" that this paper removes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bits.colops import is_mld_form, is_mrc_form
from repro.core.factoring import factor_bmmc
from repro.core.mld_algorithm import plan_mld_pass
from repro.core.mrc_algorithm import plan_mrc_pass
from repro.errors import ValidationError
from repro.pdm.cache import PlanCache, cached_execute, plan_key
from repro.pdm.engine import execute_plan
from repro.pdm.geometry import DiskGeometry
from repro.pdm.schedule import IOPlan
from repro.pdm.system import ParallelDiskSystem
from repro.perms.bmmc import BMMCPermutation

__all__ = [
    "PlanStep",
    "plan_bmmc_passes",
    "plan_bmmc_io",
    "perform_bmmc",
    "BMMCRunResult",
]


@dataclass(frozen=True)
class PlanStep:
    """One pass of the plan: an affine one-pass permutation plus its class."""

    perm: BMMCPermutation
    kind: str  # "mrc", "mld", or "inv-mld"
    name: str


@dataclass
class BMMCRunResult:
    """Outcome of :func:`perform_bmmc`."""

    steps: list[PlanStep]
    final_portion: int
    parallel_ios: int

    @property
    def passes(self) -> int:
        return len(self.steps)


def plan_bmmc_passes(
    perm: BMMCPermutation,
    geometry: DiskGeometry,
    merge_factors: bool = True,
    check: bool = True,
) -> list[PlanStep]:
    """Plan the sequence of one-pass permutations realizing ``perm``.

    The composition of the returned steps (first step applied first)
    equals ``perm`` exactly; with ``check=True`` this is verified by
    matrix recomposition.
    """
    if perm.n != geometry.n:
        raise ValidationError(
            f"permutation is on 2^{perm.n} records, geometry on 2^{geometry.n}"
        )
    b, m = geometry.b, geometry.m
    matrix, c = perm.matrix, perm.complement

    # Direct one-pass shortcuts; MRC preferred (striped both ways), then
    # MLD (Theorem 15), then inverse-MLD (Section 7's one-pass catalog).
    if is_mrc_form(matrix, m):
        return [PlanStep(perm, "mrc", "direct-mrc")]
    if is_mld_form(matrix, b, m):
        return [PlanStep(perm, "mld", "direct-mld")]
    from repro.core.inverse_mld import is_inverse_mld

    if is_inverse_mld(matrix, b, m):
        return [PlanStep(perm, "inv-mld", "direct-inv-mld")]

    fact = factor_bmmc(matrix, b, m, check=check)
    factors = fact.merged if merge_factors else fact.apply_order
    steps: list[PlanStep] = []
    for i, factor in enumerate(factors):
        complement = c if i == len(factors) - 1 else 0
        steps.append(
            PlanStep(
                BMMCPermutation(factor.matrix, complement, validate=False),
                factor.kind,
                factor.name,
            )
        )
    if check:
        composed = steps[0].perm
        for step in steps[1:]:
            composed = step.perm.compose(composed)
        if composed.matrix != matrix or composed.complement != c:
            raise AssertionError("planned passes do not compose to the input permutation")
    return steps


def plan_bmmc_io(
    geometry: DiskGeometry,
    steps: list[PlanStep],
    source_portion: int = 0,
    target_portion: int = 1,
) -> tuple[IOPlan, int]:
    """Lower a pass schedule to one multi-pass I/O plan.

    Passes ping-pong between the two portions; returns the combined
    plan and the portion holding the final output.
    """
    from repro.core.inverse_mld import plan_inverse_mld_pass

    plans: list[IOPlan] = []
    current = source_portion
    for step in steps:
        out = target_portion if current == source_portion else source_portion
        if step.kind == "mrc":
            plans.append(plan_mrc_pass(geometry, step.perm, current, out, label=step.name))
        elif step.kind == "mld":
            plans.append(plan_mld_pass(geometry, step.perm, current, out, label=step.name))
        elif step.kind == "inv-mld":
            plans.append(
                plan_inverse_mld_pass(geometry, step.perm, current, out, label=step.name)
            )
        else:  # pragma: no cover - schedules only emit known kinds
            raise ValidationError(f"unknown pass kind {step.kind!r}")
        current = out
    return IOPlan.concatenate(plans), current


def perform_bmmc(
    system: ParallelDiskSystem,
    perm: BMMCPermutation,
    source_portion: int = 0,
    target_portion: int = 1,
    merge_factors: bool = True,
    plan: list[PlanStep] | None = None,
    engine: str = "strict",
    optimize: bool = False,
    cache: PlanCache | None = None,
    stream_records=None,
    backend=None,
) -> BMMCRunResult:
    """Perform a BMMC permutation on the simulator (Theorem 21's algorithm).

    Passes ping-pong between ``source_portion`` and ``target_portion``;
    the returned result reports which portion holds the output (equal to
    ``target_portion`` when the number of passes is odd).

    ``cache`` keys the compiled multi-pass plan (factoring included) by
    (geometry, matrix, complement); repeated workloads skip
    classification, factoring, planning, fusing, and validation.
    ``optimize`` additionally fuses the ping-pong chain into one
    physical gather/scatter (fast engine only; stats are unchanged).
    """
    before = system.stats.parallel_ios
    if cache is not None and plan is None:
        key = plan_key(
            "bmmc", system.geometry, perm.matrix, perm.complement,
            source_portion, target_portion, merge_factors,
            system.num_portions, system.simple_io,
        )

        def build():
            steps = plan_bmmc_passes(perm, system.geometry, merge_factors=merge_factors)
            io_plan, final = plan_bmmc_io(
                system.geometry, steps, source_portion, target_portion
            )
            return io_plan, {"steps": steps, "final": final}

        compiled, _, _ = cached_execute(
            system, cache, key, build, engine=engine, optimize=optimize,
            stream_records=stream_records, backend=backend,
        )
        return BMMCRunResult(
            steps=compiled.meta["steps"],
            final_portion=compiled.meta["final"],
            parallel_ios=system.stats.parallel_ios - before,
        )
    if plan is None:
        plan = plan_bmmc_passes(perm, system.geometry, merge_factors=merge_factors)
    io_plan, final = plan_bmmc_io(system.geometry, plan, source_portion, target_portion)
    execute_plan(
        system, io_plan, engine=engine, optimize=optimize,
        stream_records=stream_records, backend=backend,
    )
    return BMMCRunResult(
        steps=plan,
        final_portion=final,
        parallel_ios=system.stats.parallel_ios - before,
    )
