"""General-permutation baseline #2: randomized-placement distribution sort.

The striped merge sort (:mod:`repro.core.general`) degrades when
``BD`` approaches ``M`` (its fan-in is ``M/BD - 2``).  Vitter-Shriver's
truly optimal general algorithm instead *distributes* records and
randomizes block placement so reads and writes can always be batched
``D``-wide; this module implements that style:

* LSD radix distribution on the target *block number* (bits ``b..n-1``)
  in digits of ``w`` bits: ``T = ceil((n-b)/w)`` distribution passes.
  Because the keys are a permutation of the address space, every digit
  value occurs exactly ``N/2^w`` times, so bucket extents are exact and
  block-aligned -- no counting pass is needed.
* Intermediate runs live at **randomized physical locations**: each
  completed bucket block is assigned a uniformly random disk with free
  capacity at flush time, and flushes batch up to ``D`` pending blocks
  onto distinct disks.  A logical-to-physical indirection map (metadata,
  like any file system directory) lets the next pass read in logical
  order through a small **prefetch window**, batching reads ``D``-wide
  with high probability.  This randomization is exactly why
  Vitter-Shriver's general algorithm is randomized: deterministic
  placements re-synchronize bucket completion waves onto single disks.
* A final **gather pass** reads the fully sorted (but physically
  scattered) blocks in logical order, fixes the within-block offset
  order in memory, and writes the true target addresses with striped
  writes.

Total: ``T + 1`` passes with near-``2N/BD`` parallel I/Os each (read
batching is probabilistic; the trace summary reports the achieved
parallelism).

The algorithm is *adaptive*: each pass's I/Os depend on the previous
pass's randomized placement map and on the keys materialized so far, so
it cannot be a single static plan.  :func:`plan_distribution_sort`
therefore emits a :class:`~repro.pdm.stage.StagedPlan` -- one declarative
:class:`~repro.pdm.schedule.IOPlan` stage per pass, planned from the
state the prior stages materialized (peeked keys plus the placement
map) -- and every data movement still executes through the plan engines
as counted, memory-checked I/O.  On the canonical ``fill_identity``
input the whole staged schedule is a pure function of ``(geometry,
permutation, digit_bits, prefetch_window, seed)``, so
:func:`perform_distribution_sort` can also materialize and cache the
composed plan like any static planner, with the RNG seed in the cache
key.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from repro.errors import ValidationError
from repro.pdm.cache import PlanCache, cached_execute, plan_key
from repro.pdm.geometry import DiskGeometry
from repro.pdm.schedule import PlanBuilder
from repro.pdm.stage import (
    StagedPlan,
    execute_staged,
    identity_portions,
    materialize_staged,
)
from repro.pdm.system import ParallelDiskSystem
from repro.perms.base import Permutation
from repro.perms.bmmc import BMMCPermutation

__all__ = [
    "perform_distribution_sort",
    "plan_distribution_sort",
    "DistributionSortResult",
    "tune_parameters",
]


@dataclass
class DistributionSortResult:
    passes: int
    digit_bits: int
    prefetch_window: int
    final_portion: int
    parallel_ios: int
    read_ops: int
    write_ops: int

    @property
    def read_parallelism(self) -> float:
        """Blocks per parallel read actually achieved (ideal: D)."""
        return self.blocks_per_pass_read / self.read_ops if self.read_ops else 0.0

    blocks_per_pass_read: int = 0


def tune_parameters(geometry) -> tuple[int, int]:
    """Pick ``(digit_bits, prefetch_window)`` fitting the memory budget.

    Peak residency per distribution pass: bucket buffers ``2^w * B``,
    prefetch window ``W * B``, pending completions up to ``(B + D) * B``.
    """
    g = geometry
    pending_cap = (g.B + g.D) * g.B
    for w in range(max(1, g.m - g.b - 2), 0, -1):
        for window in (2 * g.D, g.D, max(1, g.D // 2), 1):
            if (1 << w) * g.B + window * g.B + pending_cap <= g.M:
                return w, window
    raise ValidationError(
        f"no distribution-sort parameters fit geometry {geometry.describe()}; "
        "use the merge-sort baseline instead"
    )


def plan_distribution_sort(
    geometry: DiskGeometry,
    perm: Permutation,
    source_portion: int = 0,
    target_portion: int = 1,
    digit_bits: int | None = None,
    prefetch_window: int | None = None,
    seed: int = 0,
) -> StagedPlan:
    """Stage emitter for the randomized-placement distribution sort.

    Returns a :class:`~repro.pdm.stage.StagedPlan` of ``T + 1`` stages
    (one per pass).  Each digit stage peeks the current input portion,
    plans the exact prefetcher/placement-writer I/O sequence of the
    hand-written performer -- including identical consumption of the
    seeded RNG, so the placement map and I/O trace are reproducible
    functions of ``seed`` -- and carries the logical-to-physical map
    forward to the next stage.  ``meta`` records ``passes``,
    ``digit_bits``, ``prefetch_window``, and ``final_portion``.
    """
    g = geometry
    auto_w, auto_window = tune_parameters(g)
    w = auto_w if digit_bits is None else digit_bits
    window = auto_window if prefetch_window is None else prefetch_window
    if w < 1 or window < 1:
        raise ValidationError("digit_bits and prefetch_window must be positive")

    total_digit_bits = g.n - g.b
    num_passes = -(-total_digit_bits // w)
    final_portion = target_portion if num_passes % 2 == 0 else source_portion

    def emit(view):
        rng = np.random.default_rng(seed)
        # logical->physical block map of the current input (identity at start)
        map_in = np.arange(g.num_blocks, dtype=np.int64)
        pin, pout = source_portion, target_portion
        for p in range(num_passes):
            shift = g.b + p * w
            bits_here = min(w, g.n - shift)
            plan, map_in = _plan_distribution_pass(
                g, view, perm, pin, map_in, pout, shift, bits_here, window,
                rng, label=f"dist:digit{p}",
            )
            yield plan
            pin, pout = pout, pin
        yield _plan_gather_pass(g, view, perm, pin, map_in, pout, window)

    return StagedPlan(
        g,
        emit,
        meta=dict(
            passes=num_passes + 1,
            digit_bits=w,
            prefetch_window=window,
            final_portion=final_portion,
        ),
    )


def _perm_cache_component(perm: Permutation):
    """A hashable stand-in for the permutation in distribution cache keys."""
    if isinstance(perm, BMMCPermutation):
        return ("bmmc", perm.matrix, perm.complement)
    targets = np.asarray(perm.target_vector(), dtype=np.int64)
    return ("explicit", hashlib.sha256(targets.tobytes()).hexdigest())


def perform_distribution_sort(
    system: ParallelDiskSystem,
    perm: Permutation,
    source_portion: int = 0,
    target_portion: int = 1,
    digit_bits: int | None = None,
    prefetch_window: int | None = None,
    seed: int = 0,
    engine: str = "strict",
    optimize: bool = False,
    cache: PlanCache | None = None,
    stream_records=None,
    backend=None,
) -> DistributionSortResult:
    """Permute by randomized-placement LSD distribution sort.

    Record payloads must be the records' source addresses (the canonical
    ``fill_identity`` input); the record with payload ``v`` ends at
    address ``perm(v)``.

    All I/O flows through staged plans: without ``cache`` the stages are
    planned adaptively from the live system state and executed one at a
    time under ``engine`` (``optimize`` applies the plan-level rewrites
    per stage, fast engine only).  With ``cache`` the staged plan is
    materialized against a pure simulation of the canonical input into
    one composed plan and served through the compiled-plan cache; the
    key includes the RNG ``seed``, so runs with different seeds -- whose
    placement maps differ -- never share an entry.
    """
    g = system.geometry
    staged = plan_distribution_sort(
        g, perm, source_portion, target_portion,
        digit_bits=digit_bits, prefetch_window=prefetch_window, seed=seed,
    )
    meta = staged.meta
    before = system.stats.parallel_ios
    reads_before = system.stats.parallel_reads
    writes_before = system.stats.parallel_writes
    blocks_read_before = system.stats.blocks_read

    if cache is not None:
        key = plan_key(
            "distribution", g, _perm_cache_component(perm),
            source_portion, target_portion,
            meta["digit_bits"], meta["prefetch_window"], seed,
            system.num_portions, system.simple_io,
        )
        cached_execute(
            system, cache, key,
            lambda: (
                materialize_staged(
                    staged,
                    identity_portions(g, system.num_portions, source_portion),
                    simple_io=system.simple_io,
                ),
                dict(meta),
            ),
            engine=engine, optimize=optimize, stream_records=stream_records,
            backend=backend,
        )
    else:
        execute_staged(
            system, staged, engine=engine, optimize=optimize,
            stream_records=stream_records, backend=backend,
        )

    return DistributionSortResult(
        passes=meta["passes"],
        digit_bits=meta["digit_bits"],
        prefetch_window=meta["prefetch_window"],
        final_portion=meta["final_portion"],
        parallel_ios=system.stats.parallel_ios - before,
        read_ops=system.stats.parallel_reads - reads_before,
        write_ops=system.stats.parallel_writes - writes_before,
        blocks_per_pass_read=system.stats.blocks_read - blocks_read_before,
    )


# --------------------------------------------------------------------------
# the stage planners
# --------------------------------------------------------------------------

def _plan_distribution_pass(
    g, view, perm, pin, map_in, pout, shift, bits, window, rng, label
):
    """Plan one LSD digit pass from the materialized input state.

    Mirrors the hand-written pass exactly -- same prefetcher reads, same
    bucket fills, same randomized flush placements (identical RNG
    consumption) -- but emits builder steps whose write sources are
    read-stream slots instead of moving data itself.  Returns the plan
    and the pass's logical-to-physical placement map.
    """
    values_in = view.peek(pin, 0, g.N)  # physical-address-order snapshot
    builder = PlanBuilder(g)
    builder.begin_pass(label)
    num_buckets = 1 << bits
    bucket_blocks = g.num_blocks // num_buckets
    mask = np.int64(num_buckets - 1)

    reader = _PlannedPrefetcher(builder, pin, values_in, map_in, window)
    writer = _PlannedPlacementWriter(builder, pout, rng)

    # bucket fill buffers: read-stream slots, in record order
    buf_slots = np.empty((num_buckets, g.B), dtype=np.int64)
    fill = np.zeros(num_buckets, dtype=np.int64)
    completed = np.zeros(num_buckets, dtype=np.int64)

    for logical in range(g.num_blocks):
        values, slots = reader.get(logical)
        keys = np.asarray(perm.apply_array(values.astype(np.uint64)), dtype=np.int64)
        digits = (keys >> np.int64(shift)) & mask
        order = np.argsort(digits, kind="stable")
        sorted_digits = digits[order]
        sorted_slots = slots[order]
        uniq, starts = np.unique(sorted_digits, return_index=True)
        starts = list(starts) + [len(sorted_digits)]
        for idx, bucket in enumerate(uniq):
            chunk = sorted_slots[starts[idx] : starts[idx + 1]]
            bucket = int(bucket)
            pos = 0
            while pos < len(chunk):
                take = min(g.B - int(fill[bucket]), len(chunk) - pos)
                buf_slots[bucket, fill[bucket] : fill[bucket] + take] = chunk[
                    pos : pos + take
                ]
                fill[bucket] += take
                pos += take
                if fill[bucket] == g.B:
                    out_logical = bucket * bucket_blocks + int(completed[bucket])
                    writer.submit(out_logical, buf_slots[bucket].copy())
                    completed[bucket] = completed[bucket] + 1
                    fill[bucket] = 0
        writer.flush(min_pending=g.D)
    writer.flush(min_pending=1)
    assert not fill.any(), "buckets must drain exactly (block-aligned extents)"
    return builder.build(), writer.logical_to_physical()


def _plan_gather_pass(g, view, perm, pin, map_in, pout, window, label="dist:gather"):
    """Plan the final pass: logical-order reads, in-memory offset fix,
    striped writes to the true target addresses."""
    values_in = view.peek(pin, 0, g.N)
    builder = PlanBuilder(g)
    builder.begin_pass(label)
    reader = _PlannedPrefetcher(builder, pin, values_in, map_in, window)
    stripe_slots = np.empty((g.D, g.B), dtype=np.int64)
    for logical in range(g.num_blocks):
        values, slots = reader.get(logical)
        keys = np.asarray(perm.apply_array(values.astype(np.uint64)), dtype=np.int64)
        # all records of this logical block share one target block; order
        # them by target offset in memory (free -- the paper's in-memory
        # permutation step)
        order = np.argsort(keys)
        target_block = int(keys[order[0]]) >> g.b
        assert int(keys[order[-1]]) >> g.b == target_block, "not fully sorted"
        stripe_slots[logical % g.D] = slots[order]
        if logical % g.D == g.D - 1:
            # copy: the builder keeps a reference, the buffer is reused
            builder.write_stripe(pout, logical // g.D, stripe_slots.reshape(-1).copy())
    return builder.build()


class _PlannedPrefetcher:
    """In-order consumption with bounded lookahead and D-wide batching.

    Plans the reads the runtime prefetcher issued; ``get`` hands back a
    logical block's record values (from the stage-start snapshot; valid
    because a pass never re-reads a block) and their stream slots.
    """

    def __init__(self, builder, portion, values, logical_to_physical, window):
        self.builder = builder
        self.portion = portion
        self.values = values
        self.map = logical_to_physical
        self.window = max(1, window)
        self.buffer: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        self.cursor = 0  # next logical block the consumer will ask for
        self.total = len(logical_to_physical)

    def get(self, logical: int) -> tuple[np.ndarray, np.ndarray]:
        assert logical == self.cursor, "consumption must be sequential"
        while logical not in self.buffer:
            self._issue_read(logical)
        self.cursor += 1
        return self.buffer.pop(logical)

    def _issue_read(self, needed: int) -> None:
        g = self.builder.geometry
        batch: list[int] = []
        used: set[int] = set()
        end = min(needed + self.window, self.total)
        for ℓ in range(needed, end):
            if ℓ in self.buffer:
                continue
            disk = int(g.block_disk(int(self.map[ℓ])))
            if disk in used:
                continue
            batch.append(ℓ)
            used.add(disk)
            if len(batch) == g.D:
                break
        physical = [int(self.map[ℓ]) for ℓ in batch]
        slots = self.builder.read(self.portion, physical)
        for i, ℓ in enumerate(batch):
            p = physical[i]
            self.buffer[ℓ] = (
                self.values[p * g.B : (p + 1) * g.B],
                slots[i * g.B : (i + 1) * g.B],
            )


class _PlannedPlacementWriter:
    """Buffers completed blocks; flushes batches to random distinct disks.

    Consumes the RNG exactly as the runtime writer did (per-disk free-
    slot shuffles at construction, one ``choice`` per flushed batch), so
    a seed determines the same placement map the hand-written performer
    produced.
    """

    def __init__(self, builder, portion, rng):
        self.builder = builder
        self.portion = portion
        self.rng = rng
        g = builder.geometry
        self.free_slots = [list(range(g.num_stripes)) for _ in range(g.D)]
        for slots in self.free_slots:
            rng.shuffle(slots)
        self.pending: list[tuple[int, np.ndarray]] = []
        self._map = np.full(g.num_blocks, -1, dtype=np.int64)

    def submit(self, logical: int, slots: np.ndarray) -> None:
        self.pending.append((logical, slots))

    def flush(self, min_pending: int) -> None:
        g = self.builder.geometry
        while len(self.pending) >= min_pending and self.pending:
            batch = self.pending[: g.D]
            self.pending = self.pending[g.D :]
            disks_with_space = [d for d in range(g.D) if self.free_slots[d]]
            if len(batch) > len(disks_with_space):  # pragma: no cover
                raise AssertionError("placement capacity exhausted early")
            chosen = self.rng.choice(
                len(disks_with_space), size=len(batch), replace=False
            )
            block_ids = []
            for (logical, _slots), pick in zip(batch, chosen):
                disk = disks_with_space[int(pick)]
                stripe = self.free_slots[disk].pop()
                physical = stripe * g.D + disk
                self._map[logical] = physical
                block_ids.append(physical)
            self.builder.write(
                self.portion,
                block_ids,
                np.concatenate([slots for _logical, slots in batch]),
            )

    def logical_to_physical(self) -> np.ndarray:
        assert (self._map >= 0).all(), "every logical block must be placed"
        return self._map
