"""The Aggarwal-Vitter potential argument of Section 2, executable.

Definitions (for target permutation ``pi`` and block size ``B``):

* *target group* ``i`` = the records destined for target block ``i``;
* ``f(x) = x lg x`` (``f(0) = 0``);
* togetherness of a block: ``G_block(k) = sum_i f(g_block(i, k))`` where
  ``g_block(i, k)`` counts group-``i`` records in block ``k``;
* togetherness of memory: ``G_mem = sum_i f(g_mem(i))``;
* potential ``Phi = G_mem + sum_k G_block(k)``.

Facts the tracker verifies *live* against any algorithm run under the
simulator's simple-I/O discipline:

* a parallel read increases ``Phi`` by at most ``D * Delta_max`` with
  ``Delta_max <= B (2/(e ln 2) + lg(M/B))`` (Lemma 6 / Section 7);
* a write of full target blocks never increases ``Phi``;
* the final potential is ``N lg B``;
* the initial potential for a BMMC permutation on the canonical layout
  is ``N (lg B - rank gamma)`` (eq. 9, via Lemma 10).

Together these re-derive Theorem 3's lower bound numerically:
``t >= (Phi(t) - Phi(0)) / (D * Delta_max)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.core import bounds
from repro.pdm.system import EMPTY, IOEvent, ParallelDiskSystem
from repro.perms.base import Permutation

__all__ = ["f", "compute_potential", "PotentialTracker", "PotentialDelta"]


def f(x: float) -> float:
    """``x lg x`` with ``f(0) = 0`` -- the togetherness weight."""
    if x <= 0:
        return 0.0
    return x * math.log2(x)


def _group_counts(groups: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    uniq, counts = np.unique(groups, return_counts=True)
    return uniq, counts


def compute_potential(
    system: ParallelDiskSystem,
    perm: Permutation,
    portions: tuple[int, ...] | None = None,
    memory_groups: np.ndarray | None = None,
) -> float:
    """Potential of the system's current state from scratch.

    Scans all (or the given) portions block by block plus an optional
    array of group numbers for records currently in memory.  Used by
    tests to validate the tracker's incremental bookkeeping.
    """
    g = system.geometry
    if portions is None:
        portions = tuple(range(system.num_portions))
    group_of = np.asarray(perm.target_vector(), dtype=np.int64) >> g.b
    phi = 0.0
    for portion in portions:
        values = system.portion_values(portion)
        for k in range(g.num_blocks):
            block = values[k * g.B : (k + 1) * g.B]
            block = block[block != EMPTY]
            if block.size == 0:
                continue
            _, counts = _group_counts(group_of[block])
            phi += sum(f(int(c)) for c in counts)
    if memory_groups is not None and memory_groups.size:
        _, counts = _group_counts(memory_groups)
        phi += sum(f(int(c)) for c in counts)
    return phi


@dataclass
class PotentialDelta:
    """One I/O's effect on the potential."""

    kind: str  # "read" | "write"
    num_blocks: int
    delta: float


class PotentialTracker:
    """Incremental potential bookkeeping attached to a simulator.

    Requires the system to run with ``simple_io=True`` (reads consume,
    writes fill empty blocks) so that exactly one copy of each record
    exists -- the normal form of Lemma 4 under which the potential
    argument is stated.
    """

    def __init__(self, system: ParallelDiskSystem, perm: Permutation) -> None:
        if not system.simple_io:
            raise ValueError("potential tracking requires simple_io=True")
        self.system = system
        self.perm = perm
        g = system.geometry
        self._b = g.b
        self.group_of = np.asarray(perm.target_vector(), dtype=np.int64) >> g.b
        # g_mem: per-group record counts currently in memory.
        self.g_mem = np.zeros(g.num_blocks, dtype=np.int64)
        self.g_mem_potential = 0.0
        # per-(portion, block) group-count dictionaries.
        self.block_counts: dict[tuple[int, int], dict[int, int]] = {}
        self.block_potential = 0.0
        self.history: list[PotentialDelta] = []
        self._rescan()
        system.add_observer(self._on_event)

    # ------------------------------------------------------------- lifecycle
    def detach(self) -> None:
        self.system.remove_observer(self._on_event)

    def _rescan(self) -> None:
        g = self.system.geometry
        self.block_counts.clear()
        self.block_potential = 0.0
        for portion in range(self.system.num_portions):
            values = self.system.portion_values(portion)
            occupied = values != EMPTY
            if not occupied.any():
                continue
            for k in range(g.num_blocks):
                block = values[k * g.B : (k + 1) * g.B]
                block = block[block != EMPTY]
                if block.size == 0:
                    continue
                uniq, counts = _group_counts(self.group_of[block])
                d = {int(u): int(c) for u, c in zip(uniq, counts)}
                self.block_counts[(portion, k)] = d
                self.block_potential += sum(f(c) for c in d.values())

    # -------------------------------------------------------------- tracking
    @property
    def potential(self) -> float:
        return self.block_potential + self.g_mem_potential

    def _on_event(self, event: IOEvent) -> None:
        before = self.potential
        if event.kind == "read":
            self._apply_read(event)
        else:
            self._apply_write(event)
        self.history.append(
            PotentialDelta(event.kind, event.block_ids.size, self.potential - before)
        )

    def _apply_read(self, event: IOEvent) -> None:
        for bid, block_values in zip(event.block_ids, event.values):
            key = (event.portion, int(bid))
            counts = self.block_counts.pop(key, None)
            if counts is None:
                continue  # pragma: no cover - simple IO forbids empty reads
            self.block_potential -= sum(f(c) for c in counts.values())
            for group, c in counts.items():
                old = self.g_mem[group]
                self.g_mem[group] = old + c
                self.g_mem_potential += f(old + c) - f(old)

    def _apply_write(self, event: IOEvent) -> None:
        for bid, block_values in zip(event.block_ids, event.values):
            groups = self.group_of[block_values]
            uniq, counts = _group_counts(groups)
            d = {int(u): int(c) for u, c in zip(uniq, counts)}
            key = (event.portion, int(bid))
            self.block_counts[key] = d
            self.block_potential += sum(f(c) for c in d.values())
            for group, c in d.items():
                old = self.g_mem[group]
                self.g_mem[group] = old - c
                self.g_mem_potential += f(old - c) - f(old)

    # ------------------------------------------------------------ assertions
    def max_read_delta(self) -> float:
        return max((h.delta for h in self.history if h.kind == "read"), default=0.0)

    def max_write_delta(self) -> float:
        return max((h.delta for h in self.history if h.kind == "write"), default=0.0)

    def verify_bounds(self, tolerance: float = 1e-9) -> None:
        """Assert the Section 7 per-I/O potential bounds over the history."""
        g = self.system.geometry
        cap = g.D * bounds.delta_max(g)
        worst_read = self.max_read_delta()
        if worst_read > cap + tolerance:
            raise AssertionError(
                f"a read increased the potential by {worst_read}, above D*Delta_max={cap}"
            )
        worst_write = self.max_write_delta()
        if worst_write > tolerance:
            raise AssertionError(
                f"a write increased the potential by {worst_write}; writes must not"
            )
