"""THM3: the universal lower bound, swept over rank gamma.

For each achievable ``rank gamma`` we generate a BMMC instance with that
exact rank, run the Theorem 21 algorithm, and report measured parallel
I/Os against the Theorem 3 expression and the sharpened Section 7 form.
Asymptotic tightness = the measured/LB ratio stays bounded by a small
constant across the whole sweep (and across geometries).
"""

import numpy as np

from repro.bits.random import random_bmmc_with_rank_gamma
from repro.core import bounds
from repro.core.bmmc_algorithm import perform_bmmc
from repro.pdm.geometry import DiskGeometry
from repro.perms.bmmc import BMMCPermutation

from benchmarks.conftest import BENCH_GEOMETRY, SEED, fresh_system, write_result


def _sweep(geometry):
    rows = []
    for r in range(min(geometry.b, geometry.n - geometry.b) + 1):
        a = random_bmmc_with_rank_gamma(
            geometry.n, geometry.b, r, np.random.default_rng(SEED + r)
        )
        perm = BMMCPermutation(a)
        system = fresh_system(geometry)
        result = perform_bmmc(system, perm)
        assert system.verify_permutation(
            perm, np.arange(geometry.N), result.final_portion
        )
        lb = bounds.theorem3_lower_bound(geometry, r)
        sharp = bounds.sharpened_lower_bound(geometry, r)
        ub = bounds.theorem21_upper_bound(geometry, r)
        measured = result.parallel_ios
        assert sharp <= measured <= ub
        rows.append(
            [
                r,
                measured,
                f"{lb:.1f}",
                f"{sharp:.1f}",
                ub,
                f"{measured / lb:.2f}",
            ]
        )
    return rows


def test_theorem3_rank_sweep(benchmark):
    geometry = DiskGeometry(**BENCH_GEOMETRY)
    rows = benchmark.pedantic(lambda: _sweep(geometry), rounds=1, iterations=1)
    # tightness: ratio bounded by a small constant over the whole sweep
    ratios = [float(row[-1]) for row in rows]
    assert max(ratios) <= 6.0
    write_result(
        "THM3",
        f"Theorem 3 lower-bound sweep on {geometry.describe()}",
        ["rank gamma", "measured I/Os", "Thm 3 LB", "sharpened LB", "Thm 21 UB", "measured/LB"],
        rows,
    )
    benchmark.extra_info["max_ratio"] = max(ratios)


def test_theorem3_across_geometries(benchmark):
    """The bounded-ratio property must hold across geometry shapes, not
    just one configuration."""
    geometries = [
        DiskGeometry(N=2**14, B=2**3, D=2**2, M=2**8),
        DiskGeometry(N=2**16, B=2**5, D=2**2, M=2**9),
        DiskGeometry(N=2**15, B=2**2, D=2**4, M=2**8),
        DiskGeometry(N=2**14, B=2**4, D=2**0, M=2**7),
    ]

    def sweep_all():
        out = []
        for g in geometries:
            r = min(g.b, g.n - g.b)
            a = random_bmmc_with_rank_gamma(g.n, g.b, r, np.random.default_rng(SEED))
            perm = BMMCPermutation(a)
            system = fresh_system(g)
            result = perform_bmmc(system, perm)
            assert system.verify_permutation(perm, np.arange(g.N), result.final_portion)
            lb = bounds.theorem3_lower_bound(g, r)
            out.append((g.describe(), r, result.parallel_ios, lb))
        return out

    data = benchmark.pedantic(sweep_all, rounds=1, iterations=1)
    rows = []
    for desc, r, measured, lb in data:
        ratio = measured / lb
        assert ratio <= 6.0
        rows.append([desc, r, measured, f"{lb:.1f}", f"{ratio:.2f}"])
    write_result(
        "THM3-geometries",
        "Theorem 3 tightness across geometries (max-rank instances)",
        ["geometry", "rank gamma", "measured I/Os", "Thm 3 LB", "ratio"],
        rows,
    )
