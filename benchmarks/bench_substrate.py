"""SUBSTRATE: micro-benchmarks of the GF(2) kernels and the simulator.

The paper notes its on-line computations are cheap -- "even serial
algorithms for the harder computations take time polynomial in lg N, in
fact O(lg^3 N)" -- and all data structures are at most lg N x lg N.
These benches time the actual kernels (rank, inverse, factoring,
vectorized affine application) plus a full simulator pass, so the cost
claims of Sections 5-6 are backed by measurements.
"""

import numpy as np

from repro.bits import bitops, linalg
from repro.bits.random import random_nonsingular
from repro.core.factoring import factor_bmmc
from repro.pdm.geometry import DiskGeometry
from repro.perms.bmmc import BMMCPermutation
from repro.perms.library import gray_code

from benchmarks.conftest import BENCH_GEOMETRY, SEED, fresh_system


N_BITS = 32  # a 4-billion-record address space: matrices are 32x32


def test_gf2_rank(benchmark):
    a = random_nonsingular(N_BITS, np.random.default_rng(SEED))
    assert benchmark(linalg.rank, a) == N_BITS


def test_gf2_inverse(benchmark):
    a = random_nonsingular(N_BITS, np.random.default_rng(SEED))
    inv = benchmark(linalg.inverse, a)
    assert (a @ inv).is_identity


def test_gf2_kernel_basis(benchmark):
    from repro.bits.random import random_matrix_with_rank

    a = random_matrix_with_rank(N_BITS, N_BITS, N_BITS // 2, np.random.default_rng(SEED))
    basis = benchmark(linalg.kernel_basis, a)
    assert basis.num_cols == N_BITS - N_BITS // 2


def test_factoring_large_address_space(benchmark):
    """Factoring a 32x32 characteristic matrix (the per-permutation planning
    cost of the Theorem 21 algorithm -- all O(lg^3 N) work)."""
    a = random_nonsingular(N_BITS, np.random.default_rng(SEED))
    b, m = 4, 20
    fact = benchmark(factor_bmmc, a, b, m)
    assert fact.product_of_merged() == a


def test_vectorized_affine_application(benchmark):
    """y = A x (+) c over 2^16 addresses: the data-movement hot path."""
    n = 16
    a = random_nonsingular(n, np.random.default_rng(SEED))
    xs = np.arange(1 << n, dtype=np.uint64)
    ys = benchmark(bitops.apply_affine, a, 0b1011, xs)
    assert np.unique(np.asarray(ys)).size == 1 << n


def test_simulator_full_pass(benchmark):
    """One full MRC pass over N=2^16 records: the simulator's unit of work."""
    g = DiskGeometry(**BENCH_GEOMETRY)
    perm = gray_code(g.n)

    def run():
        from repro.core.mrc_algorithm import perform_mrc_pass

        system = fresh_system(g)
        perform_mrc_pass(system, perm, 0, 1)
        return system

    system = benchmark(run)
    assert system.stats.parallel_ios == g.one_pass_ios


def test_detection_formation_only(benchmark):
    """Candidate formation alone (the ceil((lg(N/B)+1)/D) reads)."""
    from repro.core.detect import detect_bmmc, store_target_vector
    from repro.pdm.system import ParallelDiskSystem

    g = DiskGeometry(**BENCH_GEOMETRY)
    perm = BMMCPermutation(random_nonsingular(g.n, np.random.default_rng(SEED)))
    system = ParallelDiskSystem(g, simple_io=False)
    store_target_vector(system, perm)

    result = benchmark(detect_bmmc, system, 0, False)
    assert result.matrix == perm.matrix
