"""EXT-FFT: the out-of-core FFT application's I/O ledger.

The FFT is the paper's marquee motivation for bit-defined permutations.
This bench measures the complete cost of computing an ``N``-point FFT
with disk-resident data -- BMMC staging passes plus butterfly compute
passes -- as the number of superlevels ``ceil(lg N / lg M)`` grows, and
checks the result against ``numpy.fft`` every time.
"""

import numpy as np

from repro.apps.fft import out_of_core_fft
from repro.pdm.geometry import DiskGeometry

from benchmarks.conftest import SEED, write_result


def test_fft_io_ledger(benchmark):
    cases = [
        DiskGeometry(N=2**10, B=2**2, D=2**1, M=2**5),   # 2 superlevels
        DiskGeometry(N=2**12, B=2**2, D=2**2, M=2**4),   # 3 superlevels
        DiskGeometry(N=2**14, B=2**3, D=2**2, M=2**5),   # 3 superlevels, bigger
    ]

    def sweep():
        out = []
        rng = np.random.default_rng(SEED)
        for g in cases:
            x = rng.standard_normal(g.N) + 1j * rng.standard_normal(g.N)
            result = out_of_core_fft(x, g)
            err = float(np.max(np.abs(result.values - np.fft.fft(x))))
            out.append((g, result, err))
        return out

    data = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = []
    for g, result, err in data:
        assert err < 1e-8
        assert result.compute_ios == result.superlevels * g.one_pass_ios
        rows.append(
            [
                f"2^{g.n}",
                f"2^{g.m}",
                result.superlevels,
                result.staging_ios,
                result.compute_ios,
                result.total_ios,
                f"{err:.1e}",
            ]
        )
    write_result(
        "EXT-FFT",
        "Out-of-core FFT: staging (BMMC) + compute I/Os, verified vs numpy.fft",
        ["N", "M", "superlevels", "staging I/Os", "compute I/Os", "total", "max err"],
        rows,
    )


def test_fft_staging_dominated_by_bmmc_quality(benchmark):
    """The staging permutations are where the Theorem 21 algorithm earns
    its keep: compare total FFT I/Os using the optimal algorithm versus
    staging through the general merge sort."""
    from repro.core.general import perform_general_sort
    from repro.core.bmmc_algorithm import plan_bmmc_passes
    from repro.core import bounds
    from repro.perms.library import bit_reversal

    g = DiskGeometry(N=2**14, B=2**3, D=2**2, M=2**5)
    perm = bit_reversal(g.n)

    def measure():
        plan = plan_bmmc_passes(perm, g)
        bmmc_ios = len(plan) * g.one_pass_ios
        sort_ios = bounds.merge_sort_passes(g) * g.one_pass_ios
        return bmmc_ios, sort_ios

    bmmc_ios, sort_ios = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert bmmc_ios < sort_ios
    write_result(
        "EXT-FFT-staging",
        "Bit-reversal staging: Theorem 21 algorithm vs general sort",
        ["BMMC staging I/Os", "general-sort staging I/Os", "savings"],
        [[bmmc_ios, sort_ios, f"{sort_ios / bmmc_ios:.2f}x"]],
    )
