"""SEC6: run-time BMMC detection cost.

Measured parallel reads must equal ``N/BD + ceil((lg(N/B)+1)/D)`` for
BMMC inputs (formation + full verification) and be far cheaper for
typical non-BMMC inputs (early exit).  Also sweeps D to show the
formation schedule's ``ceil((lg(N/B)+1)/D)`` parallelism.
"""

import numpy as np

from repro.bits.random import random_nonsingular
from repro.core import bounds
from repro.core.detect import detect_bmmc, store_target_vector
from repro.pdm.geometry import DiskGeometry
from repro.pdm.system import ParallelDiskSystem
from repro.perms.bmmc import BMMCPermutation
from repro.perms.library import permuted_gray_code

from benchmarks.conftest import BENCH_GEOMETRY, SEED, write_result


def _detection_system(geometry, perm_or_targets):
    s = ParallelDiskSystem(geometry, simple_io=False)
    store_target_vector(s, perm_or_targets)
    return s


def test_detection_cost_positive(benchmark):
    g = DiskGeometry(**BENCH_GEOMETRY)
    rng = np.random.default_rng(SEED)
    perm = BMMCPermutation(random_nonsingular(g.n, rng), int(rng.integers(0, g.N)))
    system = _detection_system(g, perm)

    def run():
        system.stats = type(system.stats)()
        return detect_bmmc(system)

    result = benchmark(run)
    assert result.is_bmmc
    assert result.matrix == perm.matrix and result.complement == perm.complement
    bound = bounds.detection_read_bound(g)
    assert result.total_reads == bound
    write_result(
        "SEC6-positive",
        f"Detection cost on a BMMC vector, {g.describe()}",
        ["formation reads", "verification reads", "total", "paper bound"],
        [[result.formation_reads, result.verification_reads, result.total_reads, bound]],
    )
    benchmark.extra_info["reads"] = result.total_reads


def test_detection_cost_negative(benchmark):
    """Non-BMMC vectors: 'usually far fewer' reads via early exit."""
    g = DiskGeometry(**BENCH_GEOMETRY)
    rng = np.random.default_rng(SEED + 1)
    targets = rng.permutation(g.N)
    system = _detection_system(g, targets)

    def run():
        system.stats = type(system.stats)()
        return detect_bmmc(system)

    result = benchmark(run)
    bound = bounds.detection_read_bound(g)
    assert not result.is_bmmc
    assert result.total_reads < bound // 4
    write_result(
        "SEC6-negative",
        f"Detection cost on a random (non-BMMC) vector, {g.describe()}",
        ["reason", "total reads", "paper bound"],
        [[result.reason, result.total_reads, bound]],
    )


def test_detection_disk_parallelism_sweep(benchmark):
    """Formation reads scale as ceil((lg(N/B)+1)/D) as disks are added."""
    cases = [
        DiskGeometry(N=2**14, B=2**3, D=2**d, M=2**9) for d in range(0, 5)
    ]

    def sweep():
        out = []
        for g in cases:
            perm = BMMCPermutation(random_nonsingular(g.n, np.random.default_rng(SEED)))
            system = _detection_system(g, perm)
            result = detect_bmmc(system)
            assert result.is_bmmc
            out.append((g, result))
        return out

    data = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = []
    for g, result in data:
        expected = bounds.detection_formation_reads(g)
        assert result.formation_reads == expected
        assert result.total_reads == bounds.detection_read_bound(g)
        rows.append([g.D, result.formation_reads, expected, result.total_reads])
    write_result(
        "SEC6-parallelism",
        "Formation reads vs. D (N=2^14, B=2^3): ceil((lg(N/B)+1)/D)",
        ["D", "formation reads", "formula", "total reads"],
        rows,
    )


def test_detection_enables_fast_path(benchmark):
    """The paper's Gray-code-variant motivation: detection recognizes
    Pi G Pi^T (not obviously any special class) and recovers its matrix,
    unlocking the Theorem 21 algorithm instead of general sorting."""
    g = DiskGeometry(**BENCH_GEOMETRY)
    perm = permuted_gray_code(g.n, list(np.random.default_rng(SEED).permutation(g.n)))
    system = _detection_system(g, perm)

    result = benchmark.pedantic(lambda: detect_bmmc(system), rounds=1, iterations=1)
    assert result.is_bmmc
    from repro.core.bmmc_algorithm import plan_bmmc_passes

    plan = plan_bmmc_passes(result.permutation(), g)
    detection_plus_run = result.total_reads + len(plan) * g.one_pass_ios
    general = bounds.merge_sort_passes(g) * g.one_pass_ios
    write_result(
        "SEC6-fastpath",
        "Permuted Gray code: detect + BMMC algorithm vs. blind general sort",
        ["detection reads", "BMMC passes", "detect+run I/Os", "general-sort I/Os"],
        [[result.total_reads, len(plan), detection_plus_run, general]],
    )
    assert detection_plus_run < general
