"""FIG1 / FIG2: regenerate the paper's model figures.

Figure 1 -- the layout of N=64 records on D=8 disks with B=2 -- and
Figure 2 -- the bit-field decomposition for n=13, b=3, d=4, m=8, s=6 --
are reproduced exactly and checked cell-for-cell / field-for-field
against the values printed in the paper.
"""

import numpy as np

from repro.pdm.geometry import DiskGeometry
from repro.pdm.layout import figure1_table, render_figure1, render_figure2

from benchmarks.conftest import write_result


def test_figure1_layout(benchmark):
    g = DiskGeometry(N=64, B=2, D=8, M=32)
    table = benchmark(figure1_table, g)

    # The paper's Figure 1, row by row.
    paper_rows = {
        0: list(range(0, 16)),
        1: list(range(16, 32)),
        2: list(range(32, 48)),
        3: list(range(48, 64)),
    }
    for stripe, expected in paper_rows.items():
        assert table[stripe].reshape(-1).tolist() == expected

    rows = []
    for stripe in range(4):
        rows.append(
            [f"stripe {stripe}"]
            + [" ".join(str(v) for v in table[stripe, d]) for d in range(8)]
        )
    text = write_result(
        "FIG1",
        "Layout of N=64 records, B=2, D=8 (paper Figure 1, matched exactly)",
        ["", *[f"D{d}" for d in range(8)]],
        rows,
    )
    print("\n" + render_figure1(g))
    benchmark.extra_info["matches_paper"] = True


def test_figure2_fields(benchmark):
    g = DiskGeometry(N=2**13, B=2**3, D=2**4, M=2**8)
    text = benchmark(render_figure2, g)

    assert (g.n, g.b, g.d, g.m, g.s) == (13, 3, 4, 8, 6)
    # Field windows exactly as drawn in Figure 2.
    checks = [
        ("offset", range(0, 3)),
        ("disk", range(3, 7)),
        ("stripe", range(7, 13)),
    ]
    lines = text.splitlines()[2:]
    for name, window in checks:
        for k in window:
            assert name in lines[k], f"bit {k} should be in field {name}"
    for k in range(8, 13):
        assert "memoryload" in lines[k]
    for k in range(3, 8):
        assert "relative block" in lines[k]

    rows = [
        ["offset", "x0..x2", "b = 3 bits"],
        ["disk", "x3..x6", "d = 4 bits"],
        ["stripe", "x7..x12", "s = 6 bits"],
        ["relative block number", "x3..x7", "m - b = 5 bits"],
        ["memoryload number", "x8..x12", "n - m = 5 bits"],
    ]
    write_result(
        "FIG2",
        "Address fields for n=13, b=3, d=4, m=8 (paper Figure 2, matched exactly)",
        ["field", "bits", "width"],
        rows,
    )
    print("\n" + text)
    benchmark.extra_info["matches_paper"] = True
