"""ABL-MERGE: ablation of the Theorem 17/18 factor merging.

This paper improves the BMMC/BPC algorithms of [4] in two ways: the
factoring is driven by ``rank gamma`` rather than cross-ranks or
``H(N,M,B)``, and the MLD class lets pairs of factors merge into single
passes ("reduces the innermost factor of 2 in the above bound to a
factor of 1").  Disabling the merge (`merge_factors=False`) runs each
eq. 18 factor as its own pass -- a faithful stand-in for the structural
overhead of [4] -- and the measured cost doubles (up to the shared
endpoints).  Also compares against the closed-form bounds of [4].
"""

import numpy as np

from repro.bits import linalg
from repro.bits.random import random_bmmc_with_rank_gamma
from repro.core import bounds
from repro.core.bmmc_algorithm import perform_bmmc
from repro.pdm.geometry import DiskGeometry
from repro.perms.bmmc import BMMCPermutation

from benchmarks.conftest import BENCH_GEOMETRY, SEED, fresh_system, write_result


GEOMETRY = DiskGeometry(**BENCH_GEOMETRY)


def test_merge_ablation(benchmark):
    g = GEOMETRY

    def sweep():
        out = []
        for r in range(min(g.b, g.n - g.b) + 1):
            a = random_bmmc_with_rank_gamma(g.n, g.b, r, np.random.default_rng(SEED + r))
            perm = BMMCPermutation(a)
            s1 = fresh_system(g)
            merged = perform_bmmc(s1, perm, merge_factors=True)
            assert s1.verify_permutation(perm, np.arange(g.N), merged.final_portion)
            s2 = fresh_system(g)
            unmerged = perform_bmmc(s2, perm, merge_factors=False)
            assert s2.verify_permutation(perm, np.arange(g.N), unmerged.final_portion)
            out.append((r, perm, merged, unmerged))
        return out

    data = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = []
    for r, perm, merged, unmerged in data:
        if merged.passes > 1:
            # factored path: g+1 merged vs 2g+2 unmerged -- exactly 2x
            assert unmerged.passes == 2 * merged.passes
        rows.append(
            [
                r,
                merged.passes,
                unmerged.passes,
                merged.parallel_ios,
                unmerged.parallel_ios,
                f"{unmerged.parallel_ios / merged.parallel_ios:.2f}x",
            ]
        )
    write_result(
        "ABL-MERGE",
        f"Factor-merging ablation on {g.describe()} (unmerged ~ the 2x of [4])",
        ["rank gamma", "merged passes", "unmerged passes", "merged I/Os", "unmerged I/Os", "overhead"],
        rows,
    )


def test_new_vs_old_closed_forms(benchmark):
    """Closed-form comparison across the memory regimes of eq. 1: the new
    bound never exceeds the old, and wins big when H(N,M,B) is large."""
    regimes = [
        ("M <= sqrt(N)", DiskGeometry(N=2**18, B=2**3, D=2**2, M=2**8)),
        ("sqrt(N) < M < sqrt(NB)", DiskGeometry(N=2**15, B=2**3, D=2**2, M=2**8)),
        ("sqrt(NB) <= M", DiskGeometry(N=2**14, B=2**3, D=2**2, M=2**9)),
    ]

    def sweep():
        out = []
        for label, g in regimes:
            a = random_bmmc_with_rank_gamma(
                g.n, g.b, min(g.b, g.n - g.b), np.random.default_rng(SEED)
            )
            perm = BMMCPermutation(a)
            s = fresh_system(g)
            result = perform_bmmc(s, perm)
            assert s.verify_permutation(perm, np.arange(g.N), result.final_portion)
            out.append((label, g, a, result))
        return out

    data = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = []
    for label, g, a, result in data:
        r_lead = linalg.rank(a[0 : g.m, 0 : g.m])
        old_passes = bounds.old_bmmc_bound_passes(g, r_lead)
        h_val = bounds.h_function(g)
        assert result.passes <= old_passes
        rows.append(
            [label, h_val, result.passes, old_passes, f"{old_passes / result.passes:.1f}x"]
        )
    write_result(
        "ABL-OLDBOUND",
        "Measured passes vs the BMMC bound of [4] across eq. 1's H regimes",
        ["regime", "H(N,M,B)", "measured passes", "[4] bound passes", "improvement"],
        rows,
    )
