"""EXT-CATALOG: the one-pass permutation catalog and its I/O disciplines.

Section 7: "What other permutations can be performed quickly?  Several
O(1)-pass permutation classes appear in [3], and this paper has added
one more (MLD) ... One can also show that the inverse of any one-pass
permutation is a one-pass permutation."

This bench runs one representative of each one-pass class on the same
geometry and measures the full I/O discipline with the trace module:

| class       | reads       | writes      |
|-------------|-------------|-------------|
| MRC         | striped     | striped     |
| MLD         | striped     | independent |
| inverse-MLD | independent | striped     |

All take exactly ``2N/BD`` parallel I/Os at 100% disk parallelism.
"""

import numpy as np

from repro.bits import linalg
from repro.bits.random import random_mld_matrix, random_mrc_matrix
from repro.core.inverse_mld import perform_inverse_mld_pass
from repro.core.mld_algorithm import perform_mld_pass
from repro.core.mrc_algorithm import perform_mrc_pass
from repro.pdm.geometry import DiskGeometry
from repro.pdm.trace import IOTrace
from repro.perms.bmmc import BMMCPermutation

from benchmarks.conftest import BENCH_GEOMETRY, SEED, fresh_system, write_result


GEOMETRY = DiskGeometry(**BENCH_GEOMETRY)


def _run_catalog():
    from repro.core.inverse_mld import perform_mld_composition_pass

    g = GEOMETRY
    rng = np.random.default_rng(SEED)
    mld_matrix = random_mld_matrix(g.n, g.b, g.m, rng)
    other_mld = random_mld_matrix(g.n, g.b, g.m, rng)
    cases = [
        ("MRC", BMMCPermutation(random_mrc_matrix(g.n, g.m, rng)), perform_mrc_pass),
        ("MLD", BMMCPermutation(mld_matrix), perform_mld_pass),
        (
            "inverse-MLD",
            BMMCPermutation(linalg.inverse(mld_matrix), validate=False),
            perform_inverse_mld_pass,
        ),
    ]
    out = []
    for name, perm, performer in cases:
        system = fresh_system(g)
        trace = IOTrace(system)
        performer(system, perm, 0, 1)
        assert system.verify_permutation(perm, np.arange(g.N), 1)
        out.append((name, trace, system.stats))
    # fourth row: MLD o MLD^-1 (independent reads AND writes)
    system = fresh_system(g)
    trace = IOTrace(system)
    composed = perform_mld_composition_pass(
        system, BMMCPermutation(other_mld), BMMCPermutation(mld_matrix)
    )
    assert system.verify_permutation(composed, np.arange(g.N), 1)
    out.append(("MLD o MLD^-1", trace, system.stats))
    return out


def test_one_pass_catalog(benchmark):
    g = GEOMETRY
    data = benchmark.pedantic(_run_catalog, rounds=1, iterations=1)
    rows = []
    for name, trace, stats in data:
        summary = trace.summary()
        assert stats.parallel_ios == g.one_pass_ios
        assert summary.efficiency == 1.0  # every op moves D blocks
        read_kind = "striped" if all(r.striped for r in trace.reads()) else "independent"
        write_kind = "striped" if all(r.striped for r in trace.writes()) else "independent"
        rows.append(
            [
                name,
                stats.parallel_ios,
                read_kind,
                write_kind,
                f"{summary.efficiency:.0%}",
                f"{summary.load_imbalance:.2f}",
            ]
        )
    # the disciplines the paper's catalog predicts
    assert rows[0][2] == "striped" and rows[0][3] == "striped"  # MRC
    assert rows[1][2] == "striped"  # MLD reads
    assert rows[2][3] == "striped"  # inverse-MLD writes
    write_result(
        "EXT-CATALOG",
        f"One-pass catalog on {g.describe()} (2N/BD = {g.one_pass_ios})",
        ["class", "I/Os", "reads", "writes", "parallelism", "load imbalance"],
        rows,
    )
