"""THM15: MLD permutations complete in exactly one pass.

Theorem 15 plus the Section 3 I/O discipline: ``2N/BD`` parallel I/Os,
all reads striped, all writes independent with one block per disk and
``M/BD`` blocks per disk per memoryload.  The bench measures all of it
on random MLD instances spanning the admissible gamma ranks.
"""

import numpy as np

from repro.bits.random import random_mld_matrix
from repro.core.mld_algorithm import perform_mld_pass
from repro.pdm.geometry import DiskGeometry
from repro.perms.bmmc import BMMCPermutation

from benchmarks.conftest import BENCH_GEOMETRY, SEED, fresh_system, write_result


GEOMETRY = DiskGeometry(**BENCH_GEOMETRY)


def _run_one(perm):
    system = fresh_system(GEOMETRY)
    perform_mld_pass(system, perm, 0, 1)
    assert system.verify_permutation(perm, np.arange(GEOMETRY.N), 1)
    return system.stats


def test_mld_one_pass_io_discipline(benchmark):
    g = GEOMETRY
    max_rank = min(g.m - g.b, g.n - g.m)
    perms = [
        BMMCPermutation(
            random_mld_matrix(g.n, g.b, g.m, np.random.default_rng(SEED + gr), gamma_rank=gr)
        )
        for gr in range(max_rank + 1)
    ]

    stats_list = benchmark.pedantic(
        lambda: [_run_one(p) for p in perms], rounds=1, iterations=1
    )

    rows = []
    for gr, stats in zip(range(max_rank + 1), stats_list):
        assert stats.parallel_ios == g.one_pass_ios
        assert stats.striped_reads == g.num_stripes
        assert stats.parallel_writes == g.num_stripes
        assert stats.blocks_written == g.num_blocks  # every write moves D blocks
        rows.append(
            [
                gr,
                stats.parallel_ios,
                g.one_pass_ios,
                stats.striped_reads,
                stats.independent_writes + stats.striped_writes,
            ]
        )
    write_result(
        "THM15",
        f"MLD one-pass check on {g.describe()} (paper: exactly 2N/BD = {g.one_pass_ios})",
        ["gamma rank", "measured I/Os", "2N/BD", "striped reads", "writes"],
        rows,
    )
    benchmark.extra_info["one_pass_ios"] = g.one_pass_ios


def test_mld_throughput(benchmark):
    """Raw simulator throughput for a single one-pass MLD permutation --
    the substrate cost of every pass in every other bench."""
    g = GEOMETRY
    perm = BMMCPermutation(random_mld_matrix(g.n, g.b, g.m, np.random.default_rng(SEED)))

    def run():
        system = fresh_system(g)
        perform_mld_pass(system, perm, 0, 1)
        return system

    system = benchmark(run)
    assert system.stats.parallel_ios == g.one_pass_ios
    benchmark.extra_info["records"] = g.N
