"""SERVE: concurrent warm-cache serving vs. the sequential runner.

The serving claim of the concurrency PR: a :class:`PermutationService`
with 8 workers and one shared :class:`ShardedPlanCache`, serving a
mixed MLD/MRC/BMMC/distribution workload warm, must sustain at least
``BENCH_SERVE_SPEEDUP_FLOOR``x (default 3x) the throughput of the
sequential runner executing the same mix request-by-request (each
request planning from scratch -- the pre-service deployment shape).

Two effects stack: warm cache hits skip classification, planning,
fusing, and validation entirely (PR 2 measured the hit ~11x cheaper
than the cold path), and the worker pool overlaps the numpy
gather/scatter work across requests.  The floor is set so either
effect regressing (a cache that stopped sharing, a pool that
serialized) fails the bench even on noisy shared runners.

Correctness is asserted alongside throughput: every served result's
final-portion digest must equal the sequential runner's for the same
request -- concurrency may not buy speed with wrong bytes.

An overload phase follows the throughput phase: the same mix is fired
at a deliberately undersized bounded queue with per-request deadlines
and a retry policy under injected pass latency, and the robustness
counters (shed, deadline_exceeded, retries) are recorded into
``BENCH_serve.json`` so CI trends how the admission/deadline/retry
machinery behaves release over release.

Results: ``benchmarks/results/BENCH_serve.md`` + ``BENCH_serve.json``
(uploaded by CI's concurrency job).
"""

import json
import os
import time

from repro.core.runner import perform_requests
from repro.errors import DeadlineExceeded, InjectedFault, RequestRejected
from repro.pdm.cache import ShardedPlanCache
from repro.pdm.geometry import DiskGeometry
from repro.serve import (
    FaultPlan,
    PermutationService,
    RetryPolicy,
    mix_trace,
)

from benchmarks.conftest import RESULTS_DIR, SEED, write_result

#: Serving geometry: large enough that planning visibly dominates a
#: warm execution, small enough that the cold sequential baseline (the
#: thing we must beat) keeps the bench quick.
GEOMETRY = DiskGeometry(N=2**14, B=2**3, D=2**2, M=2**9)

WORKERS = int(os.environ.get("BENCH_SERVE_WORKERS", "8"))
MIX_COUNT = int(os.environ.get("BENCH_SERVE_MIX", "48"))

#: Kernel backend every service worker executes with ("numpy" or
#: "parallel"); recorded in BENCH_serve.json, no floor of its own --
#: the backend bench owns that assertion.
BACKEND = os.environ.get("BENCH_SERVE_BACKEND") or None

#: Warm-cache 8-worker throughput must beat the sequential runner by
#: at least this factor (the acceptance floor; keep >= 3).
SPEEDUP_FLOOR = float(os.environ.get("BENCH_SERVE_SPEEDUP_FLOOR", "3.0"))

#: Queue capacity for the overload phase -- deliberately far below the
#: mix size so admission control has to shed.
OVERLOAD_CAPACITY = int(os.environ.get("BENCH_SERVE_OVERLOAD_CAPACITY", "8"))


def _overload_phase():
    """Saturate an undersized queue under injected latency + faults.

    Returns ``(stats, elapsed, requests)``.  Asserts only the
    robustness invariants (counter reconciliation, typed failures);
    the counters themselves are recorded, not floored -- they are a
    trend signal, not an acceptance gate.
    """
    from dataclasses import replace

    requests = mix_trace(MIX_COUNT, distinct_seeds=2, verify=False).requests()
    # the first request carries a timeout smaller than one injected
    # pass sleep: admitted for sure (empty queue), expires for sure
    requests[0] = replace(requests[0], timeout=0.001)
    faults = FaultPlan(
        seed=SEED, kernel_failures=0.15, slow_passes=1.0, slow_seconds=0.002
    )
    with PermutationService(
        GEOMETRY,
        workers=2,
        queue_capacity=OVERLOAD_CAPACITY,
        queue_policy="reject",
        faults=faults,
        retry=RetryPolicy(attempts=3, base=0.0005, seed=SEED),
    ) as service:
        t0 = time.perf_counter()
        results = service.run(requests)
        elapsed = time.perf_counter() - t0
        stats = service.stats()

    assert stats.admitted + stats.shed == stats.submitted == len(requests)
    assert stats.completed == stats.admitted
    assert stats.shed > 0, "overload phase failed to saturate the queue"
    assert stats.deadline_exceeded >= 1
    assert stats.retries == sum(max(0, r.attempts - 1) for r in results)
    for r in results:
        if not r.ok:
            assert isinstance(
                r.error, (RequestRejected, DeadlineExceeded, InjectedFault)
            ), f"unexpected failure class {type(r.error).__name__}"
    return stats, elapsed, results


def test_serve_warm_cache_throughput(benchmark):
    requests = mix_trace(
        MIX_COUNT, distinct_seeds=2, verify=False, capture_portion=True
    ).requests()

    # -- sequential runner: one request at a time, no cache, cold plans
    t0 = time.perf_counter()
    sequential = perform_requests(GEOMETRY, requests, workers=1)
    seq_elapsed = time.perf_counter() - t0
    assert all(r.ok for r in sequential)

    # -- the service: 8 workers, one shared sharded cache
    cache = ShardedPlanCache(maxsize=64, num_shards=8)
    with PermutationService(
        GEOMETRY, workers=WORKERS, cache=cache, backend=BACKEND
    ) as service:
        t0 = time.perf_counter()
        cold = service.run(requests)
        cold_elapsed = time.perf_counter() - t0
        assert all(r.ok for r in cold)

        def warm_run():
            t0 = time.perf_counter()
            results = service.run(requests)
            return results, time.perf_counter() - t0

        (warm, warm_elapsed) = benchmark.pedantic(
            warm_run, rounds=1, iterations=1
        )
        info = cache.info()

    assert all(r.ok for r in warm)
    for got, want in zip(warm, sequential):
        assert got.digest == want.digest, (
            f"request {got.index} ({got.request.describe()}): served bytes "
            "diverged from the sequential runner"
        )

    # -- overload: bounded queue + deadlines + retries under faults
    overload_stats, overload_elapsed, _ = _overload_phase()

    seq_tput = len(requests) / seq_elapsed
    cold_tput = len(requests) / cold_elapsed
    warm_tput = len(requests) / warm_elapsed
    speedup = warm_tput / seq_tput

    rows = [
        ["sequential runner (1 worker, no cache)", len(requests),
         f"{seq_elapsed:.3f}", f"{seq_tput:.1f}"],
        [f"service cold ({WORKERS} workers, shared cache)", len(requests),
         f"{cold_elapsed:.3f}", f"{cold_tput:.1f}"],
        [f"service warm ({WORKERS} workers, shared cache)", len(requests),
         f"{warm_elapsed:.3f}", f"{warm_tput:.1f}"],
        [f"overload (2 workers, capacity {OVERLOAD_CAPACITY}, chaos)",
         len(requests), f"{overload_elapsed:.3f}",
         f"{len(requests) / overload_elapsed:.1f}"],
    ]
    text = write_result(
        "BENCH_serve",
        "Concurrent serving: warm shared-cache throughput vs sequential",
        ["mode", "requests", "seconds", "req/s"],
        rows,
    )
    print()
    print(text)
    print(
        f"\nwarm speedup {speedup:.1f}x (floor {SPEEDUP_FLOOR}x); cache: "
        f"{info.hits} hits / {info.misses} misses / {info.evictions} evictions"
    )
    print(
        f"overload: {overload_stats.shed} shed / "
        f"{overload_stats.deadline_exceeded} deadline-exceeded / "
        f"{overload_stats.retries} retries over "
        f"{overload_stats.submitted} submitted"
    )
    (RESULTS_DIR / "BENCH_serve.json").write_text(
        json.dumps(
            dict(
                geometry=dict(
                    N=GEOMETRY.N, B=GEOMETRY.B, D=GEOMETRY.D, M=GEOMETRY.M
                ),
                seed=SEED,
                workers=WORKERS,
                backend=BACKEND or "numpy",
                requests=len(requests),
                sequential_s=seq_elapsed,
                service_cold_s=cold_elapsed,
                service_warm_s=warm_elapsed,
                warm_speedup=speedup,
                floor=SPEEDUP_FLOOR,
                cache=dict(
                    hits=info.hits,
                    misses=info.misses,
                    evictions=info.evictions,
                    size=info.size,
                ),
                overload=dict(
                    queue_capacity=OVERLOAD_CAPACITY,
                    elapsed_s=overload_elapsed,
                    submitted=overload_stats.submitted,
                    admitted=overload_stats.admitted,
                    shed=overload_stats.shed,
                    deadline_exceeded=overload_stats.deadline_exceeded,
                    retries=overload_stats.retries,
                    failed=overload_stats.failed,
                ),
            ),
            indent=2,
        )
        + "\n"
    )

    # compile-once across the whole serving session: misses == the
    # distinct plan keys of the mix, counted on the cold pass only
    assert info.evictions == 0
    assert info.hits + info.misses == 2 * len(requests)
    assert speedup >= SPEEDUP_FLOOR, (
        f"warm-cache service throughput only {speedup:.2f}x the sequential "
        f"runner at {WORKERS} workers; need {SPEEDUP_FLOOR}x"
    )
