"""HTTP: socket-level serving throughput with exact counter reconciliation.

The serving claim of the HTTP PR: the JSON frontend adds a network hop
but not a bookkeeping hole.  A burst of ``BENCH_HTTP_CLIENTS`` (>= 8)
concurrent socket clients is fired at a warm :class:`HttpFrontend`,
and after the burst drains the ``/metrics`` page must reconcile with
``/stats`` to the integer -- ``admitted + shed == submitted`` on both
documents, and every bridged counter pair equal.  The load generator
verifies all of that itself (``reconciled`` in its report); this bench
asserts it and records the throughput/latency numbers so CI trends the
socket path release over release.

A chaos phase follows: the same burst against an undersized queue with
injected pass latency, so the mix of 200s and 429s -- and the books
still balancing exactly underneath them -- is exercised over real
sockets, not just in-process.

Results: ``benchmarks/results/BENCH_http.md`` + ``BENCH_http.json``
(uploaded by CI's http job).
"""

import json
import os

from repro.pdm.geometry import DiskGeometry
from repro.serve import (
    FaultPlan,
    HttpFrontend,
    PermutationService,
    ServiceMetrics,
    run_loadgen,
    synthetic_mix,
    warm_service,
)

from benchmarks.conftest import RESULTS_DIR, SEED, write_result

#: Same geometry as the serving bench: planning dominates a warm
#: execution, so the HTTP hop's overhead is visible but not drowned.
GEOMETRY = DiskGeometry(N=2**14, B=2**3, D=2**2, M=2**9)

#: Concurrent socket clients.  The acceptance floor is eight: the
#: loadgen holds every worker at a barrier inside its in-flight
#: tracker, so peak_concurrency must reach this exactly.
CLIENTS = int(os.environ.get("BENCH_HTTP_CLIENTS", "8"))
COUNT = int(os.environ.get("BENCH_HTTP_COUNT", "64"))
WORKERS = int(os.environ.get("BENCH_HTTP_WORKERS", "8"))

#: Queue capacity for the chaos phase -- far below COUNT so admission
#: control has to shed over the socket (429s in the status mix).
CHAOS_CAPACITY = int(os.environ.get("BENCH_HTTP_CHAOS_CAPACITY", "4"))


def _serve(workers=WORKERS, **kwargs):
    service = PermutationService(
        GEOMETRY, workers=workers, metrics=ServiceMetrics(), **kwargs
    )
    return HttpFrontend(service, own_service=True)


def _assert_reconciled(report):
    assert report["reconciled"] is True, report["reconcile_problems"]
    stats = report["stats"]
    assert stats["admitted"] + stats["shed"] == stats["submitted"]


def test_http_loadgen_reconciles():
    # -- warm burst: every request a cache hit, all 200s
    with _serve() as fe:
        warm_service(fe.service, synthetic_mix(COUNT, distinct_seeds=2))
        warm = run_loadgen(
            fe.url, count=COUNT, concurrency=CLIENTS, mode="sync",
            distinct_seeds=2,
        )
    assert warm["peak_concurrency"] >= 8, (
        f"only {warm['peak_concurrency']} clients were concurrently in "
        f"flight (need >= 8)"
    )
    assert warm["statuses"] == {"200": COUNT}
    _assert_reconciled(warm)

    # -- async burst: submit-then-poll over the same socket path
    with _serve() as fe:
        polled = run_loadgen(
            fe.url, count=COUNT, concurrency=CLIENTS, mode="async",
            distinct_seeds=2,
        )
    assert polled["statuses"] == {"200": COUNT}
    _assert_reconciled(polled)

    # -- chaos burst: undersized queue + injected latency; 429s appear
    #    in the status mix but the books still balance exactly
    faults = FaultPlan(seed=SEED, slow_passes=1.0, slow_seconds=0.02)
    with _serve(
        workers=2, queue_capacity=CHAOS_CAPACITY, queue_policy="reject",
        faults=faults,
    ) as fe:
        chaos = run_loadgen(
            fe.url, count=COUNT, concurrency=CLIENTS, mode="sync",
            distinct_seeds=2,
        )
    assert sum(chaos["statuses"].values()) == COUNT
    _assert_reconciled(chaos)
    chaos_stats = chaos["stats"]
    assert chaos_stats["shed"] > 0, "chaos phase failed to saturate the queue"

    rows = [
        [f"warm sync ({CLIENTS} clients)", COUNT,
         f"{warm['wall_seconds']:.3f}", f"{warm['throughput_rps']:.1f}",
         f"{warm['latency']['p50'] * 1e3:.1f}",
         f"{warm['latency']['p95'] * 1e3:.1f}",
         warm["statuses"].get("429", 0)],
        [f"async submit+poll ({CLIENTS} clients)", COUNT,
         f"{polled['wall_seconds']:.3f}", f"{polled['throughput_rps']:.1f}",
         f"{polled['latency']['p50'] * 1e3:.1f}",
         f"{polled['latency']['p95'] * 1e3:.1f}",
         polled["statuses"].get("429", 0)],
        [f"chaos (2 workers, capacity {CHAOS_CAPACITY}, slow passes)", COUNT,
         f"{chaos['wall_seconds']:.3f}", f"{chaos['throughput_rps']:.1f}",
         f"{chaos['latency']['p50'] * 1e3:.1f}",
         f"{chaos['latency']['p95'] * 1e3:.1f}",
         chaos["statuses"].get("429", 0)],
    ]
    text = write_result(
        "BENCH_http",
        "HTTP frontend: socket-level bursts with exact /metrics reconciliation",
        ["phase", "requests", "seconds", "req/s", "p50 ms", "p95 ms", "429s"],
        rows,
    )
    print()
    print(text)
    print(
        f"\npeak concurrency {warm['peak_concurrency']} (floor 8); all "
        f"three phases reconcile /metrics against /stats exactly"
    )
    (RESULTS_DIR / "BENCH_http.json").write_text(
        json.dumps(
            dict(
                geometry=dict(
                    N=GEOMETRY.N, B=GEOMETRY.B, D=GEOMETRY.D, M=GEOMETRY.M
                ),
                seed=SEED,
                clients=CLIENTS,
                workers=WORKERS,
                requests=COUNT,
                peak_concurrency=warm["peak_concurrency"],
                warm=warm,
                polled=polled,
                chaos=chaos,
            ),
            indent=2,
            default=str,
        )
        + "\n"
    )
