"""Shared harness for the reproduction benchmarks.

Every benchmark regenerates one row of the paper's evaluation (a table,
figure, theorem, or claim -- see DESIGN.md section 4) and

* times the real implementation via pytest-benchmark,
* asserts the paper's bound/shape on the *measured I/O counts*, and
* writes a human-readable result table to ``benchmarks/results/<id>.md``
  (collected by EXPERIMENTS.md).
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np
import pytest

RESULTS_DIR = Path(__file__).parent / "results"

#: Deterministic seed printed in every table for reproducibility.
SEED = 0x5EED

#: Default benchmark geometry: N=64Ki records, 8 disks, 16-record blocks,
#: 2Ki-record memory -- big enough for meaningful pass structure, small
#: enough for quick runs.
BENCH_GEOMETRY = dict(N=2**16, B=2**4, D=2**3, M=2**11)

#: Smaller geometry for potential-tracked runs (per-I/O bookkeeping).
POTENTIAL_GEOMETRY = dict(N=2**12, B=2**3, D=2**2, M=2**7)


def write_result(experiment_id: str, title: str, headers: list[str], rows: list[list]) -> str:
    """Format a result table, persist it, and return the text."""
    RESULTS_DIR.mkdir(exist_ok=True)
    widths = [
        max(len(str(h)), *(len(str(r[i])) for r in rows)) if rows else len(str(h))
        for i, h in enumerate(headers)
    ]
    lines = [f"# {experiment_id}: {title}", ""]
    lines.append("| " + " | ".join(str(h).ljust(w) for h, w in zip(headers, widths)) + " |")
    lines.append("|" + "|".join("-" * (w + 2) for w in widths) + "|")
    for row in rows:
        lines.append(
            "| " + " | ".join(str(v).ljust(w) for v, w in zip(row, widths)) + " |"
        )
    lines.append("")
    lines.append(f"seed = {SEED:#x}")
    text = "\n".join(lines)
    (RESULTS_DIR / f"{experiment_id}.md").write_text(text + "\n")
    return text


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(SEED)


def fresh_system(geometry, **kwargs):
    from repro.pdm.system import ParallelDiskSystem

    s = ParallelDiskSystem(geometry, **kwargs)
    s.fill_identity(0)
    return s
