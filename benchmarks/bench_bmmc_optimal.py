"""THM21: the asymptotically optimal BMMC algorithm's upper bound.

Random BMMC instances across rank-gamma values and geometries; measured
parallel I/Os must (a) equal the implementation's exact prediction
``2N/BD * (g+1)``, (b) stay within Theorem 21's ceiling
``2N/BD (ceil(rank gamma / lg(M/B)) + 2)``, and (c) beat the
general-permutation baseline whenever rank gamma is small.
"""

import numpy as np

from repro.bits.random import random_bmmc_with_rank_gamma, random_nonsingular
from repro.core import bounds
from repro.core.bmmc_algorithm import perform_bmmc
from repro.pdm.geometry import DiskGeometry
from repro.perms.bmmc import BMMCPermutation

from benchmarks.conftest import BENCH_GEOMETRY, SEED, fresh_system, write_result


GEOMETRY = DiskGeometry(**BENCH_GEOMETRY)


def test_theorem21_random_instances(benchmark):
    g = GEOMETRY
    rng = np.random.default_rng(SEED)
    perms = [
        BMMCPermutation(random_nonsingular(g.n, rng), int(rng.integers(0, g.N)))
        for _ in range(8)
    ]

    def run_all():
        out = []
        for perm in perms:
            system = fresh_system(g)
            result = perform_bmmc(system, perm)
            assert system.verify_permutation(
                perm, np.arange(g.N), result.final_portion
            )
            out.append(result)
        return out

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = []
    for perm, result in zip(perms, results):
        rg = perm.rank_gamma(g.b)
        ub = bounds.theorem21_upper_bound(g, rg)
        predicted = bounds.predicted_ios(perm.matrix, g)
        assert result.parallel_ios == predicted <= ub
        rows.append([rg, result.passes, result.parallel_ios, predicted, ub])
    write_result(
        "THM21",
        f"Theorem 21 upper bound on {g.describe()}",
        ["rank gamma", "passes", "measured I/Os", "predicted (2N/BD)(g+1)", "Thm 21 UB"],
        rows,
    )


def test_theorem21_pass_structure(benchmark):
    """Pass structure: g MLD passes of striped-read/independent-write plus
    one final MRC pass, exactly as Section 5 merges the factors."""
    g = GEOMETRY
    perm = BMMCPermutation(
        random_bmmc_with_rank_gamma(g.n, g.b, g.b, np.random.default_rng(SEED + 9))
    )

    def run():
        system = fresh_system(g)
        result = perform_bmmc(system, perm)
        return system, result

    system, result = benchmark.pedantic(run, rounds=1, iterations=1)
    passes = system.stats.passes
    assert len(passes) == result.passes
    rows = []
    for p in passes:
        assert p.parallel_ios == g.one_pass_ios
        rows.append(
            [p.label, p.parallel_ios, p.striped_reads, p.striped_writes, p.independent_writes]
        )
    # final pass is the MRC factor F: all striped
    assert passes[-1].striped_writes == g.num_stripes
    write_result(
        "THM21-passes",
        f"Per-pass I/O discipline for a rank-gamma={perm.rank_gamma(g.b)} instance",
        ["pass", "I/Os", "striped reads", "striped writes", "independent writes"],
        rows,
    )


def test_theorem21_scaling_in_n(benchmark):
    """I/O counts scale linearly in N/BD at fixed pass structure -- the
    'linear time' analogue the paper frames O(N/BD) as."""
    geometries = [
        DiskGeometry(N=2**n, B=2**4, D=2**3, M=2**11) for n in (14, 16, 18)
    ]

    def sweep():
        out = []
        for g in geometries:
            a = random_bmmc_with_rank_gamma(g.n, g.b, g.b, np.random.default_rng(SEED))
            perm = BMMCPermutation(a)
            system = fresh_system(g)
            result = perform_bmmc(system, perm)
            assert system.verify_permutation(perm, np.arange(g.N), result.final_portion)
            out.append((g, result))
        return out

    data = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = []
    for g, result in data:
        per_sweep = result.parallel_ios / (g.N // (g.B * g.D))
        rows.append([f"2^{g.n}", result.passes, result.parallel_ios, f"{per_sweep:.1f}"])
    # same pass count across the sweep -> linear scaling in N/BD
    pass_counts = {r[1] for r in rows}
    assert len(pass_counts) == 1
    write_result(
        "THM21-scaling",
        "I/O scaling in N at fixed B, D, M (passes constant, I/Os linear in N/BD)",
        ["N", "passes", "measured I/Os", "I/Os per N/BD"],
        rows,
    )
