"""ENGINE: strict-vs-fast execution of identical I/O plans.

The refactor's bargain: planning is pure, and one plan executes either
*strictly* (per-operation rule enforcement, the reference semantics) or
*fast* (validated up front, fused numpy gather/scatter per pass).  This
bench measures the bargain across growing ``N`` and asserts it is free:

* both engines report identical :class:`StatsSnapshot` counters,
* every pass costs exactly ``2N/BD`` parallel I/Os (the paper's
  per-pass accounting, Table 1 caption), for the one-pass MLD plan and
  for every pass of the multi-pass Theorem 21 plan,
* the permutation verifies under both engines, and
* steady-state fast execution is at least 5x faster than strict at
  ``N = 2^18`` (measured on the same pre-built plan; the first fast run
  additionally pays a one-time fuse+validate cost, reported separately
  as ``fast cold``).

Results: ``benchmarks/results/BENCH_engine.md`` plus a machine-readable
``benchmarks/results/BENCH_engine.json`` for CI trend tracking.
"""

import json
import os
import time

import numpy as np

from repro.bits.random import random_mld_matrix
from repro.core.bmmc_algorithm import plan_bmmc_io, plan_bmmc_passes
from repro.core.mld_algorithm import plan_mld_pass
from repro.pdm.engine import execute_plan
from repro.pdm.geometry import DiskGeometry
from repro.pdm.system import ParallelDiskSystem
from repro.perms.bmmc import BMMCPermutation
from repro.perms.library import bit_reversal

from benchmarks.conftest import RESULTS_DIR, SEED, write_result

#: Sweep geometries: the default bench block/disk/memory shape, growing N.
SWEEP_N = [14, 16, 18, 20]
SHAPE = dict(B=2**4, D=2**3, M=2**11)

#: Acceptance threshold at N = 2^18 (steady-state).  Overridable so CI
#: smoke runs on noisy shared runners can loosen it (the floor still
#: catches "fast stopped being fast" regressions at any setting > 1).
SPEEDUP_FLOOR = float(os.environ.get("BENCH_ENGINE_SPEEDUP_FLOOR", "5.0"))
SPEEDUP_AT_N = 18


def _time(fn, rounds=3):
    """Median-of-``rounds`` wall-clock seconds."""
    times = []
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return sorted(times)[len(times) // 2]


def _fresh(g):
    s = ParallelDiskSystem(g)
    s.fill_identity(0)
    return s


def _run(g, plan, engine):
    s = _fresh(g)
    execute_plan(s, plan, engine=engine)
    return s


def _measure(g, plan, perm, final_portion):
    """Time both engines on one plan; assert equivalence and accounting."""
    strict = _run(g, plan, "strict")
    fast = _run(g, plan, "fast")  # cold fuse happens here
    assert strict.stats.snapshot() == fast.stats.snapshot()
    assert (strict.portion_values(final_portion) == fast.portion_values(final_portion)).all()
    assert strict.verify_permutation(perm, np.arange(g.N), final_portion)
    assert fast.verify_permutation(perm, np.arange(g.N), final_portion)
    # Paper accounting: every pass reads and writes each record once.
    for p in fast.stats.passes:
        assert p.parallel_ios == g.one_pass_ios, (p.label, p.parallel_ios)
    assert fast.stats.parallel_ios == plan.num_passes * g.one_pass_ios

    t_cold_fast = _time(lambda: _cold_run(g, plan), rounds=1)
    t_strict = _time(lambda: _run(g, plan, "strict"))
    t_fast = _time(lambda: _run(g, plan, "fast"))  # fuse cache warm again
    return t_strict, t_cold_fast, t_fast, fast.stats.parallel_ios


def _cold_run(g, plan):
    """Fast run including the one-time fuse+validate cost."""
    for p in plan.passes:
        p._fused.clear()
    return _run(g, plan, "fast")


def test_engine_strict_vs_fast(benchmark):
    rows = []
    records = []

    def sweep():
        for n in SWEEP_N:
            g = DiskGeometry(N=2**n, **SHAPE)
            rng = np.random.default_rng(SEED + n)

            mld = BMMCPermutation(random_mld_matrix(g.n, g.b, g.m, rng))
            mld_plan = plan_mld_pass(g, mld)
            s_mld = _measure(g, mld_plan, mld, 1)

            rev = bit_reversal(g.n)
            steps = plan_bmmc_passes(rev, g)
            bmmc_plan, final = plan_bmmc_io(g, steps)
            s_bmmc = _measure(g, bmmc_plan, rev, final)

            for name, plan, (t_strict, t_cold, t_fast, ios) in (
                ("mld-1pass", mld_plan, s_mld),
                (f"bmmc-{len(steps)}pass", bmmc_plan, s_bmmc),
            ):
                speedup = t_strict / t_fast
                rows.append(
                    [
                        f"2^{n}",
                        name,
                        ios,
                        f"{t_strict * 1e3:.1f}",
                        f"{t_cold * 1e3:.1f}",
                        f"{t_fast * 1e3:.1f}",
                        f"{speedup:.1f}x",
                    ]
                )
                records.append(
                    dict(
                        N=2**n,
                        plan=name,
                        passes=plan.num_passes,
                        parallel_ios=ios,
                        strict_s=t_strict,
                        fast_cold_s=t_cold,
                        fast_warm_s=t_fast,
                        speedup_warm=speedup,
                    )
                )
                if n == SPEEDUP_AT_N:
                    assert speedup >= SPEEDUP_FLOOR, (
                        f"fast engine only {speedup:.1f}x faster than strict "
                        f"at N=2^{n} ({name}); need {SPEEDUP_FLOOR}x"
                    )

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_engine.json").write_text(
        json.dumps(dict(shape=SHAPE, seed=SEED, rows=records), indent=2) + "\n"
    )
    write_result(
        "BENCH_engine",
        "strict vs fast plan execution (median wall-clock, ms)",
        ["N", "plan", "parallel I/Os", "strict", "fast cold", "fast warm", "speedup"],
        rows,
    )
