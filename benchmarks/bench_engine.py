"""ENGINE: strict-vs-fast execution of identical I/O plans.

The refactor's bargain: planning is pure, and one plan executes either
*strictly* (per-operation rule enforcement, the reference semantics) or
*fast* (validated up front, fused numpy gather/scatter per pass).  This
bench measures the bargain across growing ``N`` and asserts it is free:

* both engines report identical :class:`StatsSnapshot` counters,
* every pass costs exactly ``2N/BD`` parallel I/Os (the paper's
  per-pass accounting, Table 1 caption), for the one-pass MLD plan and
  for every pass of the multi-pass Theorem 21 plan,
* the permutation verifies under both engines, and
* steady-state fast execution is at least 5x faster than strict at
  ``N = 2^18`` (measured on the same pre-built plan; the first fast run
  additionally pays a one-time fuse+validate cost, reported separately
  as ``fast cold``).

Two further suites cover the PR-2 optimizer stack:

* ``test_engine_huge_n_streaming`` runs ``N = 2^22`` and ``2^24``
  under the streaming fast executor and *asserts the host-memory
  guard*: the executor's peak read-stream buffer stays at the chunk
  budget, far below one full pass's O(N) stream.
* ``test_optimizer_cache_speedup`` measures cold (plan + compile +
  execute) vs. warm (compiled-plan cache hit) service times at
  ``N = 2^18`` and asserts warm is at least
  ``BENCH_CACHE_SPEEDUP_FLOOR``x (default 3x) faster, plus optimized
  vs. unoptimized execution of the multi-pass plan.

Results: ``benchmarks/results/BENCH_engine.md`` plus machine-readable
``BENCH_engine.json`` and ``BENCH_optimizer.json`` for CI trend
tracking.
"""

import json
import os
import time

import numpy as np

from repro.bits.random import random_mld_matrix
from repro.core.bmmc_algorithm import plan_bmmc_io, plan_bmmc_passes
from repro.core.mld_algorithm import perform_mld_pass, plan_mld_pass
from repro.pdm.cache import PlanCache
from repro.pdm.engine import execute_plan
from repro.pdm.geometry import DiskGeometry
from repro.pdm.optimize import optimize_plan
from repro.pdm.system import ParallelDiskSystem
from repro.perms.bmmc import BMMCPermutation
from repro.perms.library import bit_reversal

from benchmarks.conftest import RESULTS_DIR, SEED, write_result

#: Sweep geometries: the default bench block/disk/memory shape, growing N.
SWEEP_N = [14, 16, 18, 20]
SHAPE = dict(B=2**4, D=2**3, M=2**11)

#: Acceptance threshold at N = 2^18 (steady-state).  Overridable so CI
#: smoke runs on noisy shared runners can loosen it (the floor still
#: catches "fast stopped being fast" regressions at any setting > 1).
SPEEDUP_FLOOR = float(os.environ.get("BENCH_ENGINE_SPEEDUP_FLOOR", "5.0"))
SPEEDUP_AT_N = 18

#: Huge-N streaming sweep; CI caps it via BENCH_HUGE_MAX_N to keep the
#: smoke job light (the full 2^24 run wants ~1.5 GB of host arrays).
HUGE_N = [22, 24]
HUGE_MAX_N = int(os.environ.get("BENCH_HUGE_MAX_N", "24"))

#: Streaming chunk budget for the huge-N runs (records).
STREAM_BUDGET = 1 << 20

#: Warm cache-hit service must beat cold by at least this factor.
CACHE_SPEEDUP_FLOOR = float(os.environ.get("BENCH_CACHE_SPEEDUP_FLOOR", "3.0"))


def _update_optimizer_results(section: str, payload) -> None:
    """Merge one section into BENCH_optimizer.json (tests are runnable
    individually, so the file is read-modify-write)."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_optimizer.json"
    data = json.loads(path.read_text()) if path.exists() else {}
    data["shape"] = SHAPE
    data["seed"] = SEED
    data[section] = payload
    path.write_text(json.dumps(data, indent=2) + "\n")


def _time(fn, rounds=3):
    """Median-of-``rounds`` wall-clock seconds."""
    times = []
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return sorted(times)[len(times) // 2]


def _fresh(g):
    s = ParallelDiskSystem(g)
    s.fill_identity(0)
    return s


def _run(g, plan, engine):
    s = _fresh(g)
    execute_plan(s, plan, engine=engine)
    return s


def _measure(g, plan, perm, final_portion):
    """Time both engines on one plan; assert equivalence and accounting."""
    strict = _run(g, plan, "strict")
    fast = _run(g, plan, "fast")  # cold fuse happens here
    assert strict.stats.snapshot() == fast.stats.snapshot()
    assert (strict.portion_values(final_portion) == fast.portion_values(final_portion)).all()
    assert strict.verify_permutation(perm, np.arange(g.N), final_portion)
    assert fast.verify_permutation(perm, np.arange(g.N), final_portion)
    # Paper accounting: every pass reads and writes each record once.
    for p in fast.stats.passes:
        assert p.parallel_ios == g.one_pass_ios, (p.label, p.parallel_ios)
    assert fast.stats.parallel_ios == plan.num_passes * g.one_pass_ios

    t_cold_fast = _time(lambda: _cold_run(g, plan), rounds=1)
    t_strict = _time(lambda: _run(g, plan, "strict"))
    t_fast = _time(lambda: _run(g, plan, "fast"))  # fuse cache warm again
    return t_strict, t_cold_fast, t_fast, fast.stats.parallel_ios


def _cold_run(g, plan):
    """Fast run including the one-time fuse+validate cost."""
    for p in plan.passes:
        p._fused.clear()
    return _run(g, plan, "fast")


def test_engine_strict_vs_fast(benchmark):
    rows = []
    records = []

    def sweep():
        for n in SWEEP_N:
            g = DiskGeometry(N=2**n, **SHAPE)
            rng = np.random.default_rng(SEED + n)

            mld = BMMCPermutation(random_mld_matrix(g.n, g.b, g.m, rng))
            mld_plan = plan_mld_pass(g, mld)
            s_mld = _measure(g, mld_plan, mld, 1)

            rev = bit_reversal(g.n)
            steps = plan_bmmc_passes(rev, g)
            bmmc_plan, final = plan_bmmc_io(g, steps)
            s_bmmc = _measure(g, bmmc_plan, rev, final)

            for name, plan, (t_strict, t_cold, t_fast, ios) in (
                ("mld-1pass", mld_plan, s_mld),
                (f"bmmc-{len(steps)}pass", bmmc_plan, s_bmmc),
            ):
                speedup = t_strict / t_fast
                rows.append(
                    [
                        f"2^{n}",
                        name,
                        ios,
                        f"{t_strict * 1e3:.1f}",
                        f"{t_cold * 1e3:.1f}",
                        f"{t_fast * 1e3:.1f}",
                        f"{speedup:.1f}x",
                    ]
                )
                records.append(
                    dict(
                        N=2**n,
                        plan=name,
                        passes=plan.num_passes,
                        parallel_ios=ios,
                        strict_s=t_strict,
                        fast_cold_s=t_cold,
                        fast_warm_s=t_fast,
                        speedup_warm=speedup,
                    )
                )
                if n == SPEEDUP_AT_N:
                    assert speedup >= SPEEDUP_FLOOR, (
                        f"fast engine only {speedup:.1f}x faster than strict "
                        f"at N=2^{n} ({name}); need {SPEEDUP_FLOOR}x"
                    )

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_engine.json").write_text(
        json.dumps(dict(shape=SHAPE, seed=SEED, rows=records), indent=2) + "\n"
    )
    write_result(
        "BENCH_engine",
        "strict vs fast plan execution (median wall-clock, ms)",
        ["N", "plan", "parallel I/Os", "strict", "fast cold", "fast warm", "speedup"],
        rows,
    )


def test_engine_huge_n_streaming(benchmark):
    """N = 2^22 / 2^24 under the streaming fast executor.

    The memory guard: both executors used to buffer a pass's whole read
    stream on the host (O(N)); the streaming executor must keep its
    peak buffer at the chunk budget -- asserted strictly below one full
    pass's stream and at most the requested budget -- while producing a
    verified permutation with exact 2N/BD-per-pass accounting.
    """
    sweep = [n for n in HUGE_N if n <= HUGE_MAX_N]
    if not sweep:
        import pytest

        pytest.skip(f"BENCH_HUGE_MAX_N={HUGE_MAX_N} disables the huge-N sweep")

    rows = []
    records = []

    def run():
        for n in sweep:
            g = DiskGeometry(N=2**n, **SHAPE)
            rng = np.random.default_rng(SEED + n)
            perm = BMMCPermutation(random_mld_matrix(g.n, g.b, g.m, rng))

            t0 = time.perf_counter()
            plan = plan_mld_pass(g, perm)
            t_plan = time.perf_counter() - t0

            s = ParallelDiskSystem(g)
            s.fill_identity(0)
            t0 = time.perf_counter()
            report = execute_plan(
                s, plan, engine="fast", stream_records=STREAM_BUDGET
            )
            t_exec = time.perf_counter() - t0

            # ---- the guard: streaming engaged, host buffer bounded ----
            full_stream = g.N  # one pass reads every record once
            assert report.streamed_passes == plan.num_passes
            assert report.host_peak_records < full_stream, (
                f"host peak {report.host_peak_records} not below a full "
                f"pass stream ({full_stream}) at N=2^{n}"
            )
            assert report.host_peak_records <= STREAM_BUDGET

            # Correctness + paper accounting at scale.
            assert s.verify_permutation(perm, np.arange(g.N), 1)
            assert s.stats.parallel_ios == g.one_pass_ios
            assert s.memory.peak <= g.M

            rows.append(
                [
                    f"2^{n}",
                    plan.num_passes,
                    s.stats.parallel_ios,
                    f"{t_plan * 1e3:.0f}",
                    f"{t_exec * 1e3:.0f}",
                    report.host_peak_records,
                    f"1/{full_stream // report.host_peak_records}",
                ]
            )
            records.append(
                dict(
                    N=2**n,
                    passes=plan.num_passes,
                    parallel_ios=s.stats.parallel_ios,
                    plan_s=t_plan,
                    fast_stream_s=t_exec,
                    host_peak_records=report.host_peak_records,
                    full_stream_records=full_stream,
                    stream_budget=STREAM_BUDGET,
                    guard="host_peak_records < full_stream_records",
                )
            )
            del s, plan  # free ~O(N) arrays before the next size

    benchmark.pedantic(run, rounds=1, iterations=1)

    _update_optimizer_results("streaming", records)
    write_result(
        "BENCH_engine_streaming",
        "huge-N fast execution with liveness streaming (host buffer guard)",
        ["N", "passes", "parallel I/Os", "plan ms", "exec ms",
         "host peak records", "peak / full stream"],
        rows,
    )


def test_strict_streaming_host_peak(benchmark):
    """Strict replay under the liveness-streamed host buffer.

    The PR-2 follow-up: strict execution used to materialize a pass's
    whole O(N) read stream on the host.  It now reuses the fast
    executor's liveness segmentation to recycle the buffer, so the
    guard asserted for fast mode holds for strict replay too -- host
    peak at the chunk budget, strictly below one full pass's stream --
    while the per-operation rule-checked I/O path (and its exact
    2N/BD accounting) is unchanged.
    """
    n = 22  # strict replay is per-operation; keep the huge run to 2^22
    if n > HUGE_MAX_N:
        import pytest

        pytest.skip(f"BENCH_HUGE_MAX_N={HUGE_MAX_N} disables the huge-N sweep")
    g = DiskGeometry(N=2**n, **SHAPE)
    rng = np.random.default_rng(SEED + n)
    perm = BMMCPermutation(random_mld_matrix(g.n, g.b, g.m, rng))
    plan = plan_mld_pass(g, perm)

    records = {}

    def run():
        s = ParallelDiskSystem(g)
        s.fill_identity(0)
        t0 = time.perf_counter()
        report = execute_plan(
            s, plan, engine="strict", stream_records=STREAM_BUDGET
        )
        t_exec = time.perf_counter() - t0

        # ---- the guard: sub-O(N) host buffering under strict replay ----
        full_stream = g.N
        assert report.engine == "strict"
        assert report.streamed_passes == plan.num_passes
        assert report.host_peak_records < full_stream, (
            f"strict host peak {report.host_peak_records} not below a full "
            f"pass stream ({full_stream}) at N=2^{n}"
        )
        assert report.host_peak_records <= STREAM_BUDGET

        # Correctness + paper accounting, same bar as the fast guard.
        assert s.verify_permutation(perm, np.arange(g.N), 1)
        assert s.stats.parallel_ios == g.one_pass_ios
        assert s.memory.peak <= g.M

        records.update(
            N=2**n,
            strict_stream_s=t_exec,
            host_peak_records=report.host_peak_records,
            full_stream_records=full_stream,
            stream_budget=STREAM_BUDGET,
            guard="host_peak_records < full_stream_records (strict engine)",
        )

    benchmark.pedantic(run, rounds=1, iterations=1)
    _update_optimizer_results("strict_streaming", records)


def test_optimizer_cache_speedup(benchmark):
    """Cold vs. warm (cache-hit) service and optimized vs. plain fast.

    Cold = plan + compile (fuse, validate, optimize) + execute; warm =
    compiled-plan cache hit, straight to gather/scatter.  This is the
    repeated-traffic serving shape: the floor asserts warm is at least
    CACHE_SPEEDUP_FLOOR x faster at N = 2^18.  The optimizer column
    compares plain fast execution of the multi-pass Theorem 21 plan
    with the fused cross-pass rewrite (same plan, same stats).
    """
    n = SPEEDUP_AT_N
    g = DiskGeometry(N=2**n, **SHAPE)
    rng = np.random.default_rng(SEED + n)
    mld = BMMCPermutation(random_mld_matrix(g.n, g.b, g.m, rng))
    rev = bit_reversal(g.n)

    payload = {}
    rows = []

    def run():
        # ---- cold vs warm through the plan cache (MLD, one pass) ----
        def serve(cache):
            s = ParallelDiskSystem(g)
            s.fill_identity(0)
            t0 = time.perf_counter()
            perform_mld_pass(s, mld, engine="fast", optimize=True, cache=cache)
            return time.perf_counter() - t0, s

        cache = PlanCache()
        t_cold, s_cold = serve(cache)
        warm_times = []
        for _ in range(3):
            t, s_warm = serve(cache)
            warm_times.append(t)
        t_warm = sorted(warm_times)[len(warm_times) // 2]
        assert cache.info().hits == 3 and cache.info().misses == 1
        assert (s_cold.portion_values(1) == s_warm.portion_values(1)).all()
        assert s_cold.stats.snapshot() == s_warm.stats.snapshot()
        speedup = t_cold / t_warm
        assert speedup >= CACHE_SPEEDUP_FLOOR, (
            f"warm cache-hit only {speedup:.1f}x faster than cold at "
            f"N=2^{n}; need {CACHE_SPEEDUP_FLOOR}x"
        )

        # ---- optimized vs plain fast (multi-pass BMMC) --------------
        steps = plan_bmmc_passes(rev, g)
        plan, final = plan_bmmc_io(g, steps)
        op = optimize_plan(plan)

        def run_plain():
            s = ParallelDiskSystem(g)
            s.fill_identity(0)
            execute_plan(s, plan, engine="fast")
            return s

        def run_opt():
            s = ParallelDiskSystem(g)
            s.fill_identity(0)
            op.execute(s)
            return s

        s_plain, s_opt = run_plain(), run_opt()  # warm fused caches + check
        assert s_plain.stats.snapshot() == s_opt.stats.snapshot()
        assert (
            s_plain.portion_values(final) == s_opt.portion_values(final)
        ).all()
        t_plain = _time(run_plain)
        t_opt = _time(run_opt)

        payload.update(
            N=2**n,
            cold_s=t_cold,
            warm_s=t_warm,
            warm_speedup=speedup,
            speedup_floor=CACHE_SPEEDUP_FLOOR,
            bmmc_passes=plan.num_passes,
            fast_plain_s=t_plain,
            fast_optimized_s=t_opt,
            optimized_speedup=t_plain / t_opt,
            optimizer=op.report.summary(),
        )
        rows.append(
            [
                f"2^{n}",
                f"{t_cold * 1e3:.1f}",
                f"{t_warm * 1e3:.1f}",
                f"{speedup:.1f}x",
                f"{t_plain * 1e3:.1f}",
                f"{t_opt * 1e3:.1f}",
                f"{t_plain / t_opt:.1f}x",
            ]
        )

    benchmark.pedantic(run, rounds=1, iterations=1)

    _update_optimizer_results("cache", payload)
    write_result(
        "BENCH_optimizer",
        "compiled-plan cache (cold vs warm) and cross-pass optimizer (ms)",
        ["N", "cold", "warm hit", "warm speedup",
         "fast plain", "fast optimized", "opt speedup"],
        rows,
    )
