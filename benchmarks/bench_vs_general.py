"""CMP-GEN: the headline comparison -- BMMC algorithm vs. general permuting.

Section 1: "Depending on the exact BMMC permutation, our asymptotically
optimal bound may be significantly lower than the asymptotically optimal
bound proven for general permutations."  We measure both algorithms on
the same instances and report the savings factor as a function of
rank gamma and of N.
"""

import numpy as np

from repro.bits.random import random_bmmc_with_rank_gamma
from repro.core import bounds
from repro.core.bmmc_algorithm import perform_bmmc
from repro.core.general import perform_general_sort
from repro.pdm.geometry import DiskGeometry
from repro.perms.bmmc import BMMCPermutation

from benchmarks.conftest import SEED, fresh_system, write_result


# Geometry chosen so the sorting bound has several passes: small lg(M/B)
# relative to lg(N/B).
GEOMETRY = DiskGeometry(N=2**16, B=2**4, D=2**2, M=2**8)


def _both(perm, geometry):
    s1 = fresh_system(geometry)
    r1 = perform_bmmc(s1, perm)
    assert s1.verify_permutation(perm, np.arange(geometry.N), r1.final_portion)
    s2 = fresh_system(geometry)
    r2 = perform_general_sort(s2, perm)
    assert s2.verify_permutation(perm, np.arange(geometry.N), r2.final_portion)
    return r1, r2


def test_bmmc_vs_general_rank_sweep(benchmark):
    g = GEOMETRY

    def sweep():
        out = []
        for r in range(min(g.b, g.n - g.b) + 1):
            a = random_bmmc_with_rank_gamma(g.n, g.b, r, np.random.default_rng(SEED + r))
            perm = BMMCPermutation(a)
            out.append((r, *_both(perm, g)))
        return out

    data = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = []
    for r, bmmc_res, gen_res in data:
        factor = gen_res.parallel_ios / bmmc_res.parallel_ios
        # the BMMC algorithm must never lose, and must win clearly at low rank
        assert bmmc_res.parallel_ios <= gen_res.parallel_ios
        rows.append(
            [r, bmmc_res.passes, bmmc_res.parallel_ios, gen_res.passes, gen_res.parallel_ios, f"{factor:.2f}x"]
        )
    low_rank_factor = float(rows[0][-1][:-1])
    assert low_rank_factor >= 2.0, "low-rank BMMC should win by a wide margin"
    write_result(
        "CMP-GEN",
        f"BMMC algorithm vs general merge sort on {g.describe()}",
        ["rank gamma", "BMMC passes", "BMMC I/Os", "sort passes", "sort I/Os", "savings"],
        rows,
    )
    benchmark.extra_info["low_rank_savings"] = low_rank_factor


def test_bmmc_vs_general_n_sweep(benchmark):
    """As N grows at fixed M, B, D the sorting bound's pass count grows
    like lg(N/B)/lg(M/B) while the BMMC pass count stays flat -- the gap
    widens (the paper's asymptotic claim, visible at finite sizes)."""
    geometries = [DiskGeometry(N=2**n, B=2**4, D=2**2, M=2**8) for n in (12, 14, 16, 18)]

    def sweep():
        out = []
        for g in geometries:
            a = random_bmmc_with_rank_gamma(g.n, g.b, 2, np.random.default_rng(SEED))
            perm = BMMCPermutation(a)
            out.append((g, *_both(perm, g)))
        return out

    data = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = []
    factors = []
    for g, bmmc_res, gen_res in data:
        factor = gen_res.parallel_ios / bmmc_res.parallel_ios
        factors.append(factor)
        rows.append(
            [
                f"2^{g.n}",
                bmmc_res.passes,
                gen_res.passes,
                bmmc_res.parallel_ios,
                gen_res.parallel_ios,
                f"{factor:.2f}x",
            ]
        )
    assert factors[-1] >= factors[0], "gap must not shrink as N grows"
    write_result(
        "CMP-GEN-scaling",
        "Savings vs N at fixed B=16, D=4, M=256 (rank gamma = 2)",
        ["N", "BMMC passes", "sort passes", "BMMC I/Os", "sort I/Os", "savings"],
        rows,
    )


def test_three_way_baseline_comparison(benchmark):
    """BMMC algorithm vs both general baselines (striped merge sort and
    randomized-placement distribution sort) on the same instances."""
    from repro.core.distribution import perform_distribution_sort

    g = DiskGeometry(N=2**14, B=2**3, D=2**2, M=2**8)

    def sweep():
        out = []
        for r in range(min(g.b, g.n - g.b) + 1):
            a = random_bmmc_with_rank_gamma(g.n, g.b, r, np.random.default_rng(SEED + r))
            perm = BMMCPermutation(a)
            s1 = fresh_system(g)
            bmmc_res = perform_bmmc(s1, perm)
            assert s1.verify_permutation(perm, np.arange(g.N), bmmc_res.final_portion)
            s2 = fresh_system(g)
            merge_res = perform_general_sort(s2, perm)
            assert s2.verify_permutation(perm, np.arange(g.N), merge_res.final_portion)
            s3 = fresh_system(g)
            dist_res = perform_distribution_sort(s3, perm)
            assert s3.verify_permutation(perm, np.arange(g.N), dist_res.final_portion)
            out.append((r, bmmc_res, merge_res, dist_res))
        return out

    data = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = []
    for r, bmmc_res, merge_res, dist_res in data:
        assert bmmc_res.parallel_ios <= merge_res.parallel_ios
        assert bmmc_res.parallel_ios <= dist_res.parallel_ios
        rows.append(
            [
                r,
                bmmc_res.parallel_ios,
                merge_res.parallel_ios,
                dist_res.parallel_ios,
                f"{dist_res.blocks_per_pass_read / dist_res.read_ops:.2f}/{g.D}",
            ]
        )
    write_result(
        "CMP-GEN-threeway",
        f"BMMC vs merge sort vs randomized distribution sort on {g.describe()}",
        ["rank gamma", "BMMC I/Os", "merge I/Os", "distribution I/Os", "dist read parallelism"],
        rows,
    )


def test_general_baseline_matches_formula(benchmark):
    """The baseline itself must behave: measured = passes * 2N/BD with the
    exact pass formula."""
    g = GEOMETRY
    a = random_bmmc_with_rank_gamma(g.n, g.b, 1, np.random.default_rng(SEED + 99))
    perm = BMMCPermutation(a)

    def run():
        s = fresh_system(g)
        return perform_general_sort(s, perm)

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    assert res.passes == bounds.merge_sort_passes(g)
    assert res.parallel_ios == res.passes * g.one_pass_ios
    write_result(
        "CMP-GEN-baseline",
        f"General merge-sort baseline self-check on {g.describe()}",
        ["fan-in", "passes", "formula", "I/Os", "passes * 2N/BD"],
        [[res.fan_in, res.passes, bounds.merge_sort_passes(g), res.parallel_ios, res.passes * g.one_pass_ios]],
    )
