"""BACKEND: parallel sharded kernels vs the fused-numpy fast engine.

PR 6's bargain: one compiled plan executes under interchangeable kernel
backends -- ``numpy`` (the fused reference) or ``parallel`` (the same
gathers/scatters sharded across GIL-releasing worker threads).  This
bench measures the seam across growing ``N`` and asserts it is free
and, on multi-core runners, profitable:

* both backends report identical :class:`StatsSnapshot` counters, pass
  tables, and byte-identical portions off the *same* plan,
* the report records which backend ran, and
* at ``N = 2^20`` the parallel backend is at least
  ``BENCH_BACKEND_SPEEDUP_FLOOR``x (default 1.5x) faster than the
  numpy fast engine -- asserted only when the runner actually has
  multiple cores (``os.cpu_count() >= 2``); a single-core box falls
  below the crossover by design (the heuristic keeps everything
  inline), so there the number is recorded but not gated.

Results: ``benchmarks/results/BENCH_backend.md`` plus machine-readable
``BENCH_backend.json`` for CI trend tracking (always written, with the
runner's core count, so a floor skip is visible in the artifact).
"""

import json
import os

import numpy as np

from repro.bits.random import random_mld_matrix
from repro.core.bmmc_algorithm import plan_bmmc_io, plan_bmmc_passes
from repro.pdm.engine import execute_plan, get_backend
from repro.pdm.geometry import DiskGeometry
from repro.pdm.system import ParallelDiskSystem
from repro.perms.bmmc import BMMCPermutation
from repro.perms.library import bit_reversal

from benchmarks.bench_engine import _time
from benchmarks.conftest import RESULTS_DIR, SEED, write_result
from repro.core.mld_algorithm import plan_mld_pass

#: Sweep geometries: the default bench shape, growing N past the
#: parallel backend's production crossover (min 2^16 records).
SWEEP_N = [18, 20]
SHAPE = dict(B=2**4, D=2**3, M=2**11)

#: Acceptance threshold at N = 2^20, multi-core runners only.
SPEEDUP_FLOOR = float(os.environ.get("BENCH_BACKEND_SPEEDUP_FLOOR", "1.5"))
SPEEDUP_AT_N = 20


def _fresh(g):
    s = ParallelDiskSystem(g)
    s.fill_identity(0)
    return s


def _run(g, plan, backend):
    s = _fresh(g)
    report = execute_plan(s, plan, engine="fast", backend=backend)
    return s, report


def test_backend_parallel_vs_numpy(benchmark):
    parallel = get_backend("parallel")
    cores = os.cpu_count() or 1
    gate = cores >= 2

    rows = []
    records = []

    def sweep():
        for n in SWEEP_N:
            g = DiskGeometry(N=2**n, **SHAPE)
            rng = np.random.default_rng(SEED + n)

            mld = BMMCPermutation(random_mld_matrix(g.n, g.b, g.m, rng))
            rev = bit_reversal(g.n)
            steps = plan_bmmc_passes(rev, g)
            bmmc_plan, final = plan_bmmc_io(g, steps)

            for name, plan, perm, out in (
                ("mld-1pass", plan_mld_pass(g, mld), mld, 1),
                (f"bmmc-{len(steps)}pass", bmmc_plan, rev, final),
            ):
                ref, _ = _run(g, plan, "numpy")  # warm fuse cache
                par, report = _run(g, plan, parallel)
                assert report.backend == "parallel"
                assert ref.stats.snapshot() == par.stats.snapshot()
                assert ref.stats.passes == par.stats.passes
                assert (ref.portion_values(out) == par.portion_values(out)).all()
                assert par.verify_permutation(perm, np.arange(g.N), out)

                t_numpy = _time(lambda p=plan: _run(g, p, "numpy"))
                t_par = _time(lambda p=plan: _run(g, p, parallel))
                speedup = t_numpy / t_par
                rows.append(
                    [
                        f"2^{n}",
                        name,
                        f"{t_numpy * 1e3:.1f}",
                        f"{t_par * 1e3:.1f}",
                        f"{speedup:.2f}x",
                    ]
                )
                records.append(
                    dict(
                        N=2**n,
                        plan=name,
                        passes=plan.num_passes,
                        numpy_s=t_numpy,
                        parallel_s=t_par,
                        speedup=speedup,
                    )
                )
                if n == SPEEDUP_AT_N and gate:
                    assert speedup >= SPEEDUP_FLOOR, (
                        f"parallel backend only {speedup:.2f}x faster than "
                        f"the numpy fast engine at N=2^{n} ({name}) on "
                        f"{cores} cores; need {SPEEDUP_FLOOR}x"
                    )

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_backend.json").write_text(
        json.dumps(
            dict(
                shape=SHAPE,
                seed=SEED,
                cpu_count=cores,
                workers=parallel.workers,
                min_records=parallel.min_records,
                chunk_records=parallel.chunk_records,
                speedup_floor=SPEEDUP_FLOOR,
                floor_asserted=gate,
                rows=records,
            ),
            indent=2,
        )
        + "\n"
    )
    write_result(
        "BENCH_backend",
        f"parallel vs numpy fast execution "
        f"({cores} cores, {parallel.workers} workers; median ms)",
        ["N", "plan", "numpy", "parallel", "speedup"],
        rows,
    )
