"""SEC7: the potential argument, measured.

Attaches the Aggarwal-Vitter potential tracker to real algorithm runs
and measures: the initial potential (eq. 9), the final potential
(``N lg B``), the worst per-read potential increase against
``D * Delta_max`` with ``Delta_max <= B (2/(e ln 2) + lg(M/B))``, the
non-positivity of write deltas, and the resulting numeric lower bound
against the measured I/O count.
"""

import numpy as np

from repro.bits.random import random_bmmc_with_rank_gamma
from repro.core import bounds
from repro.core.bmmc_algorithm import perform_bmmc
from repro.core.potential import PotentialTracker
from repro.pdm.geometry import DiskGeometry
from repro.perms.bmmc import BMMCPermutation

from benchmarks.conftest import POTENTIAL_GEOMETRY, SEED, fresh_system, write_result


GEOMETRY = DiskGeometry(**POTENTIAL_GEOMETRY)


def _tracked_run(rank_g: int):
    g = GEOMETRY
    a = random_bmmc_with_rank_gamma(g.n, g.b, rank_g, np.random.default_rng(SEED + rank_g))
    perm = BMMCPermutation(a)
    system = fresh_system(g)
    tracker = PotentialTracker(system, perm)
    phi0 = tracker.potential
    result = perform_bmmc(system, perm)
    assert system.verify_permutation(perm, np.arange(g.N), result.final_portion)
    return perm, tracker, phi0, result


def test_potential_invariants_sweep(benchmark):
    g = GEOMETRY
    ranks = list(range(min(g.b, g.n - g.b) + 1))
    data = benchmark.pedantic(
        lambda: [_tracked_run(r) for r in ranks], rounds=1, iterations=1
    )
    cap = g.D * bounds.delta_max(g)
    rows = []
    for r, (perm, tracker, phi0, result) in zip(ranks, data):
        # eq. 9 and final potential
        assert abs(phi0 - g.N * (g.b - r)) < 1e-6
        assert abs(tracker.potential - g.N * g.b) < 1e-6
        tracker.verify_bounds()
        numeric_lb = (tracker.potential - phi0) / cap
        assert result.parallel_ios >= numeric_lb
        rows.append(
            [
                r,
                f"{phi0:.0f}",
                f"{g.N * (g.b - r)}",
                f"{tracker.max_read_delta():.1f}",
                f"{cap:.1f}",
                f"{tracker.max_write_delta():.2f}",
                result.parallel_ios,
                f"{numeric_lb:.1f}",
            ]
        )
    write_result(
        "SEC7",
        f"Potential argument on {g.describe()}: eq. 9, Delta_max, numeric LB",
        [
            "rank gamma",
            "Phi(0)",
            "N(lgB-r)",
            "max read dPhi",
            "D*Delta_max",
            "max write dPhi",
            "measured I/Os",
            "potential LB",
        ],
        rows,
    )


def test_per_pass_potential_management(benchmark):
    """Section 7's open question, explored: "One possible approach is to
    design an algorithm that explicitly manages the potential.  If each
    pass increases the potential by Theta((N/BD) Delta_max), the
    algorithm's I/O count would match the lower bound."

    We measure how much potential each pass of the Theorem 21 algorithm
    actually gains, as a fraction of the per-pass ceiling
    ``(N/BD) * D * Delta_max``.  A fraction near 1 on the rank-carrying
    passes would certify per-pass optimality in the potential currency.
    """
    g = GEOMETRY
    r = min(g.b, g.n - g.b)
    a = random_bmmc_with_rank_gamma(g.n, g.b, r, np.random.default_rng(SEED + 77))
    perm = BMMCPermutation(a)

    def run():
        system = fresh_system(g)
        tracker = PotentialTracker(system, perm)
        phi_marks = [tracker.potential]
        from repro.core.bmmc_algorithm import plan_bmmc_passes, perform_bmmc

        plan = plan_bmmc_passes(perm, g)
        current = 0
        for step in plan:
            out = 1 if current == 0 else 0
            perform_bmmc(system, step.perm, current, out, plan=[step])
            phi_marks.append(tracker.potential)
            current = out
        return plan, phi_marks

    plan, phi_marks = benchmark.pedantic(run, rounds=1, iterations=1)
    per_pass_cap = g.num_stripes * g.D * bounds.delta_max(g)
    rows = []
    for i, step in enumerate(plan):
        gain = phi_marks[i + 1] - phi_marks[i]
        assert gain <= per_pass_cap + 1e-6
        rows.append(
            [step.name, f"{gain:.0f}", f"{per_pass_cap:.0f}", f"{gain / per_pass_cap:.2%}"]
        )
    write_result(
        "SEC7-perpass",
        "Per-pass potential gain of the Theorem 21 algorithm (Section 7 open question)",
        ["pass", "potential gain", "per-pass cap (N/BD * D * Delta_max)", "fraction"],
        rows,
    )


def test_sharpened_bound_gap(benchmark):
    """Section 7's punchline: the sharpened LB sits within a ~(1 + 1.06/lg(M/B))
    factor of the exact per-pass cost; report the measured gap."""
    g = GEOMETRY

    def sweep():
        out = []
        for r in range(1, min(g.b, g.n - g.b) + 1):
            a = random_bmmc_with_rank_gamma(g.n, g.b, r, np.random.default_rng(SEED + 50 + r))
            perm = BMMCPermutation(a)
            system = fresh_system(g)
            result = perform_bmmc(system, perm)
            out.append((r, result.parallel_ios))
        return out

    data = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = []
    for r, measured in data:
        sharp = bounds.sharpened_lower_bound(g, r)
        ub = bounds.theorem21_upper_bound(g, r)
        assert sharp <= measured <= ub
        rows.append([r, f"{sharp:.1f}", measured, ub, f"{measured / sharp:.2f}"])
    write_result(
        "SEC7-gap",
        "Sharpened lower bound vs. measured vs. Theorem 21 ceiling",
        ["rank gamma", "sharpened LB", "measured", "Thm 21 UB", "measured/LB"],
        rows,
    )
