"""TAB1: Table 1 -- permutation classes and their pass-count bounds.

For each class row of Table 1 (BMMC, BPC, MRC) we sample instances,
*measure* the passes this paper's algorithm takes on the simulator, and
print them against (a) the bound of [4] quoted in Table 1 and (b) this
paper's Theorem 21 ceiling.  The reproduction claim is the comparison
shape: measured <= Theorem 21 <= bound of [4] on every instance.
"""

import numpy as np
import pytest

from repro.bits import linalg
from repro.bits.random import (
    random_bit_permutation,
    random_mrc_matrix,
    random_nonsingular,
)
from repro.core import bounds
from repro.core.bmmc_algorithm import perform_bmmc
from repro.pdm.geometry import DiskGeometry
from repro.perms.bmmc import BMMCPermutation
from repro.perms.bpc import cross_rank

from benchmarks.conftest import BENCH_GEOMETRY, SEED, fresh_system, write_result


GEOMETRY = DiskGeometry(**BENCH_GEOMETRY)


def _measure_passes(perm):
    system = fresh_system(GEOMETRY)
    result = perform_bmmc(system, perm)
    assert system.verify_permutation(
        perm, np.arange(GEOMETRY.N), result.final_portion
    )
    return result.passes


def test_table1_bmmc_row(benchmark):
    g = GEOMETRY
    rng = np.random.default_rng(SEED)
    matrices = [random_nonsingular(g.n, rng) for _ in range(6)]
    perms = [BMMCPermutation(a) for a in matrices]

    measured = benchmark.pedantic(
        lambda: [_measure_passes(p) for p in perms], rounds=1, iterations=1
    )

    rows = []
    for a, passes in zip(matrices, measured):
        r_lead = linalg.rank(a[0 : g.m, 0 : g.m])
        old = bounds.old_bmmc_bound_passes(g, r_lead)
        rg = bounds.rank_gamma(a, g.b)
        new_bound = bounds.theorem21_upper_bound(g, rg) // g.one_pass_ios
        assert passes <= new_bound <= old or passes <= new_bound
        assert new_bound <= old, "this paper's bound must improve on [4]"
        rows.append([rg, r_lead, passes, new_bound, old])
    write_result(
        "TAB1-BMMC",
        f"Table 1 BMMC row on {g.describe()}",
        ["rank gamma", "leading rank r", "measured passes", "Thm 21 bound", "bound of [4]"],
        rows,
    )
    benchmark.extra_info["instances"] = len(rows)


def test_table1_bpc_row(benchmark):
    g = GEOMETRY
    rng = np.random.default_rng(SEED + 1)
    matrices = [random_bit_permutation(g.n, rng) for _ in range(6)]
    perms = [BMMCPermutation(a, validate=False) for a in matrices]

    measured = benchmark.pedantic(
        lambda: [_measure_passes(p) for p in perms], rounds=1, iterations=1
    )

    rows = []
    for a, passes in zip(matrices, measured):
        rho = cross_rank(a, g.b, g.m)
        old = bounds.old_bpc_bound_passes(g, rho)
        rg = bounds.rank_gamma(a, g.b)
        new_bound = bounds.theorem21_upper_bound(g, rg) // g.one_pass_ios
        # The paper: the BMMC algorithm is optimal for BPC inputs too and
        # "reduces the innermost factor of 2 ... to a factor of 1".
        assert passes <= new_bound
        rows.append([rho, rg, passes, new_bound, old])
    write_result(
        "TAB1-BPC",
        f"Table 1 BPC row on {g.describe()}",
        ["cross-rank rho", "rank gamma", "measured passes", "Thm 21 bound", "bound of [4]"],
        rows,
    )
    benchmark.extra_info["instances"] = len(rows)


def test_table1_mrc_row(benchmark):
    g = GEOMETRY
    rng = np.random.default_rng(SEED + 2)
    perms = [BMMCPermutation(random_mrc_matrix(g.n, g.m, rng)) for _ in range(6)]

    measured = benchmark.pedantic(
        lambda: [_measure_passes(p) for p in perms], rounds=1, iterations=1
    )

    rows = []
    for passes in measured:
        assert passes == bounds.mrc_bound_passes() == 1
        rows.append([passes, 1])
    write_result(
        "TAB1-MRC",
        f"Table 1 MRC row on {g.describe()}: always exactly one pass",
        ["measured passes", "Table 1 bound"],
        rows,
    )
    benchmark.extra_info["instances"] = len(rows)
