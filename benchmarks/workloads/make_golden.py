"""Regenerate the committed golden workload traces.

The five scenarios exercise the serving stack's distinct failure
surfaces: ``uniform`` is the calibration baseline, ``zipf-hot-key``
concentrates traffic on a hot head (cache policy), ``bursty-overload``
lands whole bursts at once (admission control), ``mixed-chaos``
combines skew with geometry diversity (the chaos itself is a *replay*
config, not part of the trace -- traces are offered load only), and
``duplicate-heavy`` repeats each drawn request back to back at the
same arrival offset (single-flight request coalescing).

Every trace is byte-reproducible from the spec embedded in its own
header; ``tests/serve/test_workload.py`` regenerates each committed
file from that spec and fails on any byte of drift.  So: edit the
specs HERE, rerun ``python benchmarks/workloads/make_golden.py``, and
commit both this file and the traces together -- never hand-edit a
``.jsonl``.
"""

import pathlib
import sys

from repro.serve.workload import WorkloadSpec, generate_trace, geometry_variants
from repro.pdm.geometry import DiskGeometry

HERE = pathlib.Path(__file__).parent

#: One shared seed: golden traces change only when a spec changes.
SEED = 0x5EED

#: Small enough that a full replay is a sub-second affair in CI, big
#: enough that plans are real multi-pass work.
GEOMETRY = DiskGeometry(N=2**10, B=2**3, D=2**2, M=2**7)

_G = {"N": GEOMETRY.N, "B": GEOMETRY.B, "D": GEOMETRY.D, "M": GEOMETRY.M}

SPECS = [
    WorkloadSpec(
        name="uniform",
        count=48,
        seed=SEED,
        arrival="uniform",
        rate=96.0,
        popularity="uniform",
        key_space=12,
        geometry=_G,
    ),
    WorkloadSpec(
        name="zipf-hot-key",
        count=64,
        seed=SEED,
        arrival="poisson",
        rate=128.0,
        popularity="zipf",
        zipf_alpha=1.5,
        key_space=16,
        geometry=_G,
    ),
    WorkloadSpec(
        name="bursty-overload",
        count=64,
        seed=SEED,
        arrival="bursty",
        burst_size=16,
        burst_gap=0.15,
        popularity="uniform",
        key_space=8,
        geometry=_G,
    ),
    WorkloadSpec(
        name="mixed-chaos",
        count=48,
        seed=SEED,
        arrival="poisson",
        rate=96.0,
        popularity="zipf",
        zipf_alpha=1.2,
        key_space=10,
        geometry=_G,
        geometries=tuple(
            {"N": v.N, "B": v.B, "D": v.D, "M": v.M}
            for v in geometry_variants(GEOMETRY, 2)
        ),
    ),
    WorkloadSpec(
        name="duplicate-heavy",
        count=64,
        seed=SEED,
        arrival="uniform",
        rate=256.0,
        popularity="zipf",
        zipf_alpha=1.3,
        key_space=8,
        duplicates=8,
        geometry=_G,
    ),
]


def main() -> int:
    changed = 0
    for spec in SPECS:
        path = HERE / f"{spec.name}.jsonl"
        text = generate_trace(spec).dumps()
        if not path.exists() or path.read_text() != text:
            path.write_text(text)
            changed += 1
            print(f"wrote {path}")
        else:
            print(f"unchanged {path}")
    print(f"{changed} of {len(SPECS)} traces (re)written")
    return 0


if __name__ == "__main__":
    sys.exit(main())
