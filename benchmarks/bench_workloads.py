"""WORKLOADS: golden-trace replay -- determinism oracle + scenarios.

Each committed golden trace (``benchmarks/workloads/*.jsonl``) is run
twice:

1. **Oracle pass** -- the trace replays twice through identically
   configured *fresh* services (ample cache, unbounded queue, no
   chaos, as fast as possible).  The two replays must agree to the
   byte: identical per-request digests, identical (method, passes,
   parallel I/Os) triples, identical service/cache counters, and an
   exactly reconciled in-process ``/metrics`` rendering.  This is the
   acceptance gate: replay IS the determinism oracle, and any drift
   fails the bench (and CI's ``workloads`` job).

2. **Scenario pass** -- the same trace replays through the scenario's
   *characteristic* configuration: ``zipf-hot-key`` through a cache
   far smaller than its key space (eviction policy under skew),
   ``bursty-overload`` through an undersized bounded queue (admission
   control), ``mixed-chaos`` under injected faults with retries,
   ``duplicate-heavy`` through a coalescing service (single-flight:
   ``coalesced > 0``, digests byte-identical to the oracle's, and a
   >= 2x throughput floor over the same service with coalescing off).
   Shed sets and eviction victims depend on worker interleaving, so
   this pass asserts *invariants* (exact counter reconciliation,
   ``admitted + shed == submitted``, scenario-specific floors), not
   byte equality.

Per-scenario summaries (throughput, p50/p99 latency, hit rate,
shed/deadline counts, workload digest) append one entry per run to
``benchmarks/results/BENCH_workloads.json`` in the trajectory format
checked by ``tools/check_bench_trajectory.py``, so CI can trend
scenario behavior release over release.
"""

import json
import pathlib
import time

from repro.serve import (
    FaultPlan,
    PermutationService,
    RetryPolicy,
    ServiceMetrics,
    WorkloadTrace,
    reconcile_replay,
    replay_trace,
)

from benchmarks.conftest import RESULTS_DIR, SEED, write_result

WORKLOADS_DIR = pathlib.Path(__file__).parent / "workloads"

SCENARIOS = (
    "uniform", "zipf-hot-key", "bursty-overload", "mixed-chaos",
    "duplicate-heavy",
)

TRAJECTORY_SCHEMA = "repro-bench-trajectory"
TRAJECTORY_VERSION = 1

#: Oracle cache is sized past every scenario's key space, so the only
#: misses are first-touch compiles and evictions are impossible.
ORACLE_CACHE = 64


def _oracle_service(trace):
    return PermutationService(
        trace.geometry, workers=4, cache_maxsize=ORACLE_CACHE, num_shards=4
    )


def _scenario_service(name, trace):
    """The configuration each scenario is *about*."""
    g = trace.geometry
    if name == "zipf-hot-key":
        # cache far under the key space: the skew is what keeps the
        # hit rate up, which is the whole point of the scenario
        return PermutationService(g, workers=2, cache_maxsize=4, num_shards=1)
    if name == "bursty-overload":
        return PermutationService(
            g, workers=2, queue_capacity=8, queue_policy="reject"
        )
    if name == "mixed-chaos":
        return PermutationService(
            g,
            workers=2,
            faults=FaultPlan(
                seed=SEED, kernel_failures=0.1, slow_passes=0.25,
                slow_seconds=0.001,
            ),
            retry=RetryPolicy(attempts=3, base=0.0005, seed=SEED),
        )
    if name == "duplicate-heavy":
        # few workers so the queue backs up and duplicates reliably
        # find their leader still queued or running
        return PermutationService(
            g, workers=2, cache_maxsize=ORACLE_CACHE, num_shards=4,
            coalesce=True,
        )
    return PermutationService(g, workers=4)


def _fingerprint(report):
    """Everything a deterministic replay must reproduce exactly."""
    io_triples = {
        r.index: (r.report.method, r.report.passes, r.report.io.parallel_ios)
        for r in report.results
        if r.ok
    }
    s, c = report.stats, report.cache
    return {
        "digests": report.digests,
        "workload_digest": report.workload_digest,
        "io": io_triples,
        "stats": (s.submitted, s.admitted, s.shed, s.completed, s.failed,
                  s.retries, s.deadline_exceeded, s.cancelled),
        "cache": (c.hits, c.misses, c.evictions, c.size),
    }


def _oracle_pass(trace):
    """Replay twice through fresh services; any divergence is a bug."""
    fingerprints = []
    for _ in range(2):
        metrics = ServiceMetrics()
        with _oracle_service(trace) as service:
            report = replay_trace(service, trace, as_fast_as_possible=True)
            problems = reconcile_replay(service, metrics)
        assert not problems, f"{trace.name}: metrics drift: {problems}"
        assert report.failed == 0, (
            f"{trace.name}: {report.failed} failures under the oracle config"
        )
        assert report.cache.evictions == 0
        assert len(report.digests) == len(trace)
        fingerprints.append((report, _fingerprint(report)))
    (first, fp1), (second, fp2) = fingerprints
    for key in fp1:
        assert fp1[key] == fp2[key], (
            f"{trace.name}: replay is not deterministic -- {key} diverged:\n"
            f"  first:  {fp1[key]}\n  second: {fp2[key]}"
        )
    return first


def _scenario_pass(name, trace, oracle=None):
    metrics = ServiceMetrics()
    with _scenario_service(name, trace) as service:
        report = replay_trace(service, trace, as_fast_as_possible=True)
        problems = reconcile_replay(service, metrics)
    assert not problems, f"{name}: metrics drift: {problems}"
    s = report.stats
    assert s.submitted == len(trace)
    assert s.admitted + s.shed == s.submitted
    if name == "duplicate-heavy":
        _check_duplicate_heavy(trace, report, oracle)
    elif name == "zipf-hot-key":
        # the skewed head must keep a 4-entry cache useful; PYTHONHASHSEED
        # moves shard assignment, so the floor is deliberately loose
        assert report.cache.evictions > 0, "cache never filled"
        assert report.cache.hit_rate >= 0.2, (
            f"hot-key hit rate collapsed to {report.cache.hit_rate:.2f}"
        )
    elif name == "bursty-overload":
        assert s.shed > 0, "overload scenario failed to saturate the queue"
    elif name == "mixed-chaos":
        assert s.retries > 0, "chaos scenario injected no retried faults"
    else:
        assert report.failed == 0
    return report


def _check_duplicate_heavy(trace, report, oracle):
    """Single-flight under a duplicate-heavy trace: fewer executions,
    identical bytes, and a real throughput multiplier."""
    s = report.stats
    assert report.failed == 0, f"{report.failed} failures under coalescing"
    assert s.coalesced > 0, "duplicate-heavy trace produced no coalescing"
    assert s.coalesced_in_flight == 0, "followers still attached after drain"
    assert s.admitted == s.completed, "drain did not reconcile"
    # Coalesced or not, every digest must match the coalescing-off
    # oracle replay byte for byte -- followers share the leader's bytes.
    assert report.digests == oracle.digests, (
        "coalesced replay diverged from the sequential-reference digests"
    )
    executed = sum(1 for r in report.results if not r.coalesced)
    assert executed + s.coalesced == len(trace)
    # The multiplier the scenario exists for: the same trace through
    # the same service shape with coalescing off.
    with PermutationService(
        trace.geometry, workers=2, cache_maxsize=ORACLE_CACHE, num_shards=4,
    ) as baseline_service:
        baseline = replay_trace(
            baseline_service, trace, as_fast_as_possible=True
        )
    assert baseline.stats.coalesced == 0
    assert baseline.failed == 0
    speedup = (
        report.throughput_rps / baseline.throughput_rps
        if baseline.throughput_rps > 0
        else float("inf")
    )
    assert speedup >= 2.0, (
        f"coalescing gave only {speedup:.2f}x over coalescing-off "
        f"({report.throughput_rps:.1f} vs {baseline.throughput_rps:.1f} rps)"
    )
    report.extra_summary = {
        "executions": executed,
        "speedup_vs_no_coalesce": speedup,
        "baseline_throughput_rps": baseline.throughput_rps,
    }


def _append_trajectory(summaries):
    path = RESULTS_DIR / "BENCH_workloads.json"
    doc = None
    if path.exists():
        try:
            doc = json.loads(path.read_text())
        except json.JSONDecodeError:
            doc = None
        if not (
            isinstance(doc, dict)
            and doc.get("schema") == TRAJECTORY_SCHEMA
            and doc.get("version") == TRAJECTORY_VERSION
        ):
            doc = None
    if doc is None:
        doc = {
            "schema": TRAJECTORY_SCHEMA,
            "version": TRAJECTORY_VERSION,
            "bench": "workloads",
            "entries": [],
        }
    doc["entries"].append(
        {
            "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
            "seed": SEED,
            "scenarios": summaries,
        }
    )
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return path


def test_workload_scenarios():
    summaries = {}
    rows = []
    for name in SCENARIOS:
        trace = WorkloadTrace.load(WORKLOADS_DIR / f"{name}.jsonl")
        assert trace.name == name
        oracle = _oracle_pass(trace)
        report = _scenario_pass(name, trace, oracle=oracle)
        summary = report.summary_dict()
        # the digest that must never drift is the oracle's: the scenario
        # pass sheds/fails requests, so its digest set varies by timing
        summary["oracle_digest"] = oracle.workload_digest
        summary.update(getattr(report, "extra_summary", {}))
        summaries[name] = summary
        rows.append(
            [
                name,
                summary["events"],
                f"{summary['throughput_rps']:.1f}",
                f"{summary['latency_p50_ms']:.1f}",
                f"{summary['latency_p99_ms']:.1f}",
                f"{summary['hit_rate']:.2f}",
                summary["shed"],
                summary["deadline_exceeded"],
                summary["retries"],
                summary["coalesced"],
            ]
        )

    text = write_result(
        "BENCH_workloads",
        "Golden workload traces: scenario replay characteristics",
        ["scenario", "events", "req/s", "p50 ms", "p99 ms", "hit rate",
         "shed", "deadline", "retries", "coalesced"],
        rows,
    )
    print()
    print(text)
    path = _append_trajectory(summaries)
    print(f"\ntrajectory appended to {path}")
