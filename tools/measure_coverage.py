"""Line-coverage measurement without pytest-cov (not installed here).

Runs the tier-1 suite under a ``sys.settrace`` hook that records executed
lines of files under ``src/repro``, then divides by the AST statement-line
universe of the same files.  The number approximates what
``pytest --cov=repro`` reports (coverage.py's statement analysis differs
slightly around multi-line statements), so the CI gate's floor should sit
a few points below the value printed here.

Usage: PYTHONPATH=src python tools/measure_coverage.py [pytest args...]
"""

from __future__ import annotations

import ast
import os
import sys
import threading

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(ROOT, "src", "repro")

if ROOT not in sys.path:  # `python -m pytest` puts the cwd here; match it
    sys.path.insert(0, ROOT)

executed: dict[str, set[int]] = {}


def _tracer(frame, event, arg):
    if event == "call":
        fn = frame.f_code.co_filename
        if not fn.startswith(SRC):
            return None  # do not line-trace frames outside src/repro
        return _tracer
    if event == "line":
        fn = frame.f_code.co_filename
        executed.setdefault(fn, set()).add(frame.f_lineno)
    return _tracer


def statement_lines(path: str) -> set[int]:
    tree = ast.parse(open(path).read(), filename=path)
    lines: set[int] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.stmt):
            lines.add(node.lineno)
    return lines


def main() -> int:
    import pytest

    sys.settrace(_tracer)
    threading.settrace(_tracer)
    code = pytest.main(["-q", "-p", "no:cacheprovider", *sys.argv[1:]])
    sys.settrace(None)

    total = hit = 0
    rows = []
    for dirpath, _dirs, files in os.walk(SRC):
        for name in sorted(files):
            if not name.endswith(".py"):
                continue
            path = os.path.join(dirpath, name)
            stmts = statement_lines(path)
            got = executed.get(path, set()) & stmts
            total += len(stmts)
            hit += len(got)
            pct = 100.0 * len(got) / len(stmts) if stmts else 100.0
            rows.append((pct, os.path.relpath(path, ROOT), len(got), len(stmts)))
    rows.sort()
    for pct, rel, got, stmts in rows:
        print(f"{pct:6.1f}%  {got:5d}/{stmts:<5d}  {rel}")
    pct = 100.0 * hit / total if total else 0.0
    print(f"\nTOTAL {hit}/{total} statement lines = {pct:.2f}%")
    return code


if __name__ == "__main__":
    sys.exit(main())
