"""Validate bench trajectory files (``BENCH_*.json`` with ``entries``).

A trajectory file accumulates one entry per bench run so CI can trend
scenario behavior across PRs.  This checker is the CI gate on the
format itself: schema identity, version, entry shape, and per-scenario
summary fields all have to hold for *every* entry -- an append that
silently changed shape would poison the whole trend line.

Usage::

    python tools/check_bench_trajectory.py benchmarks/results/BENCH_workloads.json [...]

Exits 0 when every file validates, 1 with one line per problem
otherwise.  No dependencies beyond the stdlib, so it runs anywhere CI
does.
"""

import json
import sys

SCHEMA = "repro-bench-trajectory"
VERSION = 1

#: Every scenario summary must carry these keys; numeric ones must
#: parse as real numbers (bool is not a number here).
NUMERIC_FIELDS = (
    "events",
    "ok",
    "failed",
    "throughput_rps",
    "wall_seconds",
    "latency_p50_ms",
    "latency_p99_ms",
    "hit_rate",
    "cache_hits",
    "cache_misses",
    "cache_evictions",
    "shed",
    "deadline_exceeded",
    "retries",
)
STRING_FIELDS = ("workload_digest",)


def _is_number(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def check_scenario(where: str, summary) -> list[str]:
    if not isinstance(summary, dict):
        return [f"{where}: scenario summary must be an object"]
    problems = []
    for field in NUMERIC_FIELDS:
        if field not in summary:
            problems.append(f"{where}: missing numeric field {field!r}")
        elif not _is_number(summary[field]):
            problems.append(
                f"{where}: field {field!r} must be a number, "
                f"got {summary[field]!r}"
            )
    for field in STRING_FIELDS:
        if not isinstance(summary.get(field), str) or not summary.get(field):
            problems.append(f"{where}: field {field!r} must be a non-empty string")
    if not problems:
        if summary["ok"] + summary["failed"] > summary["events"]:
            problems.append(f"{where}: ok + failed exceeds events")
        if not 0.0 <= summary["hit_rate"] <= 1.0:
            problems.append(f"{where}: hit_rate {summary['hit_rate']} not in [0, 1]")
        for field in NUMERIC_FIELDS:
            if summary[field] < 0:
                problems.append(f"{where}: {field} is negative")
    return problems


def check_entry(where: str, entry) -> list[str]:
    if not isinstance(entry, dict):
        return [f"{where}: entry must be an object"]
    problems = []
    recorded = entry.get("recorded_at")
    if not isinstance(recorded, str) or not recorded:
        problems.append(f"{where}: missing/empty recorded_at")
    scenarios = entry.get("scenarios")
    if not isinstance(scenarios, dict) or not scenarios:
        problems.append(f"{where}: entry needs a non-empty scenarios object")
        return problems
    for name, summary in sorted(scenarios.items()):
        problems.extend(check_scenario(f"{where}.scenarios[{name!r}]", summary))
    return problems


def check_trajectory(path: str) -> list[str]:
    try:
        with open(path) as handle:
            doc = json.load(handle)
    except OSError as exc:
        return [f"{path}: cannot read: {exc}"]
    except json.JSONDecodeError as exc:
        return [f"{path}: not valid JSON: {exc}"]
    if not isinstance(doc, dict):
        return [f"{path}: top level must be an object"]
    problems = []
    if doc.get("schema") != SCHEMA:
        problems.append(
            f"{path}: schema is {doc.get('schema')!r}, expected {SCHEMA!r}"
        )
    if doc.get("version") != VERSION:
        problems.append(
            f"{path}: version is {doc.get('version')!r}, expected {VERSION}"
        )
    if not isinstance(doc.get("bench"), str) or not doc.get("bench"):
        problems.append(f"{path}: missing/empty bench name")
    entries = doc.get("entries")
    if not isinstance(entries, list) or not entries:
        problems.append(f"{path}: entries must be a non-empty list")
        return problems
    for i, entry in enumerate(entries):
        problems.extend(check_entry(f"{path}: entries[{i}]", entry))
    stamps = [
        e.get("recorded_at")
        for e in entries
        if isinstance(e, dict) and isinstance(e.get("recorded_at"), str)
    ]
    if stamps != sorted(stamps):
        problems.append(
            f"{path}: recorded_at stamps are not non-decreasing "
            "(entries must be appended, not reordered)"
        )
    return problems


def main(argv) -> int:
    if not argv:
        print(
            "usage: check_bench_trajectory.py TRAJECTORY.json [...]",
            file=sys.stderr,
        )
        return 2
    failed = False
    for path in argv:
        problems = check_trajectory(path)
        if problems:
            failed = True
            for problem in problems:
                print(problem, file=sys.stderr)
        else:
            entries = json.load(open(path))["entries"]
            print(f"{path}: ok ({len(entries)} entries)")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
