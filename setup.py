"""Legacy setup shim.

The offline environment lacks the ``wheel`` package that PEP 660
editable installs require, so ``pip install -e . --no-use-pep517
--no-build-isolation`` takes the legacy ``setup.py develop`` path via
this file.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
