#!/usr/bin/env python3
"""Gray-code data layouts: one-pass MRC permutations.

Section 1 of the paper: "both the standard binary-reflected Gray code
and its inverse have characteristic matrices of this [unit upper
triangular] form, and so they are MRC permutations" -- performable in a
single pass of striped reads and writes.

The example lays data out in Gray-code order (useful for data-parallel
codes where logically adjacent items should differ in one address bit),
inverts it, and shows both cost exactly 2N/BD parallel I/Os, while a
bit-permuted variant of the same Gray code (Section 6's example) is
*not* MRC and needs the general BMMC machinery.

Run:  python examples/gray_code_layout.py
"""

import numpy as np

from repro import DiskGeometry, ParallelDiskSystem, PermClass, classify
from repro.core.runner import perform_permutation
from repro.perms.library import gray_code, gray_code_inverse, permuted_gray_code


def show(geometry, perm, label):
    system = ParallelDiskSystem(geometry)
    system.fill_identity(0)
    report = perform_permutation(system, perm)
    classes = "/".join(sorted(c.value for c in report.classes))
    print(
        f"{label:>22}: classes={classes:<18} method={report.method:<5} "
        f"passes={report.passes} I/Os={report.io.parallel_ios} "
        f"(one pass = {geometry.one_pass_ios}) verified={report.verified}"
    )
    assert report.verified
    return report


def main() -> None:
    geometry = DiskGeometry(N=2**12, B=2**3, D=2**2, M=2**7)
    print("geometry:", geometry.describe(), "\n")

    g = gray_code(geometry.n)
    gi = gray_code_inverse(geometry.n)

    # Gray code: consecutive addresses map to codes differing in one bit.
    codes = np.asarray(g.apply_array(np.arange(16, dtype=np.uint64)))
    print("first 16 Gray codes:", list(codes))
    diffs = codes[1:] ^ codes[:-1]
    assert all(int(d).bit_count() == 1 for d in diffs)

    r1 = show(geometry, g, "Gray code")
    r2 = show(geometry, gi, "inverse Gray code")
    assert r1.passes == r2.passes == 1

    # Section 6's cautionary example: the same Gray code with all address
    # bits permuted identically is still BMMC -- but a programmer wouldn't
    # recognize it, and it is generally no longer MRC.
    pg = permuted_gray_code(geometry.n, list(range(geometry.n - 1, -1, -1)))
    labels = classify(pg, geometry)
    assert PermClass.MRC not in labels
    show(geometry, pg, "bit-reversed Gray code")

    print(
        "\nThe permuted variant is why run-time detection (Section 6) matters:\n"
        "it is BMMC -- detectable in N/BD + ceil((lg(N/B)+1)/D) reads -- but\n"
        "no source-level annotation would reveal it."
    )


if __name__ == "__main__":
    main()
