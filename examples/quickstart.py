#!/usr/bin/env python3
"""Quickstart: perform a BMMC permutation on a simulated parallel disk system.

Builds a small Vitter-Shriver system, defines a BMMC permutation by its
characteristic matrix, runs the asymptotically optimal algorithm of
Cormen/Sundquist/Wisniewski (Theorem 21), and prints measured parallel
I/Os next to the paper's bounds.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import BMMCPermutation, DiskGeometry, ParallelDiskSystem, bounds
from repro.bits.random import random_bmmc_with_rank_gamma
from repro.core.runner import perform_permutation
from repro.pdm.layout import render_figure1


def main() -> None:
    # N = 4096 records, blocks of 8, 4 disks, memory for 128 records.
    geometry = DiskGeometry(N=2**12, B=2**3, D=2**2, M=2**7)
    print("geometry:", geometry.describe())
    print("\nfirst stripes of the layout (paper Figure 1 style):")
    print(render_figure1(geometry, max_stripes=3))

    # A BMMC permutation y = A x (+) c with rank(gamma) = 2, where gamma is
    # the lower-left lg(N/B) x lg(B) submatrix that governs both tight bounds.
    matrix = random_bmmc_with_rank_gamma(geometry.n, geometry.b, 2, np.random.default_rng(1))
    perm = BMMCPermutation(matrix, complement=0b1010)
    print(f"\npermutation: BMMC with rank gamma = {perm.rank_gamma(geometry.b)}, "
          f"complement = {perm.complement:#x}")

    # Load the canonical input (record payload = address) and run.
    system = ParallelDiskSystem(geometry)
    system.fill_identity(0)
    report = perform_permutation(system, perm)

    print(f"\nmethod chosen:    {report.method}")
    print(f"passes:           {report.passes}")
    print(f"parallel I/Os:    {report.io.parallel_ios} "
          f"({report.io.striped_reads} striped reads, "
          f"{report.io.independent_writes} independent writes, "
          f"{report.io.striped_writes} striped writes)")
    print(f"verified correct: {report.verified}")

    print("\nbounds from the paper:")
    print(f"  Theorem 3  lower bound : {report.bounds['theorem3_lower_bound']:.0f}")
    print(f"  Section 7  sharpened LB: {report.bounds['sharpened_lower_bound']:.0f}")
    print(f"  Theorem 21 upper bound : {report.bounds['theorem21_upper_bound']:.0f}")
    print(f"  bound of [4] (old alg.): {report.bounds['old_bmmc_bound_ios']:.0f}")
    print(f"  general-permutation    : {report.bounds['general_permutation_bound']:.0f}")

    assert report.verified
    assert report.io.parallel_ios <= report.bounds["theorem21_upper_bound"]


if __name__ == "__main__":
    main()
