#!/usr/bin/env python3
"""Out-of-core matrix transposition -- the paper's motivating workload.

An R x S matrix too large for memory lives on a parallel disk system in
column-major order.  Transposition is the classic BPC permutation; this
example transposes several shapes, compares the BMMC algorithm's
measured I/Os with (a) the dedicated Vitter-Shriver transposition bound
shape, (b) the general-permutation merge sort, and verifies the final
layout element by element.

Run:  python examples/out_of_core_transpose.py
"""

import numpy as np

from repro import DiskGeometry, ParallelDiskSystem, bounds
from repro.core.bmmc_algorithm import perform_bmmc
from repro.core.general import perform_general_sort
from repro.perms.library import matrix_transpose


def transpose_once(geometry: DiskGeometry, lg_rows: int) -> dict:
    lg_cols = geometry.n - lg_rows
    perm = matrix_transpose(lg_rows, lg_cols)

    system = ParallelDiskSystem(geometry)
    system.fill_identity(0)
    result = perform_bmmc(system, perm)
    assert system.verify_permutation(perm, np.arange(geometry.N), result.final_portion)

    # check the data really is the transpose: element (i, j) of the
    # column-major R x S input must now sit at address j + S*i.
    out = system.portion_values(result.final_portion)
    r_dim, s_dim = 1 << lg_rows, 1 << lg_cols
    rng = np.random.default_rng(0)
    for _ in range(100):
        i, j = int(rng.integers(0, r_dim)), int(rng.integers(0, s_dim))
        assert out[j + s_dim * i] == i + r_dim * j

    baseline = ParallelDiskSystem(geometry)
    baseline.fill_identity(0)
    general = perform_general_sort(baseline, perm)

    return {
        "shape": f"{r_dim}x{s_dim}",
        "rank_gamma": perm.rank_gamma(geometry.b),
        "passes": result.passes,
        "ios": result.parallel_ios,
        "thm21": bounds.theorem21_upper_bound(geometry, perm.rank_gamma(geometry.b)),
        "general_ios": general.parallel_ios,
    }


def main() -> None:
    geometry = DiskGeometry(N=2**14, B=2**4, D=2**2, M=2**8)
    print("geometry:", geometry.describe())
    print()
    header = f"{'shape':>12} {'rank g':>7} {'passes':>7} {'BMMC I/Os':>10} {'Thm21 UB':>9} {'sort I/Os':>10} {'savings':>8}"
    print(header)
    print("-" * len(header))
    for lg_rows in range(2, geometry.n - 1, 2):
        row = transpose_once(geometry, lg_rows)
        savings = row["general_ios"] / row["ios"]
        print(
            f"{row['shape']:>12} {row['rank_gamma']:>7} {row['passes']:>7} "
            f"{row['ios']:>10} {row['thm21']:>9} {row['general_ios']:>10} {savings:>7.2f}x"
        )
    print(
        "\nNote how the cost tracks rank gamma = lg min(B, R, S, N/B) -- the\n"
        "transposition-specific bound of Vitter-Shriver falls out of the\n"
        "general BMMC bound, which is the point of the paper's Section 1."
    )


if __name__ == "__main__":
    main()
