#!/usr/bin/env python3
"""Out-of-core FFT staging: bit-reversal permutation on disk.

An N-point FFT needs its input in bit-reversed order.  For data sets
larger than memory the reordering is a disk-to-disk permutation; the
bit-reversal permutation is BPC (characteristic matrix = the reversal
permutation matrix), so the BMMC algorithm applies.

The example reorders the data, verifies the layout against numpy's FFT
as ground truth (a radix-2 decimation-in-time FFT on the bit-reversed
data equals numpy's FFT of the original), and reports the I/O cost
against the old BPC cross-rank bound of [4].

Run:  python examples/fft_bit_reversal.py
"""

import numpy as np

from repro import DiskGeometry, ParallelDiskSystem, bounds
from repro.core.bmmc_algorithm import perform_bmmc
from repro.perms.bpc import cross_rank
from repro.perms.library import bit_reversal


def iterative_fft_from_bit_reversed(values: np.ndarray) -> np.ndarray:
    """Radix-2 DIT butterfly network over data already in bit-reversed order."""
    a = values.astype(np.complex128).copy()
    n = a.size
    length = 2
    while length <= n:
        half = length // 2
        tw = np.exp(-2j * np.pi * np.arange(half) / length)
        a = a.reshape(-1, length)
        even, odd = a[:, :half].copy(), a[:, half:] * tw
        a[:, :half], a[:, half:] = even + odd, even - odd
        a = a.reshape(-1)
        length *= 2
    return a


def main() -> None:
    geometry = DiskGeometry(N=2**12, B=2**3, D=2**2, M=2**7)
    perm = bit_reversal(geometry.n)
    print("geometry:", geometry.describe())
    print(f"permutation: bit reversal on {geometry.n} address bits (BPC)")

    # Permute the record indices on disk.
    system = ParallelDiskSystem(geometry)
    system.fill_identity(0)
    result = perform_bmmc(system, perm)
    assert system.verify_permutation(perm, np.arange(geometry.N), result.final_portion)

    # Signal samples indexed by original position; after the permutation,
    # the record at address y holds original index x = perm^-1(y), so
    # gathering samples by the permuted payload vector stages the FFT input.
    rng = np.random.default_rng(0)
    signal = rng.standard_normal(geometry.N)
    staged_order = system.portion_values(result.final_portion)
    staged = signal[staged_order]

    ours = iterative_fft_from_bit_reversed(staged)
    reference = np.fft.fft(signal)
    max_err = np.max(np.abs(ours - reference))
    print(f"\nFFT on disk-staged data vs numpy.fft: max |err| = {max_err:.2e}")
    assert max_err < 1e-8

    rho = cross_rank(perm.matrix, geometry.b, geometry.m)
    print(f"\nI/O accounting:")
    print(f"  passes:                 {result.passes}")
    print(f"  parallel I/Os:          {result.parallel_ios}")
    print(f"  Theorem 21 upper bound: {bounds.theorem21_upper_bound(geometry, perm.rank_gamma(geometry.b))}")
    print(f"  old BPC bound of [4]:   {bounds.old_bpc_bound_ios(geometry, rho)} "
          f"(cross-rank rho = {rho})")
    assert result.parallel_ios <= bounds.old_bpc_bound_ios(geometry, rho)

    # ---- the full thing: FFT computed *on disk* ---------------------------
    # Complex samples never fit in memory; BMMC permutations stage each
    # superlevel of butterflies and every byte moves through counted I/O.
    from repro.apps.fft import out_of_core_fft

    print("\nfull out-of-core FFT (complex data resident on disk):")
    full = out_of_core_fft(signal, geometry)
    err_full = np.max(np.abs(full.values - reference))
    print(f"  superlevels:   {full.superlevels}")
    for stage in full.stages:
        print(f"    {stage}")
    print(f"  staging I/Os:  {full.staging_ios}")
    print(f"  compute I/Os:  {full.compute_ios}")
    print(f"  max |err| vs numpy.fft: {err_full:.2e}")
    assert err_full < 1e-8


if __name__ == "__main__":
    main()
