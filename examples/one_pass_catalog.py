#!/usr/bin/env python3
"""The one-pass permutation catalog, visualized.

Section 7 of the paper asks "What other permutations can be performed
quickly?"  This example runs one representative of each one-pass class
-- MRC (striped reads + striped writes), MLD (striped reads +
independent writes, Theorem 15), and inverse-MLD (independent reads +
striped writes; the conclusions' "inverse of a one-pass permutation")
-- and renders each schedule as a per-disk timeline so the I/O
disciplines are visible at a glance.

Run:  python examples/one_pass_catalog.py
"""

import numpy as np

from repro import DiskGeometry, ParallelDiskSystem
from repro.bits import linalg
from repro.bits.random import random_mld_matrix, random_mrc_matrix
from repro.core.inverse_mld import perform_inverse_mld_pass
from repro.core.mld_algorithm import perform_mld_pass
from repro.core.mrc_algorithm import perform_mrc_pass
from repro.core.runner import perform_pipeline
from repro.pdm.trace import IOTrace, render_timeline
from repro.perms.bmmc import BMMCPermutation
from repro.perms.library import gray_code, gray_code_inverse


def show(geometry, name, perm, performer):
    system = ParallelDiskSystem(geometry)
    system.fill_identity(0)
    trace = IOTrace(system)
    performer(system, perm, 0, 1)
    assert system.verify_permutation(perm, np.arange(geometry.N), 1)
    summary = trace.summary()
    print(f"--- {name} ---")
    print(
        f"I/Os: {summary.parallel_ios} (= 2N/BD = {geometry.one_pass_ios})  "
        f"striped: {summary.striped_fraction:.0%}  "
        f"parallelism: {summary.efficiency:.0%}"
    )
    print(render_timeline(trace, max_ops=32))
    print()


def main() -> None:
    geometry = DiskGeometry(N=2**10, B=2**3, D=2**2, M=2**6)
    print("geometry:", geometry.describe(), "\n")
    rng = np.random.default_rng(5)

    mrc = BMMCPermutation(random_mrc_matrix(geometry.n, geometry.m, rng))
    mld_matrix = random_mld_matrix(geometry.n, geometry.b, geometry.m, rng)
    mld = BMMCPermutation(mld_matrix)
    inv = BMMCPermutation(linalg.inverse(mld_matrix), validate=False)

    show(geometry, "MRC: striped reads, striped writes", mrc, perform_mrc_pass)
    show(geometry, "MLD: striped reads, independent writes (Thm 15)", mld, perform_mld_pass)
    show(
        geometry,
        "inverse-MLD: independent reads, striped writes (Sec. 7)",
        inv,
        perform_inverse_mld_pass,
    )

    # Bonus: pipeline composition (Lemma 1 as an optimization) -- a
    # relayout followed by its undo collapses to a single identity pass.
    system = ParallelDiskSystem(geometry)
    system.fill_identity(0)
    report = perform_pipeline(system, [gray_code(geometry.n), gray_code_inverse(geometry.n)])
    print(
        f"pipeline [gray, gray^-1] composed via Lemma 1: "
        f"{report.passes} pass, {report.io.parallel_ios} I/Os "
        f"(separate runs would cost {2 * geometry.one_pass_ios})"
    )
    assert report.passes == 1


if __name__ == "__main__":
    main()
