#!/usr/bin/env python3
"""Run-time BMMC detection (Section 6), end to end.

A runtime system receives bare vectors of target addresses.  For each of
several workloads -- some secretly BMMC, some not -- this example stores
the vector on the simulated disk system, runs the paper's detector, and
shows the measured read counts against the bound
``N/BD + ceil((lg(N/B)+1)/D)``, then executes detected permutations via
the fast path.

Run:  python examples/runtime_detection.py
"""

import numpy as np

from repro import (
    DiskGeometry,
    ParallelDiskSystem,
    bounds,
    detect_bmmc,
    perform_bmmc,
    store_target_vector,
)
from repro.bits.random import random_nonsingular
from repro.perms.bmmc import BMMCPermutation
from repro.perms.library import gray_code, matrix_transpose, permuted_gray_code


def probe(geometry, name, targets):
    system = ParallelDiskSystem(geometry, simple_io=False)
    store_target_vector(system, targets)
    result = detect_bmmc(system)
    bound = bounds.detection_read_bound(geometry)
    verdict = "BMMC" if result.is_bmmc else f"not BMMC ({result.reason})"
    print(
        f"{name:>28}: {verdict:<34} reads={result.total_reads:>4} "
        f"(bound {bound})"
    )
    return result


def main() -> None:
    geometry = DiskGeometry(N=2**12, B=2**3, D=2**2, M=2**7)
    rng = np.random.default_rng(7)
    print("geometry:", geometry.describe(), "\n")

    workloads = {
        "matrix transpose": matrix_transpose(5, geometry.n - 5).target_vector(),
        "Gray code": gray_code(geometry.n).target_vector(),
        "permuted Gray code": permuted_gray_code(
            geometry.n, list(rng.permutation(geometry.n))
        ).target_vector(),
        "random BMMC + complement": BMMCPermutation(
            random_nonsingular(geometry.n, rng), int(rng.integers(0, geometry.N))
        ).target_vector(),
        "random permutation": rng.permutation(geometry.N),
        "BMMC with one swap": _tampered(gray_code(geometry.n).target_vector()),
    }

    detections = {}
    for name, targets in workloads.items():
        detections[name] = probe(geometry, name, targets)

    # Execute every detected permutation through the Theorem 21 algorithm.
    print("\nexecuting the detected BMMC permutations via the fast path:")
    for name, det in detections.items():
        if not det.is_bmmc:
            continue
        perm = det.permutation()
        system = ParallelDiskSystem(geometry)
        system.fill_identity(0)
        res = perform_bmmc(system, perm)
        ok = system.verify_permutation(perm, np.arange(geometry.N), res.final_portion)
        print(
            f"{name:>28}: passes={res.passes} I/Os={res.parallel_ios} verified={ok}"
        )
        assert ok


def _tampered(targets: np.ndarray) -> np.ndarray:
    targets = targets.copy()
    targets[[100, 2000]] = targets[[2000, 100]]
    return targets


if __name__ == "__main__":
    main()
