"""Tests for the executable potential argument (Section 2 + Section 7)."""

import math

import numpy as np
import pytest

from repro.bits.random import random_bmmc_with_rank_gamma, random_mld_matrix, random_nonsingular
from repro.core import bounds
from repro.core.bmmc_algorithm import perform_bmmc
from repro.core.mld_algorithm import perform_mld_pass
from repro.core.potential import PotentialTracker, compute_potential, f
from repro.pdm.geometry import DiskGeometry
from repro.pdm.system import ParallelDiskSystem
from repro.perms.bmmc import BMMCPermutation


@pytest.fixture
def geometry():
    return DiskGeometry(N=2**10, B=2**3, D=2**2, M=2**6)


def tracked_run(geometry, perm):
    s = ParallelDiskSystem(geometry)
    s.fill_identity(0)
    tracker = PotentialTracker(s, perm)
    res = perform_bmmc(s, perm)
    assert s.verify_permutation(perm, np.arange(geometry.N), res.final_portion)
    return s, tracker, res


class TestF:
    def test_values(self):
        assert f(0) == 0.0
        assert f(1) == 0.0
        assert f(2) == 2.0
        assert f(8) == 24.0

    def test_superadditive(self):
        """f(a + b) >= f(a) + f(b): clustering records raises potential."""
        for a in range(0, 10):
            for b in range(0, 10):
                assert f(a + b) >= f(a) + f(b) - 1e-12


class TestInitialPotentialEq9:
    """Phi(0) = N (lg B - rank gamma) on the canonical layout."""

    def test_across_ranks(self, geometry):
        g = geometry
        for r in range(min(g.b, g.n - g.b) + 1):
            perm = BMMCPermutation(
                random_bmmc_with_rank_gamma(g.n, g.b, r, np.random.default_rng(r))
            )
            s = ParallelDiskSystem(g)
            s.fill_identity(0)
            tracker = PotentialTracker(s, perm)
            assert abs(tracker.potential - g.N * (g.b - r)) < 1e-6

    def test_identity_initial_equals_final(self, geometry):
        from repro.bits.matrix import BitMatrix

        g = geometry
        perm = BMMCPermutation(BitMatrix.identity(g.n))
        s = ParallelDiskSystem(g)
        s.fill_identity(0)
        tracker = PotentialTracker(s, perm)
        assert abs(tracker.potential - g.N * g.b) < 1e-6


class TestLemma10:
    """Each source block maps to 2^r target blocks, B/2^r records each."""

    def test_group_structure(self, geometry):
        g = geometry
        for r in range(g.b + 1):
            perm = BMMCPermutation(
                random_bmmc_with_rank_gamma(g.n, g.b, r, np.random.default_rng(10 + r))
            )
            targets = perm.target_vector()
            for k in [0, 1, g.num_blocks // 2, g.num_blocks - 1]:
                block_targets = targets[k * g.B : (k + 1) * g.B] >> g.b
                uniq, counts = np.unique(block_targets, return_counts=True)
                assert uniq.size == 2**r
                assert (counts == g.B // 2**r).all()


class TestTrackerInvariants:
    def test_final_potential(self, geometry):
        g = geometry
        perm = BMMCPermutation(random_nonsingular(g.n, np.random.default_rng(0)), 0b11)
        s, tracker, res = tracked_run(g, perm)
        assert abs(tracker.potential - g.N * g.b) < 1e-6

    def test_read_deltas_capped(self, geometry):
        g = geometry
        perm = BMMCPermutation(random_nonsingular(g.n, np.random.default_rng(1)))
        s, tracker, res = tracked_run(g, perm)
        tracker.verify_bounds()
        assert tracker.max_read_delta() <= g.D * bounds.delta_max(g) + 1e-9

    def test_write_deltas_nonpositive(self, geometry):
        g = geometry
        perm = BMMCPermutation(random_nonsingular(g.n, np.random.default_rng(2)))
        s, tracker, res = tracked_run(g, perm)
        assert tracker.max_write_delta() <= 1e-9

    def test_incremental_matches_rescan(self, geometry):
        g = geometry
        perm = BMMCPermutation(random_nonsingular(g.n, np.random.default_rng(3)))
        s, tracker, res = tracked_run(g, perm)
        assert abs(tracker.potential - compute_potential(s, perm)) < 1e-6

    def test_history_lengths(self, geometry):
        g = geometry
        perm = BMMCPermutation(random_nonsingular(g.n, np.random.default_rng(4)))
        s, tracker, res = tracked_run(g, perm)
        assert len(tracker.history) == res.parallel_ios

    def test_requires_simple_io(self, geometry):
        s = ParallelDiskSystem(geometry, simple_io=False)
        s.fill_identity(0)
        perm = BMMCPermutation(random_nonsingular(geometry.n, np.random.default_rng(5)))
        with pytest.raises(ValueError):
            PotentialTracker(s, perm)

    def test_detach_stops_tracking(self, geometry):
        g = geometry
        perm = BMMCPermutation(random_mld_matrix(g.n, g.b, g.m, np.random.default_rng(6)))
        s = ParallelDiskSystem(g)
        s.fill_identity(0)
        tracker = PotentialTracker(s, perm)
        tracker.detach()
        perform_mld_pass(s, perm, 0, 1)
        assert len(tracker.history) == 0


class TestLowerBoundDerivation:
    """The numeric Theorem 3 argument: t >= (Phi(t) - Phi(0)) / (D Delta_max)."""

    def test_potential_lower_bound_holds(self, geometry):
        g = geometry
        for seed in range(5):
            perm = BMMCPermutation(random_nonsingular(g.n, np.random.default_rng(seed)))
            s, tracker, res = tracked_run(g, perm)
            phi0 = g.N * (g.b - perm.rank_gamma(g.b))
            t_lb = (g.N * g.b - phi0) / (g.D * bounds.delta_max(g))
            assert res.parallel_ios >= t_lb - 1e-9

    def test_sharpened_bound_respected_by_algorithm(self, geometry):
        g = geometry
        for r in range(min(g.b, g.n - g.b) + 1):
            perm = BMMCPermutation(
                random_bmmc_with_rank_gamma(g.n, g.b, r, np.random.default_rng(20 + r))
            )
            s = ParallelDiskSystem(g)
            s.fill_identity(0)
            res = perform_bmmc(s, perm)
            assert res.parallel_ios >= bounds.sharpened_lower_bound(g, r) - 1e-9
