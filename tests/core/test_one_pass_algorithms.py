"""Tests for the one-pass MRC and MLD performers (Table 1 row; Theorem 15)."""

import numpy as np
import pytest

from repro.bits.random import random_mld_matrix, random_mrc_matrix
from repro.errors import NotInClassError
from repro.pdm.geometry import DiskGeometry
from repro.pdm.system import ParallelDiskSystem
from repro.perms.bmmc import BMMCPermutation
from repro.perms.library import gray_code, gray_code_inverse
from repro.core.mld_algorithm import perform_mld_pass
from repro.core.mrc_algorithm import perform_mrc_pass


def make_system(geometry):
    s = ParallelDiskSystem(geometry)
    s.fill_identity(0)
    return s


class TestMRCPass:
    def test_correct_and_one_pass(self, any_geometry):
        g = any_geometry
        rng = np.random.default_rng(0)
        perm = BMMCPermutation(random_mrc_matrix(g.n, g.m, rng), 0)
        s = make_system(g)
        perform_mrc_pass(s, perm, 0, 1)
        assert s.verify_permutation(perm, np.arange(g.N), 1)
        assert s.stats.parallel_ios == g.one_pass_ios

    def test_all_ios_striped(self, small_geometry):
        g = small_geometry
        perm = BMMCPermutation(random_mrc_matrix(g.n, g.m, np.random.default_rng(1)))
        s = make_system(g)
        perform_mrc_pass(s, perm, 0, 1)
        assert s.stats.striped_reads == g.num_stripes
        assert s.stats.striped_writes == g.num_stripes
        assert s.stats.independent_reads == 0
        assert s.stats.independent_writes == 0

    def test_with_complement(self, small_geometry):
        g = small_geometry
        perm = BMMCPermutation(
            random_mrc_matrix(g.n, g.m, np.random.default_rng(2)), complement=g.N - 1
        )
        s = make_system(g)
        perform_mrc_pass(s, perm, 0, 1)
        assert s.verify_permutation(perm, np.arange(g.N), 1)

    def test_gray_code_and_inverse(self, small_geometry):
        g = small_geometry
        for perm in [gray_code(g.n), gray_code_inverse(g.n)]:
            s = make_system(g)
            perform_mrc_pass(s, perm, 0, 1)
            assert s.verify_permutation(perm, np.arange(g.N), 1)
            assert s.stats.parallel_ios == g.one_pass_ios

    def test_non_mrc_rejected(self, small_geometry):
        g = small_geometry
        perm = BMMCPermutation(
            random_mld_matrix(g.n, g.b, g.m, np.random.default_rng(3))
        )
        from repro.perms.mrc import is_mrc

        if is_mrc(perm, g.m):
            pytest.skip("sampled MLD matrix is also MRC")
        s = make_system(g)
        with pytest.raises(NotInClassError):
            perform_mrc_pass(s, perm, 0, 1)

    def test_memory_empty_after(self, small_geometry):
        g = small_geometry
        perm = BMMCPermutation(random_mrc_matrix(g.n, g.m, np.random.default_rng(4)))
        s = make_system(g)
        perform_mrc_pass(s, perm, 0, 1)
        s.memory.require_empty()

    def test_pass_labelled(self, small_geometry):
        g = small_geometry
        perm = BMMCPermutation(random_mrc_matrix(g.n, g.m, np.random.default_rng(5)))
        s = make_system(g)
        perform_mrc_pass(s, perm, 0, 1, label="my-pass")
        assert s.stats.passes[-1].label == "my-pass"


class TestMLDPassTheorem15:
    def test_correct_and_one_pass(self, any_geometry):
        g = any_geometry
        rng = np.random.default_rng(10)
        perm = BMMCPermutation(random_mld_matrix(g.n, g.b, g.m, rng))
        s = make_system(g)
        perform_mld_pass(s, perm, 0, 1)
        assert s.verify_permutation(perm, np.arange(g.N), 1)
        assert s.stats.parallel_ios == g.one_pass_ios

    def test_striped_reads_independent_writes(self, small_geometry):
        """The exact I/O discipline of Theorem 15: striped reads, and
        M/BD independent writes per memoryload."""
        g = small_geometry
        perm = BMMCPermutation(
            random_mld_matrix(g.n, g.b, g.m, np.random.default_rng(11))
        )
        s = make_system(g)
        perform_mld_pass(s, perm, 0, 1)
        assert s.stats.striped_reads == g.num_stripes
        assert s.stats.parallel_writes == g.num_stripes
        # every parallel write moves a full D blocks (even dispersal)
        assert s.stats.blocks_written == g.num_blocks

    def test_each_write_covers_all_disks(self, small_geometry):
        g = small_geometry
        perm = BMMCPermutation(
            random_mld_matrix(g.n, g.b, g.m, np.random.default_rng(12))
        )
        s = make_system(g)
        writes = []
        s.add_observer(lambda e: writes.append(e) if e.kind == "write" else None)
        perform_mld_pass(s, perm, 0, 1)
        for e in writes:
            disks = sorted(g.block_disk(e.block_ids))
            assert disks == list(range(g.D))

    def test_with_complement(self, small_geometry):
        g = small_geometry
        perm = BMMCPermutation(
            random_mld_matrix(g.n, g.b, g.m, np.random.default_rng(13)),
            complement=0b1011,
        )
        s = make_system(g)
        perform_mld_pass(s, perm, 0, 1)
        assert s.verify_permutation(perm, np.arange(g.N), 1)

    def test_various_gamma_ranks(self, small_geometry):
        g = small_geometry
        for gr in range(min(g.m - g.b, g.n - g.m) + 1):
            perm = BMMCPermutation(
                random_mld_matrix(g.n, g.b, g.m, np.random.default_rng(14 + gr), gamma_rank=gr)
            )
            s = make_system(g)
            perform_mld_pass(s, perm, 0, 1)
            assert s.verify_permutation(perm, np.arange(g.N), 1)

    def test_mrc_matrix_also_runs_as_mld(self, small_geometry):
        """Every MRC permutation is MLD (Section 3), so the MLD performer
        must handle it."""
        g = small_geometry
        perm = BMMCPermutation(random_mrc_matrix(g.n, g.m, np.random.default_rng(15)))
        s = make_system(g)
        perform_mld_pass(s, perm, 0, 1)
        assert s.verify_permutation(perm, np.arange(g.N), 1)

    def test_non_mld_rejected(self, small_geometry):
        g = small_geometry
        # The paper's recipe for a non-MLD matrix: rank of gamma too high.
        from repro.bits.random import random_nonsingular
        from repro.bits import linalg

        rng = np.random.default_rng(16)
        for _ in range(300):
            a = random_nonsingular(g.n, rng)
            if linalg.rank(a[g.m : g.n, 0 : g.m]) > g.m - g.b:
                s = make_system(g)
                with pytest.raises(NotInClassError):
                    perform_mld_pass(s, BMMCPermutation(a), 0, 1)
                return
        pytest.skip("no non-MLD sample drawn")

    def test_class_check_can_be_skipped_but_asserts_fire(self, small_geometry):
        """With check_class=False a non-MLD matrix must still fail loudly
        via the in-flight Lemma 13 assertions, never scatter silently."""
        g = small_geometry
        from repro.bits.random import random_nonsingular
        from repro.bits import linalg

        rng = np.random.default_rng(17)
        for _ in range(300):
            a = random_nonsingular(g.n, rng)
            if not linalg.is_nonsingular(a[0 : g.m, 0 : g.m]):
                s = make_system(g)
                with pytest.raises(NotInClassError):
                    perform_mld_pass(s, BMMCPermutation(a), 0, 1, check_class=False)
                return
        pytest.skip("no suitable sample drawn")

    def test_memory_empty_after(self, small_geometry):
        g = small_geometry
        perm = BMMCPermutation(
            random_mld_matrix(g.n, g.b, g.m, np.random.default_rng(18))
        )
        s = make_system(g)
        perform_mld_pass(s, perm, 0, 1)
        s.memory.require_empty()
