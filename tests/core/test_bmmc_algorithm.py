"""Tests for the asymptotically optimal BMMC algorithm (Theorem 21)."""

import numpy as np
import pytest

from repro.bits.random import (
    random_bmmc_with_rank_gamma,
    random_mld_matrix,
    random_mrc_matrix,
    random_nonsingular,
)
from repro.core import bounds
from repro.core.bmmc_algorithm import perform_bmmc, plan_bmmc_passes
from repro.errors import ValidationError
from repro.pdm.system import ParallelDiskSystem
from repro.perms.bmmc import BMMCPermutation
from repro.perms.library import (
    bit_reversal,
    gray_code,
    matrix_transpose,
    perfect_shuffle,
    permuted_gray_code,
    vector_reversal,
)


def run(geometry, perm, **kwargs):
    s = ParallelDiskSystem(geometry)
    s.fill_identity(0)
    res = perform_bmmc(s, perm, **kwargs)
    ok = s.verify_permutation(perm, np.arange(geometry.N), res.final_portion)
    return s, res, ok


class TestPlanning:
    def test_mrc_shortcut(self, small_geometry):
        g = small_geometry
        perm = BMMCPermutation(random_mrc_matrix(g.n, g.m, np.random.default_rng(0)))
        plan = plan_bmmc_passes(perm, g)
        assert len(plan) == 1 and plan[0].kind == "mrc"

    def test_mld_shortcut(self, small_geometry):
        g = small_geometry
        perm = BMMCPermutation(
            random_mld_matrix(g.n, g.b, g.m, np.random.default_rng(1))
        )
        plan = plan_bmmc_passes(perm, g)
        assert len(plan) == 1

    def test_complement_on_final_pass_only(self, small_geometry):
        g = small_geometry
        perm = BMMCPermutation(random_nonsingular(g.n, np.random.default_rng(2)), 0b111)
        plan = plan_bmmc_passes(perm, g)
        assert all(step.perm.complement == 0 for step in plan[:-1])
        assert plan[-1].perm.complement == 0b111

    def test_plan_composes_to_input(self, small_geometry):
        g = small_geometry
        perm = BMMCPermutation(random_nonsingular(g.n, np.random.default_rng(3)), 0b1010)
        plan = plan_bmmc_passes(perm, g)
        composed = plan[0].perm
        for step in plan[1:]:
            composed = step.perm.compose(composed)
        assert composed.matrix == perm.matrix
        assert composed.complement == perm.complement

    def test_unmerged_plan_doubles_passes(self, small_geometry):
        g = small_geometry
        perm = BMMCPermutation(random_nonsingular(g.n, np.random.default_rng(4)))
        merged = plan_bmmc_passes(perm, g, merge_factors=True)
        unmerged = plan_bmmc_passes(perm, g, merge_factors=False)
        if len(merged) > 1:  # factored path
            g_rounds = len(merged) - 1
            assert len(unmerged) == 2 * g_rounds + 2

    def test_size_mismatch_rejected(self, small_geometry):
        with pytest.raises(ValidationError):
            plan_bmmc_passes(gray_code(small_geometry.n + 1), small_geometry)


class TestExecutionCorrectness:
    def test_random_bmmc(self, any_geometry):
        g = any_geometry
        perm = BMMCPermutation(
            random_nonsingular(g.n, np.random.default_rng(5)), complement=0b11
        )
        _, res, ok = run(g, perm)
        assert ok

    def test_prescribed_rank_gamma_sweep(self, small_geometry):
        g = small_geometry
        for r in range(min(g.b, g.n - g.b) + 1):
            perm = BMMCPermutation(
                random_bmmc_with_rank_gamma(g.n, g.b, r, np.random.default_rng(6 + r))
            )
            _, res, ok = run(g, perm)
            assert ok, f"rank gamma {r} failed"

    @pytest.mark.parametrize(
        "named",
        [
            lambda n: bit_reversal(n),
            lambda n: vector_reversal(n),
            lambda n: gray_code(n),
            lambda n: perfect_shuffle(n),
            lambda n: matrix_transpose(n // 2, n - n // 2),
            lambda n: permuted_gray_code(n, list(range(n - 1, -1, -1))),
        ],
        ids=["bit-reversal", "vector-reversal", "gray", "shuffle", "transpose", "perm-gray"],
    )
    def test_named_permutations(self, small_geometry, named):
        g = small_geometry
        perm = named(g.n)
        _, res, ok = run(g, perm)
        assert ok

    def test_identity_permutation(self, small_geometry):
        g = small_geometry
        from repro.bits.matrix import BitMatrix

        perm = BMMCPermutation(BitMatrix.identity(g.n))
        _, res, ok = run(g, perm)
        assert ok
        assert res.passes == 1  # identity is MRC; one (wasted) pass

    def test_unmerged_execution_correct(self, small_geometry):
        g = small_geometry
        perm = BMMCPermutation(random_nonsingular(g.n, np.random.default_rng(7)), 0b101)
        _, res, ok = run(g, perm, merge_factors=False)
        assert ok


class TestTheorem21IOBound:
    def test_io_counts_exact(self, small_geometry):
        """Measured I/Os = 2N/BD per planned pass, <= Theorem 21's bound."""
        g = small_geometry
        for seed in range(8):
            perm = BMMCPermutation(random_nonsingular(g.n, np.random.default_rng(seed)))
            s, res, ok = run(g, perm)
            assert ok
            assert res.parallel_ios == res.passes * g.one_pass_ios
            rg = perm.rank_gamma(g.b)
            assert res.parallel_ios <= bounds.theorem21_upper_bound(g, rg)
            assert res.parallel_ios == bounds.predicted_ios(perm.matrix, g)

    def test_bound_across_geometries(self, any_geometry):
        g = any_geometry
        perm = BMMCPermutation(random_nonsingular(g.n, np.random.default_rng(77)))
        s, res, ok = run(g, perm)
        assert ok
        assert res.parallel_ios <= bounds.theorem21_upper_bound(g, perm.rank_gamma(g.b))

    def test_measured_exceeds_lower_bound_form(self, small_geometry):
        """Sanity: measured I/Os sit between the Theorem 3 expression and
        the Theorem 21 ceiling."""
        g = small_geometry
        perm = BMMCPermutation(
            random_bmmc_with_rank_gamma(g.n, g.b, g.b, np.random.default_rng(8))
        )
        s, res, ok = run(g, perm)
        assert ok
        rg = perm.rank_gamma(g.b)
        assert res.parallel_ios >= bounds.sharpened_lower_bound(g, rg)
        assert res.parallel_ios <= bounds.theorem21_upper_bound(g, rg)

    def test_low_rank_beats_general_bound(self, small_geometry):
        """The headline claim: when rank gamma is low, the BMMC algorithm
        beats the general-permutation (sorting) bound."""
        g = small_geometry
        perm = BMMCPermutation(
            random_bmmc_with_rank_gamma(g.n, g.b, 0, np.random.default_rng(9))
        )
        s, res, ok = run(g, perm)
        assert ok
        assert res.parallel_ios < bounds.general_permutation_bound(g)


class TestPortionHandling:
    def test_final_portion_parity(self, small_geometry):
        g = small_geometry
        perm = BMMCPermutation(random_nonsingular(g.n, np.random.default_rng(10)))
        s, res, ok = run(g, perm)
        expected = 1 if res.passes % 2 == 1 else 0
        assert res.final_portion == expected

    def test_memory_empty_after_run(self, small_geometry):
        g = small_geometry
        perm = BMMCPermutation(random_nonsingular(g.n, np.random.default_rng(11)))
        s, res, ok = run(g, perm)
        s.memory.require_empty()

    def test_pass_labels_in_stats(self, small_geometry):
        g = small_geometry
        perm = BMMCPermutation(random_nonsingular(g.n, np.random.default_rng(12)))
        s, res, ok = run(g, perm)
        labels = [p.label for p in s.stats.passes]
        assert len(labels) == res.passes
        if res.passes > 1:
            assert labels[-1] == "F"
