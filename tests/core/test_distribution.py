"""Tests for the randomized-placement distribution sort baseline."""

import numpy as np
import pytest

from repro.bits.random import random_nonsingular
from repro.core.distribution import (
    DistributionSortResult,
    perform_distribution_sort,
    tune_parameters,
)
from repro.errors import ValidationError
from repro.pdm.geometry import DiskGeometry
from repro.pdm.system import ParallelDiskSystem
from repro.perms.base import ExplicitPermutation
from repro.perms.bmmc import BMMCPermutation
from repro.perms.library import bit_reversal, vector_reversal


@pytest.fixture
def geometry():
    return DiskGeometry(N=2**12, B=2**3, D=2**2, M=2**8)


def run(geometry, perm, **kwargs):
    s = ParallelDiskSystem(geometry)
    s.fill_identity(0)
    res = perform_distribution_sort(s, perm, **kwargs)
    ok = s.verify_permutation(perm, np.arange(geometry.N), res.final_portion)
    return s, res, ok


class TestTuning:
    def test_parameters_fit_memory(self, geometry):
        w, window = tune_parameters(geometry)
        g = geometry
        assert (1 << w) * g.B + window * g.B + (g.B + g.D) * g.B <= g.M
        assert w >= 1 and window >= 1

    def test_tight_memory_rejected(self):
        # B = 32, M = 64: pending cap alone exceeds M
        g = DiskGeometry(N=2**12, B=2**5, D=2**0, M=2**6)
        with pytest.raises(ValidationError):
            tune_parameters(g)

    def test_explicit_bad_params_rejected(self, geometry):
        s = ParallelDiskSystem(geometry)
        s.fill_identity(0)
        with pytest.raises(ValidationError):
            perform_distribution_sort(s, vector_reversal(geometry.n), digit_bits=0)


class TestCorrectness:
    def test_random_permutation(self, geometry):
        tv = np.random.default_rng(0).permutation(geometry.N)
        _, res, ok = run(geometry, ExplicitPermutation(tv))
        assert ok

    def test_bmmc(self, geometry):
        perm = BMMCPermutation(random_nonsingular(geometry.n, np.random.default_rng(1)))
        _, res, ok = run(geometry, perm)
        assert ok

    def test_identity(self, geometry):
        _, res, ok = run(geometry, ExplicitPermutation(np.arange(geometry.N)))
        assert ok

    def test_bit_reversal(self, geometry):
        _, res, ok = run(geometry, bit_reversal(geometry.n))
        assert ok

    def test_adversarial_stride(self, geometry):
        g = geometry
        tv = (np.arange(g.N) * 2049) % g.N
        _, res, ok = run(g, ExplicitPermutation(tv))
        assert ok

    def test_different_seeds_same_result(self, geometry):
        tv = np.random.default_rng(2).permutation(geometry.N)
        perm = ExplicitPermutation(tv)
        s1, r1, ok1 = run(geometry, perm, seed=1)
        s2, r2, ok2 = run(geometry, perm, seed=2)
        assert ok1 and ok2
        assert (
            s1.portion_values(r1.final_portion) == s2.portion_values(r2.final_portion)
        ).all()

    def test_agrees_with_merge_sort(self, geometry):
        from repro.core.general import perform_general_sort

        tv = np.random.default_rng(3).permutation(geometry.N)
        perm = ExplicitPermutation(tv)
        s1, r1, ok1 = run(geometry, perm)
        s2 = ParallelDiskSystem(geometry)
        s2.fill_identity(0)
        r2 = perform_general_sort(s2, perm)
        assert ok1
        assert (
            s1.portion_values(r1.final_portion) == s2.portion_values(r2.final_portion)
        ).all()


class TestIOBehaviour:
    def test_pass_count_formula(self, geometry):
        g = geometry
        tv = np.random.default_rng(4).permutation(g.N)
        _, res, ok = run(g, ExplicitPermutation(tv))
        expected = -(-(g.n - g.b) // res.digit_bits) + 1
        assert res.passes == expected

    def test_writes_perfectly_batched(self, geometry):
        """Write batching is deterministic: every flush moves D blocks
        except stragglers at pass end."""
        g = geometry
        tv = np.random.default_rng(5).permutation(g.N)
        s, res, ok = run(g, ExplicitPermutation(tv))
        blocks_written = s.stats.blocks_written
        # perfect batching would be blocks/D ops; allow pass-end stragglers
        assert res.write_ops <= blocks_written // g.D + res.passes * g.D

    def test_read_parallelism_reasonable(self, geometry):
        """Randomized placement keeps read batching well above 1 block/op."""
        g = geometry
        tv = np.random.default_rng(6).permutation(g.N)
        s, res, ok = run(g, ExplicitPermutation(tv))
        parallelism = res.blocks_per_pass_read / res.read_ops
        assert parallelism >= 0.6 * g.D

    def test_memory_respected(self, geometry):
        g = geometry
        tv = np.random.default_rng(7).permutation(g.N)
        s, res, ok = run(g, ExplicitPermutation(tv))
        assert s.memory.peak <= g.M
        s.memory.require_empty()

    def test_total_ios_close_to_ideal(self, geometry):
        """Total I/Os within 1.5x of the ideal passes * 2N/BD."""
        g = geometry
        tv = np.random.default_rng(8).permutation(g.N)
        _, res, ok = run(g, ExplicitPermutation(tv))
        ideal = res.passes * g.one_pass_ios
        assert res.parallel_ios <= 1.5 * ideal

    def test_single_disk_degenerate(self):
        """D = 1: no batching possible, but everything still works."""
        g = DiskGeometry(N=2**10, B=2**2, D=1, M=2**6)
        tv = np.random.default_rng(9).permutation(g.N)
        _, res, ok = run(g, ExplicitPermutation(tv))
        assert ok

    def test_wide_array(self):
        g = DiskGeometry(N=2**12, B=2**2, D=2**3, M=2**9)
        tv = np.random.default_rng(10).permutation(g.N)
        _, res, ok = run(g, ExplicitPermutation(tv))
        assert ok


class TestExplicitParameters:
    def test_explicit_digit_bits(self, geometry):
        tv = np.random.default_rng(11).permutation(geometry.N)
        _, res, ok = run(geometry, ExplicitPermutation(tv), digit_bits=2)
        assert ok and res.digit_bits == 2
        assert res.passes == -(-(geometry.n - geometry.b) // 2) + 1

    def test_minimal_prefetch_window(self, geometry):
        """window=1 degrades read batching to one block per op but stays
        correct -- the worst-case schedule."""
        tv = np.random.default_rng(12).permutation(geometry.N)
        s, res, ok = run(geometry, ExplicitPermutation(tv), prefetch_window=1)
        assert ok
        # every read moves exactly one block
        assert res.blocks_per_pass_read == res.read_ops


class TestStagedPort:
    """The plan/engine port: knobs, meta, and the no-direct-I/O guarantee."""

    def test_module_performs_no_direct_io(self):
        """Acceptance guard: `core/distribution.py` never calls the
        simulator's I/O methods -- all data movement flows through
        staged IOPlans executed by the engines."""
        import inspect

        import repro.core.distribution as module

        source = inspect.getsource(module)
        for forbidden in (
            "system.read_blocks", "system.write_blocks",
            "system.read_stripe", "system.write_stripe",
            "system.read_memoryload", "system.write_memoryload",
            ".memory.allocate", ".memory.release",
            "stats.begin_pass", "stats.end_pass",
        ):
            assert forbidden not in source, forbidden

    def test_plan_distribution_sort_meta(self, geometry):
        from repro.core.distribution import plan_distribution_sort

        g = geometry
        staged = plan_distribution_sort(g, vector_reversal(g.n), digit_bits=2)
        expected_passes = -(-(g.n - g.b) // 2) + 1
        assert staged.meta["passes"] == expected_passes
        assert staged.meta["digit_bits"] == 2
        assert staged.meta["final_portion"] in (0, 1)

    def test_engine_parity(self, geometry):
        tv = np.random.default_rng(20).permutation(geometry.N)
        perm = ExplicitPermutation(tv)
        s1, r1, ok1 = run(geometry, perm, seed=4, engine="strict")
        s2, r2, ok2 = run(geometry, perm, seed=4, engine="fast")
        assert ok1 and ok2
        assert s1.stats.snapshot() == s2.stats.snapshot()
        assert (s1.portion_values(0) == s2.portion_values(0)).all()
        assert (s1.portion_values(1) == s2.portion_values(1)).all()
        assert s1.memory.peak == s2.memory.peak

    def test_optimized_cached_run_verifies(self, geometry):
        from repro.pdm.cache import PlanCache

        tv = np.random.default_rng(21).permutation(geometry.N)
        perm = ExplicitPermutation(tv)
        cache = PlanCache()
        for expected_hits in (0, 1):
            s, res, ok = run(
                geometry, perm, seed=4, engine="fast", optimize=True, cache=cache
            )
            assert ok
            assert cache.info().hits == expected_hits

    def test_runner_threads_knobs_to_distribution(self, geometry):
        from repro.core.runner import perform_permutation
        from repro.pdm.cache import PlanCache

        g = geometry
        tv = np.random.default_rng(22).permutation(g.N)
        perm = ExplicitPermutation(tv)
        cache = PlanCache()
        reports = []
        for _ in range(2):
            s = ParallelDiskSystem(g)
            s.fill_identity(0)
            reports.append(
                perform_permutation(
                    s, perm, method="distribution", engine="fast",
                    optimize=True, cache=cache,
                )
            )
        assert all(r.verified for r in reports)
        assert reports[0].io == reports[1].io
        assert cache.info().hits == 1
