"""Tests for the classification-driven dispatcher."""

import numpy as np
import pytest

from repro.bits.random import random_mld_matrix, random_mrc_matrix, random_nonsingular
from repro.core.runner import perform_permutation
from repro.errors import ValidationError
from repro.pdm.geometry import DiskGeometry
from repro.pdm.system import ParallelDiskSystem
from repro.perms.base import ExplicitPermutation
from repro.perms.bmmc import BMMCPermutation
from repro.perms.classify import PermClass
from repro.perms.library import gray_code


@pytest.fixture
def geometry():
    return DiskGeometry(N=2**12, B=2**3, D=2**2, M=2**8)


def fresh(geometry):
    s = ParallelDiskSystem(geometry)
    s.fill_identity(0)
    return s


class TestAutoDispatch:
    def test_mrc_dispatch(self, geometry):
        s = fresh(geometry)
        report = perform_permutation(s, gray_code(geometry.n))
        assert report.method == "mrc" and report.passes == 1 and report.verified

    def test_mld_dispatch(self, geometry):
        g = geometry
        rng = np.random.default_rng(0)
        for _ in range(50):
            a = random_mld_matrix(g.n, g.b, g.m, rng)
            from repro.perms.mrc import is_mrc

            if not is_mrc(a, g.m):
                break
        s = fresh(g)
        report = perform_permutation(s, BMMCPermutation(a))
        assert report.method == "mld" and report.passes == 1 and report.verified

    def test_bmmc_dispatch(self, geometry):
        g = geometry
        rng = np.random.default_rng(1)
        for _ in range(50):
            a = random_nonsingular(g.n, rng)
            from repro.perms.mld import is_mld

            if not is_mld(a, g.b, g.m):
                break
        s = fresh(g)
        report = perform_permutation(s, BMMCPermutation(a))
        assert report.method == "bmmc" and report.verified

    def test_general_dispatch_for_non_bmmc(self, geometry):
        g = geometry
        tv = np.random.default_rng(2).permutation(g.N)
        s = fresh(g)
        report = perform_permutation(s, ExplicitPermutation(tv))
        assert report.method == "general" and report.verified
        assert report.classes == {PermClass.NON_BMMC}

    def test_explicit_bmmc_vector_gets_fast_path(self, geometry):
        """An explicit vector that *is* BMMC must be fitted and run through
        the BMMC machinery, not the general sorter."""
        g = geometry
        perm = gray_code(g.n)
        s = fresh(g)
        report = perform_permutation(s, ExplicitPermutation(perm.target_vector()))
        assert report.method == "mrc" and report.verified


class TestExplicitMethods:
    def test_forced_general_on_bmmc(self, geometry):
        s = fresh(geometry)
        report = perform_permutation(s, gray_code(geometry.n), method="general")
        assert report.method == "general" and report.verified

    def test_forced_bmmc(self, geometry):
        g = geometry
        perm = BMMCPermutation(random_nonsingular(g.n, np.random.default_rng(3)))
        s = fresh(g)
        report = perform_permutation(s, perm, method="bmmc")
        assert report.verified

    def test_ablation_method(self, geometry):
        g = geometry
        rng = np.random.default_rng(4)
        from repro.perms.mld import is_mld

        for _ in range(50):
            a = random_nonsingular(g.n, rng)
            if not is_mld(a, g.b, g.m):
                break
        perm = BMMCPermutation(a)
        s1 = fresh(g)
        merged = perform_permutation(s1, perm, method="bmmc")
        s2 = fresh(g)
        unmerged = perform_permutation(s2, perm, method="bmmc-unmerged")
        assert merged.verified and unmerged.verified
        assert unmerged.passes == 2 * merged.passes
        assert unmerged.io.parallel_ios == 2 * merged.io.parallel_ios

    def test_unknown_method_rejected(self, geometry):
        s = fresh(geometry)
        with pytest.raises(ValidationError):
            perform_permutation(s, gray_code(geometry.n), method="magic")

    def test_mld_method_on_non_bmmc_rejected(self, geometry):
        g = geometry
        tv = np.random.default_rng(5).permutation(g.N)
        s = fresh(g)
        with pytest.raises(ValidationError):
            perform_permutation(s, ExplicitPermutation(tv), method="mld")


class TestReport:
    def test_bounds_table_populated(self, geometry):
        g = geometry
        perm = BMMCPermutation(random_nonsingular(g.n, np.random.default_rng(6)))
        s = fresh(g)
        report = perform_permutation(s, perm)
        for key in [
            "rank_gamma",
            "theorem3_lower_bound",
            "theorem21_upper_bound",
            "predicted_ios",
            "old_bmmc_bound_ios",
            "general_permutation_bound",
        ]:
            assert key in report.bounds
        assert report.io.parallel_ios <= report.bounds["theorem21_upper_bound"]
        assert report.io.parallel_ios == report.bounds["predicted_ios"]

    def test_bpc_bound_included_for_bpc(self, geometry):
        from repro.perms.library import bit_reversal

        s = fresh(geometry)
        report = perform_permutation(s, bit_reversal(geometry.n))
        assert "old_bpc_bound_ios" in report.bounds

    def test_summary_text(self, geometry):
        s = fresh(geometry)
        report = perform_permutation(s, gray_code(geometry.n))
        text = report.summary()
        assert "method=mrc" in text and "verified=True" in text

    def test_detects_wrong_result(self, geometry):
        """verify=True must catch an algorithm writing to the wrong portion
        -- simulated by verifying a different permutation."""
        g = geometry
        s = fresh(g)
        report = perform_permutation(s, gray_code(g.n), verify=True)
        assert report.verified
        # now check that verification is meaningful: a fresh system without
        # running anything does not verify
        s2 = fresh(g)
        assert not s2.verify_permutation(gray_code(g.n), np.arange(g.N), 1)
