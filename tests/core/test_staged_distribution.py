"""Staged distribution sort vs the hand-written performer, property-tested.

The staged planner must be a *perfect* port: for any permutation, seed,
and geometry, executing the staged plan reproduces the pre-port direct
implementation (kept verbatim in ``tests/core/reference_distribution``)
record for record -- portions, pass count ``T + 1``, I/O counters and
pass tables, memory peaks, and the per-operation I/O trace (which pins
the randomized placement map: identical block ids written in identical
order means identical placements).  Seeds are part of the contract:
same seed means the same staged schedule, different seeds may differ.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.distribution import (
    perform_distribution_sort,
    plan_distribution_sort,
)
from repro.errors import ValidationError
from repro.pdm.geometry import DiskGeometry
from repro.pdm.stage import identity_portions, materialize_staged
from repro.pdm.system import ParallelDiskSystem
from repro.perms.base import ExplicitPermutation

from tests.core.reference_distribution import reference_distribution_sort


def dist_geometry_strategy():
    """Small geometries the distribution sort can tune itself to."""

    def build(b, d, extra_m, extra_n):
        m = max(b + 1, b + d, 4) + extra_m
        n = m + extra_n
        return DiskGeometry(N=2**n, B=2**b, D=2**d, M=2**m)

    def tunable(g):
        from repro.core.distribution import tune_parameters

        try:
            tune_parameters(g)
        except ValidationError:
            return False
        return True

    return st.builds(
        build,
        st.integers(0, 3),  # b
        st.integers(0, 2),  # d
        st.integers(0, 2),  # extra memory headroom
        st.integers(1, 3),  # n - m
    ).filter(tunable)


def fresh(g):
    s = ParallelDiskSystem(g)
    s.fill_identity(0)
    return s


def record_trace(system, into):
    system.add_observer(
        lambda e: into.append((e.kind, e.portion, tuple(int(b) for b in e.block_ids)))
    )


@given(dist_geometry_strategy(), st.integers(0, 2**31), st.integers(0, 2**31))
@settings(max_examples=25, deadline=None)
def test_staged_equals_direct_simulator_execution(geometry, perm_seed, seed):
    """Random permutations + seeds: staged execution == direct execution.

    Portions, pass count ``T + 1``, stats, memory peaks, and the full
    I/O trace must coincide; the trace equality also proves the staged
    planner consumed the RNG identically, i.e. produced the same
    randomized placement map.
    """
    g = geometry
    perm = ExplicitPermutation(np.random.default_rng(perm_seed).permutation(g.N))

    direct, direct_trace = fresh(g), []
    record_trace(direct, direct_trace)
    ref = reference_distribution_sort(direct, perm, seed=seed)

    staged, staged_trace = fresh(g), []
    record_trace(staged, staged_trace)
    res = perform_distribution_sort(staged, perm, seed=seed, engine="strict")

    expected_passes = -(-(g.n - g.b) // ref.digit_bits) + 1
    assert res.passes == ref.passes == expected_passes  # T + 1
    assert res.__dict__ == ref.__dict__
    for portion in range(2):
        assert (direct.portion_values(portion) == staged.portion_values(portion)).all()
    assert direct.stats.snapshot() == staged.stats.snapshot()
    assert direct.stats.passes == staged.stats.passes
    assert direct.memory.peak == staged.memory.peak
    assert direct.memory.in_use == staged.memory.in_use == 0
    assert staged_trace == direct_trace
    assert staged.verify_permutation(perm, np.arange(g.N), res.final_portion)


@given(dist_geometry_strategy(), st.integers(0, 2**31), st.integers(0, 2**31))
@settings(max_examples=15, deadline=None)
def test_staged_fast_engine_equals_direct(geometry, perm_seed, seed):
    """The same oracle holds when the stages execute fused."""
    g = geometry
    perm = ExplicitPermutation(np.random.default_rng(perm_seed).permutation(g.N))
    direct = fresh(g)
    ref = reference_distribution_sort(direct, perm, seed=seed)
    staged = fresh(g)
    res = perform_distribution_sort(staged, perm, seed=seed, engine="fast")
    assert res.__dict__ == ref.__dict__
    for portion in range(2):
        assert (direct.portion_values(portion) == staged.portion_values(portion)).all()
    assert direct.stats.snapshot() == staged.stats.snapshot()
    assert direct.memory.peak == staged.memory.peak


class TestSeedDeterminism:
    """Same seed => identical placement map and I/O trace."""

    @pytest.fixture
    def geometry(self):
        return DiskGeometry(N=2**12, B=2**3, D=2**2, M=2**8)

    def materialized_schedule(self, g, perm, seed):
        staged = plan_distribution_sort(g, perm, seed=seed)
        plan = materialize_staged(staged, identity_portions(g))
        schedule = []
        for pas in plan.passes:
            c = pas._ensure_columns()
            schedule.append(
                (
                    pas.label,
                    c.read_ids.tobytes(),
                    c.write_ids.tobytes(),
                    c.write_source.tobytes(),
                )
            )
        return schedule

    def test_same_seed_same_schedule(self, geometry):
        g = geometry
        perm = ExplicitPermutation(np.random.default_rng(5).permutation(g.N))
        assert self.materialized_schedule(g, perm, 42) == self.materialized_schedule(
            g, perm, 42
        )

    def test_different_seed_different_placements(self, geometry):
        g = geometry
        perm = ExplicitPermutation(np.random.default_rng(5).permutation(g.N))
        a = self.materialized_schedule(g, perm, 1)
        b = self.materialized_schedule(g, perm, 2)
        # placements are randomized per seed: the written block ids of
        # the first digit pass almost surely differ
        assert a != b

    def test_same_seed_identical_io_trace(self, geometry):
        g = geometry
        perm = ExplicitPermutation(np.random.default_rng(6).permutation(g.N))
        traces = []
        for _ in range(2):
            s, trace = fresh(g), []
            record_trace(s, trace)
            perform_distribution_sort(s, perm, seed=9, engine="strict")
            traces.append(trace)
        assert traces[0] == traces[1]

    def test_materialized_plan_equals_staged_execution(self, geometry):
        """Cache path (materialize, execute composed) == adaptive path."""
        from repro.pdm.engine import execute_plan

        g = geometry
        perm = ExplicitPermutation(np.random.default_rng(7).permutation(g.N))
        adaptive = fresh(g)
        perform_distribution_sort(adaptive, perm, seed=3, engine="fast")

        composed = materialize_staged(
            plan_distribution_sort(g, perm, seed=3), identity_portions(g)
        )
        replayed = fresh(g)
        execute_plan(replayed, composed, engine="fast")
        for portion in range(2):
            assert (
                adaptive.portion_values(portion) == replayed.portion_values(portion)
            ).all()
        assert adaptive.stats.snapshot() == replayed.stats.snapshot()
        assert adaptive.stats.passes == replayed.stats.passes
        assert adaptive.memory.peak == replayed.memory.peak
