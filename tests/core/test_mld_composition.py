"""Tests for the MLD o MLD^-1 one-pass performer (Section 7)."""

import numpy as np
import pytest

from repro.bits.random import random_mld_matrix, random_mrc_matrix, random_nonsingular
from repro.core.inverse_mld import perform_mld_composition_pass
from repro.errors import NotInClassError
from repro.pdm.geometry import DiskGeometry
from repro.pdm.system import ParallelDiskSystem
from repro.pdm.trace import IOTrace
from repro.perms.bmmc import BMMCPermutation
from repro.perms.mld import is_mld


@pytest.fixture
def geometry():
    return DiskGeometry(N=2**10, B=2**3, D=2**2, M=2**6)


def mld_pair(geometry, seed):
    rng = np.random.default_rng(seed)
    x = BMMCPermutation(random_mld_matrix(geometry.n, geometry.b, geometry.m, rng))
    y = BMMCPermutation(random_mld_matrix(geometry.n, geometry.b, geometry.m, rng))
    return x, y


class TestOnePass:
    def test_correct_and_one_pass(self, geometry):
        g = geometry
        x, y = mld_pair(g, 0)
        s = ParallelDiskSystem(g)
        s.fill_identity(0)
        composed = perform_mld_composition_pass(s, y, x)
        assert s.verify_permutation(composed, np.arange(g.N), 1)
        assert s.stats.parallel_ios == g.one_pass_ios

    def test_composition_semantics(self, geometry):
        """The performed permutation is exactly Y o X^-1."""
        g = geometry
        x, y = mld_pair(g, 1)
        s = ParallelDiskSystem(g)
        s.fill_identity(0)
        composed = perform_mld_composition_pass(s, y, x)
        expected = y.compose(x.inverse())
        assert (composed.target_vector() == expected.target_vector()).all()

    def test_both_sides_independent(self, geometry):
        """The discipline: independent reads AND independent writes, every
        op still D-wide (the fourth row of the one-pass catalog)."""
        g = geometry
        x, y = mld_pair(g, 2)
        s = ParallelDiskSystem(g)
        s.fill_identity(0)
        trace = IOTrace(s)
        perform_mld_composition_pass(s, y, x)
        summary = trace.summary()
        assert summary.efficiency == 1.0
        for record in trace.records:
            assert sorted(g.block_disk(record.block_ids)) == list(range(g.D))

    def test_composition_generally_not_one_pass_directly(self, geometry):
        """The composed matrix Y X^-1 is usually in *no* direct one-pass
        class -- the pairwise performer is genuinely stronger."""
        from repro.core.inverse_mld import is_inverse_mld
        from repro.perms.mrc import is_mrc

        g = geometry
        found = False
        for seed in range(40):
            x, y = mld_pair(g, 100 + seed)
            composed = y.compose(x.inverse())
            if not (
                is_mrc(composed, g.m)
                or is_mld(composed, g.b, g.m)
                or is_inverse_mld(composed, g.b, g.m)
            ):
                found = True
                # yet the pairwise performer does it in one pass:
                s = ParallelDiskSystem(g)
                s.fill_identity(0)
                perform_mld_composition_pass(s, y, x)
                assert s.verify_permutation(composed, np.arange(g.N), 1)
                assert s.stats.parallel_ios == g.one_pass_ios
                break
        assert found, "no witness pair found"

    def test_x_identity_reduces_to_mld(self, geometry):
        from repro.bits.matrix import BitMatrix

        g = geometry
        _, y = mld_pair(g, 3)
        identity = BMMCPermutation(BitMatrix.identity(g.n))
        s = ParallelDiskSystem(g)
        s.fill_identity(0)
        composed = perform_mld_composition_pass(s, y, identity)
        assert (composed.target_vector() == y.target_vector()).all()
        assert s.verify_permutation(y, np.arange(g.N), 1)

    def test_y_identity_reduces_to_inverse_mld(self, geometry):
        from repro.bits.matrix import BitMatrix

        g = geometry
        x, _ = mld_pair(g, 4)
        identity = BMMCPermutation(BitMatrix.identity(g.n))
        s = ParallelDiskSystem(g)
        s.fill_identity(0)
        composed = perform_mld_composition_pass(s, identity, x)
        assert s.verify_permutation(x.inverse(), np.arange(g.N), 1)

    def test_non_mld_arguments_rejected(self, geometry):
        g = geometry
        rng = np.random.default_rng(5)
        for _ in range(200):
            a = random_nonsingular(g.n, rng)
            if not is_mld(a, g.b, g.m):
                break
        bad = BMMCPermutation(a)
        _, good = mld_pair(g, 6)
        s = ParallelDiskSystem(g)
        s.fill_identity(0)
        with pytest.raises(NotInClassError):
            perform_mld_composition_pass(s, good, bad)
        with pytest.raises(NotInClassError):
            perform_mld_composition_pass(s, bad, good)

    def test_memory_empty_after(self, geometry):
        g = geometry
        x, y = mld_pair(g, 7)
        s = ParallelDiskSystem(g)
        s.fill_identity(0)
        perform_mld_composition_pass(s, y, x)
        s.memory.require_empty()

    def test_across_geometries(self, any_geometry):
        g = any_geometry
        x, y = mld_pair(g, 8)
        s = ParallelDiskSystem(g)
        s.fill_identity(0)
        composed = perform_mld_composition_pass(s, y, x)
        assert s.verify_permutation(composed, np.arange(g.N), 1)
        assert s.stats.parallel_ios == g.one_pass_ios
