"""Tests for inverse-MLD one-pass permutations (Section 7 extension)."""

import numpy as np
import pytest

from repro.bits import linalg
from repro.bits.random import random_mld_matrix, random_mrc_matrix, random_nonsingular
from repro.core.inverse_mld import is_inverse_mld, perform_inverse_mld_pass
from repro.errors import NotInClassError
from repro.pdm.geometry import DiskGeometry
from repro.pdm.system import ParallelDiskSystem
from repro.perms.bmmc import BMMCPermutation
from repro.perms.classify import PermClass, classify


def inverse_mld_perm(geometry, seed, complement=0):
    """A permutation whose inverse is MLD (invert a random MLD matrix)."""
    g = geometry
    mld = random_mld_matrix(g.n, g.b, g.m, np.random.default_rng(seed))
    return BMMCPermutation(linalg.inverse(mld), complement, validate=False)


class TestPredicate:
    def test_inverse_of_mld_is_inverse_mld(self, small_geometry):
        g = small_geometry
        perm = inverse_mld_perm(g, 0)
        assert is_inverse_mld(perm, g.b, g.m)

    def test_mrc_is_inverse_mld(self, small_geometry):
        """MRC is closed under inverse (Thm 18) and MRC <= MLD, so every
        MRC matrix is also inverse-MLD."""
        g = small_geometry
        a = random_mrc_matrix(g.n, g.m, np.random.default_rng(1))
        assert is_inverse_mld(a, g.b, g.m)

    def test_generic_bmmc_not_inverse_mld(self, small_geometry):
        g = small_geometry
        rng = np.random.default_rng(2)
        for _ in range(200):
            a = random_nonsingular(g.n, rng)
            if not is_inverse_mld(a, g.b, g.m):
                return
        pytest.skip("all samples inverse-MLD (unlikely)")

    def test_singular_rejected(self, small_geometry):
        from repro.bits.matrix import BitMatrix

        g = small_geometry
        assert not is_inverse_mld(BitMatrix.zeros(g.n, g.n), g.b, g.m)


class TestOnePass:
    def test_correct_and_one_pass(self, any_geometry):
        g = any_geometry
        perm = inverse_mld_perm(g, 3)
        s = ParallelDiskSystem(g)
        s.fill_identity(0)
        perform_inverse_mld_pass(s, perm, 0, 1)
        assert s.verify_permutation(perm, np.arange(g.N), 1)
        assert s.stats.parallel_ios == g.one_pass_ios

    def test_independent_reads_striped_writes(self, small_geometry):
        """The mirror of Theorem 15's discipline."""
        g = small_geometry
        perm = inverse_mld_perm(g, 4)
        s = ParallelDiskSystem(g)
        s.fill_identity(0)
        perform_inverse_mld_pass(s, perm, 0, 1)
        assert s.stats.parallel_reads == g.num_stripes
        assert s.stats.striped_writes == g.num_stripes
        assert s.stats.blocks_read == g.num_blocks  # full D blocks per read

    def test_each_read_covers_all_disks(self, small_geometry):
        g = small_geometry
        perm = inverse_mld_perm(g, 5)
        s = ParallelDiskSystem(g)
        s.fill_identity(0)
        reads = []
        s.add_observer(lambda e: reads.append(e) if e.kind == "read" else None)
        perform_inverse_mld_pass(s, perm, 0, 1)
        for e in reads:
            assert sorted(g.block_disk(e.block_ids)) == list(range(g.D))

    def test_with_complement(self, small_geometry):
        g = small_geometry
        perm = inverse_mld_perm(g, 6, complement=0b1101)
        s = ParallelDiskSystem(g)
        s.fill_identity(0)
        perform_inverse_mld_pass(s, perm, 0, 1)
        assert s.verify_permutation(perm, np.arange(g.N), 1)

    def test_non_member_rejected(self, small_geometry):
        g = small_geometry
        rng = np.random.default_rng(7)
        for _ in range(200):
            a = random_nonsingular(g.n, rng)
            if not is_inverse_mld(a, g.b, g.m):
                s = ParallelDiskSystem(g)
                s.fill_identity(0)
                with pytest.raises(NotInClassError):
                    perform_inverse_mld_pass(s, BMMCPermutation(a), 0, 1)
                return
        pytest.skip("no non-member sample drawn")

    def test_memory_empty_after(self, small_geometry):
        g = small_geometry
        perm = inverse_mld_perm(g, 8)
        s = ParallelDiskSystem(g)
        s.fill_identity(0)
        perform_inverse_mld_pass(s, perm, 0, 1)
        s.memory.require_empty()

    def test_round_trip_mld_then_inverse(self, small_geometry):
        """Perform an MLD permutation, then its inverse via the dual pass:
        the data returns to the identity layout in exactly two passes."""
        from repro.core.mld_algorithm import perform_mld_pass

        g = small_geometry
        mld_matrix = random_mld_matrix(g.n, g.b, g.m, np.random.default_rng(9))
        perm = BMMCPermutation(mld_matrix)
        s = ParallelDiskSystem(g)
        s.fill_identity(0)
        perform_mld_pass(s, perm, 0, 1)
        perform_inverse_mld_pass(s, perm.inverse(), 1, 0)
        assert (s.portion_values(0) == np.arange(g.N)).all()
        assert s.stats.parallel_ios == 2 * g.one_pass_ios


class TestIntegration:
    def test_classified(self, small_geometry):
        g = small_geometry
        perm = inverse_mld_perm(g, 10)
        labels = classify(perm, g)
        assert PermClass.INVERSE_MLD in labels

    def test_planner_shortcut(self, small_geometry):
        from repro.core.bmmc_algorithm import plan_bmmc_passes
        from repro.perms.mld import is_mld
        from repro.perms.mrc import is_mrc

        g = small_geometry
        rng_seed = 0
        # find an instance that is inverse-MLD but neither MRC nor MLD
        for rng_seed in range(50):
            perm = inverse_mld_perm(g, 100 + rng_seed)
            if not is_mrc(perm, g.m) and not is_mld(perm, g.b, g.m):
                break
        else:
            pytest.skip("no pure inverse-MLD instance found")
        plan = plan_bmmc_passes(perm, g)
        assert len(plan) == 1 and plan[0].kind == "inv-mld"

    def test_runner_dispatch(self, small_geometry):
        from repro.core.runner import perform_permutation
        from repro.perms.mld import is_mld
        from repro.perms.mrc import is_mrc

        g = small_geometry
        for seed in range(50):
            perm = inverse_mld_perm(g, 200 + seed)
            if not is_mrc(perm, g.m) and not is_mld(perm, g.b, g.m):
                break
        else:
            pytest.skip("no pure inverse-MLD instance found")
        s = ParallelDiskSystem(g)
        s.fill_identity(0)
        report = perform_permutation(s, perm)
        assert report.method == "inv-mld"
        assert report.passes == 1
        assert report.verified

    def test_perform_bmmc_uses_shortcut(self, small_geometry):
        from repro.core.bmmc_algorithm import perform_bmmc

        g = small_geometry
        perm = inverse_mld_perm(g, 11)
        s = ParallelDiskSystem(g)
        s.fill_identity(0)
        res = perform_bmmc(s, perm)
        assert res.passes <= 2  # one if pure inverse-MLD path taken
        assert s.verify_permutation(perm, np.arange(g.N), res.final_portion)
