"""Tests for the general-permutation merge-sort baseline."""

import numpy as np
import pytest

from repro.core import bounds
from repro.core.general import perform_general_sort
from repro.errors import ValidationError
from repro.pdm.geometry import DiskGeometry
from repro.pdm.system import ParallelDiskSystem
from repro.perms.base import ExplicitPermutation
from repro.perms.bmmc import BMMCPermutation
from repro.perms.library import bit_reversal, vector_reversal


def run(geometry, perm, **kwargs):
    s = ParallelDiskSystem(geometry)
    s.fill_identity(0)
    res = perform_general_sort(s, perm, **kwargs)
    ok = s.verify_permutation(perm, np.arange(geometry.N), res.final_portion)
    return s, res, ok


@pytest.fixture
def geometry():
    return DiskGeometry(N=2**12, B=2**3, D=2**2, M=2**8)  # M/BD = 8 -> K = 6


class TestCorrectness:
    def test_random_permutation(self, geometry):
        tv = np.random.default_rng(0).permutation(geometry.N)
        s, res, ok = run(geometry, ExplicitPermutation(tv))
        assert ok

    def test_bmmc_permutation(self, geometry):
        from repro.bits.random import random_nonsingular

        perm = BMMCPermutation(random_nonsingular(geometry.n, np.random.default_rng(1)))
        s, res, ok = run(geometry, perm)
        assert ok

    def test_identity(self, geometry):
        s, res, ok = run(geometry, ExplicitPermutation(np.arange(geometry.N)))
        assert ok

    def test_reversal(self, geometry):
        s, res, ok = run(geometry, vector_reversal(geometry.n))
        assert ok

    def test_bit_reversal(self, geometry):
        s, res, ok = run(geometry, bit_reversal(geometry.n))
        assert ok

    def test_adversarial_interleaving(self, geometry):
        """A permutation that interleaves memoryloads forces maximal
        buffer churn in the merge."""
        g = geometry
        # send address x to (x * large_odd) mod N -- scatters every run
        tv = (np.arange(g.N) * 1031) % g.N
        s, res, ok = run(g, ExplicitPermutation(tv))
        assert ok


class TestIOAccounting:
    def test_pass_count_formula(self, geometry):
        tv = np.random.default_rng(2).permutation(geometry.N)
        s, res, ok = run(geometry, ExplicitPermutation(tv))
        assert ok
        assert res.passes == bounds.merge_sort_passes(geometry)

    def test_each_pass_is_one_sweep(self, geometry):
        tv = np.random.default_rng(3).permutation(geometry.N)
        s, res, ok = run(geometry, ExplicitPermutation(tv))
        assert res.parallel_ios == res.passes * geometry.one_pass_ios

    def test_all_ios_striped(self, geometry):
        tv = np.random.default_rng(4).permutation(geometry.N)
        s, res, ok = run(geometry, ExplicitPermutation(tv))
        assert s.stats.independent_reads == 0
        assert s.stats.independent_writes == 0

    def test_memory_respected(self, geometry):
        tv = np.random.default_rng(5).permutation(geometry.N)
        s, res, ok = run(geometry, ExplicitPermutation(tv))
        assert s.memory.peak <= geometry.M
        s.memory.require_empty()

    def test_explicit_fan_in(self, geometry):
        tv = np.random.default_rng(6).permutation(geometry.N)
        s, res, ok = run(geometry, ExplicitPermutation(tv), fan_in=2)
        assert ok
        assert res.passes == bounds.merge_sort_passes(geometry, fan_in=2)

    def test_fan_in_too_large_rejected(self, geometry):
        s = ParallelDiskSystem(geometry)
        s.fill_identity(0)
        with pytest.raises(ValidationError):
            perform_general_sort(s, vector_reversal(geometry.n), fan_in=10**6)

    def test_tight_memory_geometry_rejected(self):
        g = DiskGeometry(N=2**11, B=2**3, D=2**3, M=2**7)  # M = 2BD
        s = ParallelDiskSystem(g)
        s.fill_identity(0)
        with pytest.raises(ValidationError):
            perform_general_sort(s, vector_reversal(g.n))


class TestSortingShape:
    def test_more_data_more_passes(self):
        """Pass count grows logarithmically with N (the sorting bound)."""
        passes = []
        for n in [10, 12, 14]:
            g = DiskGeometry(N=2**n, B=2**2, D=2**1, M=2**5)  # K = 2
            passes.append(bounds.merge_sort_passes(g))
        assert passes[0] < passes[1] < passes[2]

    def test_measured_matches_formula_small_k(self):
        g = DiskGeometry(N=2**10, B=2**2, D=2**1, M=2**5)
        tv = np.random.default_rng(7).permutation(g.N)
        s, res, ok = run(g, ExplicitPermutation(tv))
        assert ok
        assert res.passes == bounds.merge_sort_passes(g)


class TestRaggedMergeGroups:
    def test_fan_in_three_leaves_singleton_group(self):
        """4 runs with fan-in 3 -> groups of 3 and 1; the singleton is
        copied through correctly."""
        g = DiskGeometry(N=2**11, B=2**2, D=2**1, M=2**6)  # 4 memoryloads? N/M = 32
        tv = np.random.default_rng(20).permutation(g.N)
        s = ParallelDiskSystem(g)
        s.fill_identity(0)
        res = perform_general_sort(s, ExplicitPermutation(tv), fan_in=3)
        assert s.verify_permutation(ExplicitPermutation(tv), np.arange(g.N), res.final_portion)
        assert res.passes == bounds.merge_sort_passes(g, fan_in=3)

    def test_sorted_input_still_full_passes(self):
        """Merge sort is oblivious: already-sorted input costs the same."""
        g = DiskGeometry(N=2**11, B=2**2, D=2**1, M=2**6)
        s = ParallelDiskSystem(g)
        s.fill_identity(0)
        res = perform_general_sort(s, ExplicitPermutation(np.arange(g.N)))
        assert res.passes == bounds.merge_sort_passes(g)
        assert res.parallel_ios == res.passes * g.one_pass_ios
