"""Tests for Section 6 run-time BMMC detection."""

import numpy as np
import pytest

from repro.bits.random import (
    random_bit_permutation,
    random_mld_matrix,
    random_nonsingular,
)
from repro.core import bounds
from repro.core.detect import DetectionResult, detect_bmmc, formation_schedule, store_target_vector
from repro.errors import DetectionError
from repro.pdm.geometry import DiskGeometry
from repro.pdm.system import ParallelDiskSystem
from repro.perms.base import ExplicitPermutation
from repro.perms.bmmc import BMMCPermutation
from repro.perms.library import gray_code, permuted_gray_code


def detection_system(geometry, perm_or_targets):
    s = ParallelDiskSystem(geometry, simple_io=False)
    store_target_vector(s, perm_or_targets)
    return s


@pytest.fixture
def geometry():
    return DiskGeometry(N=2**12, B=2**3, D=2**2, M=2**7)


class TestFormationSchedule:
    def test_read_count_formula(self, any_geometry):
        g = any_geometry
        schedule = formation_schedule(g)
        assert len(schedule) == bounds.detection_formation_reads(g)

    def test_one_block_per_disk_per_read(self, any_geometry):
        g = any_geometry
        for batch in formation_schedule(g):
            disks = [g.block_disk(entry[0]) for entry in batch]
            assert len(set(disks)) == len(disks)
            assert len(batch) <= g.D

    def test_every_column_resolved_once(self, any_geometry):
        g = any_geometry
        resolved = [e[2] for batch in formation_schedule(g) for e in batch]
        stripe_cols = [c for c in resolved if c >= g.b + g.d]
        assert sorted(stripe_cols) == list(range(g.b + g.d, g.n))

    def test_first_read_covers_block0_and_power_disks(self, geometry):
        g = geometry
        first = formation_schedule(g)[0]
        blocks = [e[0] for e in first]
        assert 0 in blocks
        for j in range(g.d):
            assert (1 << j) in blocks


class TestDetectionPositive:
    def test_recovers_matrix_and_complement(self, geometry):
        g = geometry
        perm = BMMCPermutation(
            random_nonsingular(g.n, np.random.default_rng(0)), 0b101101
        )
        s = detection_system(g, perm)
        result = detect_bmmc(s)
        assert result.is_bmmc
        assert result.matrix == perm.matrix
        assert result.complement == perm.complement

    def test_read_count_equals_bound(self, any_geometry):
        g = any_geometry
        perm = BMMCPermutation(random_nonsingular(g.n, np.random.default_rng(1)))
        s = detection_system(g, perm)
        result = detect_bmmc(s)
        assert result.is_bmmc
        assert result.total_reads == bounds.detection_read_bound(g)
        assert s.stats.parallel_reads == result.total_reads
        assert s.stats.parallel_writes == 0

    def test_gray_code_variant_detected(self, geometry):
        """The Section 6 motivation: Pi G Pi^T is BMMC but not obviously so."""
        g = geometry
        perm = permuted_gray_code(g.n, list(np.random.default_rng(2).permutation(g.n)))
        s = detection_system(g, perm)
        result = detect_bmmc(s)
        assert result.is_bmmc
        assert result.matrix == perm.matrix

    def test_bpc_detected(self, geometry):
        g = geometry
        perm = BMMCPermutation(random_bit_permutation(g.n, np.random.default_rng(3)), 0b1)
        s = detection_system(g, perm)
        result = detect_bmmc(s)
        assert result.is_bmmc and result.matrix.is_permutation_matrix

    def test_identity_detected(self, geometry):
        g = geometry
        s = detection_system(g, np.arange(g.N))
        result = detect_bmmc(s)
        assert result.is_bmmc and result.matrix.is_identity and result.complement == 0

    def test_permutation_object_built(self, geometry):
        g = geometry
        perm = BMMCPermutation(random_mld_matrix(g.n, g.b, g.m, np.random.default_rng(4)))
        s = detection_system(g, perm)
        result = detect_bmmc(s)
        rebuilt = result.permutation()
        assert (rebuilt.target_vector() == perm.target_vector()).all()

    def test_memory_released(self, geometry):
        g = geometry
        perm = BMMCPermutation(random_nonsingular(g.n, np.random.default_rng(5)))
        s = detection_system(g, perm)
        detect_bmmc(s)
        assert s.memory.in_use == 0

    def test_data_not_destroyed(self, geometry):
        g = geometry
        perm = BMMCPermutation(random_nonsingular(g.n, np.random.default_rng(6)))
        s = detection_system(g, perm)
        before = s.portion_values(0)
        detect_bmmc(s)
        assert (s.portion_values(0) == before).all()


class TestDetectionNegative:
    def test_random_permutation_rejected(self, geometry):
        g = geometry
        tv = np.random.default_rng(7).permutation(g.N)
        s = detection_system(g, tv)
        result = detect_bmmc(s)
        assert not result.is_bmmc
        assert result.total_reads <= bounds.detection_read_bound(g)

    def test_usually_far_fewer_reads(self, geometry):
        """'usually far fewer when the permutation turns out not to be
        BMMC' -- a random vector almost surely yields a singular candidate
        or an early verification failure."""
        g = geometry
        cheap = 0
        for seed in range(10):
            tv = np.random.default_rng(100 + seed).permutation(g.N)
            s = detection_system(g, tv)
            result = detect_bmmc(s)
            assert not result.is_bmmc
            if result.total_reads < bounds.detection_read_bound(g) // 2:
                cheap += 1
        assert cheap >= 8

    def test_single_swap_rejected(self, geometry):
        """One transposition breaks BMMC-ness; verification must catch it."""
        g = geometry
        perm = gray_code(g.n)
        tv = perm.target_vector()
        tv[[12345 % g.N, 999]] = tv[[999, 12345 % g.N]]
        s = detection_system(g, tv)
        result = detect_bmmc(s)
        assert not result.is_bmmc
        assert "mismatch" in result.reason

    def test_early_exit_saves_reads(self, geometry):
        g = geometry
        perm = gray_code(g.n)
        tv = perm.target_vector()
        tv[[8, 16]] = tv[[16, 8]]  # early addresses -> early stripe mismatch...
        s1 = detection_system(g, tv)
        eager = detect_bmmc(s1, early_exit=True)
        s2 = detection_system(g, tv)
        patient = detect_bmmc(s2, early_exit=False)
        assert not eager.is_bmmc and not patient.is_bmmc
        assert eager.verification_reads <= patient.verification_reads

    def test_singular_candidate_skips_verification(self, geometry):
        """A target vector sending two unit vectors to images differing by c
        gives a singular candidate -> rejected with zero verification reads."""
        g = geometry
        tv = np.arange(g.N)
        # pi(0)=0 gives c=0; pi(1)=pi(2)=3 makes columns A_0 = A_1 = 3.
        # (Not a bijection, but the detector only inspects records -- any
        # target *vector* is legal input and this one cannot be BMMC.)
        tv[1], tv[2] = 3, 3
        s = ParallelDiskSystem(g, simple_io=False)
        s.fill(0, tv)
        result = detect_bmmc(s)
        assert not result.is_bmmc
        assert result.verification_reads == 0
        assert "singular" in result.reason

    def test_permutation_raises_on_negative(self, geometry):
        g = geometry
        tv = np.random.default_rng(8).permutation(g.N)
        s = detection_system(g, tv)
        result = detect_bmmc(s)
        with pytest.raises(DetectionError):
            result.permutation()

    def test_verify_false_skips_scan(self, geometry):
        g = geometry
        perm = BMMCPermutation(random_nonsingular(g.n, np.random.default_rng(9)))
        s = detection_system(g, perm)
        result = detect_bmmc(s, verify=False)
        assert result.verification_reads == 0
        assert result.formation_reads == bounds.detection_formation_reads(g)


class TestSingleDiskEdgeCases:
    def test_single_disk(self):
        g = DiskGeometry(N=2**10, B=2**2, D=1, M=2**5)
        perm = BMMCPermutation(random_nonsingular(g.n, np.random.default_rng(10)), 0b11)
        s = detection_system(g, perm)
        result = detect_bmmc(s)
        assert result.is_bmmc and result.matrix == perm.matrix
        assert result.total_reads == bounds.detection_read_bound(g)

    def test_two_disks(self):
        g = DiskGeometry(N=2**10, B=2**2, D=2, M=2**5)
        perm = BMMCPermutation(random_nonsingular(g.n, np.random.default_rng(11)))
        s = detection_system(g, perm)
        result = detect_bmmc(s)
        assert result.is_bmmc and result.total_reads == bounds.detection_read_bound(g)

    def test_wide_system_few_stripe_bits(self):
        """More disks than stripe bits: everything resolves in read 1."""
        g = DiskGeometry(N=2**11, B=2**3, D=2**3, M=2**7)  # s = 5, D = 8
        perm = BMMCPermutation(random_nonsingular(g.n, np.random.default_rng(12)))
        s = detection_system(g, perm)
        result = detect_bmmc(s)
        assert result.is_bmmc
        assert result.formation_reads == bounds.detection_formation_reads(g)


class TestPlanEngines:
    """Detection runs through IOPlans now: both engines, same answers."""

    def test_fast_equals_strict_on_bmmc_input(self, geometry):
        g = geometry
        perm = BMMCPermutation(random_nonsingular(g.n, np.random.default_rng(20)), 0b11)
        results = []
        for engine in ("strict", "fast"):
            s = detection_system(g, perm)
            results.append((engine, detect_bmmc(s, engine=engine), s))
        (_, strict_result, strict_sys), (_, fast_result, fast_sys) = results
        for result in (strict_result, fast_result):
            assert result.is_bmmc
            assert result.matrix == perm.matrix
            assert result.complement == perm.complement
        assert strict_result.total_reads == fast_result.total_reads
        assert strict_sys.stats.snapshot() == fast_sys.stats.snapshot()
        # non-consuming reads: the data is untouched under both engines
        assert (strict_sys.portion_values(0) == fast_sys.portion_values(0)).all()

    def test_fast_engine_respects_read_bound(self, any_geometry):
        g = any_geometry
        perm = BMMCPermutation(random_nonsingular(g.n, np.random.default_rng(21)))
        s = detection_system(g, perm)
        result = detect_bmmc(s, engine="fast")
        assert result.is_bmmc
        assert result.total_reads == bounds.detection_read_bound(g)
        assert s.stats.parallel_reads == result.total_reads

    def test_fast_early_exit_reads_at_most_one_chunk_more(self, geometry):
        g = geometry
        perm = gray_code(g.n)
        tv = perm.target_vector()
        tv[[8, 16]] = tv[[16, 8]]
        s1 = detection_system(g, tv)
        strict = detect_bmmc(s1, engine="strict")
        s2 = detection_system(g, tv)
        fast = detect_bmmc(s2, engine="fast")
        assert not strict.is_bmmc and not fast.is_bmmc
        assert strict.reason == fast.reason  # same first mismatch stripe
        chunk = max(1, g.stripes_per_memoryload)
        assert fast.verification_reads <= strict.verification_reads + chunk
        assert fast.verification_reads % chunk == 0

    def test_detection_memory_is_transient(self, geometry):
        """Discarding reads: nothing stays resident, peak is one read."""
        g = geometry
        perm = BMMCPermutation(random_nonsingular(g.n, np.random.default_rng(22)))
        for engine in ("strict", "fast"):
            s = detection_system(g, perm)
            detect_bmmc(s, engine=engine)
            assert s.memory.in_use == 0
            assert s.memory.peak <= g.records_per_stripe

    def test_detection_plans_validate(self, geometry):
        from repro.core.detect import (
            plan_detection_formation,
            plan_detection_verification,
        )
        from repro.pdm.engine import validate_plan

        g = geometry
        s = detection_system(g, BMMCPermutation(random_nonsingular(g.n, np.random.default_rng(23))))
        form = plan_detection_formation(g)
        check = validate_plan(s, form)
        assert check.parallel_reads == bounds.detection_formation_reads(g)
        assert check.parallel_writes == 0
        assert check.net_memory_records == 0
        scan = plan_detection_verification(g)
        check = validate_plan(s, scan)
        assert check.parallel_reads == g.num_stripes
        assert check.striped_reads == g.num_stripes
        assert check.net_memory_records == 0
