"""Engine equivalence: fast fused execution is indistinguishable from strict.

The contract of :mod:`repro.pdm.engine` is that both engines produce
byte-identical portion contents and identical I/O accounting for any
plan.  These tests quantify over random geometries and random
MRC/MLD/inverse-MLD/BMMC/general instances (Hypothesis), plus the
deterministic geometry sweep for the multi-pass and composition paths.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bits.random import (
    random_mld_matrix,
    random_mrc_matrix,
    random_nonsingular,
)
from repro.core.inverse_mld import perform_mld_composition_pass
from repro.core.runner import perform_permutation
from repro.perms.base import ExplicitPermutation
from repro.perms.bmmc import BMMCPermutation
from repro.perms.library import bit_reversal
from repro.pdm.system import ParallelDiskSystem

from tests.conftest import geometry_strategy


def fresh(geometry):
    s = ParallelDiskSystem(geometry)
    s.fill_identity(0)
    return s


def assert_equivalent(strict: ParallelDiskSystem, fast: ParallelDiskSystem):
    """Full observable-state comparison between the two engines."""
    for portion in range(strict.num_portions):
        assert (strict.portion_values(portion) == fast.portion_values(portion)).all()
    assert strict.stats.snapshot() == fast.stats.snapshot()
    assert [p for p in strict.stats.passes] == [p for p in fast.stats.passes]
    assert strict.memory.peak == fast.memory.peak
    assert strict.memory.in_use == fast.memory.in_use


def make_instance(method, geometry, seed):
    """A random permutation instance appropriate for ``method``."""
    g = geometry
    rng = np.random.default_rng(seed)
    if method == "mrc":
        return BMMCPermutation(
            random_mrc_matrix(g.n, g.m, rng), int(rng.integers(0, g.N))
        )
    if method == "mld":
        return BMMCPermutation(
            random_mld_matrix(g.n, g.b, g.m, rng), int(rng.integers(0, g.N))
        )
    if method == "inv-mld":
        return BMMCPermutation(
            random_mld_matrix(g.n, g.b, g.m, rng), int(rng.integers(0, g.N))
        ).inverse()
    if method in ("bmmc", "bmmc-unmerged"):
        return BMMCPermutation(
            random_nonsingular(g.n, rng), int(rng.integers(0, g.N))
        )
    if method == "general":
        return ExplicitPermutation(rng.permutation(g.N))
    raise AssertionError(method)


@given(
    geometry_strategy(),
    st.sampled_from(["mrc", "mld", "inv-mld", "bmmc", "bmmc-unmerged", "general"]),
    st.integers(0, 2**31),
)
@settings(max_examples=40, deadline=None)
def test_fast_equals_strict_everywhere(geometry, method, seed):
    g = geometry
    if method == "general" and 4 * g.B * g.D > g.M:
        return  # merge sort needs (K+2) BD <= M with K >= 2
    perm = make_instance(method, g, seed)
    strict, fast = fresh(g), fresh(g)
    report_strict = perform_permutation(strict, perm, method=method, engine="strict")
    report_fast = perform_permutation(fast, perm, method=method, engine="fast")
    assert report_strict.verified and report_fast.verified
    assert report_strict.passes == report_fast.passes
    assert report_strict.final_portion == report_fast.final_portion
    assert report_strict.io == report_fast.io
    assert_equivalent(strict, fast)


@given(geometry_strategy(), st.integers(0, 2**31))
@settings(max_examples=20, deadline=None)
def test_composition_pass_fast_equals_strict(geometry, seed):
    g = geometry
    rng = np.random.default_rng(seed)
    x = BMMCPermutation(random_mld_matrix(g.n, g.b, g.m, rng))
    y = BMMCPermutation(random_mld_matrix(g.n, g.b, g.m, rng))
    strict, fast = fresh(g), fresh(g)
    composed_s = perform_mld_composition_pass(strict, y, x, engine="strict")
    composed_f = perform_mld_composition_pass(fast, y, x, engine="fast")
    assert composed_s.matrix == composed_f.matrix
    assert strict.verify_permutation(composed_s, np.arange(g.N), 1)
    assert_equivalent(strict, fast)


class TestDeterministicSweep:
    """The fixed geometry sweep exercises corner cases (D=1, B=1, BD=M)."""

    def test_multi_pass_bmmc(self, any_geometry):
        g = any_geometry
        perm = bit_reversal(g.n)
        strict, fast = fresh(g), fresh(g)
        rs = perform_permutation(strict, perm, method="bmmc", engine="strict")
        rf = perform_permutation(fast, perm, method="bmmc", engine="fast")
        assert rs.verified and rf.verified
        assert rs.passes == rf.passes
        assert_equivalent(strict, fast)

    def test_general_sort(self, any_geometry):
        g = any_geometry
        if 4 * g.B * g.D > g.M:
            pytest.skip("merge sort needs M >= 4BD")
        perm = ExplicitPermutation(np.random.default_rng(7).permutation(g.N))
        strict, fast = fresh(g), fresh(g)
        rs = perform_permutation(strict, perm, method="general", engine="strict")
        rf = perform_permutation(fast, perm, method="general", engine="fast")
        assert rs.verified and rf.verified
        assert_equivalent(strict, fast)

    def test_auto_dispatch_with_fast_engine(self, small_geometry):
        g = small_geometry
        perm = BMMCPermutation(
            random_mld_matrix(g.n, g.b, g.m, np.random.default_rng(3))
        )
        strict, fast = fresh(g), fresh(g)
        rs = perform_permutation(strict, perm, engine="strict")
        rf = perform_permutation(fast, perm, engine="fast")
        assert rs.method == rf.method == "mld"
        assert_equivalent(strict, fast)
