"""Unit tests for the Section 5 factoring pipeline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bits import linalg
from repro.bits.colops import (
    is_erasure_form,
    is_mld_form,
    is_mrc_form,
    is_reducer_form,
    is_swapper_form,
    is_trailer_form,
)
from repro.bits.matrix import BitMatrix
from repro.bits.random import (
    random_bmmc_with_rank_gamma,
    random_mrc_matrix,
    random_nonsingular,
)
from repro.core.factoring import factor_bmmc
from repro.errors import SingularMatrixError, ValidationError


N_, B_, M_ = 10, 3, 6


class TestFactorizationStructure:
    def test_factor_forms(self):
        a = random_nonsingular(N_, np.random.default_rng(0))
        fact = factor_bmmc(a, B_, M_)
        assert is_trailer_form(fact.trailer, B_, M_)
        assert is_reducer_form(fact.reducer, B_, M_)
        for s, e in fact.swap_erase:
            assert is_swapper_form(s, M_)
            assert is_erasure_form(e, B_, M_)
        assert is_mrc_form(fact.final, M_)

    def test_recomposition_equals_original(self):
        rng = np.random.default_rng(1)
        for seed in range(10):
            a = random_nonsingular(N_, np.random.default_rng(seed))
            fact = factor_bmmc(a, B_, M_)
            assert fact.product_of_apply_order() == a
            assert fact.product_of_merged() == a

    def test_trailer_makes_trailing_nonsingular(self):
        a = random_nonsingular(N_, np.random.default_rng(2))
        fact = factor_bmmc(a, B_, M_)
        a1 = a @ fact.trailer
        assert linalg.is_nonsingular(a1[M_:N_, M_:N_])

    def test_reduced_form_column_count(self):
        """After reduction: exactly rho = rank A[m:, :m] nonzero lower
        columns, the rest zero."""
        a = random_nonsingular(N_, np.random.default_rng(3))
        fact = factor_bmmc(a, B_, M_)
        a2 = a @ fact.trailer @ fact.reducer
        bottom = a2[M_:N_, 0:M_]
        nonzero = sum(1 for j in range(M_) if bottom.column(j) != 0)
        assert nonzero == fact.rho == linalg.rank(a[M_:N_, 0:M_])
        # nonzero columns must be linearly independent (reduced form)
        nz_idx = [j for j in range(M_) if bottom.column(j) != 0]
        assert linalg.rank(bottom[:, nz_idx]) == len(nz_idx) if nz_idx else True

    def test_eq17_round_count(self):
        """g = ceil(rho / (m - b)) exactly (eq. 17)."""
        rng = np.random.default_rng(4)
        for seed in range(20):
            a = random_nonsingular(N_, np.random.default_rng(seed + 50))
            fact = factor_bmmc(a, B_, M_)
            assert fact.g == -(-fact.rho // (M_ - B_))

    def test_apply_order_names(self):
        a = random_nonsingular(N_, np.random.default_rng(5))
        fact = factor_bmmc(a, B_, M_)
        names = [f.name for f in fact.apply_order]
        assert names[0] == "P^-1" and names[-1] == "F"
        assert names[1] == "S_1^-1" and names[2] == "E_1^-1"

    def test_merged_kinds(self):
        """Merged passes: g MLD passes then one MRC pass (Theorem 21)."""
        a = random_nonsingular(N_, np.random.default_rng(6))
        fact = factor_bmmc(a, B_, M_)
        kinds = [f.kind for f in fact.merged]
        assert kinds[-1] == "mrc"
        assert all(k == "mld" for k in kinds[:-1])
        assert len(fact.merged) == fact.g + 1

    def test_merged_matrices_certified(self):
        a = random_nonsingular(N_, np.random.default_rng(7))
        fact = factor_bmmc(a, B_, M_)
        for f in fact.merged:
            if f.kind == "mld":
                assert is_mld_form(f.matrix, B_, M_)
            else:
                assert is_mrc_form(f.matrix, M_)


class TestSpecialCases:
    def test_mrc_input_single_merged_pass(self):
        a = random_mrc_matrix(N_, M_, np.random.default_rng(8))
        fact = factor_bmmc(a, B_, M_)
        assert fact.rho == 0 and fact.g == 0
        assert len(fact.merged) == 1
        assert fact.merged[0].matrix == a

    def test_identity(self):
        fact = factor_bmmc(BitMatrix.identity(N_), B_, M_)
        assert fact.g == 0
        assert fact.product_of_merged().is_identity

    def test_singular_rejected(self):
        with pytest.raises(SingularMatrixError):
            factor_bmmc(BitMatrix.zeros(N_, N_), B_, M_)

    def test_m_equals_b_rejected(self):
        a = random_nonsingular(N_, np.random.default_rng(9))
        with pytest.raises(ValidationError):
            factor_bmmc(a, 3, 3)

    def test_b_zero(self):
        """B = 1 (b = 0): gamma is empty, but rho can still force passes."""
        a = random_nonsingular(N_, np.random.default_rng(10))
        fact = factor_bmmc(a, 0, M_)
        assert fact.product_of_merged() == a

    def test_m_equals_n_minus_one(self):
        a = random_nonsingular(N_, np.random.default_rng(11))
        fact = factor_bmmc(a, B_, N_ - 1)
        assert fact.product_of_merged() == a

    def test_worst_case_rank_gamma(self):
        """Full-rank gamma exercises multiple swap/erase rounds."""
        a = random_bmmc_with_rank_gamma(12, 4, 4, np.random.default_rng(12))
        fact = factor_bmmc(a, 4, 6)  # m - b = 2, rho >= 4 - 2
        assert fact.g >= 1
        assert fact.product_of_merged() == a


class TestPassCountBound:
    """The pass count never exceeds Theorem 21's ceiling."""

    @given(st.integers(0, 2**31), st.integers(0, 3))
    @settings(max_examples=60, deadline=None)
    def test_theorem21_pass_ceiling(self, seed, rank_g):
        a = random_bmmc_with_rank_gamma(N_, B_, rank_g, np.random.default_rng(seed))
        fact = factor_bmmc(a, B_, M_)
        lg_mb = M_ - B_
        assert fact.num_passes <= -(-rank_g // lg_mb) + 2

    @given(st.integers(0, 2**31))
    @settings(max_examples=60, deadline=None)
    def test_recomposition_property(self, seed):
        a = random_nonsingular(8, np.random.default_rng(seed))
        fact = factor_bmmc(a, 2, 5)
        assert fact.product_of_merged() == a

    @given(st.integers(0, 2**31))
    @settings(max_examples=40, deadline=None)
    def test_lemma20_rho_bound(self, seed):
        """Eq. 16: rho = rank A[m:, :m] <= rank gamma + lg(M/B)."""
        a = random_nonsingular(N_, np.random.default_rng(seed))
        fact = factor_bmmc(a, B_, M_)
        rg = linalg.rank(a[B_:N_, 0:B_])
        assert fact.rho <= rg + (M_ - B_)
        assert fact.rho >= rg - (M_ - B_)
