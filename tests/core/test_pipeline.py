"""Tests for pipeline composition (Lemma 1 as an I/O optimization)."""

import numpy as np
import pytest

from repro.bits.random import random_nonsingular
from repro.core.bmmc_algorithm import perform_bmmc
from repro.core.runner import perform_pipeline, perform_permutation
from repro.errors import ValidationError
from repro.pdm.geometry import DiskGeometry
from repro.pdm.system import ParallelDiskSystem
from repro.perms.bmmc import BMMCPermutation
from repro.perms.library import gray_code, gray_code_inverse, matrix_transpose


@pytest.fixture
def geometry():
    return DiskGeometry(N=2**12, B=2**3, D=2**2, M=2**7)


def fresh(geometry):
    s = ParallelDiskSystem(geometry)
    s.fill_identity(0)
    return s


class TestCorrectness:
    def test_two_stage_pipeline(self, geometry):
        g = geometry
        rng = np.random.default_rng(0)
        p1 = BMMCPermutation(random_nonsingular(g.n, rng), 0b101)
        p2 = BMMCPermutation(random_nonsingular(g.n, rng), 0b011)
        s = fresh(g)
        report = perform_pipeline(s, [p1, p2])
        assert report.verified
        # the physical result equals running the two stages separately
        s2 = fresh(g)
        r1 = perform_bmmc(s2, p1, 0, 1)
        other = 0 if r1.final_portion == 1 else 1
        r2 = perform_bmmc(s2, p2, r1.final_portion, other)
        assert (
            s.portion_values(report.final_portion)
            == s2.portion_values(r2.final_portion)
        ).all()

    def test_three_stage_pipeline(self, geometry):
        g = geometry
        rng = np.random.default_rng(1)
        stages = [BMMCPermutation(random_nonsingular(g.n, rng)) for _ in range(3)]
        s = fresh(g)
        report = perform_pipeline(s, stages)
        assert report.verified

    def test_single_stage(self, geometry):
        s = fresh(geometry)
        report = perform_pipeline(s, [gray_code(geometry.n)])
        assert report.verified and report.method == "mrc"

    def test_empty_rejected(self, geometry):
        with pytest.raises(ValidationError):
            perform_pipeline(fresh(geometry), [])

    def test_mixed_explicit_stage(self, geometry):
        from repro.perms.base import ExplicitPermutation

        g = geometry
        tv = np.random.default_rng(2).permutation(g.N)
        s = fresh(g)
        report = perform_pipeline(s, [gray_code(g.n), ExplicitPermutation(tv)])
        assert report.verified


class TestSavings:
    def test_gray_then_inverse_collapses_to_identity(self, geometry):
        """The canonical win: a relayout followed by its undo costs one
        (identity MRC) pass instead of two."""
        g = geometry
        s = fresh(g)
        report = perform_pipeline(s, [gray_code(g.n), gray_code_inverse(g.n)])
        assert report.verified
        assert report.passes == 1  # composed = identity = MRC one-pass

    def test_pipeline_never_worse_than_sum(self, geometry):
        """Composed cost <= sum of stage costs for BMMC chains (the
        composed rank gamma cannot exceed what the chain pays)."""
        g = geometry
        rng = np.random.default_rng(3)
        for _ in range(5):
            p1 = BMMCPermutation(random_nonsingular(g.n, rng))
            p2 = BMMCPermutation(random_nonsingular(g.n, rng))
            s_pipe = fresh(g)
            pipe = perform_pipeline(s_pipe, [p1, p2])
            s_sep = fresh(g)
            r1 = perform_permutation(s_sep, p1, verify=False)
            separate_ios = r1.io.parallel_ios
            other = 0 if r1.final_portion == 1 else 1
            r2 = perform_permutation(
                s_sep, p2, source_portion=r1.final_portion, target_portion=other, verify=False
            )
            separate_ios += r2.io.parallel_ios
            assert pipe.io.parallel_ios <= separate_ios

    def test_transpose_chain(self, geometry):
        """Transpose + transpose-back = identity: one pass, not six."""
        g = geometry
        t = matrix_transpose(g.n // 2, g.n - g.n // 2)
        back = matrix_transpose(g.n - g.n // 2, g.n // 2)
        s = fresh(g)
        report = perform_pipeline(s, [t, back])
        assert report.verified and report.passes == 1
