"""Tests for the closed-form bound formulas (Table 1, Theorems 3/21, eq. 1)."""

import math

import numpy as np
import pytest

from repro.bits.random import random_bmmc_with_rank_gamma, random_mrc_matrix
from repro.core import bounds
from repro.pdm.geometry import DiskGeometry


@pytest.fixture
def geometry():
    return DiskGeometry(N=2**12, B=2**3, D=2**2, M=2**7)  # n=12 b=3 d=2 m=7


class TestTheorem3:
    def test_formula(self, geometry):
        g = geometry
        # N/BD = 128, lg(M/B) = 4
        assert bounds.theorem3_lower_bound(g, 0) == 128.0
        assert bounds.theorem3_lower_bound(g, 4) == 128 * 2.0
        assert bounds.theorem3_lower_bound(g, 2) == 128 * 1.5

    def test_monotone_in_rank(self, geometry):
        vals = [bounds.theorem3_lower_bound(geometry, r) for r in range(4)]
        assert vals == sorted(vals)


class TestSharpenedBound:
    def test_close_to_upper_bound(self, geometry):
        """Section 7: the sharpened LB is within ~6% of 2N/BD * rank/lg(M/B)
        as lg(M/B) grows; here just check it is below the exact UB and
        within the stated constant."""
        g = geometry
        for r in range(1, 4):
            lb = bounds.sharpened_lower_bound(g, r)
            naive = 2 * g.N / (g.B * g.D) * r / (g.m - g.b)
            assert lb < naive
            assert lb > naive / 1.3  # 2/(e ln 2)/lg(M/B) is a small correction

    def test_factor_quoted_in_paper(self):
        assert abs(2 / (math.e * math.log(2)) - 1.06) < 0.01


class TestTheorem21:
    def test_formula(self, geometry):
        g = geometry
        one_pass = g.one_pass_ios
        assert bounds.theorem21_upper_bound(g, 0) == one_pass * 2
        assert bounds.theorem21_upper_bound(g, 1) == one_pass * 3
        assert bounds.theorem21_upper_bound(g, 4) == one_pass * 3
        # rank gamma can't exceed min(b, n-b) but the formula is total anyway
        assert bounds.theorem21_upper_bound(g, 5) == one_pass * 4

    def test_upper_dominates_lower(self, geometry):
        for r in range(4):
            assert bounds.theorem21_upper_bound(geometry, r) >= bounds.theorem3_lower_bound(
                geometry, r
            )
            assert bounds.theorem21_upper_bound(geometry, r) >= bounds.sharpened_lower_bound(
                geometry, r
            )

    def test_asymptotic_ratio_bounded(self):
        """UB/LB ratio is bounded by a constant across geometries and ranks
        (that is what 'asymptotically tight' means)."""
        for n, b, d, m in [(12, 3, 2, 7), (16, 4, 3, 9), (20, 5, 2, 11), (14, 2, 0, 6)]:
            g = DiskGeometry(N=2**n, B=2**b, D=2**d, M=2**m)
            for r in range(0, min(b, n - b) + 1):
                ub = bounds.theorem21_upper_bound(g, r)
                lb = bounds.theorem3_lower_bound(g, r)
                assert ub / lb <= 6.0


class TestPredictedPasses:
    def test_mrc_is_one(self, geometry):
        a = random_mrc_matrix(geometry.n, geometry.m, np.random.default_rng(0))
        assert bounds.predicted_passes(a, geometry) == 1

    def test_matches_factoring(self, geometry):
        from repro.core.factoring import factor_bmmc
        from repro.bits.random import random_nonsingular

        for seed in range(10):
            a = random_nonsingular(geometry.n, np.random.default_rng(seed))
            fact = factor_bmmc(a, geometry.b, geometry.m)
            assert bounds.predicted_passes(a, geometry) == fact.num_passes

    def test_predicted_ios(self, geometry):
        from repro.bits.random import random_nonsingular

        a = random_nonsingular(geometry.n, np.random.default_rng(3))
        assert bounds.predicted_ios(a, geometry) == geometry.one_pass_ios * bounds.predicted_passes(
            a, geometry
        )


class TestHFunction:
    """Eq. 1's three regimes, selected by exact power-of-two comparisons."""

    def test_small_memory_regime(self):
        # M <= sqrt(N): 2m <= n
        g = DiskGeometry(N=2**16, B=2**3, D=2**2, M=2**7)  # 2*7 < 16
        assert bounds.h_function(g) == 4 * math.ceil(3 / 4) + 9

    def test_middle_regime(self):
        # sqrt(N) < M < sqrt(NB): n < 2m < n + b
        g = DiskGeometry(N=2**12, B=2**3, D=2**2, M=2**7)  # 12 < 14 < 15
        assert bounds.h_function(g) == 4 * math.ceil((12 - 3) / 4) + 1

    def test_large_memory_regime(self):
        # sqrt(NB) <= M: 2m >= n + b
        g = DiskGeometry(N=2**12, B=2**3, D=2**2, M=2**8)  # 16 >= 15
        assert bounds.h_function(g) == 5

    def test_boundary_m_squared_equals_n(self):
        g = DiskGeometry(N=2**14, B=2**3, D=2**2, M=2**7)  # 2m == n -> first regime
        assert bounds.h_function(g) == 4 * math.ceil(3 / 4) + 9


class TestOldBounds:
    def test_old_bmmc_passes(self, geometry):
        g = geometry
        h = bounds.h_function(g)
        # leading rank = m -> 2*ceil(0/4) + H = H
        assert bounds.old_bmmc_bound_passes(g, g.m) == h
        assert bounds.old_bmmc_bound_passes(g, 0) == 2 * math.ceil(7 / 4) + h

    def test_old_bpc_passes(self, geometry):
        assert bounds.old_bpc_bound_passes(geometry, 0) == 1
        assert bounds.old_bpc_bound_passes(geometry, 4) == 3
        assert bounds.old_bpc_bound_passes(geometry, 5) == 5

    def test_new_bound_beats_old_bmmc(self, geometry):
        """The whole point of the paper: Theorem 21 <= the bound of [4]
        (for every leading-rank/rank-gamma pair realizable together)."""
        g = geometry
        rng = np.random.default_rng(1)
        for seed in range(10):
            a = random_bmmc_with_rank_gamma(
                g.n, g.b, int(rng.integers(0, g.b + 1)), np.random.default_rng(seed)
            )
            from repro.bits import linalg

            new = bounds.predicted_ios(a, g)
            old = bounds.old_bmmc_bound_ios(g, linalg.rank(a[0 : g.m, 0 : g.m]))
            assert new <= old

    def test_mrc_row(self):
        assert bounds.mrc_bound_passes() == 1


class TestGeneralAndDetection:
    def test_general_bound_positive(self, geometry):
        assert bounds.general_permutation_bound(geometry) > 0

    def test_general_bound_small_B_regime(self):
        """With B=1 the N/D term of the Vitter-Shriver bound wins."""
        g = DiskGeometry(N=2**10, B=1, D=2**2, M=2**5)
        val = bounds.general_permutation_bound(g)
        assert val == 2 * g.N / g.D  # N/D < (N/BD) ceil(...) here? both equal N/D * c
        # with B = 1, N/BD * anything >= N/D, so min picks N/D

    def test_detection_bound(self, geometry):
        g = geometry
        assert bounds.detection_read_bound(g) == g.num_stripes + math.ceil(
            (g.n - g.b + 1) / g.D
        )
        assert bounds.detection_formation_reads(g) == math.ceil((g.n - g.b + 1) / g.D)

    def test_merge_sort_passes_monotone(self):
        g1 = DiskGeometry(N=2**10, B=2**2, D=2**1, M=2**5)
        g2 = DiskGeometry(N=2**14, B=2**2, D=2**1, M=2**5)
        assert bounds.merge_sort_passes(g1) < bounds.merge_sort_passes(g2)

    def test_delta_max(self, geometry):
        g = geometry
        expected = g.B * (2 / (math.e * math.log(2)) + (g.m - g.b))
        assert abs(bounds.delta_max(g) - expected) < 1e-12

    def test_nonidentity_lower_bound(self, geometry):
        g = geometry
        assert bounds.nonidentity_lower_bound(g) == g.N / (2 * g.B * g.D)

    def test_rank_gamma_helper(self, geometry):
        a = random_bmmc_with_rank_gamma(geometry.n, geometry.b, 2, np.random.default_rng(5))
        assert bounds.rank_gamma(a, geometry.b) == 2
