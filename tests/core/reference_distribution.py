"""Golden reference for the staged distribution sort: the pre-port code.

This is the hand-written performer `repro.core.distribution` shipped
before the plan/engine port, kept verbatim (imports aside) as a
differential oracle: for any permutation and seed, the staged planner
must reproduce this implementation's portions, placement map, I/O
trace, and memory envelope byte for byte.  Test-only -- it drives the
simulator directly, which production code no longer may.
"""


from __future__ import annotations

import numpy as np

from repro.core.distribution import DistributionSortResult, tune_parameters
from repro.errors import ValidationError
from repro.pdm.system import ParallelDiskSystem
from repro.perms.base import Permutation

__all__ = ["reference_distribution_sort"]


def reference_distribution_sort(
    system: ParallelDiskSystem,
    perm: Permutation,
    source_portion: int = 0,
    target_portion: int = 1,
    digit_bits: int | None = None,
    prefetch_window: int | None = None,
    seed: int = 0,
) -> DistributionSortResult:
    """Permute by randomized-placement LSD distribution sort.

    Record payloads must be the records' source addresses (the canonical
    ``fill_identity`` input); the record with payload ``v`` ends at
    address ``perm(v)``.
    """
    g = system.geometry
    auto_w, auto_window = tune_parameters(g)
    w = auto_w if digit_bits is None else digit_bits
    window = auto_window if prefetch_window is None else prefetch_window
    if w < 1 or window < 1:
        raise ValidationError("digit_bits and prefetch_window must be positive")
    rng = np.random.default_rng(seed)
    before = system.stats.parallel_ios
    reads_before = system.stats.parallel_reads
    writes_before = system.stats.parallel_writes
    blocks_read_before = system.stats.blocks_read

    total_digit_bits = g.n - g.b
    num_passes = -(-total_digit_bits // w)
    # logical->physical block map of the current input (identity at start)
    map_in = np.arange(g.num_blocks, dtype=np.int64)
    pin, pout = source_portion, target_portion

    for p in range(num_passes):
        shift = g.b + p * w
        bits_here = min(w, g.n - shift)
        system.stats.begin_pass(f"dist:digit{p}")
        map_in = _distribution_pass(
            system, perm, pin, map_in, pout, shift, bits_here, window, rng
        )
        system.stats.end_pass()
        pin, pout = pout, pin

    system.stats.begin_pass("dist:gather")
    _gather_pass(system, perm, pin, map_in, pout, window)
    system.stats.end_pass()

    return DistributionSortResult(
        passes=num_passes + 1,
        digit_bits=w,
        prefetch_window=window,
        final_portion=pout,
        parallel_ios=system.stats.parallel_ios - before,
        read_ops=system.stats.parallel_reads - reads_before,
        write_ops=system.stats.parallel_writes - writes_before,
        blocks_per_pass_read=system.stats.blocks_read - blocks_read_before,
    )


# --------------------------------------------------------------------------
# the passes
# --------------------------------------------------------------------------

def _distribution_pass(system, perm, pin, map_in, pout, shift, bits, window, rng):
    g = system.geometry
    num_buckets = 1 << bits
    bucket_blocks = g.num_blocks // num_buckets
    mask = np.int64(num_buckets - 1)

    reader = _SequentialPrefetcher(system, pin, map_in, window)
    writer = _RandomPlacementWriter(system, pout, rng)

    # bucket fill buffers
    buffers = np.empty((num_buckets, g.B), dtype=np.int64)
    fill = np.zeros(num_buckets, dtype=np.int64)
    completed = np.zeros(num_buckets, dtype=np.int64)

    for logical in range(g.num_blocks):
        values = reader.get(logical)
        keys = np.asarray(perm.apply_array(values.astype(np.uint64)), dtype=np.int64)
        digits = (keys >> np.int64(shift)) & mask
        order = np.argsort(digits, kind="stable")
        sorted_digits = digits[order]
        sorted_values = values[order]
        uniq, starts = np.unique(sorted_digits, return_index=True)
        starts = list(starts) + [len(sorted_digits)]
        for idx, bucket in enumerate(uniq):
            chunk = sorted_values[starts[idx] : starts[idx + 1]]
            bucket = int(bucket)
            pos = 0
            while pos < len(chunk):
                take = min(g.B - int(fill[bucket]), len(chunk) - pos)
                buffers[bucket, fill[bucket] : fill[bucket] + take] = chunk[
                    pos : pos + take
                ]
                fill[bucket] += take
                pos += take
                if fill[bucket] == g.B:
                    out_logical = bucket * bucket_blocks + int(completed[bucket])
                    writer.submit(out_logical, buffers[bucket].copy())
                    completed[bucket] = completed[bucket] + 1
                    fill[bucket] = 0
        writer.flush(min_pending=g.D)
    writer.flush(min_pending=1)
    assert not fill.any(), "buckets must drain exactly (block-aligned extents)"
    return writer.logical_to_physical()


def _gather_pass(system, perm, pin, map_in, pout, window):
    """Read sorted blocks in logical order, fix offsets, write striped."""
    g = system.geometry
    reader = _SequentialPrefetcher(system, pin, map_in, window)
    stripe_buf = np.empty((g.D, g.B), dtype=np.int64)
    for logical in range(g.num_blocks):
        values = reader.get(logical)
        keys = np.asarray(perm.apply_array(values.astype(np.uint64)), dtype=np.int64)
        # all records of this logical block share one target block; order
        # them by target offset in memory (free -- the paper's in-memory
        # permutation step)
        order = np.argsort(keys)
        target_block = int(keys[order[0]]) >> g.b
        assert int(keys[order[-1]]) >> g.b == target_block, "not fully sorted"
        stripe_buf[logical % g.D] = values[order]
        if logical % g.D == g.D - 1:
            stripe = logical // g.D
            system.write_stripe(pout, stripe, stripe_buf)


class _SequentialPrefetcher:
    """In-order consumption with bounded lookahead and D-wide batching."""

    def __init__(self, system, portion, logical_to_physical, window):
        self.system = system
        self.portion = portion
        self.map = logical_to_physical
        self.window = max(1, window)
        self.buffer: dict[int, np.ndarray] = {}
        self.cursor = 0  # next logical block the consumer will ask for
        self.total = len(logical_to_physical)

    def get(self, logical: int) -> np.ndarray:
        assert logical == self.cursor, "consumption must be sequential"
        while logical not in self.buffer:
            self._issue_read(logical)
        self.cursor += 1
        return self.buffer.pop(logical)

    def _issue_read(self, needed: int) -> None:
        g = self.system.geometry
        batch: list[int] = []
        used: set[int] = set()
        end = min(needed + self.window, self.total)
        for ℓ in range(needed, end):
            if ℓ in self.buffer:
                continue
            disk = int(g.block_disk(int(self.map[ℓ])))
            if disk in used:
                continue
            batch.append(ℓ)
            used.add(disk)
            if len(batch) == g.D:
                break
        physical = [int(self.map[ℓ]) for ℓ in batch]
        values = self.system.read_blocks(self.portion, physical)
        for ℓ, vals in zip(batch, values):
            self.buffer[ℓ] = vals


class _RandomPlacementWriter:
    """Buffers completed blocks; flushes batches to random distinct disks."""

    def __init__(self, system, portion, rng):
        self.system = system
        self.portion = portion
        self.rng = rng
        g = system.geometry
        self.free_slots = [list(range(g.num_stripes)) for _ in range(g.D)]
        for slots in self.free_slots:
            rng.shuffle(slots)
        self.pending: list[tuple[int, np.ndarray]] = []
        self._map = np.full(g.num_blocks, -1, dtype=np.int64)

    def submit(self, logical: int, values: np.ndarray) -> None:
        self.pending.append((logical, values))

    def flush(self, min_pending: int) -> None:
        g = self.system.geometry
        while len(self.pending) >= min_pending and self.pending:
            batch = self.pending[: g.D]
            self.pending = self.pending[g.D :]
            disks_with_space = [d for d in range(g.D) if self.free_slots[d]]
            if len(batch) > len(disks_with_space):  # pragma: no cover
                raise AssertionError("placement capacity exhausted early")
            chosen = self.rng.choice(
                len(disks_with_space), size=len(batch), replace=False
            )
            block_ids = []
            for (logical, _values), pick in zip(batch, chosen):
                disk = disks_with_space[int(pick)]
                stripe = self.free_slots[disk].pop()
                physical = stripe * g.D + disk
                self._map[logical] = physical
                block_ids.append(physical)
            data = np.stack([values for _logical, values in batch])
            self.system.write_blocks(self.portion, block_ids, data)

    def logical_to_physical(self) -> np.ndarray:
        assert (self._map >= 0).all(), "every logical block must be placed"
        return self._map
