"""Optimizer/cache equivalence: compiled execution is indistinguishable.

The optimizer's contract extends the engine's: for any plan, optimized
(+cached) fast execution produces byte-identical portion contents and
identical I/O accounting to strict execution of the unoptimized plan.
Quantified over random geometries and random MRC/MLD/inverse-MLD/BMMC/
general instances (Hypothesis), with the cache exercised by running
every workload twice -- the second run must hit and still match.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.runner import perform_permutation
from repro.pdm.cache import PlanCache
from repro.pdm.system import ParallelDiskSystem

from tests.conftest import geometry_strategy
from tests.core.test_engine_equivalence import (
    assert_equivalent,
    fresh,
    make_instance,
)


@given(
    geometry_strategy(),
    st.sampled_from(["mrc", "mld", "inv-mld", "bmmc", "bmmc-unmerged", "general"]),
    st.integers(0, 2**31),
)
@settings(max_examples=40, deadline=None)
def test_optimized_cached_equals_strict_everywhere(geometry, method, seed):
    g = geometry
    if method == "general" and 4 * g.B * g.D > g.M:
        return  # merge sort needs (K+2) BD <= M with K >= 2
    perm = make_instance(method, g, seed)
    strict = fresh(g)
    report_strict = perform_permutation(strict, perm, method=method, engine="strict")

    cache = PlanCache()
    for round_ in range(2):  # round 2 is the cache hit (general never caches)
        fast = fresh(g)
        report_fast = perform_permutation(
            fast, perm, method=method, engine="fast", optimize=True, cache=cache
        )
        assert report_strict.verified and report_fast.verified
        assert report_strict.passes == report_fast.passes
        assert report_strict.final_portion == report_fast.final_portion
        assert report_strict.io == report_fast.io
        assert_equivalent(strict, fast)
    if method != "general":
        assert cache.info().hits == 1


@given(geometry_strategy(), st.integers(0, 2**31))
@settings(max_examples=20, deadline=None)
def test_streamed_execution_equals_strict(geometry, seed):
    """Tiny stream budgets force chunked fast execution; still identical."""
    g = geometry
    perm = make_instance("bmmc", g, seed)
    strict = fresh(g)
    perform_permutation(strict, perm, method="bmmc", engine="strict")

    from repro.core.bmmc_algorithm import plan_bmmc_io, plan_bmmc_passes
    from repro.pdm.engine import execute_plan

    plan, final = plan_bmmc_io(g, plan_bmmc_passes(perm, g))
    fast = fresh(g)
    execute_plan(fast, plan, engine="fast", stream_records=g.records_per_stripe)
    assert_equivalent(strict, fast)
    assert fast.verify_permutation(perm, np.arange(g.N), final)
