"""Differential conformance matrix: every planner under every executor.

General PDM sorting is exactly where schedule correctness is subtlest
(Guidesort, arXiv:1807.11328; PEM simulation, arXiv:1001.3364), so this
suite holds the *whole* stack to one contract: for every planner --
MLD, MRC, inverse-MLD, MLD-composition, multi-pass BMMC, general merge
sort, staged distribution sort, and run-time detection -- execution
must produce byte-identical portions and identical
:class:`~repro.pdm.stats.IOStats` (pass tables and memory envelope
included) across the full combination matrix

    {strict, fast-numpy, fast-parallel} x {optimize on/off}
        x {cache cold/warm} x {streamed/unstreamed}

over several geometries.  The reference cell is strict / unoptimized /
uncached / unstreamed -- the per-operation replay with full model-rule
enforcement, i.e. the hand-written performers' semantics.

The parallel cells run a deliberately tiny-chunked
:class:`~repro.pdm.engine.ParallelBackend` (2 workers, 64-record
chunks, no minimum) so the sharded gather/scatter paths genuinely
trigger on these small geometries instead of falling back to numpy
below the production crossover.

Knobs a planner does not support collapse to no-ops for that planner
(the general sort's schedule is data-dependent and uncached; detection
takes only the engine knob); the matrix still executes those cells and
asserts they change nothing observable.
"""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bits.random import random_mld_matrix, random_mrc_matrix, random_nonsingular
from repro.core.bmmc_algorithm import perform_bmmc
from repro.core.detect import detect_bmmc, store_target_vector
from repro.core.distribution import perform_distribution_sort
from repro.core.general import perform_general_sort
from repro.core.inverse_mld import (
    perform_inverse_mld_pass,
    perform_mld_composition_pass,
)
from repro.core.mld_algorithm import perform_mld_pass
from repro.core.mrc_algorithm import perform_mrc_pass
from repro.pdm.cache import PlanCache
from repro.pdm.engine import ParallelBackend
from repro.pdm.geometry import DiskGeometry
from repro.pdm.system import ParallelDiskSystem
from repro.perms.base import ExplicitPermutation
from repro.perms.bmmc import BMMCPermutation

SEED = 0x5EED

#: Forced-sharding parallel backend: every kernel call above 64 records
#: splits across 2 workers, so the conformance geometries (N = 2^10 ..
#: 2^12) exercise the threaded paths rather than the numpy fallback.
TINY_PARALLEL = ParallelBackend(workers=2, min_records=0, chunk_records=64)

#: Backend instances by matrix cell name.  ``None`` (strict cells) means
#: the knob is not passed at all.
BACKEND_INSTANCES = {None: None, "numpy": "numpy", "parallel": TINY_PARALLEL}

#: Several geometries: the default shape, a wider-disk shape, and a
#: small one with deep stripes.  All admit every planner in the matrix
#: (merge sort needs M >= 4BD; the distribution sort must tune).
GEOMETRIES = [
    dict(N=2**10, B=2**2, D=2**2, M=2**7),
    dict(N=2**12, B=2**3, D=2**2, M=2**8),
    dict(N=2**11, B=2**2, D=2**3, M=2**8),
]

ENGINES = ("strict", "fast")

#: Executor cells: (engine, backend name).  Strict replays operations
#: one at a time and has no kernel backend; the fast engine runs under
#: both the numpy reference kernels and the sharded parallel kernels.
EXECUTORS = (("strict", None), ("fast", "numpy"), ("fast", "parallel"))

#: The full combination matrix.  ``cached`` cells execute twice through
#: one fresh PlanCache -- cold (miss, compile, store) then warm (hit).
MATRIX = list(itertools.product(EXECUTORS, (False, True), (False, True), (False, True)))


def _combo_id(combo):
    (engine, backend), optimize, cached, streamed = combo
    executor = engine if backend is None else f"{engine}-{backend}"
    return (
        f"{executor}-{'opt' if optimize else 'plain'}-"
        f"{'cached' if cached else 'uncached'}-"
        f"{'streamed' if streamed else 'whole'}"
    )


def identity_system(g: DiskGeometry) -> ParallelDiskSystem:
    s = ParallelDiskSystem(g)
    s.fill_identity(0)
    return s


def assert_same_observable_state(ref: ParallelDiskSystem, got: ParallelDiskSystem, tag):
    for portion in range(ref.num_portions):
        assert (
            ref.portion_values(portion) == got.portion_values(portion)
        ).all(), f"{tag}: portion {portion} differs"
    assert ref.stats.snapshot() == got.stats.snapshot(), f"{tag}: stats differ"
    assert ref.stats.passes == got.stats.passes, f"{tag}: pass tables differ"
    assert ref.memory.peak == got.memory.peak, f"{tag}: memory peak differs"
    assert ref.memory.in_use == got.memory.in_use, f"{tag}: resident records differ"


# --------------------------------------------------------------------------
# planner specs
# --------------------------------------------------------------------------

class Spec:
    """One planner's conformance adapter.

    ``run`` executes the planner with the combo's knobs on a fresh
    system and returns a comparable result summary (or None).  Knobs
    the underlying wrapper does not expose are dropped here, which *is*
    the conformance claim for those cells: the knob must be a no-op.
    """

    name: str
    supports_cache = True

    def fresh(self, g: DiskGeometry) -> ParallelDiskSystem:
        return identity_system(g)

    def run(self, system, g, engine, optimize, cache, stream_records, backend):
        raise NotImplementedError


class MLDSpec(Spec):
    name = "mld"

    def run(self, system, g, engine, optimize, cache, stream_records, backend):
        rng = np.random.default_rng(SEED)
        perm = BMMCPermutation(random_mld_matrix(g.n, g.b, g.m, rng))
        perform_mld_pass(
            system, perm, engine=engine, optimize=optimize, cache=cache,
            stream_records=stream_records, backend=backend,
        )
        return None


class MRCSpec(Spec):
    name = "mrc"

    def run(self, system, g, engine, optimize, cache, stream_records, backend):
        rng = np.random.default_rng(SEED)
        perm = BMMCPermutation(random_mrc_matrix(g.n, g.m, rng), 3 % g.N)
        perform_mrc_pass(
            system, perm, engine=engine, optimize=optimize, cache=cache,
            stream_records=stream_records, backend=backend,
        )
        return None


class InverseMLDSpec(Spec):
    name = "inv-mld"

    def run(self, system, g, engine, optimize, cache, stream_records, backend):
        rng = np.random.default_rng(SEED)
        perm = BMMCPermutation(random_mld_matrix(g.n, g.b, g.m, rng)).inverse()
        perform_inverse_mld_pass(
            system, perm, engine=engine, optimize=optimize, cache=cache,
            stream_records=stream_records, backend=backend,
        )
        return None


class CompositionSpec(Spec):
    name = "composition"

    def run(self, system, g, engine, optimize, cache, stream_records, backend):
        rng = np.random.default_rng(SEED)
        x = BMMCPermutation(random_mld_matrix(g.n, g.b, g.m, rng))
        y = BMMCPermutation(random_mld_matrix(g.n, g.b, g.m, rng))
        composed = perform_mld_composition_pass(
            system, y, x, engine=engine, optimize=optimize, cache=cache,
            stream_records=stream_records, backend=backend,
        )
        return (composed.matrix, composed.complement)


class BMMCSpec(Spec):
    name = "bmmc"

    def run(self, system, g, engine, optimize, cache, stream_records, backend):
        rng = np.random.default_rng(SEED)
        perm = BMMCPermutation(random_nonsingular(g.n, rng), 5 % g.N)
        result = perform_bmmc(
            system, perm, engine=engine, optimize=optimize, cache=cache,
            stream_records=stream_records, backend=backend,
        )
        return (result.final_portion, result.parallel_ios, len(result.steps))


class GeneralSortSpec(Spec):
    name = "general-sort"
    supports_cache = False  # schedule is data-dependent, never cached

    def run(self, system, g, engine, optimize, cache, stream_records, backend):
        perm = ExplicitPermutation(np.random.default_rng(SEED).permutation(g.N))
        result = perform_general_sort(
            system, perm, engine=engine, optimize=optimize,
            stream_records=stream_records, backend=backend,
        )
        return (result.final_portion, result.passes, result.parallel_ios)


class DistributionSortSpec(Spec):
    name = "distribution-sort"

    def run(self, system, g, engine, optimize, cache, stream_records, backend):
        perm = ExplicitPermutation(np.random.default_rng(SEED).permutation(g.N))
        result = perform_distribution_sort(
            system, perm, seed=11, engine=engine, optimize=optimize,
            cache=cache, stream_records=stream_records, backend=backend,
        )
        return (result.final_portion, result.passes, result.parallel_ios)


class DetectionSpec(Spec):
    name = "detection"
    supports_cache = False  # engine knob only

    def fresh(self, g: DiskGeometry) -> ParallelDiskSystem:
        # Non-consuming inspection needs simple_io off; input is a BMMC
        # target vector so both engines run the full verification scan.
        s = ParallelDiskSystem(g, simple_io=False)
        perm = BMMCPermutation(random_nonsingular(g.n, np.random.default_rng(SEED)))
        store_target_vector(s, perm)
        return s

    def run(self, system, g, engine, optimize, cache, stream_records, backend):
        # Pin the chunking so strict and fast issue identical plans.
        result = detect_bmmc(
            system, engine=engine, verify_chunk=g.stripes_per_memoryload
        )
        assert result.is_bmmc
        return (
            result.matrix,
            result.complement,
            result.formation_reads,
            result.verification_reads,
        )


SPECS = [
    MLDSpec(),
    MRCSpec(),
    InverseMLDSpec(),
    CompositionSpec(),
    BMMCSpec(),
    GeneralSortSpec(),
    DistributionSortSpec(),
    DetectionSpec(),
]


# --------------------------------------------------------------------------
# the matrix
# --------------------------------------------------------------------------

@pytest.mark.parametrize(
    "geom", GEOMETRIES, ids=lambda p: f"N{p['N']}-B{p['B']}-D{p['D']}-M{p['M']}"
)
@pytest.mark.parametrize("spec", SPECS, ids=lambda s: s.name)
def test_conformance_matrix(spec, geom):
    g = DiskGeometry(**geom)
    ref_system = spec.fresh(g)
    ref_result = spec.run(ref_system, g, "strict", False, None, 0, None)

    for combo in MATRIX:
        (engine, backend_name), optimize, cached, streamed = combo
        backend = BACKEND_INSTANCES[backend_name]
        tag = f"{spec.name}/{_combo_id(combo)}"
        cache = PlanCache() if (cached and spec.supports_cache) else None
        stream = g.M if streamed else 0
        rounds = 2 if cached else 1  # cold miss, then warm hit
        for i in range(rounds):
            system = spec.fresh(g)
            result = spec.run(system, g, engine, optimize, cache, stream, backend)
            round_tag = f"{tag}/{'warm' if i else 'cold'}"
            assert_same_observable_state(ref_system, system, round_tag)
            assert result == ref_result, f"{round_tag}: results differ"
        if cache is not None:
            info = cache.info()
            assert info.misses >= 1 and info.hits >= 1, (
                f"{tag}: expected a cold miss and a warm hit, got {info}"
            )


def test_streamed_cells_actually_stream():
    """The matrix's streamed cells must exercise the chunked path, not
    silently run whole (which would make the dimension vacuous)."""
    from repro.pdm.engine import execute_plan
    from repro.core.mld_algorithm import plan_mld_pass

    g = DiskGeometry(**GEOMETRIES[1])
    perm = BMMCPermutation(
        random_mld_matrix(g.n, g.b, g.m, np.random.default_rng(SEED))
    )
    plan = plan_mld_pass(g, perm)
    for engine, backend_name in EXECUTORS:
        s = identity_system(g)
        report = execute_plan(
            s, plan, engine=engine,
            stream_records=g.M, backend=BACKEND_INSTANCES[backend_name],
        )
        assert report.streamed_passes == 1, (engine, backend_name)
        assert report.host_peak_records <= g.M


def test_matrix_covers_every_combination():
    """24 cells: 3 executors x 2 optimize x 2 cache x 2 streaming."""
    assert len(MATRIX) == 24
    assert len(set(MATRIX)) == 24


# --------------------------------------------------------------------------
# property: the parallel backend is observationally strict
# --------------------------------------------------------------------------

@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(min_value=8, max_value=11),
    b=st.integers(min_value=2, max_value=3),
    d=st.integers(min_value=1, max_value=2),
    extra_m=st.integers(min_value=2, max_value=4),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
def test_parallel_backend_matches_strict_property(n, b, d, extra_m, seed):
    """Random BMMC permutations on random geometries: the fast engine on
    the forced tiny-chunk parallel backend must be byte- and
    stats-identical to the strict replay."""
    m = min(n - 1, b + d + extra_m)
    g = DiskGeometry(N=2**n, B=2**b, D=2**d, M=2**m)
    rng = np.random.default_rng(seed)
    perm = BMMCPermutation(random_nonsingular(g.n, rng), int(rng.integers(g.N)))

    ref = identity_system(g)
    ref_result = perform_bmmc(ref, perm)

    got = identity_system(g)
    result = perform_bmmc(got, perm, engine="fast", backend=TINY_PARALLEL)

    assert_same_observable_state(ref, got, f"property-seed{seed}")
    assert result.final_portion == ref_result.final_portion
    assert result.parallel_ios == ref_result.parallel_ios
