"""Unit tests for :mod:`repro.serve.workload`.

Four layers, bottom up: the JSONL trace format (canonical bytes,
validation on load), the deterministic generator (byte-reproducible
specs, skew/burst shapes, golden-trace drift), recording (offered
load, pre-admission), and replay as the determinism oracle (identical
digests, IOStats, and exactly reconciled counters across replays).
"""

import json
import pathlib
from dataclasses import replace

import pytest

from repro.errors import ValidationError
from repro.pdm.geometry import DiskGeometry
from repro.serve import (
    FaultPlan,
    PermutationService,
    ServiceMetrics,
    synthetic_mix,
)
from repro.serve.workload import (
    TraceEvent,
    TraceRecorder,
    WorkloadSpec,
    WorkloadTrace,
    generate_trace,
    geometry_variants,
    mix_trace,
    reconcile_replay,
    replay_trace,
)

GEOMETRY = dict(N=2**10, B=2**3, D=2**2, M=2**7)
WORKLOADS_DIR = pathlib.Path(__file__).parent.parent.parent / "benchmarks" / "workloads"


@pytest.fixture
def geometry():
    return DiskGeometry(**GEOMETRY)


def small_spec(**overrides):
    base = dict(
        count=12,
        seed=7,
        arrival="uniform",
        rate=400.0,
        popularity="uniform",
        key_space=4,
        geometry=GEOMETRY,
    )
    base.update(overrides)
    return WorkloadSpec(**base)


# --------------------------------------------------------------------------
# trace format
# --------------------------------------------------------------------------

class TestTraceFormat:
    def test_event_roundtrip(self):
        request = synthetic_mix(1)[0]
        event = TraceEvent(at=0.1234567891234, request=request)
        assert event.at == round(0.1234567891234, 9)
        again = TraceEvent.from_dict(json.loads(json.dumps(event.to_dict())))
        assert again == event

    def test_event_rejects_negative_offset_and_unknown_fields(self):
        request = synthetic_mix(1)[0]
        with pytest.raises(ValidationError):
            TraceEvent(at=-0.5, request=request)
        with pytest.raises(ValidationError, match="unknown trace event"):
            TraceEvent.from_dict({"at": 0.0, "request": {}, "extra": 1})
        with pytest.raises(ValidationError, match="needs both"):
            TraceEvent.from_dict({"at": 0.0})

    def test_dumps_loads_byte_roundtrip(self, geometry, tmp_path):
        trace = generate_trace(small_spec())
        text = trace.dumps()
        again = WorkloadTrace.loads(text)
        assert again.dumps() == text
        assert again.name == trace.name
        assert again.geometry == geometry
        assert again.requests() == trace.requests()
        path = tmp_path / "t.jsonl"
        trace.save(path)
        assert WorkloadTrace.load(path).dumps() == text

    def test_loads_rejects_garbage(self):
        with pytest.raises(ValidationError, match="empty"):
            WorkloadTrace.loads("")
        with pytest.raises(ValidationError, match="malformed header"):
            WorkloadTrace.loads("{not json")
        with pytest.raises(ValidationError, match="not a workload trace"):
            WorkloadTrace.loads('{"format":"something-else","version":1}')
        with pytest.raises(ValidationError, match="reads version 1"):
            WorkloadTrace.loads('{"format":"repro-workload-trace","version":99}')

    def test_loads_rejects_disorder_and_truncation(self):
        trace = generate_trace(small_spec())
        lines = trace.dumps().splitlines()
        # swap two events out of arrival order
        disordered = "\n".join([lines[0], lines[5], lines[1]] + lines[6:])
        with pytest.raises(ValidationError, match="non-decreasing"):
            WorkloadTrace.loads(disordered)
        truncated = "\n".join(lines[:-2])
        with pytest.raises(ValidationError, match="truncated or concatenated"):
            WorkloadTrace.loads(truncated)

    def test_duration_and_describe(self):
        trace = generate_trace(small_spec(count=8, rate=100.0))
        assert trace.duration == pytest.approx(7 / 100.0)
        text = trace.describe()
        assert "8 events" in text and "N=1024" in text


# --------------------------------------------------------------------------
# spec validation
# --------------------------------------------------------------------------

class TestWorkloadSpec:
    @pytest.mark.parametrize(
        "bad",
        [
            dict(count=0),
            dict(arrival="lumpy"),
            dict(popularity="hot"),
            dict(rate=0.0),
            dict(zipf_alpha=0.0),
            dict(key_space=0),
            dict(burst_size=0),
            dict(duplicates=0),
            dict(duplicates=-2),
            dict(geometry=dict(N=3, B=8, D=4, M=128)),
        ],
    )
    def test_rejects(self, bad):
        with pytest.raises((ValidationError, ValueError)):
            small_spec(**bad)

    def test_dict_roundtrip(self, geometry):
        spec = small_spec(
            popularity="zipf",
            zipf_alpha=1.3,
            geometries=(GEOMETRY, dict(N=2**9, B=2**3, D=2**2, M=2**7)),
            timeout=1.5,
        )
        again = WorkloadSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert again == spec

    def test_rejects_unknown_spec_fields(self):
        with pytest.raises(ValidationError, match="unknown workload spec"):
            WorkloadSpec.from_dict({"count": 4, "flavour": "spicy"})

    def test_geometry_variants(self, geometry):
        variants = geometry_variants(geometry, 3)
        assert len(variants) == 3
        assert variants[0] == geometry
        assert variants[1].N == geometry.N // 2
        assert all(v.M < v.N for v in variants)
        # clamps once halving would break M < N, repeating the smallest
        many = geometry_variants(geometry, 10)
        assert len(many) == 10
        assert many[-1] == many[-2]
        with pytest.raises(ValidationError):
            geometry_variants(geometry, 0)


# --------------------------------------------------------------------------
# the generator
# --------------------------------------------------------------------------

class TestGenerator:
    def test_same_spec_same_bytes(self):
        spec = small_spec(arrival="poisson", popularity="zipf")
        assert generate_trace(spec).dumps() == generate_trace(spec).dumps()

    def test_different_seed_different_trace(self):
        spec = small_spec(arrival="poisson")
        assert (
            generate_trace(spec).dumps()
            != generate_trace(replace(spec, seed=spec.seed + 1)).dumps()
        )

    def test_spec_dict_in_header_regenerates(self):
        trace = generate_trace(small_spec(popularity="zipf", zipf_alpha=1.6))
        again = generate_trace(WorkloadSpec.from_dict(trace.spec))
        assert again.dumps() == trace.dumps()

    def test_zipf_concentrates_on_the_head(self):
        spec = small_spec(
            count=200, popularity="zipf", zipf_alpha=2.0, key_space=8
        )
        trace = generate_trace(spec)
        counts: dict = {}
        for req in trace.requests():
            counts[(repr(req.perm), req.seed)] = (
                counts.get((repr(req.perm), req.seed), 0) + 1
            )
        hottest = max(counts.values())
        # alpha=2 over 8 ranks puts ~62% of mass on rank 1; a uniform
        # draw would put 12.5% -- 40% is a safe statistical floor
        assert hottest >= 0.40 * spec.count
        assert len(counts) <= spec.key_space

    def test_uniform_spreads(self):
        spec = small_spec(count=200, key_space=4)
        counts: dict = {}
        for req in generate_trace(spec).requests():
            key = (repr(req.perm), req.seed)
            counts[key] = counts.get(key, 0) + 1
        assert len(counts) == 4
        assert max(counts.values()) <= 0.5 * spec.count

    def test_poisson_offsets_are_non_decreasing_and_positive(self):
        trace = generate_trace(small_spec(count=50, arrival="poisson"))
        offsets = [event.at for event in trace]
        assert offsets == sorted(offsets)
        assert offsets[0] > 0

    def test_bursty_clusters_arrivals(self):
        spec = small_spec(
            count=32, arrival="bursty", burst_size=8, burst_gap=0.5
        )
        trace = generate_trace(spec)
        offsets = [event.at for event in trace]
        assert offsets == sorted(offsets)
        # every event lands within jitter of its burst start: the gaps
        # *between* bursts dominate the gaps inside them
        inside = [
            b - a for a, b in zip(offsets, offsets[1:]) if b - a < 0.1
        ]
        between = [
            b - a for a, b in zip(offsets, offsets[1:]) if b - a >= 0.1
        ]
        assert len(between) == 3  # 32 events / 8 per burst -> 4 bursts
        assert len(inside) == 28

    def test_geometry_diversity_assigns_stable_overrides(self, geometry):
        variants = geometry_variants(geometry, 2)
        spec = small_spec(
            count=40,
            key_space=4,
            geometries=tuple(
                {"N": v.N, "B": v.B, "D": v.D, "M": v.M} for v in variants
            ),
        )
        trace = generate_trace(spec)
        seen = {}
        for req in trace.requests():
            key = (repr(req.perm), req.seed)
            assert req.geometry in variants
            # same key -> same geometry, always
            assert seen.setdefault(key, req.geometry) == req.geometry

    def test_timeout_stamped_on_every_request(self):
        trace = generate_trace(small_spec(timeout=2.5))
        assert all(event.request.timeout == 2.5 for event in trace)


class TestDuplicates:
    """The ``duplicates`` knob: duplicate-heavy traffic for single-flight
    coalescing, grafted onto the generator without moving a byte of the
    existing traces."""

    def test_duplicates_repeat_back_to_back_at_the_same_offset(self):
        spec = small_spec(count=16, duplicates=4)
        events = list(generate_trace(spec))
        for start in range(0, 16, 4):
            group = events[start : start + 4]
            assert len({event.at for event in group}) == 1
            assert all(
                event.request == group[0].request for event in group
            ), "duplicates must be byte-identical requests"

    def test_count_not_divisible_truncates(self):
        trace = generate_trace(small_spec(count=10, duplicates=4))
        assert len(trace) == 10

    def test_duplicates_one_matches_the_undecorated_generator(self):
        # explicit duplicates=1 is the default: byte-for-byte identical
        spec = small_spec(count=12)
        assert (
            generate_trace(replace(spec, duplicates=1)).dumps()
            == generate_trace(spec).dumps()
        )

    def test_default_is_omitted_from_the_wire_spec(self):
        # committed golden traces predate the knob; serializing the
        # default would move every header line
        assert "duplicates" not in small_spec().to_dict()
        assert small_spec(duplicates=8).to_dict()["duplicates"] == 8

    def test_spec_roundtrips_and_regenerates(self):
        spec = small_spec(count=16, duplicates=4, popularity="zipf")
        trace = generate_trace(spec)
        again = generate_trace(WorkloadSpec.from_dict(trace.spec))
        assert again.dumps() == trace.dumps()

    def test_duplicate_base_draw_matches_the_plain_spec(self):
        """The duplicated trace is the duplicates=1 trace of the same
        spec with each event repeated: the underlying draw sequence is
        shared, not a different stream."""
        spec = small_spec(count=16, duplicates=4)
        base = list(generate_trace(replace(spec, count=4, duplicates=1)))
        expanded = list(generate_trace(spec))
        for i, event in enumerate(expanded):
            assert event.request == base[i // 4].request
            assert event.at == base[i // 4].at


# --------------------------------------------------------------------------
# the shared mix builder
# --------------------------------------------------------------------------

class TestMixTrace:
    def test_matches_synthetic_mix(self):
        trace = mix_trace(12, seed=3, distinct_seeds=2, verify=False)
        assert trace.requests() == synthetic_mix(
            12, seed=3, distinct_seeds=2, verify=False
        )
        assert trace.duration == 0.0

    def test_rate_spaces_events(self):
        trace = mix_trace(8, rate=100.0)
        assert [event.at for event in trace] == pytest.approx(
            [i / 100.0 for i in range(8)]
        )


# --------------------------------------------------------------------------
# golden traces must not drift from their own specs
# --------------------------------------------------------------------------

@pytest.mark.parametrize(
    "name",
    [
        "uniform",
        "zipf-hot-key",
        "bursty-overload",
        "mixed-chaos",
        "duplicate-heavy",
    ],
)
def test_golden_trace_matches_its_spec(name):
    path = WORKLOADS_DIR / f"{name}.jsonl"
    committed = path.read_text()
    trace = WorkloadTrace.loads(committed, path=str(path))
    assert trace.name == name
    assert trace.spec is not None, "golden traces must embed their spec"
    regenerated = generate_trace(WorkloadSpec.from_dict(trace.spec))
    assert regenerated.dumps() == committed, (
        f"{path} drifted from its embedded spec -- regenerate it with "
        "benchmarks/workloads/make_golden.py instead of hand-editing"
    )


# --------------------------------------------------------------------------
# recording
# --------------------------------------------------------------------------

class TestRecorder:
    def test_records_offered_load_including_shed(self, geometry):
        recorder = TraceRecorder(name="offered", geometry=geometry)
        requests = synthetic_mix(8, distinct_seeds=2, verify=False)
        # one worker + tiny queue + injected latency: some of the 8
        # must shed, and the trace must contain them anyway
        with PermutationService(
            geometry,
            workers=1,
            queue_capacity=1,
            queue_policy="reject",
            faults=FaultPlan(seed=1, slow_passes=1.0, slow_seconds=0.01),
            recorder=recorder,
        ) as service:
            results = service.run(requests)
            stats = service.stats()
        assert stats.shed > 0
        trace = recorder.trace()
        assert len(trace) == len(requests) == stats.submitted
        assert trace.requests() == requests
        offsets = [event.at for event in trace]
        assert offsets == sorted(offsets) and offsets[0] == 0.0
        assert any(not r.ok for r in results)

    def test_unserializable_requests_are_skipped_not_fatal(self, geometry):
        from repro.serve import PermutationRequest, make_permutation

        recorder = TraceRecorder()
        ready = make_permutation("transpose", geometry)
        recorder.record(PermutationRequest(perm=ready))
        recorder.record(synthetic_mix(1)[0])
        assert recorder.skipped == 1
        assert len(recorder.trace()) == 1

    def test_roundtrip_through_file(self, geometry, tmp_path):
        recorder = TraceRecorder(name="session", geometry=geometry)
        for request in synthetic_mix(4, verify=False):
            recorder.record(request)
        path = tmp_path / "session.jsonl"
        recorder.trace().save(path)
        again = WorkloadTrace.load(path)
        assert again.requests() == recorder.trace().requests()
        assert again.geometry == geometry


# --------------------------------------------------------------------------
# replay: the determinism oracle
# --------------------------------------------------------------------------

def _replay_fresh(trace, **service_knobs):
    knobs = dict(workers=2, cache_maxsize=64)
    knobs.update(service_knobs)
    metrics = ServiceMetrics()
    with PermutationService(trace.geometry, **knobs) as service:
        report = replay_trace(service, trace, as_fast_as_possible=True)
        problems = reconcile_replay(service, metrics)
    return report, problems


class TestReplayOracle:
    def test_two_replays_are_byte_identical(self):
        trace = generate_trace(
            small_spec(count=16, popularity="zipf", arrival="poisson")
        )
        first, problems1 = _replay_fresh(trace)
        second, problems2 = _replay_fresh(trace)
        assert problems1 == problems2 == []
        assert first.failed == second.failed == 0
        assert len(first.digests) == len(trace)
        assert first.digests == second.digests
        assert first.workload_digest == second.workload_digest
        io = lambda rep: {
            r.index: (r.report.method, r.report.passes, r.report.io.parallel_ios)
            for r in rep.results
        }
        assert io(first) == io(second)
        s1, s2 = first.stats, second.stats
        assert (s1.submitted, s1.admitted, s1.completed, s1.shed) == (
            s2.submitted, s2.admitted, s2.completed, s2.shed
        )
        c1, c2 = first.cache, second.cache
        assert (c1.hits, c1.misses, c1.evictions) == (c2.hits, c2.misses, c2.evictions)
        assert c1.evictions == 0
        assert c1.misses <= trace.spec["key_space"]

    def test_replay_matches_sequential_reference(self, geometry):
        from repro.serve import run_sequential

        trace = generate_trace(small_spec(count=8))
        reference = run_sequential(
            geometry,
            [replace(r, capture_portion=True) for r in trace.requests()],
        )
        report, _ = _replay_fresh(trace)
        for got, want in zip(
            sorted(report.results, key=lambda r: r.index), reference
        ):
            assert got.digest == want.digest

    def test_paced_replay_honors_offsets(self):
        trace = generate_trace(small_spec(count=6, rate=40.0))
        metrics = ServiceMetrics()
        with PermutationService(trace.geometry, workers=2) as service:
            report = replay_trace(service, trace)
            assert reconcile_replay(service, metrics) == []
        assert report.paced
        assert report.wall_seconds >= trace.duration

    def test_speed_scales_pacing_and_validates(self):
        trace = generate_trace(small_spec(count=4, rate=20.0))
        with PermutationService(trace.geometry, workers=2) as service:
            report = replay_trace(service, trace, speed=10.0)
        assert report.wall_seconds >= trace.duration / 10.0
        with PermutationService(trace.geometry, workers=2) as service:
            with pytest.raises(ValidationError, match="speed"):
                replay_trace(service, trace, speed=0.0)

    def test_capture_flag_forces_digests(self):
        trace = mix_trace(4, verify=False, capture_portion=False)
        trace.geometry = DiskGeometry(**GEOMETRY)
        with PermutationService(trace.geometry, workers=2) as service:
            bare = replay_trace(service, trace, as_fast_as_possible=True)
        assert bare.digests == {}
        with PermutationService(trace.geometry, workers=2) as service:
            captured = replay_trace(
                service, trace, as_fast_as_possible=True, capture=True
            )
        assert len(captured.digests) == len(trace)

    def test_summary_dict_shape(self):
        trace = generate_trace(small_spec(count=6))
        report, _ = _replay_fresh(trace)
        summary = report.summary_dict()
        for key in (
            "events", "ok", "failed", "throughput_rps", "wall_seconds",
            "latency_p50_ms", "latency_p99_ms", "hit_rate", "cache_hits",
            "cache_misses", "cache_evictions", "shed", "deadline_exceeded",
            "retries", "workload_digest",
        ):
            assert key in summary
        assert summary["events"] == summary["ok"] == 6
        assert "replayed" in report.summary()
