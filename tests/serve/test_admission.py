"""Admission control: bounded queues, shedding policies, counter laws.

The overload acceptance criterion lives here: with queue capacity Q and
a saturating burst, exactly ``admitted + shed == submitted``, no
deadlock, and a post-burst request completes normally.  Slow faults
(deterministic injected pass latency) stand in for heavy workloads so
the queue actually backs up on a 1-2 worker pool.
"""

import threading
import time

import pytest

from repro.errors import RequestRejected, ServiceClosedError, ValidationError
from repro.pdm.geometry import DiskGeometry
from repro.serve import FaultPlan, PermutationRequest, PermutationService, synthetic_mix

GEOMETRY = DiskGeometry(N=2**10, B=2**3, D=2**2, M=2**7)

#: Every request sleeps a little at each pass boundary, so a small pool
#: saturates under a burst without needing big geometries.
SLOW = FaultPlan(seed=7, slow_passes=1.0, slow_seconds=0.02)


def _request(seed=0):
    return PermutationRequest(perm="random-mrc", method="mrc", seed=seed)


class TestRejectPolicy:
    def test_overload_counters_reconcile_exactly(self):
        capacity = 3
        burst = 24
        with PermutationService(
            GEOMETRY, workers=2, queue_capacity=capacity, queue_policy="reject",
            faults=SLOW,
        ) as service:
            futures = [service.submit(_request(i)) for i in range(burst)]
            results = [f.result() for f in futures]
            stats = service.stats()

            assert stats.submitted == burst
            assert stats.admitted + stats.shed == stats.submitted
            assert stats.shed > 0  # the burst genuinely overflowed
            rejected = [r for r in results if isinstance(r.error, RequestRejected)]
            assert len(rejected) == stats.shed
            # shed requests never executed and resolve immediately
            assert all(r.attempts == 0 for r in rejected)
            assert all(r.report is None for r in rejected)
            # everything admitted completed fine
            assert sum(r.ok for r in results) == stats.admitted

            # post-burst: the service is healthy, a new request completes
            late = service.submit(_request(99)).result()
            assert late.ok
            stats = service.stats()
            assert stats.admitted + stats.shed == stats.submitted == burst + 1

    def test_unbounded_queue_never_sheds(self):
        with PermutationService(GEOMETRY, workers=2, faults=SLOW) as service:
            results = service.run([_request(i) for i in range(16)])
            stats = service.stats()
        assert all(r.ok for r in results)
        assert stats.shed == 0
        assert stats.admitted == stats.submitted == 16

    def test_results_keep_submission_indices(self):
        with PermutationService(
            GEOMETRY, workers=1, queue_capacity=2, queue_policy="reject",
            faults=SLOW,
        ) as service:
            futures = [service.submit(_request(i)) for i in range(8)]
            results = [f.result() for f in futures]
        assert [r.index for r in results] == list(range(8))


class TestShedOldest:
    def test_oldest_queued_is_evicted_for_newest(self):
        with PermutationService(
            GEOMETRY, workers=1, queue_capacity=2, queue_policy="shed-oldest",
            faults=SLOW,
        ) as service:
            futures = [service.submit(_request(i)) for i in range(10)]
            results = [f.result() for f in futures]
            stats = service.stats()

        shed = [r for r in results if isinstance(r.error, RequestRejected)]
        ok = [r for r in results if r.ok]
        assert stats.admitted + stats.shed == stats.submitted == 10
        assert len(shed) == stats.shed > 0
        assert len(ok) == stats.admitted
        # the *newest* submissions survive under shed-oldest: the last
        # request is never the one evicted
        assert results[-1].ok
        # evicted requests are strictly older than the survivors that
        # were queued behind them
        max_shed = max(r.index for r in shed)
        assert any(r.index > max_shed for r in ok)


class TestBlockPolicy:
    def test_blocking_submit_waits_for_space_no_deadlock(self):
        capacity = 2
        burst = 10
        done = threading.Event()
        results = []

        def _producer(service):
            futures = [service.submit(_request(i)) for i in range(burst)]
            results.extend(f.result() for f in futures)
            done.set()

        with PermutationService(
            GEOMETRY, workers=2, queue_capacity=capacity, queue_policy="block",
            faults=SLOW,
        ) as service:
            producer = threading.Thread(target=_producer, args=(service,))
            producer.start()
            assert done.wait(30.0), "blocking submits deadlocked"
            producer.join()
            stats = service.stats()

        # block never sheds: every submission is eventually admitted
        assert stats.shed == 0
        assert stats.admitted == stats.submitted == burst
        assert all(r.ok for r in results)

    def test_blocked_submit_unblocks_on_close(self):
        errors = []
        submitted = threading.Event()

        def _producer(service):
            try:
                for i in range(20):
                    service.submit(_request(i))
                    submitted.set()
            except ServiceClosedError as exc:
                errors.append(exc)
            finally:
                submitted.set()

        service = PermutationService(
            GEOMETRY, workers=1, queue_capacity=1, queue_policy="block",
            faults=FaultPlan(seed=7, slow_passes=1.0, slow_seconds=0.1),
        )
        producer = threading.Thread(target=_producer, args=(service,))
        producer.start()
        assert submitted.wait(10.0)
        service.close(drain_timeout=0.0)
        producer.join(timeout=10.0)
        assert not producer.is_alive(), "blocked submit never unblocked on close"
        assert errors, "blocked submit should raise ServiceClosedError on close"


class TestValidation:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ValidationError, match="queue policy"):
            PermutationService(GEOMETRY, workers=1, queue_policy="drop-newest")

    def test_nonpositive_capacity_rejected(self):
        with pytest.raises(ValidationError, match="capacity"):
            PermutationService(GEOMETRY, workers=1, queue_capacity=0)


class TestCloseSemantics:
    def test_close_is_idempotent(self):
        service = PermutationService(GEOMETRY, workers=2)
        service.run(synthetic_mix(4))
        service.close()
        service.close()  # must not raise or hang
        assert service.stats().closed

    def test_submit_after_close_raises_typed_error(self):
        service = PermutationService(GEOMETRY, workers=1)
        service.close()
        with pytest.raises(ServiceClosedError):
            service.submit(_request())
        # back-compat: ServiceClosedError is a ValidationError
        with pytest.raises(ValidationError):
            service.submit(_request())

    def test_graceful_close_drains_queue(self):
        service = PermutationService(GEOMETRY, workers=1, faults=SLOW)
        futures = [service.submit(_request(i)) for i in range(6)]
        service.close()  # graceful: everything queued still executes
        results = [f.result(timeout=1.0) for f in futures]
        assert all(r.ok for r in results)
        stats = service.stats()
        assert stats.completed == stats.admitted == 6

    def test_hard_close_flushes_queue_and_cancels_running(self):
        slow = FaultPlan(seed=7, slow_passes=1.0, slow_seconds=0.2)
        service = PermutationService(GEOMETRY, workers=1, faults=slow)
        futures = [service.submit(_request(i)) for i in range(6)]
        time.sleep(0.05)  # let the worker pick up the first request
        t0 = time.perf_counter()
        service.close(drain_timeout=0.0)
        elapsed = time.perf_counter() - t0
        results = [f.result(timeout=1.0) for f in futures]
        # no future is left dangling, and the close didn't wait out the
        # whole queue (6 requests x multiple 0.2s sleeps each)
        assert elapsed < 3.0
        flushed = [r for r in results if isinstance(r.error, ServiceClosedError)]
        assert flushed, "hard close should flush still-queued requests"
        assert all(r.attempts == 0 for r in flushed)
        stats = service.stats()
        assert stats.completed == stats.admitted
        assert stats.queue_depth == 0 and stats.running == 0
