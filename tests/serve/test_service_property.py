"""Property: serving a request mix concurrently equals running it
sequentially through :mod:`repro.core.runner` -- reports, IOStats and
final portion bytes included.

Hypothesis draws arbitrary mixes (planner family, method, seed, engine,
optimize knob); on failure it shrinks toward a minimal request list --
typically the two-request pair whose interaction broke isolation.
"""

from dataclasses import replace

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.runner import perform_requests
from repro.pdm.geometry import DiskGeometry
from repro.serve import PermutationRequest

GEOMETRY = DiskGeometry(N=2**10, B=2**3, D=2**2, M=2**7)

#: (perm template, methods it supports) -- every family the service
#: multiplexes, including the adaptive randomized one.
_FAMILIES = [
    ("random-mld", ["mld", "auto"]),
    ("random-mrc", ["mrc", "auto"]),
    ("random-bmmc", ["bmmc", "auto"]),
    ("bit-reversal", ["bmmc", "auto", "distribution"]),
    ("transpose", ["bmmc", "distribution"]),
    ("gray", ["auto"]),
    ("random", ["general", "distribution"]),
]


@st.composite
def requests_strategy(draw):
    family = draw(st.integers(0, len(_FAMILIES) - 1))
    perm, methods = _FAMILIES[family]
    method = draw(st.sampled_from(methods))
    return PermutationRequest(
        perm=perm,
        method=method,
        seed=draw(st.integers(0, 2)),
        engine=draw(st.sampled_from(["strict", "fast"])),
        optimize=draw(st.booleans()),
        verify=True,
        capture_portion=True,
    )


@pytest.mark.slow
@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(st.lists(requests_strategy(), min_size=1, max_size=6))
def test_service_equals_sequential_runner(requests):
    sequential = perform_requests(GEOMETRY, requests, workers=1)
    served = perform_requests(GEOMETRY, requests, workers=4)
    assert len(served) == len(sequential)
    for got, want in zip(served, sequential):
        assert got.ok == want.ok, (got.summary(), want.summary())
        if not want.ok:
            assert type(got.error) is type(want.error)
            continue
        assert got.report.method == want.report.method
        assert got.report.classes == want.report.classes
        assert got.report.passes == want.report.passes
        assert got.report.io == want.report.io
        assert got.report.final_portion == want.report.final_portion
        assert got.report.verified and want.report.verified
        assert got.digest == want.digest


@pytest.mark.slow
@settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(requests_strategy(), min_size=1, max_size=4))
def test_engine_choice_invisible_in_service(requests):
    """Serving a mix with every request forced strict equals serving it
    forced fast: the engines stay indistinguishable under concurrency."""
    strict = perform_requests(
        GEOMETRY, [replace(r, engine="strict", optimize=False) for r in requests],
        workers=3,
    )
    fast = perform_requests(
        GEOMETRY, [replace(r, engine="fast") for r in requests], workers=3
    )
    for a, b in zip(strict, fast):
        assert a.ok and b.ok
        assert a.digest == b.digest
        assert a.report.io == b.report.io
