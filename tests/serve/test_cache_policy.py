"""Eviction-policy regression under the zipf-hot-key golden trace.

The serving claim behind :class:`ShardedPlanCache`'s LRU policy is that
*skewed* traffic keeps a small cache useful: the hot head stays
resident while the cold tail churns through the victim slots.  This
suite pins that behavior with the committed ``zipf-hot-key`` golden
trace (64 events, Zipf alpha=1.5 over 16 keys) pushed through a cache
of 4 entries -- a quarter of the key space.

Configuration is deliberately ``workers=1, num_shards=1``: one worker
makes the request order the submission order, and one shard removes
PYTHONHASHSEED's influence on shard assignment, so the counter
arithmetic is exact and reproducible, not merely floored.
"""

import pathlib

import pytest

from repro.pdm.cache import ShardedPlanCache
from repro.serve import PermutationService
from repro.serve.workload import WorkloadTrace, replay_trace

WORKLOADS_DIR = pathlib.Path(__file__).parent.parent.parent / "benchmarks" / "workloads"

CACHE_SIZE = 4


def _replay_through_small_cache(trace):
    cache = ShardedPlanCache(maxsize=CACHE_SIZE, num_shards=1)
    with PermutationService(trace.geometry, workers=1, cache=cache) as service:
        report = replay_trace(service, trace, as_fast_as_possible=True)
    return report, cache.info()


@pytest.fixture(scope="module")
def zipf_trace():
    return WorkloadTrace.load(WORKLOADS_DIR / "zipf-hot-key.jsonl")


@pytest.fixture(scope="module")
def uniform_trace():
    return WorkloadTrace.load(WORKLOADS_DIR / "uniform.jsonl")


def test_books_balance_exactly(zipf_trace):
    report, info = _replay_through_small_cache(zipf_trace)
    assert report.failed == 0
    # one lookup per request, counted exactly once (hit or miss)
    assert info.hits + info.misses == len(zipf_trace)
    # every miss inserts; every insert past capacity evicts: once the
    # cache has filled, evictions and misses move in lockstep
    assert info.size == CACHE_SIZE
    assert info.evictions == info.misses - info.size
    assert info.misses <= zipf_trace.spec["key_space"] + info.evictions


def test_skew_keeps_a_small_cache_useful(zipf_trace):
    _, info = _replay_through_small_cache(zipf_trace)
    # Zipf(1.5) over 16 keys puts ~75% of mass on the top 4; LRU must
    # convert that into a healthy hit rate even at 1/4 key-space
    # capacity.  The committed trace measures ~0.75; 0.4 is the floor
    # that catches a policy regression (FIFO-like churn, broken LRU
    # touch ordering) without flaking on trace regeneration.
    assert info.hit_rate >= 0.4, (
        f"hot-key hit rate {info.hit_rate:.2f} under a {CACHE_SIZE}-entry "
        "cache -- LRU stopped protecting the hot head"
    )
    assert info.evictions > 0, "the scenario must actually pressure the cache"


def test_skew_beats_uniform_through_the_same_cache(zipf_trace, uniform_trace):
    _, skewed = _replay_through_small_cache(zipf_trace)
    _, flat = _replay_through_small_cache(uniform_trace)
    # uniform traffic over 12 keys through 4 slots mostly churns; the
    # gap is the policy's whole value proposition under skew
    assert skewed.hit_rate > flat.hit_rate, (
        f"zipf hit rate {skewed.hit_rate:.2f} should exceed uniform "
        f"{flat.hit_rate:.2f} through the same {CACHE_SIZE}-entry cache"
    )


def test_counters_are_deterministic_across_replays(zipf_trace):
    first_report, first = _replay_through_small_cache(zipf_trace)
    second_report, second = _replay_through_small_cache(zipf_trace)
    assert (first.hits, first.misses, first.evictions, first.size) == (
        second.hits, second.misses, second.evictions, second.size
    )
    assert first_report.workload_digest == second_report.workload_digest
