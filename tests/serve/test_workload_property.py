"""Property: any generated workload is a closed determinism loop.

Hypothesis draws arbitrary specs (arrival process, popularity, burst
shape, key space, seed); for each spec the property closes the full
loop the ISSUE promises: generate -> serialize -> parse -> replay
twice through fresh services, and every layer must agree exactly --
the serialization byte-roundtrips, the regenerated trace is
byte-identical, and the two replays produce identical digests,
identical (method, passes, parallel I/Os) triples, and identical
cache counters.  On failure Hypothesis shrinks toward the smallest
spec whose replay diverges.

The replay half is the expensive part (two real services per example),
so it runs a reduced example budget; the pure-format property keeps a
larger one.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.serve import PermutationService
from repro.serve.workload import (
    WorkloadSpec,
    WorkloadTrace,
    generate_trace,
    replay_trace,
)

GEOMETRY = dict(N=2**10, B=2**3, D=2**2, M=2**7)


@st.composite
def specs(draw, max_count=24):
    arrival = draw(st.sampled_from(["uniform", "poisson", "bursty"]))
    popularity = draw(st.sampled_from(["uniform", "zipf"]))
    return WorkloadSpec(
        count=draw(st.integers(1, max_count)),
        seed=draw(st.integers(0, 2**16)),
        arrival=arrival,
        rate=draw(st.sampled_from([50.0, 200.0, 1000.0])),
        burst_size=draw(st.integers(1, 6)),
        burst_gap=draw(st.sampled_from([0.01, 0.1])),
        popularity=popularity,
        zipf_alpha=draw(st.sampled_from([0.8, 1.1, 1.7])),
        key_space=draw(st.integers(1, 8)),
        geometry=GEOMETRY,
        verify=False,
    )


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(spec=specs())
def test_generate_is_deterministic_and_byte_roundtrips(spec):
    trace = generate_trace(spec)
    text = trace.dumps()
    # same spec -> same bytes; embedded spec -> same bytes
    assert generate_trace(spec).dumps() == text
    assert generate_trace(WorkloadSpec.from_dict(trace.spec)).dumps() == text
    # parse -> serialize is the identity
    parsed = WorkloadTrace.loads(text)
    assert parsed.dumps() == text
    assert len(parsed) == spec.count
    offsets = [event.at for event in parsed]
    assert offsets == sorted(offsets)
    assert all(at >= 0 for at in offsets)


def _fingerprint(report):
    return (
        report.digests,
        {
            r.index: (r.report.method, r.report.passes, r.report.io.parallel_ios)
            for r in report.results
        },
        (report.stats.submitted, report.stats.admitted, report.stats.completed,
         report.stats.failed, report.stats.shed),
        (report.cache.hits, report.cache.misses, report.cache.evictions),
    )


@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(spec=specs(max_count=10))
def test_record_replay_twice_is_identical(spec):
    trace = WorkloadTrace.loads(generate_trace(spec).dumps())
    fingerprints = []
    for _ in range(2):
        with PermutationService(
            trace.geometry, workers=2, cache_maxsize=32
        ) as service:
            report = replay_trace(service, trace, as_fast_as_possible=True)
        assert report.failed == 0
        assert len(report.digests) == len(trace)
        fingerprints.append(_fingerprint(report))
    first, second = fingerprints
    assert first == second
